"""Quickstart: compile a Warp program, run it, and go parallel.

Run:  python examples/quickstart.py
"""

from repro import ParallelCompiler, SequentialCompiler, run_module
from repro.parallel import ProcessPoolBackend, SerialBackend

SOURCE = """
module quickstart
section pipeline (cells 0..1)
  function smooth(v: float) : float
  var w: array[4] of float; i: int; acc: float;
  begin
    for i := 0 to 3 do w[i] := v * 0.25; end;
    acc := 0.0;
    for i := 0 to 3 do acc := acc + w[i]; end;
    return acc;
  end
  function main()
  var v: float; k: int;
  begin
    for k := 1 to 4 do
      receive(v);
      send(smooth(v) + 1.0);
    end;
  end
end
end
"""


def main() -> None:
    # 1. The sequential compiler: all four phases in one process.
    sequential = SequentialCompiler()
    result = sequential.compile(SOURCE)
    print("compiled module:", result.module_name)
    for line in result.report_lines():
        print(" ", line)

    # 2. Execute the download module on the simulated Warp array.
    #    Both cells of the section run the program, so smooth(+1) is
    #    applied twice to each input.
    outputs = run_module(result.download, [1.0, 2.0, 3.0, 4.0])
    print("array outputs:", outputs.output_floats())
    print("array cycles :", outputs.cycles)

    # 3. The parallel compiler: master / section masters / function
    #    masters.  Its output is bit-identical to the sequential one.
    parallel = ParallelCompiler(backend=SerialBackend())
    parallel_result = parallel.compile(SOURCE)
    assert parallel_result.digest == result.digest
    print("parallel compiler output identical:", True)

    # 4. On a multi-core machine, use one OS process per function master:
    #       ParallelCompiler(backend=ProcessPoolBackend())
    print("process-pool backend available with",
          ProcessPoolBackend().worker_count, "workers")


if __name__ == "__main__":
    main()
