"""Chaos matrix for the distributed fabric.

The acceptance bar: compiled digests are bit-identical across {local
pool, 2 remote nodes, 2 remote nodes with seeded faults, cache tier
down}.  Faults never change *what* is produced, only *how long* it
takes and which stats counters tick.

CI sweeps ``WARPCC_FABRIC_FAULT`` / ``WARPCC_FABRIC_SEED`` over a
node-kill / heartbeat-drop / corrupt-cache-response matrix; locally the
defaults exercise a mixed fault load.  The 200-seed matrix reuses one
fleet per 50-seed block so the whole sweep stays fast.
"""

import os

import pytest

from repro.driver.master import ParallelCompiler
from repro.driver.sequential import SequentialCompiler
from repro.fabric import (
    CacheChaos,
    CacheServiceServer,
    FabricChaos,
    FabricHub,
    NetworkCacheClient,
    RemoteBackend,
    TieredCache,
    WorkerNodeAgent,
)
from repro.fuzz import config_for_size_class, generate_program
from repro.parallel.local import SerialBackend
from repro.cache.store import ArtifactCache

FAULT_PROFILES = {
    "node-kill": {"kill_rate": 0.35},
    "heartbeat-drop": {"heartbeat_drop_rate": 0.7},
    "truncate": {"truncate_rate": 0.35},
    "delay-dup": {"delay_rate": 0.3, "duplicate_rate": 0.3, "delay_s": 0.01},
    "mixed": {
        "kill_rate": 0.2,
        "heartbeat_drop_rate": 0.2,
        "delay_rate": 0.15,
        "duplicate_rate": 0.15,
        "truncate_rate": 0.15,
        "delay_s": 0.01,
    },
    # Cache-tier faults are injected at the cache server, not the hub
    # transport; the fabric itself runs fault-free in that leg.
    "corrupt-cache-response": {},
}

ENV_FAULT = os.environ.get("WARPCC_FABRIC_FAULT", "mixed")
ENV_SEED = int(os.environ.get("WARPCC_FABRIC_SEED", "0"))


def _sources(seeds, size_class):
    config = config_for_size_class(size_class)
    return [generate_program(seed, config).source for seed in seeds]


class _Fleet:
    """One hub with a chaos-wrapped node and a healthy node.

    The healthy node guarantees forward progress no matter how nasty the
    chaos profile is; the chaotic one exists to die, stall, and corrupt.
    """

    def __init__(self, fault: str, seed: int):
        profile = FAULT_PROFILES[fault]
        self.hub = FabricHub(lease_ttl=2.0, heartbeat_interval=0.4)
        self.chaos = FabricChaos(seed=seed, **profile) if profile else None
        self.agents = [
            WorkerNodeAgent(
                self.hub.address,
                SerialBackend(),
                node_id="chaotic",
                chaos=self.chaos,
            ).start(),
            WorkerNodeAgent(
                self.hub.address, SerialBackend(), node_id="healthy"
            ).start(),
        ]
        assert self.hub.wait_for_nodes(2, timeout=15.0)
        self.backend = RemoteBackend(self.hub)

    def compile(self, source: str):
        return ParallelCompiler(backend=self.backend).compile(source)

    def close(self):
        for agent in self.agents:
            agent.stop()
        self.hub.close()


@pytest.fixture
def fleet():
    f = _Fleet(ENV_FAULT, ENV_SEED)
    yield f
    f.close()


class TestDigestIdentity:
    """One program, every deployment shape, one digest."""

    SEED = 11

    def test_all_shapes_agree(self, fleet, tmp_path):
        source = _sources([self.SEED], "small")[0]
        reference = SequentialCompiler().compile(source).digest

        # Local pool (the shape every earlier PR proved).
        local = ParallelCompiler().compile(source)
        assert local.digest == reference

        # Two remote nodes, seeded faults on one of them.
        remote = fleet.compile(source)
        assert remote.digest == reference

        # Cache tier down: a client pointed at a dead endpoint must
        # degrade to local-only caching, not fail the compile.
        dead_client = NetworkCacheClient("127.0.0.1:1", timeout=0.2)
        cache = TieredCache(
            ArtifactCache(cache_dir=tmp_path / "cache"), dead_client
        )
        try:
            cached = ParallelCompiler(cache=cache).compile(source)
        finally:
            cache.close()
        assert cached.digest == reference
        assert dead_client.disabled

    def test_corrupt_cache_responses_never_poison_a_compile(self, tmp_path):
        source = _sources([self.SEED], "small")[0]
        reference = SequentialCompiler().compile(source).digest
        chaos = CacheChaos(seed=ENV_SEED, corrupt_rate=1.0)
        with CacheServiceServer(tmp_path / "server", chaos=chaos) as server:
            # Warm the remote tier with real artifacts first.
            warm_client = NetworkCacheClient(server.address)
            warm = TieredCache(
                ArtifactCache(cache_dir=tmp_path / "warm"), warm_client
            )
            try:
                assert ParallelCompiler(cache=warm).compile(source).digest == reference
                warm.flush()
            finally:
                warm.close()

            # A cold machine now reads corrupt responses: every one must
            # be rejected by payload-digest validation and fall through
            # to a real compile with the right answer.
            client = NetworkCacheClient(server.address)
            cache = TieredCache(
                ArtifactCache(cache_dir=tmp_path / "cold"), client
            )
            try:
                result = ParallelCompiler(cache=cache).compile(source)
            finally:
                cache.close()
        assert result.digest == reference
        assert client.corrupt_responses > 0


class TestChaosMatrix:
    """200 seeds, four blocks, one fleet per block.

    Every generated program must compile to the same digest through the
    chaotic fabric as through the sequential reference.
    """

    @pytest.mark.parametrize("block", range(4))
    def test_block(self, block):
        size_class = ("tiny", "small", "medium", "small")[block]
        seeds = range(block * 50, block * 50 + 50)
        sources = _sources(seeds, size_class)
        references = [
            SequentialCompiler().compile(source).digest for source in sources
        ]
        fleet = _Fleet(ENV_FAULT, ENV_SEED + block)
        try:
            for source, reference in zip(sources, references):
                assert fleet.compile(source).digest == reference
        finally:
            fleet.close()
        # The suite is only meaningful if faults actually fired (the
        # cache-response fault leg injects nothing at the hub transport).
        if fleet.chaos is not None and ENV_FAULT != "corrupt-cache-response":
            fired = (
                fleet.chaos.kills_injected
                + fleet.chaos.heartbeats_dropped
                + fleet.chaos.frames_delayed
                + fleet.chaos.frames_duplicated
                + fleet.chaos.frames_truncated
            )
            assert fired > 0, "chaos profile injected nothing"


class TestRequeueAccounting:
    def test_node_kill_chaos_requeues_and_dedups_consistently(self):
        """Under a pure node-kill profile the hub's books must balance:
        every kill costs at most one requeue per open task, results are
        deduplicated rather than doubled, and nothing is lost."""
        fleet = _Fleet("node-kill", ENV_SEED)
        try:
            for source in _sources(range(3), "small"):
                reference = SequentialCompiler().compile(source).digest
                assert fleet.compile(source).digest == reference
            stats = fleet.hub.stats
        finally:
            fleet.close()
        if fleet.chaos.kills_injected:
            assert stats.nodes_lost >= 1
            assert stats.tasks_requeued >= 1
        # Dedup only ever *drops* duplicates; totals never exceed inputs.
        assert stats.results_deduped <= stats.tasks_requeued
