"""The four compiler phases (paper §3.2).

1. parsing and semantic checking (sequential; needs the whole section);
2. flowgraph construction, local optimization, global dependencies;
3. software pipelining and code generation;
4. I/O driver generation, assembly, and post-processing (linking,
   download-module construction).

Phases 2 and 3 run per function — :func:`compile_one_function` is the
exact unit of work a function master executes.  Phases 1 and 4 are cheap
("less than 5% ... on parsing") and stay sequential.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..asmlink.download import build_download_module, module_size_words
from ..asmlink.iodriver import build_io_driver
from ..asmlink.linker import link_section, link_work_units
from ..asmlink.assembler import assembly_work_units
from ..asmlink.objformat import DownloadModule, ObjectFunction
from ..codegen.compiler import compile_function
from ..ir.lowering import lower_function
from ..ir.loops import loop_nest_weight
from ..lang import ast_nodes as ast
from ..lang.diagnostics import CompileError, DiagnosticSink
from ..lang.lexer import tokenize
from ..lang.parser import Parser
from ..lang.sema import SemaResult, check_module
from ..lang.source import SourceFile
from ..machine.warp_array import WarpArrayModel
from .results import FunctionReport


@dataclass
class ParsedProgram:
    """Phase-1 output: the checked AST plus partitioning information."""

    module: ast.Module
    sema: SemaResult
    sink: DiagnosticSink
    parse_work: int
    sema_work: int
    source_lines: int


def phase1_parse_and_check(
    source_text: str, filename: str = "<input>"
) -> ParsedProgram:
    """Parse and semantically check; raises CompileError on any error.

    This is what the master runs "to obtain enough information to set up
    the parallel compilation ... if there are any syntax or semantic
    errors in the program, they are discovered at this time and the
    compilation is aborted."
    """
    source = SourceFile(filename, source_text)
    sink = DiagnosticSink()
    tokens = tokenize(source, sink)
    module = Parser(tokens, sink).parse_module()
    if sink.has_errors:
        raise CompileError(sink.diagnostics)
    sema = check_module(module, sink)
    if sink.has_errors:
        raise CompileError(sink.diagnostics)
    # Work proxies: tokens for scanning/parsing, statements for checking.
    parse_work = len(tokens)
    sema_work = _ast_size(module)
    return ParsedProgram(
        module=module,
        sema=sema,
        sink=sink,
        parse_work=parse_work,
        sema_work=sema_work,
        source_lines=source.count_lines(),
    )


def _ast_size(module: ast.Module) -> int:
    """Statement-level size proxy for semantic-checking work."""
    total = 0
    for _section, fn in module.all_functions():
        total += 2 + len(fn.params) + len(fn.locals) + _stmt_count(fn.body)
    return total


def _stmt_count(stmts: List[ast.Stmt]) -> int:
    count = 0
    for stmt in stmts:
        count += 1
        if isinstance(stmt, ast.IfStmt):
            count += _stmt_count(stmt.then_body) + _stmt_count(stmt.else_body)
        elif isinstance(stmt, (ast.ForStmt, ast.WhileStmt)):
            count += _stmt_count(stmt.body)
    return count


def compile_one_function(
    parsed: ParsedProgram,
    section_name: str,
    function_name: str,
    array: WarpArrayModel,
    opt_level: int = 2,
) -> Tuple[ObjectFunction, FunctionReport]:
    """Phases 2+3 for exactly one function (a function master's job)."""
    section = parsed.module.section_named(section_name)
    if section is None:
        raise KeyError(f"no section named {section_name!r}")
    function = section.function_named(function_name)
    if function is None:
        raise KeyError(
            f"no function {function_name!r} in section {section_name!r}"
        )
    fn_ir = lower_function(section, function, parsed.sema)
    ir_size = fn_ir.instruction_count()
    weight = loop_nest_weight(fn_ir)
    obj = compile_function(fn_ir, array.cell, opt_level=opt_level)
    report = FunctionReport(
        section_name=section_name,
        name=function_name,
        source_lines=function.line_count(),
        ir_instructions=ir_size,
        loop_weight=weight,
        work_units=obj.info.work_units,
        bundles=obj.bundle_count(),
        pipelined_loops=obj.info.pipelined_loops,
        initiation_intervals=list(obj.info.initiation_intervals),
        frame_words=obj.frame_words,
    )
    return obj, report


def phase4_link_and_download(
    parsed: ParsedProgram,
    objects: Dict[str, List[ObjectFunction]],
    array: WarpArrayModel,
    diagnostics_text: str = "",
) -> Tuple[DownloadModule, int, int]:
    """Assembly, linking, I/O driver, download module (sequential tail).

    ``objects`` maps section name -> object functions in source order.
    Returns (module, assembly work, link work).
    """
    section_cells: Dict[str, Tuple[int, int]] = {}
    programs = {}
    assembly_work = 0
    link_work = 0
    for section in parsed.module.sections:
        array.validate_section_range(section.first_cell, section.last_cell)
        section_cells[section.name] = (section.first_cell, section.last_cell)
        section_objects = objects[section.name]
        assembly_work += sum(assembly_work_units(o) for o in section_objects)
        link_work += link_work_units(section_objects)
        programs[section.name] = link_section(
            section.name, section_objects, array.cell
        )
    module = build_download_module(
        parsed.module.name, section_cells, programs, diagnostics_text
    )
    build_io_driver(module.cell_programs)  # validates I/O wiring
    return module, assembly_work, link_work
