"""The fabric hub: lease-based scheduling of tasks onto worker nodes.

The hub is the master's view of the fleet.  Worker-node agents connect,
register (gaining a *lease*), and renew the lease with heartbeats; the
hub assigns function-master tasks to the least-loaded live node and
tracks, per node, exactly which tasks are in flight.  The failure rules
are few and absolute:

- a node whose connection drops, whose frames stop parsing, or whose
  lease expires is *lost*: every unacknowledged task it held is
  re-queued, once each, onto the surviving fleet;
- results are deduplicated by task key — first result wins, identical
  to the supervisor's hedging rule, so a "lost" node that was merely
  slow can never double-link a function;
- a result failing digest validation is dropped, counted, and its task
  re-queued — corruption costs a retry, never a wrong artifact;
- a task that keeps bouncing (re-queue budget exhausted, or a compile
  error on the node) is executed on the hub's *local fallback* backend,
  which is authoritative: its result — or its exception — is final;
- zero live nodes degrades the whole wave to the local fallback.

:class:`RemoteBackend` wraps the hub in the standard
``run_tasks_streaming`` surface, so everything that consumes an
execution backend — the driver, the supervisor, the compile service,
the fuzz oracle — schedules onto the fleet unchanged.
"""

from __future__ import annotations

import hmac
import os
import queue
import socketserver
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterator, List, Optional, Set, Tuple

from ..driver.function_master import FunctionTask, FunctionTaskResult
from ..parallel.backend import stream_task_results
from ..parallel.local import SerialBackend
from .wire import (
    PROTOCOL_VERSION,
    Connection,
    ProtocolError,
    WireCorruption,
    decode_result,
    encode_task,
    fabric_secret,
    hmac_tag,
)

#: Lease/heartbeat defaults: a node missing ~3 heartbeats is lost.
DEFAULT_HEARTBEAT_INTERVAL = 2.0
DEFAULT_LEASE_TTL = 7.0

#: Times a task is re-queued onto the fleet before the local fallback
#: takes it (a task that kills every node it touches must not take the
#: whole fleet down with it — the poison rule, one level up).
DEFAULT_MAX_REQUEUES = 2

#: In-flight tasks per node, as a multiple of its worker count; keeps a
#: node's pipeline full without letting one node hoard the queue.
INFLIGHT_FACTOR = 2


@dataclass
class FabricStats:
    """Counters over one hub's lifetime."""

    nodes_registered: int = 0
    nodes_lost: int = 0
    waves: int = 0
    degraded_waves: int = 0
    tasks_dispatched: int = 0
    tasks_requeued: int = 0
    tasks_local_fallback: int = 0
    results_deduped: int = 0
    corrupt_frames: int = 0

    def copy(self) -> "FabricStats":
        return FabricStats(**self.__dict__)


class _Wave:
    """One ``run_tasks_streaming`` call's worth of tasks."""

    def __init__(self, wave_id: int, task_ids: Set[str]):
        self.id = wave_id
        self.open_tasks: Set[str] = set(task_ids)
        self.yielded_keys: Set[Tuple[str, Optional[str]]] = set()
        self.queue: "queue.Queue" = queue.Queue()


class _TaskState:
    __slots__ = ("task_id", "task", "wave", "requeues", "node_id", "assigned_at", "done")

    def __init__(self, task_id: str, task: FunctionTask, wave: _Wave):
        self.task_id = task_id
        self.task = task
        self.wave = wave
        self.requeues = 0
        self.node_id: Optional[str] = None
        self.assigned_at: Optional[float] = None
        self.done = False


class _Node:
    __slots__ = ("node_id", "conn", "workers", "expires_at", "inflight", "alive")

    def __init__(self, node_id: str, conn, workers: int, expires_at: float):
        self.node_id = node_id
        self.conn = conn
        self.workers = workers
        self.expires_at = expires_at
        self.inflight: Dict[str, _TaskState] = {}
        self.alive = True


class _HubHandler(socketserver.BaseRequestHandler):
    def handle(self):  # noqa: D102 - socketserver entry point
        self.server.hub._serve_connection(Connection(self.request))


class _HubServer(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, hub: "FabricHub", host: str, port: int):
        self.hub = hub
        super().__init__((host, port), _HubHandler)


class FabricHub:
    """Central scheduler for a fleet of worker-node agents."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        fallback=None,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        max_requeues: int = DEFAULT_MAX_REQUEUES,
        task_timeout: Optional[float] = None,
    ):
        if lease_ttl <= heartbeat_interval:
            raise ValueError(
                f"lease_ttl ({lease_ttl}) must exceed the heartbeat "
                f"interval ({heartbeat_interval}) or every node flaps"
            )
        self.fallback = fallback if fallback is not None else SerialBackend()
        self.lease_ttl = lease_ttl
        self.heartbeat_interval = heartbeat_interval
        self.max_requeues = max_requeues
        self.task_timeout = task_timeout
        self.stats = FabricStats()

        self._lock = threading.RLock()
        self._fleet_changed = threading.Condition(self._lock)
        self._nodes: Dict[str, _Node] = {}
        self._pending: Deque[_TaskState] = deque()
        self._tasks: Dict[str, _TaskState] = {}
        self._next_wave = 0
        self._closed = False

        self._local_queue: "queue.Queue" = queue.Queue()
        self._server = _HubServer(self, host, port)
        self._server_thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="fabric-hub-server",
            daemon=True,
        )
        self._server_thread.start()
        self._monitor_stop = threading.Event()
        self._monitor_thread = threading.Thread(
            target=self._monitor_loop, name="fabric-hub-monitor", daemon=True
        )
        self._monitor_thread.start()
        self._local_thread = threading.Thread(
            target=self._local_loop, name="fabric-hub-local", daemon=True
        )
        self._local_thread.start()

    # -- lifecycle -----------------------------------------------------

    @property
    def address(self) -> str:
        host, port = self._server.server_address[:2]
        return f"{host}:{port}"

    def close(self, retire_fleet: bool = False) -> None:
        """Stop the hub.  Agents treat the plain ``shutdown`` as
        end-of-session and reconnect with backoff (a hub restart must
        not require touching every machine); ``retire_fleet=True``
        marks it a fleet retirement, telling every agent to exit."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            nodes = list(self._nodes.values())
            self._nodes.clear()
        self._monitor_stop.set()
        self._server.shutdown()
        self._server.server_close()
        self._local_queue.put(None)
        for node in nodes:
            try:
                node.conn.send({"op": "shutdown", "retire": retire_fleet})
            except Exception:  # noqa: BLE001 - node may already be gone
                pass
            node.conn.close()
        self._monitor_thread.join(timeout=5.0)
        self._local_thread.join(timeout=5.0)

    def __enter__(self) -> "FabricHub":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- fleet introspection -------------------------------------------

    def live_node_count(self) -> int:
        with self._lock:
            return sum(1 for n in self._nodes.values() if n.alive)

    def total_workers(self) -> int:
        with self._lock:
            return sum(n.workers for n in self._nodes.values() if n.alive)

    def node_ids(self) -> List[str]:
        with self._lock:
            return sorted(n.node_id for n in self._nodes.values() if n.alive)

    def wait_for_nodes(self, count: int, timeout: float = 30.0) -> bool:
        """Block until ``count`` nodes hold live leases (startup sync)."""
        deadline = time.monotonic() + timeout
        with self._fleet_changed:
            while self.live_node_count() < count:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._fleet_changed.wait(remaining)
        return True

    # -- node connections ----------------------------------------------

    def _serve_connection(self, conn: Connection) -> None:
        node: Optional[_Node] = None
        reason = "disconnected"
        try:
            frame = conn.recv()
            if frame is None:
                return
            if frame.get("op") != "register":
                conn.send(
                    {
                        "op": "error",
                        "ok": False,
                        "reason": "bad-request",
                        "error": "first frame must be register",
                    }
                )
                return
            if not self._authenticate(conn):
                return
            node = self._register(conn, frame)
            conn.send(
                {
                    "op": "welcome",
                    "ok": True,
                    "node": node.node_id,
                    "protocol": PROTOCOL_VERSION,
                    "lease_ttl": self.lease_ttl,
                    "heartbeat_interval": self.heartbeat_interval,
                }
            )
            self._pump()
            while True:
                frame = conn.recv()
                if frame is None:
                    return
                self._renew(node)
                op = frame.get("op")
                if op == "heartbeat":
                    continue
                if op == "result":
                    self._on_result(node, frame)
                elif op == "task-done":
                    self._on_task_done(frame)
                elif op == "task-failed":
                    self._on_task_failed(frame)
                elif op == "goodbye":
                    reason = "goodbye"
                    return
                # unknown ops are ignored (forward compatibility)
        except ProtocolError as exc:
            reason = exc.reason
            with self._lock:
                self.stats.corrupt_frames += 1
            try:
                conn.send(
                    {"op": "error", "ok": False, "reason": exc.reason, "error": str(exc)}
                )
            except Exception:  # noqa: BLE001
                pass
        except OSError:
            reason = "io-error"
        finally:
            if node is not None:
                self._lose_node(node.node_id, reason, expect=node)
            conn.close()

    def _authenticate(self, conn: Connection) -> bool:
        """Challenge-response proof of the shared secret, when one is
        configured.  Runs *before* registration: a peer that cannot
        answer never gains a lease, so no task payload (which carries
        tenant source text) is ever sent to an unauthenticated socket.
        Without a secret the fabric is open — trusted networks only."""
        secret = fabric_secret()
        if secret is None:
            return True
        nonce = os.urandom(16).hex()
        conn.send({"op": "challenge", "nonce": nonce})
        reply = conn.recv()
        if reply is None:
            return False
        tag = reply.get("hmac") if reply.get("op") == "auth" else None
        if not isinstance(tag, str) or not hmac.compare_digest(
            tag, hmac_tag(nonce.encode("ascii"), secret)
        ):
            conn.send(
                {
                    "op": "error",
                    "ok": False,
                    "reason": "unauthenticated",
                    "error": "challenge response does not prove the "
                    "fabric secret",
                }
            )
            return False
        return True

    def _register(self, conn: Connection, frame: dict) -> _Node:
        node_id = str(frame.get("node") or f"node-{id(conn):x}")
        workers = max(1, int(frame.get("workers", 1)))
        with self._lock:
            stale = self._nodes.get(node_id)
        if stale is not None:
            # A reconnecting agent beat the hub to noticing its old
            # connection died; the old lease is superseded, its
            # unacknowledged tasks re-queue now.
            self._lose_node(node_id, "superseded", expect=stale)
        with self._fleet_changed:
            node = _Node(
                node_id, conn, workers, time.monotonic() + self.lease_ttl
            )
            self._nodes[node_id] = node
            self.stats.nodes_registered += 1
            self._fleet_changed.notify_all()
        return node

    def _renew(self, node: _Node) -> None:
        with self._lock:
            node.expires_at = time.monotonic() + self.lease_ttl

    def _lose_node(self, node_id: str, reason: str, expect: Optional[_Node] = None) -> None:
        """Expire a node's lease and re-queue its unacknowledged tasks."""
        with self._fleet_changed:
            node = self._nodes.get(node_id)
            if node is None or (expect is not None and node is not expect):
                return  # already superseded by a fresh registration
            del self._nodes[node_id]
            node.alive = False
            self.stats.nodes_lost += 1
            for state in node.inflight.values():
                if state.done:
                    continue
                state.node_id = None
                state.requeues += 1
                self._pending.append(state)
                self.stats.tasks_requeued += 1
            node.inflight.clear()
            self._fleet_changed.notify_all()
        node.conn.close()
        self._pump()

    # -- frame handlers ------------------------------------------------

    def _on_result(self, node: _Node, frame: dict) -> None:
        task_id = str(frame.get("id", ""))
        try:
            result = decode_result(frame)
        except WireCorruption:
            # Validated at the crossing: a corrupt result costs this
            # attempt, never a wrong artifact.  Re-queue the task.
            with self._lock:
                self.stats.corrupt_frames += 1
            self._requeue_task(task_id)
            return
        self._route_result(task_id, result, worker=f"node:{node.node_id}")

    def _route_result(
        self, task_id: str, result: FunctionTaskResult, worker: Optional[str]
    ) -> None:
        with self._lock:
            state = self._tasks.get(task_id)
            if state is None:
                return  # wave already finished or task unknown
            wave = state.wave
            rkey = (result.section_name, result.function_name)
            if rkey in wave.yielded_keys:
                # First result won already (a re-queued task's original
                # owner turned out to be slow, not dead).
                self.stats.results_deduped += 1
                return
            wave.yielded_keys.add(rkey)
            if worker is not None and result.worker is None:
                result.worker = worker
        wave.queue.put(("result", result))

    def _on_task_done(self, frame: dict) -> None:
        self._complete_task(str(frame.get("id", "")))

    def _complete_task(self, task_id: str) -> None:
        finished_wave = None
        with self._lock:
            state = self._tasks.get(task_id)
            if state is None or state.done:
                return
            state.done = True
            for node in self._nodes.values():
                node.inflight.pop(task_id, None)
            wave = state.wave
            wave.open_tasks.discard(task_id)
            if not wave.open_tasks:
                finished_wave = wave
                for tid in list(self._tasks):
                    if self._tasks[tid].wave is wave:
                        del self._tasks[tid]
        if finished_wave is not None:
            finished_wave.queue.put(("done", None))
        self._pump()

    def _on_task_failed(self, frame: dict) -> None:
        """The node's compiler raised.  The local fallback is
        authoritative: it reproduces the canonical error (or quietly
        succeeds, if the node was the problem)."""
        task_id = str(frame.get("id", ""))
        with self._lock:
            state = self._tasks.get(task_id)
            if state is None or state.done:
                return
            for node in self._nodes.values():
                node.inflight.pop(task_id, None)
            self._dispatch_local(state)

    def _requeue_task(self, task_id: str) -> None:
        with self._lock:
            state = self._tasks.get(task_id)
            if state is None or state.done:
                return
            for node in self._nodes.values():
                node.inflight.pop(task_id, None)
            state.node_id = None
            state.requeues += 1
            self._pending.append(state)
            self.stats.tasks_requeued += 1
        self._pump()

    # -- scheduling ----------------------------------------------------

    def submit_wave(self, tasks: List[FunctionTask]) -> _Wave:
        with self._lock:
            wave_id = self._next_wave
            self._next_wave += 1
            states = []
            task_ids = set()
            for index, task in enumerate(tasks):
                task_id = f"w{wave_id}.{index}"
                task_ids.add(task_id)
                states.append((task_id, task))
            wave = _Wave(wave_id, task_ids)
            for task_id, task in states:
                state = _TaskState(task_id, task, wave)
                self._tasks[task_id] = state
                self._pending.append(state)
            self.stats.waves += 1
        self._pump()
        return wave

    def _pump(self) -> None:
        """Assign pending tasks to live nodes (or the local fallback)."""
        while True:
            to_send: List[Tuple[_Node, dict]] = []
            with self._lock:
                live = [n for n in self._nodes.values() if n.alive]
                while self._pending:
                    state = self._pending[0]
                    if state.done:
                        self._pending.popleft()
                        continue
                    if state.requeues > self.max_requeues or not live:
                        self._pending.popleft()
                        self._dispatch_local(state)
                        continue
                    node = min(
                        live, key=lambda n: (len(n.inflight) / n.workers, n.node_id)
                    )
                    if len(node.inflight) >= node.workers * INFLIGHT_FACTOR:
                        break  # fleet saturated; completions re-pump
                    self._pending.popleft()
                    state.node_id = node.node_id
                    state.assigned_at = time.monotonic()
                    node.inflight[state.task_id] = state
                    to_send.append((node, encode_task(state.task, state.task_id)))
                    self.stats.tasks_dispatched += 1
            if not to_send:
                return
            lost = []
            for node, frame in to_send:
                try:
                    node.conn.send(frame)
                except Exception:  # noqa: BLE001 - any send failure kills the lease
                    lost.append(node)
            if not lost:
                return
            for node in lost:
                self._lose_node(node.node_id, "send-failed", expect=node)
            # _lose_node re-queued the failed sends; loop to reassign.

    def _dispatch_local(self, state: _TaskState) -> None:
        """Hand a task to the fallback runner (caller holds the lock)."""
        self.stats.tasks_local_fallback += 1
        self._local_queue.put(state)

    def _local_loop(self) -> None:
        while True:
            state = self._local_queue.get()
            if state is None:
                return
            if state.done:
                continue
            try:
                results = list(
                    stream_task_results(self.fallback, [state.task])
                )
            except Exception as exc:  # noqa: BLE001 - authoritative failure
                wave = state.wave
                with self._lock:
                    state.done = True
                    wave.open_tasks.discard(state.task_id)
                    if not wave.open_tasks:
                        # Same sweep _complete_task does: the wave is
                        # over (its consumer gets the error), so its
                        # task states must not outlive it.
                        for tid in list(self._tasks):
                            if self._tasks[tid].wave is wave:
                                del self._tasks[tid]
                wave.queue.put(("error", exc))
                continue
            for result in results:
                self._route_result(state.task_id, result, worker="local-fallback")
            self._complete_task(state.task_id)

    # -- lease monitor -------------------------------------------------

    def _monitor_loop(self) -> None:
        tick = max(0.02, min(self.heartbeat_interval / 2.0, self.lease_ttl / 4.0))
        while not self._monitor_stop.wait(tick):
            now = time.monotonic()
            expired: List[_Node] = []
            timed_out: List[str] = []
            with self._lock:
                for node in self._nodes.values():
                    if node.alive and now > node.expires_at:
                        expired.append(node)
                        continue
                    if self.task_timeout is not None:
                        for state in node.inflight.values():
                            if (
                                state.assigned_at is not None
                                and now - state.assigned_at > self.task_timeout
                            ):
                                timed_out.append(state.task_id)
            for node in expired:
                self._lose_node(node.node_id, "lease-expired", expect=node)
            for task_id in timed_out:
                self._requeue_task(task_id)
            self._pump()


class RemoteDispatchError(RuntimeError):
    """The fabric could not complete a wave (stall, not a compile error
    — compile errors re-raise as themselves via the local fallback)."""


class RemoteBackend:
    """The fleet behind the standard execution-backend surface.

    Degrades gracefully: a wave submitted while zero nodes hold live
    leases runs entirely on the hub's local fallback backend, and nodes
    lost mid-wave shed their unacknowledged tasks back through the hub.
    """

    def __init__(self, hub: FabricHub, progress_timeout: float = 300.0):
        self.hub = hub
        self.progress_timeout = progress_timeout
        self._last_effective: Optional[int] = None

    @property
    def worker_count(self) -> int:
        return max(1, self.hub.total_workers())

    @property
    def effective_worker_count(self) -> int:
        if self._last_effective is None:
            return self.worker_count
        return self._last_effective

    def run_tasks(self, tasks: List[FunctionTask]) -> List[FunctionTaskResult]:
        return list(self.run_tasks_streaming(tasks))

    def run_tasks_streaming(
        self, tasks: List[FunctionTask]
    ) -> Iterator[FunctionTaskResult]:
        if not tasks:
            return
        fleet = self.hub.total_workers()
        self._last_effective = min(len(tasks), max(1, fleet))
        if self.hub.live_node_count() == 0:
            # Zero live nodes: the compile must still succeed, at local
            # speed.  Counted so operators can see the degradation.
            with self.hub._lock:
                self.hub.stats.degraded_waves += 1
            yield from stream_task_results(self.hub.fallback, tasks)
            return
        wave = self.hub.submit_wave(tasks)
        last_progress = time.monotonic()
        while True:
            try:
                kind, payload = wave.queue.get(timeout=0.25)
            except queue.Empty:
                if time.monotonic() - last_progress > self.progress_timeout:
                    raise RemoteDispatchError(
                        f"fabric made no progress for {self.progress_timeout}s "
                        f"({len(wave.open_tasks)} tasks still open)"
                    )
                continue
            last_progress = time.monotonic()
            if kind == "result":
                yield payload
            elif kind == "done":
                return
            elif kind == "error":
                raise payload
