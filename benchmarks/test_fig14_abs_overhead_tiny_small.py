"""Figure 14 (appendix): absolute overhead for f_tiny and f_small."""

from figures_common import absolute_overhead_figure, write_figure
from repro.workloads.sizes import FUNCTION_COUNTS


def test_fig14_abs_overhead_tiny_small(benchmark, results_dir):
    fig = benchmark(
        absolute_overhead_figure, ["tiny", "small"], "Figure 14"
    )
    write_figure(results_dir, fig)

    tiny_total = fig.series_named("total overhead f_tiny")
    small_total = fig.series_named("total overhead f_small")

    # Absolute overhead rises with the number of functions for both.
    for series in (tiny_total, small_total):
        values = [series.points[n] for n in FUNCTION_COUNTS]
        assert values == sorted(values)
        assert values[-1] > 2 * values[0]

    # The mechanisms are size-independent (startup, network): tiny and
    # small absolute overheads are the same order of magnitude.
    assert 0.2 < tiny_total.points[8] / small_total.points[8] < 5.0
