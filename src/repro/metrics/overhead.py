"""Overhead decomposition (paper §4.2.3).

"The total overhead incurred by the parallel compiler is composed of
system overhead and implementation overhead.  The implementation overhead
consists of the additional work that the parallel compiler performs
(compared to the sequential one)": master setup + scheduling time,
section-master time, and one extra parse.  "The system overhead is
obtained by subtracting the implementation overhead ... from the total
overhead."

Total overhead is measured against the ideal parallel time — sequential
elapsed divided by the number of processors actually exploited.  System
overhead can therefore be *negative*: when the sequential compiler
thrashes on a program that does not fit one workstation, the parallel
compiler's fresh per-function Lisp images beat the ideal derived from the
inflated sequential time (§4.2.3, Figure 9).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.cluster import TimingReport


@dataclass(frozen=True)
class OverheadBreakdown:
    """All §4.2.3 quantities for one (sequential, parallel) pair."""

    sequential_elapsed: float
    parallel_elapsed: float
    workers: int
    implementation_overhead: float

    @property
    def ideal_parallel(self) -> float:
        return self.sequential_elapsed / self.workers

    @property
    def total_overhead(self) -> float:
        return self.parallel_elapsed - self.ideal_parallel

    @property
    def system_overhead(self) -> float:
        return self.total_overhead - self.implementation_overhead

    # -- the figures report overheads as % of parallel elapsed time -------

    @property
    def relative_total(self) -> float:
        return 100.0 * self.total_overhead / self.parallel_elapsed

    @property
    def relative_system(self) -> float:
        return 100.0 * self.system_overhead / self.parallel_elapsed

    @property
    def relative_implementation(self) -> float:
        return 100.0 * self.implementation_overhead / self.parallel_elapsed


def compute_overhead(
    sequential: TimingReport, parallel: TimingReport, workers: int
) -> OverheadBreakdown:
    """Decompose the parallel run's overhead against the sequential run.

    ``workers`` is the number of processors the parallel run could
    actually exploit: min(number of functions, processors available).
    """
    if workers < 1:
        raise ValueError(f"need at least one worker, got {workers}")
    return OverheadBreakdown(
        sequential_elapsed=sequential.elapsed,
        parallel_elapsed=parallel.elapsed,
        workers=workers,
        implementation_overhead=parallel.implementation_overhead,
    )
