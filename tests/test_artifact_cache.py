"""The persistent function-level artifact cache (incremental compilation).

The load-bearing property is the differential one: compile a module
cold, mutate exactly one function, recompile warm — the download digest
must be bit-identical to a from-scratch compile of the mutated source,
and exactly one function may pay phase-2/3 work (one cache miss).
"""

import pickle

import pytest

from repro.cache import ArtifactCache, function_fingerprint, module_fingerprints
from repro.cache.store import default_cache_dir
from repro.driver.master import ParallelCompiler
from repro.driver.sequential import SequentialCompiler
from repro.lang.diagnostics import DiagnosticSink
from repro.lang.parser import parse_text
from repro.parallel.local import SerialBackend

SOURCE = """
module incr
section a (cells 0..0)
  function a1(x: float) : float begin return x + 1.0; end
  function a2(x: float) : float begin return x * 2.0; end
end
section b (cells 1..1)
  function b1(x: float) : float begin return x - 3.0; end
  function b2(x: float) : float begin return x / 4.0; end
end
end
"""

#: Same module with one function body edited (an extra statement, so its
#: normalized AST — not just a literal — changes).
MUTATED = SOURCE.replace(
    "function a2(x: float) : float begin return x * 2.0; end",
    "function a2(x: float) : float begin x := x + 1.0; return x * 2.0; end",
)


def parse(source):
    sink = DiagnosticSink()
    module = parse_text(source, sink)
    assert not sink.has_errors
    return module


@pytest.fixture
def cache(tmp_path):
    return ArtifactCache(tmp_path / "cache")


def cached_compiler(cache, **kwargs):
    return ParallelCompiler(backend=SerialBackend(), cache=cache, **kwargs)


class TestFingerprint:
    def test_editing_one_function_changes_only_its_fingerprint(self):
        before = module_fingerprints(parse(SOURCE), opt_level=2, cell_count=10)
        after = module_fingerprints(parse(MUTATED), opt_level=2, cell_count=10)
        changed = [key for key in before if before[key] != after[key]]
        assert changed == [("a", "a2")]

    def test_whitespace_only_shifts_do_not_invalidate_siblings(self):
        # A blank line above section b shifts every later span; the
        # normalized digest must not notice (function line *counts* are
        # unchanged).
        shifted = SOURCE.replace(
            "section b", "\nsection b"
        )
        before = module_fingerprints(parse(SOURCE), opt_level=2, cell_count=10)
        after = module_fingerprints(parse(shifted), opt_level=2, cell_count=10)
        assert before == after

    def test_opt_level_cells_and_granularity_are_part_of_the_key(self):
        module = parse(SOURCE)
        section = module.sections[0]
        fn = section.functions[0]
        base = function_fingerprint(section, fn, opt_level=2, cell_count=10)
        assert function_fingerprint(
            section, fn, opt_level=1, cell_count=10
        ) != base
        assert function_fingerprint(
            section, fn, opt_level=2, cell_count=4
        ) != base
        assert function_fingerprint(
            section, fn, opt_level=2, cell_count=10, granularity="section"
        ) != base
        assert function_fingerprint(
            section, fn, opt_level=2, cell_count=10, salt="other-compiler"
        ) != base

    def test_sibling_signature_change_invalidates_the_section(self):
        # Lowering resolves calls against sibling signatures, so changing
        # a1's return type must invalidate a2 as well.
        retyped = SOURCE.replace(
            "function a1(x: float) : float begin return x + 1.0; end",
            "function a1(x: float) : int begin return 1; end",
        )
        before = module_fingerprints(parse(SOURCE), opt_level=2, cell_count=10)
        after = module_fingerprints(parse(retyped), opt_level=2, cell_count=10)
        assert before[("a", "a2")] != after[("a", "a2")]
        # ...but the other section is untouched.
        assert before[("b", "b1")] == after[("b", "b1")]
        assert before[("b", "b2")] == after[("b", "b2")]


class TestDifferential:
    def test_one_function_edit_pays_for_exactly_one_function(self, cache):
        compiler = cached_compiler(cache)
        cold = compiler.compile(SOURCE)
        assert cold.profile.artifact_cache_misses() == 4
        assert cold.profile.artifact_cache_hits() == 0
        assert cold.digest == SequentialCompiler().compile(SOURCE).digest

        warm = compiler.compile(SOURCE)
        assert warm.profile.artifact_cache_misses() == 0
        assert warm.profile.artifact_cache_hits() == 4
        assert warm.digest == cold.digest

        mutated = compiler.compile(MUTATED)
        from_scratch = SequentialCompiler().compile(MUTATED)
        assert mutated.digest == from_scratch.digest
        assert mutated.profile.artifact_cache_misses() == 1
        assert mutated.profile.artifact_cache_hits() == 3
        missed = [
            f for f in mutated.profile.functions if f.artifact_cache_misses
        ]
        assert [(f.section_name, f.name) for f in missed] == [("a", "a2")]

    def test_cache_shared_across_compiler_instances(self, cache):
        cached_compiler(cache).compile(SOURCE)
        warm = cached_compiler(cache).compile(SOURCE)
        assert warm.profile.artifact_cache_hits() == 4
        assert warm.profile.artifact_cache_misses() == 0

    def test_report_and_diagnostics_survive_the_cache(self, cache):
        compiler = cached_compiler(cache)
        cold = compiler.compile(SOURCE)
        warm = compiler.compile(SOURCE)
        cold_reports = {
            f.key: (f.source_lines, f.work_units, f.bundles)
            for f in cold.profile.functions
        }
        warm_reports = {
            f.key: (f.source_lines, f.work_units, f.bundles)
            for f in warm.profile.functions
        }
        assert cold_reports == warm_reports
        assert warm.diagnostics_text == cold.diagnostics_text
        # A fully cached compile still reports honest totals.
        assert warm.profile.total_work() == cold.profile.total_work()
        assert warm.profile.cached_function_work() == sum(
            f.work_units for f in cold.profile.functions
        )

    def test_no_cache_means_no_counters(self):
        result = ParallelCompiler(backend=SerialBackend()).compile(SOURCE)
        assert result.profile.artifact_cache_hits() == 0
        assert result.profile.artifact_cache_misses() == 0

    def test_section_granularity_hits_only_when_whole_section_hits(self, cache):
        compiler = cached_compiler(cache, granularity="section")
        cold = compiler.compile(SOURCE)
        assert cold.profile.artifact_cache_misses() == 4
        warm = compiler.compile(SOURCE)
        assert warm.profile.artifact_cache_hits() == 4
        assert warm.digest == cold.digest
        # Editing a2 re-dispatches all of section a (one task), so both
        # of its functions report misses; section b stays cached.
        mutated = compiler.compile(MUTATED)
        assert mutated.profile.artifact_cache_misses() == 2
        assert mutated.profile.artifact_cache_hits() == 2
        assert mutated.digest == SequentialCompiler().compile(MUTATED).digest


class TestStoreRobustness:
    def test_corrupt_entry_is_discarded_and_recompiled(self, cache):
        compiler = cached_compiler(cache)
        cold = compiler.compile(SOURCE)
        # Scribble over one entry on disk.
        entries = [path for _, _, path in cache._entries()]
        entries[0].write_bytes(b"not a pickle")
        warm = compiler.compile(SOURCE)
        assert warm.digest == cold.digest
        assert warm.profile.artifact_cache_corrupt == 1
        assert warm.profile.artifact_cache_misses() == 1
        assert warm.profile.artifact_cache_hits() == 3
        # The corrupt file was replaced by a fresh artifact.
        assert cache.entry_count() == 4
        third = compiler.compile(SOURCE)
        assert third.profile.artifact_cache_hits() == 4

    def test_wrong_type_entry_counts_as_corrupt(self, cache):
        fingerprint = "ab" + "0" * 62
        path = cache._entry_path(fingerprint)
        path.parent.mkdir(parents=True)
        path.write_bytes(pickle.dumps({"not": "a result"}))
        assert cache.get(fingerprint) is None
        assert cache.stats.corrupt == 1
        assert not path.exists()

    def test_eviction_bounds_the_store(self, tmp_path):
        small = ArtifactCache(tmp_path / "small", max_bytes=2000)
        compiler = cached_compiler(small)
        cold = compiler.compile(SOURCE)
        assert small.stats.evictions > 0
        assert small.size_bytes() <= 2000
        # Evicted functions just recompile; output never changes.
        again = compiler.compile(SOURCE)
        assert again.digest == cold.digest
        assert again.profile.artifact_cache_evictions >= 0
        assert (
            again.profile.artifact_cache_hits()
            + again.profile.artifact_cache_misses()
            == 4
        )

    def test_put_is_atomic_no_temp_droppings(self, cache):
        cached_compiler(cache).compile(SOURCE)
        leftovers = [
            p
            for _, _, path in cache._entries()
            for p in path.parent.iterdir()
            if p.name.startswith(".tmp-")
        ]
        assert leftovers == []

    def test_clear_empties_the_store(self, cache):
        cached_compiler(cache).compile(SOURCE)
        assert cache.clear() == 4
        assert cache.entry_count() == 0

    def test_rejects_nonpositive_size_bound(self, tmp_path):
        with pytest.raises(ValueError):
            ArtifactCache(tmp_path, max_bytes=0)

    def test_default_dir_respects_environment(self, monkeypatch, tmp_path):
        monkeypatch.setenv("WARPCC_CACHE_DIR", str(tmp_path / "override"))
        assert default_cache_dir() == tmp_path / "override"
        monkeypatch.delenv("WARPCC_CACHE_DIR")
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == tmp_path / "xdg" / "warpcc"


class TestWriteBackUnderFailure:
    """Satellite of the supervision PR: a retried-then-successful task
    is written back to the store like any first-try success, while a
    poisoned task must NEVER be persisted — an in-process rescue (or a
    stub) cannot masquerade as a healthy farm artifact next build."""

    def test_retried_then_successful_task_is_written_back(self, cache):
        from repro.parallel.fault_tolerance import FlakyBackend, RetryingBackend

        # Every task fails exactly once, then succeeds on retry.
        flaky = FlakyBackend(
            SerialBackend(), 0.999, seed=1, max_failures_per_task=1
        )
        backend = RetryingBackend(flaky, max_attempts=3)
        cold = ParallelCompiler(backend=backend, cache=cache).compile(SOURCE)
        assert flaky.injected_failures == 4  # all four tasks were retried
        assert cold.profile.artifact_cache_misses() == 4
        assert cache.entry_count() == 4

        warm = cached_compiler(cache).compile(SOURCE)
        assert warm.profile.artifact_cache_hits() == 4
        assert warm.digest == cold.digest

    def test_poisoned_task_is_never_written_back(self, cache):
        from repro.parallel.fault_tolerance import ChaosBackend
        from repro.parallel.supervisor import SupervisedBackend

        chaos = ChaosBackend(
            SerialBackend(), workers=4, seed=0, poison=(("a", "a2"),)
        )
        backend = SupervisedBackend(
            chaos, max_attempts=5, poison_threshold=3, hedge_after=None
        )
        cold = ParallelCompiler(backend=backend, cache=cache).compile(SOURCE)
        assert [f.name for f in cold.profile.poisoned_functions()] == ["a2"]
        # three healthy artifacts stored; the poisoned one withheld
        assert cache.entry_count() == 3

        # Differential: a later clean compile re-pays exactly the
        # poisoned function and nothing else.
        warm = cached_compiler(cache).compile(SOURCE)
        assert warm.profile.artifact_cache_hits() == 3
        assert warm.profile.artifact_cache_misses() == 1
        missed = [
            f for f in warm.profile.functions if f.artifact_cache_misses
        ]
        assert [(f.section_name, f.name) for f in missed] == [("a", "a2")]
        assert warm.digest == SequentialCompiler().compile(SOURCE).digest


class TestConcurrentSharing:
    def test_two_caches_sharing_a_directory(self, tmp_path):
        # Two compiler processes sharing one cache dir is the compile-
        # server scenario; model it with two independent cache handles.
        first = ArtifactCache(tmp_path / "shared")
        second = ArtifactCache(tmp_path / "shared")
        cached_compiler(first).compile(SOURCE)
        warm = cached_compiler(second).compile(SOURCE)
        assert warm.profile.artifact_cache_hits() == 4
        assert second.stats.hits == 4
