"""Ablation: dynamic FCFS vs static assignment on a loaded network.

§3.3: the host is "a network of about 40 diskless SUN workstations ...
These workstations are in individual offices, but not all workstations
are in use at all times" — and the paper's dispatcher is "a simple
first-come-first-served strategy ... Other researchers have observed that
such a simple strategy works well in practice."

This ablation quantifies why: when some workstations are half-busy with
their owners, dynamic FCFS self-balances while a static split stalls
behind the slow machines.
"""

import pytest

from figures_common import write_figure
from repro.cluster.cluster import ClusterSimulation
from repro.metrics.experiments import profile_for
from repro.metrics.series import Figure
from repro.parallel.schedule import fcfs_assignment

#: Four of eight machines are busy with their owners.
LOADED = [1.0, 0.5, 1.0, 0.4, 1.0, 0.6, 1.0, 0.5]
IDLE = [1.0] * 8


def build_figure() -> Figure:
    sim = ClusterSimulation()
    profile = profile_for("medium", 8)
    fig = Figure(
        "Ablation: FCFS dispatch",
        "Static assignment vs dynamic FCFS (8 medium functions, 8 machines)",
        "network condition",
        "parallel elapsed (virtual s)",
        xs=["idle network", "loaded network"],
    )
    static = fig.new_series("static assignment")
    dynamic = fig.new_series("dynamic FCFS")
    for label, speeds in (("idle network", IDLE), ("loaded network", LOADED)):
        static.add(
            label,
            sim.run_parallel(
                profile,
                fcfs_assignment(profile.functions, 8),
                machine_speeds=speeds,
            ).elapsed,
        )
        dynamic.add(
            label,
            sim.run_parallel(
                profile, processors=8, machine_speeds=speeds
            ).elapsed,
        )
    return fig


def test_dynamic_fcfs_tolerates_loaded_workstations(benchmark, results_dir):
    fig = benchmark(build_figure)
    write_figure(results_dir, fig)

    static = fig.series_named("static assignment")
    dynamic = fig.series_named("dynamic FCFS")

    # On an idle network the two dispatchers are equivalent.
    assert dynamic.points["idle network"] == pytest.approx(
        static.points["idle network"], rel=0.05
    )
    # On a loaded network both degrade, dynamic FCFS degrades less.
    assert static.points["loaded network"] > static.points["idle network"]
    assert (
        dynamic.points["loaded network"] <= static.points["loaded network"]
    )