"""Three-address intermediate representation and CFG analyses."""

from .builder import IRBuilder
from .cfg import BasicBlock, FunctionIR, ModuleIR
from .dominators import DominatorTree, compute_dominators
from .instructions import (
    COMMUTATIVE,
    COMPARISONS,
    Instr,
    Opcode,
    SIDE_EFFECTS,
    TERMINATORS,
    evaluate_constant,
)
from .loops import Loop, LoopNest, find_loops, is_pipelinable, loop_nest_weight
from .lowering import LoweringError, ir_type_of, lower_function, lower_module
from .printer import print_function, print_module
from .values import (
    Const,
    FrameArray,
    IR_FLOAT,
    IR_INT,
    VReg,
    Value,
    const_float,
    const_int,
)

__all__ = [
    "BasicBlock",
    "COMMUTATIVE",
    "COMPARISONS",
    "Const",
    "DominatorTree",
    "FrameArray",
    "FunctionIR",
    "IRBuilder",
    "IR_FLOAT",
    "IR_INT",
    "Instr",
    "Loop",
    "LoopNest",
    "LoweringError",
    "ModuleIR",
    "Opcode",
    "SIDE_EFFECTS",
    "TERMINATORS",
    "VReg",
    "Value",
    "compute_dominators",
    "const_float",
    "const_int",
    "evaluate_constant",
    "find_loops",
    "ir_type_of",
    "is_pipelinable",
    "loop_nest_weight",
    "lower_function",
    "lower_module",
    "print_function",
    "print_module",
]
