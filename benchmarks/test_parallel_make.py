"""§3.4 comparison: parallel make versus the parallel compiler.

Paper: "While in parallel make several modules are compiled concurrently
with a sequential compiler, our system compiles a single module with a
parallel compiler ... In practice, both approaches could coexist, with
the parallel compiler speeding up the individual translations, and the
parallel make system organizing the system generation effort."
"""

from figures_common import write_figure
from repro.cluster.cluster import ClusterSimulation
from repro.metrics.experiments import profile_for
from repro.metrics.series import Figure
from repro.parallel.parallel_make import (
    MakeTarget,
    simulate_parallel_make,
)
from repro.parallel.schedule import one_function_per_processor


def build_figure() -> Figure:
    """A system of 6 modules (each S_2 medium), built three ways."""
    sim = ClusterSimulation()
    profiles = [profile_for("medium", 2) for _ in range(6)]
    targets = [
        MakeTarget(name=f"mod{i}", profile=p) for i, p in enumerate(profiles)
    ]

    sequential_build = sum(
        sim.run_sequential(p).elapsed for p in profiles
    )
    pmake = simulate_parallel_make(targets, machines=6, sim=sim)

    # Our parallel compiler on each module, one after another.
    parallel_each = sum(
        sim.run_parallel(
            p, one_function_per_processor(p.functions)
        ).elapsed
        for p in profiles
    )

    fig = Figure(
        "§3.4",
        "Parallel make vs parallel compiler (6-module system)",
        "approach",
        "build time (virtual seconds)",
        xs=["sequential", "parallel make", "parallel compiler", "combined"],
    )
    series = fig.new_series("elapsed")
    series.add("sequential", sequential_build)
    series.add("parallel make", pmake.elapsed)
    series.add("parallel compiler", parallel_each)
    combined = simulate_parallel_make(
        targets, machines=6, sim=sim, parallel_modules=True
    )
    series.add("combined", combined.elapsed)
    return fig


def test_parallel_make_comparison(benchmark, results_dir):
    fig = benchmark(build_figure)
    write_figure(results_dir, fig)
    series = fig.series_named("elapsed")

    sequential = series.points["sequential"]
    pmake = series.points["parallel make"]
    parallel_compiler = series.points["parallel compiler"]
    combined = series.points["combined"]

    # Parallel make wins over a fully sequential system build.
    assert pmake < sequential / 3
    # The parallel compiler alone also beats sequential builds.
    assert parallel_compiler < sequential
    # Coexistence is the best of both (§3.4's closing point).
    assert combined <= min(pmake, parallel_compiler) * 1.05
