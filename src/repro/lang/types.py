"""The type system of the W2-like language.

Three kinds of types: ``int``, ``float`` and one-dimensional arrays of a
scalar element type.  ``int`` widens implicitly to ``float``; narrowing is
an error.  Comparison and logical operators yield ``int`` (0 or 1), as in
the era's systems languages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


class Type:
    """Base class for all types; instances are immutable and comparable."""

    def is_scalar(self) -> bool:
        return False

    def is_numeric(self) -> bool:
        return False


@dataclass(frozen=True)
class IntType(Type):
    def is_scalar(self) -> bool:
        return True

    def is_numeric(self) -> bool:
        return True

    def __str__(self) -> str:
        return "int"


@dataclass(frozen=True)
class FloatType(Type):
    def is_scalar(self) -> bool:
        return True

    def is_numeric(self) -> bool:
        return True

    def __str__(self) -> str:
        return "float"


@dataclass(frozen=True)
class ArrayType(Type):
    element: Type
    length: int

    def __str__(self) -> str:
        return f"array[{self.length}] of {self.element}"


@dataclass(frozen=True)
class VoidType(Type):
    """The 'type' of a function with no return value."""

    def __str__(self) -> str:
        return "void"


INT = IntType()
FLOAT = FloatType()
VOID = VoidType()


def is_assignable(target: Type, value: Type) -> bool:
    """True if a value of type ``value`` may be stored into ``target``.

    Identical scalar types are assignable, and ``int`` widens to ``float``.
    Arrays are never assigned wholesale (element-wise loops only).
    """
    if target == value and target.is_scalar():
        return True
    return target == FLOAT and value == INT


def unify_arithmetic(left: Type, right: Type) -> Optional[Type]:
    """Result type of an arithmetic operator, or None if ill-typed."""
    if not (left.is_numeric() and right.is_numeric()):
        return None
    if FLOAT in (left, right):
        return FLOAT
    return INT
