"""Source text handling: files, positions, and spans.

Every token and AST node carries a :class:`Span` so that diagnostics can
point at the offending source text.  The parallel compiler's master process
parses the whole program once to derive the partitioning, and diagnostics
produced by the function masters are recombined by the section masters;
stable, position-carrying diagnostics are what make that recombination
deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Position:
    """A point in a source file (1-based line/column, 0-based offset)."""

    line: int
    column: int
    offset: int

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


@dataclass(frozen=True)
class Span:
    """A half-open range of source text ``[start, end)`` in one file."""

    filename: str
    start: Position
    end: Position

    @classmethod
    def point(cls, filename: str, pos: Position) -> "Span":
        return cls(filename, pos, pos)

    def merge(self, other: "Span") -> "Span":
        """Smallest span covering both ``self`` and ``other``."""
        if self.filename != other.filename:
            raise ValueError(
                f"cannot merge spans from {self.filename!r} and {other.filename!r}"
            )
        first = self.start if self.start.offset <= other.start.offset else other.start
        last = self.end if self.end.offset >= other.end.offset else other.end
        return Span(self.filename, first, last)

    def __str__(self) -> str:
        return f"{self.filename}:{self.start}"


@dataclass
class SourceFile:
    """A named unit of source text with lazy line indexing."""

    filename: str
    text: str
    _line_starts: list = field(default_factory=list, repr=False)

    def line_starts(self) -> list:
        """Offsets at which each line begins (computed once)."""
        if not self._line_starts:
            starts = [0]
            for i, ch in enumerate(self.text):
                if ch == "\n":
                    starts.append(i + 1)
            self._line_starts = starts
        return self._line_starts

    def position_at(self, offset: int) -> Position:
        """Translate a byte offset into a line/column position."""
        if offset < 0 or offset > len(self.text):
            raise ValueError(f"offset {offset} out of range for {self.filename!r}")
        starts = self.line_starts()
        lo, hi = 0, len(starts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if starts[mid] <= offset:
                lo = mid
            else:
                hi = mid - 1
        return Position(line=lo + 1, column=offset - starts[lo] + 1, offset=offset)

    def line_text(self, line: int) -> str:
        """The text of the given 1-based line, without the newline."""
        starts = self.line_starts()
        if line < 1 or line > len(starts):
            raise ValueError(f"line {line} out of range for {self.filename!r}")
        begin = starts[line - 1]
        end = starts[line] - 1 if line < len(starts) else len(self.text)
        return self.text[begin:end]

    def count_lines(self) -> int:
        """Number of lines in the file (an empty file has one empty line)."""
        return len(self.line_starts())


class WindowedSource:
    """A slice of a larger source file that reports *absolute* positions.

    The parallel front end lexes each function's byte window (and the
    skeleton gaps between windows) independently; the lexer only ever
    touches ``.text``, ``.filename`` and :meth:`position_at`, so a
    windowed view that translates slice-relative offsets back into
    whole-file positions makes every token and span come out identical
    to a sequential lex of the full text — which is what keeps parallel
    diagnostics and AST spans bit-identical to the sequential parse.
    """

    def __init__(self, filename: str, text: str, base: Position):
        self.filename = filename
        self.text = text
        self.base = base
        self._inner = SourceFile(filename, text)

    def position_at(self, offset: int) -> Position:
        """Absolute position of slice-relative ``offset``."""
        rel = self._inner.position_at(offset)
        if rel.line == 1:
            # Still on the window's first line: columns shift by the
            # base column (both are 1-based).
            return Position(
                line=self.base.line,
                column=self.base.column + rel.column - 1,
                offset=self.base.offset + offset,
            )
        return Position(
            line=self.base.line + rel.line - 1,
            column=rel.column,
            offset=self.base.offset + offset,
        )
