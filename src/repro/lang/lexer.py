"""Hand-written lexer for the W2-like Warp source language.

Comments run from ``--`` to end of line.  Identifiers are ASCII letters,
digits and underscores, starting with a letter or underscore.  Numbers are
decimal; a number containing ``.`` or an exponent is a float literal.
"""

from __future__ import annotations

from typing import Iterator, List

from .diagnostics import DiagnosticSink
from .source import SourceFile, Span
from .tokens import (
    KEYWORDS,
    MULTI_CHAR_OPERATORS,
    SINGLE_CHAR_OPERATORS,
    Token,
    TokenKind,
)


class Lexer:
    """Converts a :class:`SourceFile` into a token stream."""

    def __init__(self, source: SourceFile, sink: DiagnosticSink):
        self._source = source
        self._text = source.text
        self._sink = sink
        self._pos = 0

    def tokens(self) -> List[Token]:
        """Lex the whole file, ending with exactly one EOF token."""
        result = list(self._iter_tokens())
        result.append(self._make_token(TokenKind.EOF, self._pos, self._pos))
        return result

    def _iter_tokens(self) -> Iterator[Token]:
        while True:
            self._skip_trivia()
            if self._pos >= len(self._text):
                return
            start = self._pos
            ch = self._text[start]
            if ch.isalpha() or ch == "_":
                yield self._lex_word(start)
            elif ch.isdigit():
                yield self._lex_number(start)
            else:
                token = self._lex_operator(start)
                if token is not None:
                    yield token

    def _skip_trivia(self) -> None:
        """Advance past whitespace and ``--`` comments."""
        text = self._text
        while self._pos < len(text):
            ch = text[self._pos]
            if ch in " \t\r\n":
                self._pos += 1
            elif text.startswith("--", self._pos):
                newline = text.find("\n", self._pos)
                self._pos = len(text) if newline < 0 else newline + 1
            else:
                return

    def _lex_word(self, start: int) -> Token:
        text = self._text
        end = start
        while end < len(text) and (text[end].isalnum() or text[end] == "_"):
            end += 1
        self._pos = end
        word = text[start:end]
        kind = KEYWORDS.get(word, TokenKind.IDENT)
        value = word if kind is TokenKind.IDENT else None
        return self._make_token(kind, start, end, value)

    def _lex_number(self, start: int) -> Token:
        text = self._text
        end = start
        while end < len(text) and text[end].isdigit():
            end += 1
        is_float = False
        # A '.' starts a fraction only if not the '..' range operator.
        if end < len(text) and text[end] == "." and not text.startswith("..", end):
            is_float = True
            end += 1
            while end < len(text) and text[end].isdigit():
                end += 1
        if end < len(text) and text[end] in "eE":
            exp_end = end + 1
            if exp_end < len(text) and text[exp_end] in "+-":
                exp_end += 1
            if exp_end < len(text) and text[exp_end].isdigit():
                is_float = True
                end = exp_end
                while end < len(text) and text[end].isdigit():
                    end += 1
        self._pos = end
        lexeme = text[start:end]
        if is_float:
            return self._make_token(TokenKind.FLOAT_LIT, start, end, float(lexeme))
        return self._make_token(TokenKind.INT_LIT, start, end, int(lexeme))

    def _lex_operator(self, start: int):
        text = self._text
        for lexeme, kind in MULTI_CHAR_OPERATORS:
            if text.startswith(lexeme, start):
                self._pos = start + len(lexeme)
                return self._make_token(kind, start, self._pos)
        ch = text[start]
        kind = SINGLE_CHAR_OPERATORS.get(ch)
        self._pos = start + 1
        if kind is None:
            span = self._span(start, self._pos)
            self._sink.error(f"unexpected character {ch!r}", span)
            return None
        return self._make_token(kind, start, self._pos)

    def _span(self, start: int, end: int) -> Span:
        return Span(
            self._source.filename,
            self._source.position_at(start),
            self._source.position_at(end),
        )

    def _make_token(self, kind: TokenKind, start: int, end: int, value=None) -> Token:
        return Token(kind, self._text[start:end], self._span(start, end), value)


def tokenize(source: SourceFile, sink: DiagnosticSink) -> List[Token]:
    """Convenience wrapper: lex ``source``, reporting problems to ``sink``."""
    return Lexer(source, sink).tokens()
