"""Execution backends for the parallel compiler.

A backend answers one question: given N independent function-master
tasks, run them and return their results.  The paper's host was an
Ethernet network of diskless SUN workstations reached through UNIX
heavyweight processes; ours are local OS processes
(:class:`repro.parallel.local.ProcessPoolBackend`), an in-process serial
executor for tests, or the discrete-event cluster simulator for timing
studies (:mod:`repro.cluster`).

Backends come in two flavours: the original barrier API
(:meth:`ExecutionBackend.run_tasks`, all results at once) and the
streaming API (:meth:`ExecutionBackend.run_tasks_streaming`, results
yielded as function masters finish).  The driver always consumes through
:func:`stream_task_results`, which adapts barrier-only backends, so
section masters can recombine results while slower functions are still
compiling.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Protocol

from ..driver.function_master import FunctionTask, FunctionTaskResult


class ExecutionBackend(Protocol):
    """Runs function-master tasks; order of results is unspecified."""

    def run_tasks(self, tasks: List[FunctionTask]) -> List[FunctionTaskResult]:
        ...  # pragma: no cover - protocol

    def run_tasks_streaming(
        self, tasks: List[FunctionTask]
    ) -> Iterator[FunctionTaskResult]:
        """Yield results as they complete (optional; see
        :func:`stream_task_results` for the barrier fallback)."""
        ...  # pragma: no cover - protocol

    @property
    def worker_count(self) -> int:
        """Workers the backend was configured with."""
        ...  # pragma: no cover - protocol

    @property
    def effective_worker_count(self) -> int:
        """Workers that could actually run concurrently in the most
        recent ``run_tasks`` call (a pool of 8 given 3 tasks used 3) —
        the denominator speedup/efficiency metrics must divide by."""
        ...  # pragma: no cover - protocol


def stream_task_results(
    backend, tasks: List[FunctionTask]
) -> Iterator[FunctionTaskResult]:
    """Stream results from any backend.

    Uses the backend's ``run_tasks_streaming`` when it has one; otherwise
    falls back to the barrier API and yields its results in order.  This
    is the one place the driver touches a backend's task-running surface.
    """
    runner = getattr(backend, "run_tasks_streaming", None)
    if runner is not None:
        yield from runner(tasks)
    else:
        yield from backend.run_tasks(tasks)


def drain(results: Iterable[FunctionTaskResult]) -> List[FunctionTaskResult]:
    """Collect a result stream into a list (barrier on top of streaming)."""
    return list(results)
