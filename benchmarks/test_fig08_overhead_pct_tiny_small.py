"""Figure 8: overheads as a percentage of total time, f_tiny and f_small.

Paper: "For f_tiny, the overhead contributes up to 70% of the parallel
elapsed time.  The system overhead is almost as big as the total
overhead.  For f_small the overhead is less than for f_tiny but still
substantial."
"""

from figures_common import relative_overhead_figure, write_figure
from repro.workloads.sizes import FUNCTION_COUNTS


def test_fig08_overhead_tiny_small(benchmark, results_dir):
    fig = benchmark(relative_overhead_figure, ["tiny", "small"], "Figure 8")
    write_figure(results_dir, fig)

    tiny_total = fig.series_named("rel. total overhead f_tiny")
    tiny_system = fig.series_named("rel. system overhead f_tiny")
    small_total = fig.series_named("rel. total overhead f_small")

    # Tiny overhead dominates: at least 70% for n >= 2.
    for n in (2, 4, 8):
        assert tiny_total.points[n] >= 70.0
    # System overhead is "almost as big as the total overhead" at scale.
    assert tiny_system.points[8] >= 0.8 * tiny_total.points[8]
    # Small's overhead is lower than tiny's but still substantial.
    for n in FUNCTION_COUNTS:
        assert small_total.points[n] < tiny_total.points[n]
    assert small_total.points[8] >= 20.0
    # Relative overhead increases with the number of functions (§4.2.3).
    for series in (tiny_total, small_total):
        values = [series.points[n] for n in FUNCTION_COUNTS]
        assert values == sorted(values)
