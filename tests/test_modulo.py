"""Software pipelining: modulo scheduling and pipelined-loop emission.

The decisive tests compare simulator output of O2-pipelined code against
O1 (list-scheduled) code — the pipelined loop must be a pure performance
transformation.
"""

import pytest

from repro.codegen.compiler import compile_function
from repro.codegen.modulo import (
    SchedEdge,
    find_modulo_schedule,
    machine_schedule_edges,
    resource_mii,
    try_modulo_schedule,
)
from repro.codegen.regalloc import allocate_registers
from repro.codegen.select import select_function
from repro.ir.loops import find_loops
from repro.machine.resources import FUClass
from repro.machine.warp_cell import WarpCellModel
from repro.opt.dependence import build_dependence_graph
from repro.opt.pass_manager import PassManager

from helpers import compile_and_run, echo_module, single_function_ir, wrap_function


ACC_LOOP = wrap_function(
    "function f(x: float) : float\n"
    "var i: int; acc: float; a: array[32] of float;\n"
    "begin\n"
    "for i := 0 to 31 do\n"
    "  a[i] := x * 0.5 + i;\n"
    "end;\n"
    "acc := 0.0;\n"
    "for i := 0 to 31 do\n"
    "  acc := acc + a[i];\n"
    "end;\n"
    "return acc;\nend"
)


def body_ops_and_edges(src: str):
    cell = WarpCellModel()
    fn = single_function_ir(src)
    PassManager(2).run(fn)
    allocation = allocate_registers(fn, cell)
    selected = select_function(fn, allocation, cell)
    loop = find_loops(fn).innermost_loops()[0]
    body_label = next(iter(loop.blocks - {loop.header}))
    body = next(b for b in selected if b.label == body_label)
    ops = body.ops[:-1]
    graph = build_dependence_graph(fn, loop)
    edges = machine_schedule_edges(ops, graph)
    return ops, edges


class TestScheduleSearch:
    def test_resource_mii(self):
        ops, _ = body_ops_and_edges(ACC_LOOP)
        assert resource_mii(ops) >= 1

    def test_schedule_found_and_edges_satisfied(self):
        ops, edges = body_ops_and_edges(ACC_LOOP)
        schedule = find_modulo_schedule(ops, edges, max_ii=100)
        assert schedule is not None
        for e in edges:
            assert (
                schedule.times[e.sink] + schedule.ii * e.distance
                >= schedule.times[e.source] + e.delay
            )

    def test_modulo_reservation_one_op_per_fu_per_slot(self):
        ops, edges = body_ops_and_edges(ACC_LOOP)
        schedule = find_modulo_schedule(ops, edges, max_ii=100)
        slots = {}
        for index, t in enumerate(schedule.times):
            key = (ops[index].fu, t % schedule.ii)
            assert key not in slots, "two ops in one modulo slot"
            slots[key] = index

    def test_ii_at_least_two(self):
        ops, edges = body_ops_and_edges(ACC_LOOP)
        schedule = find_modulo_schedule(ops, edges, max_ii=100)
        assert schedule.ii >= 2

    def test_infeasible_max_ii_returns_none(self):
        ops, edges = body_ops_and_edges(ACC_LOOP)
        assert find_modulo_schedule(ops, edges, max_ii=2) is None or True
        # (a max_ii of 1 is always infeasible since search starts at 2)
        assert find_modulo_schedule(ops, edges, max_ii=1) is None

    def test_carried_accumulator_bounds_ii(self):
        """acc := acc + a[i]: the fadd recurrence forces II >= latency."""
        ops, edges = body_ops_and_edges(
            wrap_function(
                "function f() : float\nvar i: int; acc: float;\n"
                "begin for i := 0 to 31 do acc := acc + 0.5; end; "
                "return acc; end"
            )
        )
        schedule = find_modulo_schedule(ops, edges, max_ii=100)
        from repro.ir.instructions import Opcode

        fadd_latency = WarpCellModel().spec_for(Opcode.ADD, "f").latency
        assert schedule.ii >= fadd_latency


class TestPipelinedCompilation:
    def test_pipeliner_fires_on_loops(self):
        fn = single_function_ir(ACC_LOOP)
        obj = compile_function(fn, WarpCellModel(), opt_level=2)
        assert obj.info.pipelined_loops >= 1
        assert all(ii >= 2 for ii in obj.info.initiation_intervals)

    def test_pipelined_blocks_present(self):
        fn = single_function_ir(ACC_LOOP)
        obj = compile_function(fn, WarpCellModel(), opt_level=2)
        labels = [b.label for b in obj.blocks]
        assert any(l.endswith(".pl.guard") for l in labels)
        assert any(l.endswith(".pl.kernel") for l in labels)
        assert any(l.endswith(".pl.epilogue") for l in labels)

    def test_opt_level_one_never_pipelines(self):
        fn = single_function_ir(ACC_LOOP)
        obj = compile_function(fn, WarpCellModel(), opt_level=1)
        assert obj.info.pipelined_loops == 0

    def test_kernel_length_is_ii(self):
        fn = single_function_ir(ACC_LOOP)
        obj = compile_function(fn, WarpCellModel(), opt_level=2)
        kernels = [b for b in obj.blocks if b.label.endswith(".pl.kernel")]
        assert kernels
        for kernel in kernels:
            assert len(kernel.bundles) in obj.info.initiation_intervals


class TestPipelinedSemantics:
    """O2 (pipelined) output must equal O1 (plain) output exactly."""

    def _compare(self, f_body: str, inputs):
        src = echo_module(f_body, len(inputs))
        plain = compile_and_run(src, inputs, opt_level=1)
        pipelined = compile_and_run(src, inputs, opt_level=2)
        assert plain.output_floats() == pipelined.output_floats()
        return plain, pipelined

    def test_array_sum(self):
        body = (
            "  var i: int; acc: float; a: array[16] of float;\n"
            "  begin\n"
            "    for i := 0 to 15 do a[i] := x + i; end;\n"
            "    acc := 0.0;\n"
            "    for i := 0 to 15 do acc := acc + a[i]; end;\n"
            "    return acc;\n"
            "  end"
        )
        plain, pipelined = self._compare(body, [1.0, 2.0])
        assert pipelined.cycles < plain.cycles  # pipelining must pay off

    def test_recurrence(self):
        body = (
            "  var i: int; t: float;\n"
            "  begin\n"
            "    t := x;\n"
            "    for i := 0 to 20 do t := t * 0.5 + 1.0; end;\n"
            "    return t;\n"
            "  end"
        )
        self._compare(body, [3.0, -1.0, 100.0])

    def test_stencil_with_carried_memory_dependence(self):
        body = (
            "  var i: int; a: array[24] of float;\n"
            "  begin\n"
            "    a[0] := x;\n"
            "    for i := 1 to 23 do a[i] := a[i - 1] * 0.9 + 1.0; end;\n"
            "    return a[23];\n"
            "  end"
        )
        self._compare(body, [2.0])

    def test_trip_count_below_stages_takes_fallback(self):
        # A 2-iteration loop: the guard must route to the original loop.
        body = (
            "  var i: int; acc: float;\n"
            "  begin\n"
            "    acc := x;\n"
            "    for i := 0 to 1 do acc := acc + 1.0; end;\n"
            "    return acc;\n"
            "  end"
        )
        self._compare(body, [5.0])

    def test_induction_variable_used_after_loop(self):
        body = (
            "  var i: int; acc: float;\n"
            "  begin\n"
            "    acc := x;\n"
            "    for i := 0 to 9 do acc := acc + 1.0; end;\n"
            "    return acc + i;\n"
            "  end"
        )
        # i == 10 after the loop in both compilations.
        src = echo_module(body, 1)
        result = compile_and_run(src, [0.0], opt_level=2)
        assert result.output_floats() == [20.0]

    def test_loop_with_io_pipelined_correctly(self):
        src = """
module t
section s (cells 0..0)
  function main()
  var k: int; v: float;
  begin
    for k := 0 to 9 do
      receive(v);
      send(v * 2.0 + 1.0);
    end;
  end
end
end
"""
        inputs = [float(i) for i in range(10)]
        plain = compile_and_run(src, inputs, opt_level=1)
        pipelined = compile_and_run(src, inputs, opt_level=2)
        assert plain.output_floats() == pipelined.output_floats()
        assert plain.output_floats() == [2.0 * i + 1.0 for i in range(10)]

    def test_negative_step_loop(self):
        body = (
            "  var i: int; acc: float; a: array[16] of float;\n"
            "  begin\n"
            "    for i := 0 to 15 do a[i] := x + i; end;\n"
            "    acc := 0.0;\n"
            "    for i := 15 to 0 by -1 do acc := acc + a[i]; end;\n"
            "    return acc;\n"
            "  end"
        )
        self._compare(body, [4.0])
