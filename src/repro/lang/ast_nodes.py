"""Abstract syntax tree for the W2-like Warp source language.

The tree mirrors the paper's program structure (§3.1, Figure 1):

    Module
      Section (a group of Warp cells)
        Function
          declarations + statements

Sections execute independently on disjoint groups of processing elements;
functions within a section may call one another.  This structure is what
the parallel compiler partitions along.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .source import Span
from .types import Type

# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass
class Expr:
    """Base class; ``type`` is filled in by semantic analysis."""

    span: Span
    type: Optional[Type] = field(default=None, init=False, compare=False)


@dataclass
class IntLiteral(Expr):
    value: int = 0


@dataclass
class FloatLiteral(Expr):
    value: float = 0.0


@dataclass
class VarRef(Expr):
    name: str = ""


@dataclass
class IndexExpr(Expr):
    base: Optional[Expr] = None
    index: Optional[Expr] = None


@dataclass
class UnaryExpr(Expr):
    op: str = ""  # '-' or 'not'
    operand: Optional[Expr] = None


@dataclass
class BinaryExpr(Expr):
    op: str = ""  # + - * / % = <> < <= > >= and or
    left: Optional[Expr] = None
    right: Optional[Expr] = None


@dataclass
class CallExpr(Expr):
    callee: str = ""
    args: List[Expr] = field(default_factory=list)


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


@dataclass
class Stmt:
    span: Span


@dataclass
class AssignStmt(Stmt):
    target: Optional[Expr] = None  # VarRef or IndexExpr
    value: Optional[Expr] = None


@dataclass
class IfStmt(Stmt):
    condition: Optional[Expr] = None
    then_body: List[Stmt] = field(default_factory=list)
    else_body: List[Stmt] = field(default_factory=list)


@dataclass
class ForStmt(Stmt):
    """Counted loop ``for i := lo to hi by step do ... end`` (step defaults 1)."""

    var: str = ""
    low: Optional[Expr] = None
    high: Optional[Expr] = None
    step: Optional[Expr] = None
    body: List[Stmt] = field(default_factory=list)


@dataclass
class WhileStmt(Stmt):
    condition: Optional[Expr] = None
    body: List[Stmt] = field(default_factory=list)


@dataclass
class ReturnStmt(Stmt):
    value: Optional[Expr] = None


@dataclass
class SendStmt(Stmt):
    """Enqueue a scalar onto the cell's output queue (systolic I/O)."""

    value: Optional[Expr] = None


@dataclass
class ReceiveStmt(Stmt):
    """Dequeue a scalar from the cell's input queue into an lvalue."""

    target: Optional[Expr] = None


@dataclass
class CallStmt(Stmt):
    call: Optional[CallExpr] = None


# --------------------------------------------------------------------------
# Declarations and program structure
# --------------------------------------------------------------------------


@dataclass
class VarDecl:
    name: str
    type: Type
    span: Span


@dataclass
class Param:
    name: str
    type: Type
    span: Span


@dataclass
class Function:
    name: str
    params: List[Param]
    return_type: Type  # VOID when no return value declared
    locals: List[VarDecl]
    body: List[Stmt]
    span: Span

    def line_count(self) -> int:
        """Source lines covered by this function (the paper's LOC metric)."""
        return self.span.end.line - self.span.start.line + 1


@dataclass
class Section:
    """A section program: the code for one group of Warp cells."""

    name: str
    first_cell: int
    last_cell: int
    functions: List[Function]
    span: Span

    @property
    def cell_count(self) -> int:
        return self.last_cell - self.first_cell + 1

    def function_named(self, name: str) -> Optional[Function]:
        for fn in self.functions:
            if fn.name == name:
                return fn
        return None


@dataclass
class Module:
    """A complete Warp program: the unit of (parallel) compilation."""

    name: str
    sections: List[Section]
    span: Span

    def section_named(self, name: str) -> Optional[Section]:
        for section in self.sections:
            if section.name == name:
                return section
        return None

    def all_functions(self):
        """Yield ``(section, function)`` pairs in source order."""
        for section in self.sections:
            for fn in section.functions:
                yield section, fn

    def function_count(self) -> int:
        return sum(len(s.functions) for s in self.sections)
