"""Measurement machinery: speedup, overheads, figure series."""

from .experiments import (
    MeasuredPair,
    measure_pair,
    measure_user_program,
    profile_for,
    user_program_profile,
)
from .gantt import render_gantt, utilization
from .job_gantt import (
    JobSpan,
    assign_slots,
    render_job_gantt,
    slot_utilization,
)
from .overhead import OverheadBreakdown, compute_overhead
from .series import Figure, Series
from .speedup import Speedup, efficiency, speedup_of

__all__ = [
    "Figure",
    "JobSpan",
    "MeasuredPair",
    "OverheadBreakdown",
    "Series",
    "Speedup",
    "assign_slots",
    "compute_overhead",
    "efficiency",
    "measure_pair",
    "measure_user_program",
    "profile_for",
    "render_gantt",
    "render_job_gantt",
    "slot_utilization",
    "speedup_of",
    "user_program_profile",
    "utilization",
]
