"""Fourth cache tier: measured variant scores (the search's memory).

Variant search is compile-bound *and* simulate-bound: every candidate
config costs a phase-2/3 compile (amortized by the artifact cache) plus
a warpsim run over the scoring inputs.  This tier memoizes the second
half.  A score is keyed by

- the **variant salt** — compiler version, artifact-cache schema, and
  the warpsim :data:`~repro.warpsim.scoring.SCORING_SCHEMA_VERSION`, so
  a timing-model change invalidates every cached score rather than
  silently flipping winners;
- the **function fingerprint** at the *reference* config — identifying
  the function body and its placement, not the knobs;
- the **config key** (``o2u64i1``-style) being measured;
- the **input-set digest** of the scoring inputs.

The stored :class:`VariantScore` records the summed simulated cycles,
the observed outputs (so a cached score still participates in the
semantic check against the baseline), and the error classification for
variants that failed to simulate.

Scores are measured with the candidate swapped into the *baseline*
module; the key does not capture the other functions' code.  That is an
approximation the search compensates for: the final winner module is
always re-simulated end-to-end before shipping, so a stale or even
poisoned score can cost a wasted measurement, never a wrong or slower
module.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional, Tuple, Union

from .fingerprint import compiler_salt
from .store import PickleStore

Number = Union[int, float]


def variant_salt() -> str:
    """Everything global that can change a variant's measured score."""
    from ..warpsim.scoring import SCORING_SCHEMA_VERSION

    return f"{compiler_salt()}+sim{SCORING_SCHEMA_VERSION}"


def variant_key(
    base_fingerprint: str, config_key: str, input_digest: str
) -> str:
    """Content key for one (function, config, input set) measurement."""
    h = hashlib.sha256()
    for part in (variant_salt(), base_fingerprint, config_key, input_digest):
        h.update(part.encode("utf-8"))
        h.update(b"\x1f")
    return h.hexdigest()


@dataclass
class VariantScore:
    """One measured variant: cycles + outputs, or a classified failure."""

    config_key: str
    cycles: Optional[int]
    outputs: Optional[Tuple[Tuple[Number, ...], ...]]
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None and self.cycles is not None


class VariantStore(PickleStore):
    """Persistent store of variant scores (``variants/`` tier)."""

    SUBDIR = "variants"
    PAYLOAD_TYPE = VariantScore

    def get(self, fingerprint: str) -> Optional[VariantScore]:
        """The cached score, or None (miss)."""
        return super().get(fingerprint)
