"""Cluster simulation: compile timelines on the workstation network.

Given a module's :class:`WorkProfile` (deterministic work counts from a
real compilation) and an :class:`Assignment`, replays the compilation on
the simulated network:

- **sequential**: one Lisp process on one workstation, heap growing as it
  compiles function after function;
- **parallel**: master parse + scheduling, section masters, and one Lisp
  function master per function queued FIFO on its assigned workstation,
  with every core-image download and result transfer contending for the
  Ethernet and the file server.

The output is a :class:`TimingReport` with the elapsed time, per-machine
CPU time, and the implementation-overhead components the paper's §4.2.3
decomposition needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..driver.results import FunctionReport, WorkProfile
from ..parallel.schedule import Assignment
from .costs import CostModel, default_cost_model
from .events import Simulator
from .fileserver import FileServer
from .network import SharedResource, ethernet_efficiency
from .workstation import MachinePool

HOME = "home"


@dataclass
class CompileSpan:
    """When one function's compilation ran, and where."""

    section_name: str
    function_name: str
    machine: str
    start: float
    compute_start: float  # after startup (download + init + re-parse)
    end: float

    @property
    def startup_seconds(self) -> float:
        return self.compute_start - self.start


@dataclass
class TimingReport:
    """Result of one simulated compilation."""

    elapsed: float
    cpu_busy: Dict[str, float] = field(default_factory=dict)
    spans: List[CompileSpan] = field(default_factory=list)
    # Implementation-overhead components (paper §4.2.3):
    master_cpu: float = 0.0  # master setup + scheduling (C process work)
    section_cpu: float = 0.0  # section masters' CPU
    parse_once_cpu: float = 0.0  # one extra parse of the whole program
    assembly_cpu: float = 0.0

    @property
    def max_cpu(self) -> float:
        """CPU time of the busiest processor (the paper's per-processor
        CPU-time presentation)."""
        return max(self.cpu_busy.values(), default=0.0)

    @property
    def implementation_overhead(self) -> float:
        return self.master_cpu + self.section_cpu + self.parse_once_cpu


class ClusterSimulation:
    """Prices work profiles onto the simulated workstation network."""

    def __init__(self, costs: Optional[CostModel] = None):
        self.costs = costs or default_cost_model()

    # ------------------------------------------------------------------
    # Sequential compiler
    # ------------------------------------------------------------------

    def run_sequential(self, profile: WorkProfile) -> TimingReport:
        """One Lisp process, one workstation, uncontended network."""
        c = self.costs
        transfer = lambda words: words / c.server_rate + words / c.network_rate

        elapsed = 0.0
        cpu = 0.0
        spans: List[CompileSpan] = []

        elapsed += transfer(c.lisp_core_words)  # download the compiler
        cpu_step = c.lisp_init_sec
        cpu += cpu_step
        elapsed += cpu_step

        parse_heap = c.lisp_base_memory + c.parse_heap(profile)
        parse_cost = c.parse_seconds(profile) * c.slowdown(parse_heap)
        cpu += parse_cost
        elapsed += parse_cost

        for index, report in enumerate(profile.functions):
            heap = c.sequential_heap(profile, index)
            start = elapsed
            raw_seconds = c.compile_seconds(report)
            compile_cost = raw_seconds * c.slowdown(heap)
            cpu += compile_cost
            elapsed += compile_cost
            # Swap traffic pages over the (idle) network and file server.
            elapsed += transfer(c.paging_words(heap, raw_seconds))
            spans.append(
                CompileSpan(
                    section_name=report.section_name,
                    function_name=report.name,
                    machine=HOME,
                    start=start,
                    compute_start=start,
                    end=elapsed,
                )
            )

        assembly = c.assembly_seconds(profile)
        cpu += assembly
        elapsed += assembly
        elapsed += transfer(profile.download_words)

        return TimingReport(
            elapsed=elapsed,
            cpu_busy={HOME: cpu},
            spans=spans,
            assembly_cpu=assembly,
        )

    # ------------------------------------------------------------------
    # Parallel compiler
    # ------------------------------------------------------------------

    def run_parallel(
        self,
        profile: WorkProfile,
        assignment: Optional[Assignment] = None,
        processors: Optional[int] = None,
        machine_speeds: Optional[List[float]] = None,
    ) -> TimingReport:
        """Master / section masters / function masters on the network.

        With an ``assignment``, each machine works through its statically
        assigned task list.  Without one, dispatch is the paper's actual
        strategy — "a simple first-come-first-served strategy that
        distributes the tasks over the available processors" (§3.3): a
        machine takes the next pending function the moment it frees up,
        which self-balances even on machines slowed by their owners
        (``machine_speeds``).
        """
        c = self.costs
        if assignment is None and processors is None:
            raise ValueError("need an assignment or a processor count")
        worker_count = (
            assignment.processors if assignment is not None else processors
        )
        sim = Simulator()
        network = SharedResource(
            sim, "ethernet", c.network_rate,
            efficiency=ethernet_efficiency(c.ethernet_alpha),
        )
        server = FileServer(sim, c.server_rate)
        machine_names = [HOME] + [f"ws{m}" for m in range(worker_count)]
        speeds = {}
        if machine_speeds is not None:
            if len(machine_speeds) != worker_count:
                raise ValueError(
                    f"{worker_count} machines but "
                    f"{len(machine_speeds)} speed factors"
                )
            speeds = {
                f"ws{m}": machine_speeds[m] for m in range(worker_count)
            }
        pool = MachinePool(sim, machine_names, speeds=speeds)
        report = TimingReport(elapsed=0.0)

        functions = profile.functions
        sections: Dict[str, List[int]] = {}
        for index, fn in enumerate(functions):
            sections.setdefault(fn.section_name, []).append(index)

        # Task dispatch: static per-machine FIFO queues from the
        # assignment, or one shared FCFS queue in dynamic mode.
        if assignment is not None:
            queues: Dict[str, List[int]] = {
                f"ws{m}": list(tasks)
                for m, tasks in enumerate(assignment.per_machine)
            }
        else:
            shared: List[int] = list(range(len(functions)))
            queues = {f"ws{m}": shared for m in range(worker_count)}

        section_remaining = {name: len(idxs) for name, idxs in sections.items()}
        sections_remaining = [len(sections)]
        done_time = [0.0]

        def transfer(words: float, then: Callable[[], None]) -> None:
            server.request(words, lambda: network.submit(words, then))

        # --- function master chain -------------------------------------
        def start_task(machine_name: str, queue: List[int]) -> None:
            if not queue:
                return
            index = queue.pop(0)
            fn = functions[index]
            machine = pool[machine_name]
            span = CompileSpan(
                section_name=fn.section_name,
                function_name=fn.name,
                machine=machine_name,
                start=sim.now,
                compute_start=0.0,
                end=0.0,
            )
            report.spans.append(span)

            def after_download():
                machine.run_cpu(c.lisp_init_sec, after_init)

            def after_init():
                heap = c.lisp_base_memory + c.parse_heap(profile)
                reparse = c.parse_seconds(profile) * c.slowdown(heap)
                machine.run_cpu(reparse, after_reparse)

            def after_reparse():
                span.compute_start = sim.now
                heap = c.function_master_heap(profile, fn)
                compile_cost = c.compile_seconds(fn) * c.slowdown(heap)
                machine.run_cpu(compile_cost, after_compile)

            def after_compile():
                # Swap traffic of this compile contends with every other
                # function master on the shared Ethernet + file server.
                heap = c.function_master_heap(profile, fn)
                paging = c.paging_words(heap, c.compile_seconds(fn))
                transfer(paging, after_paging)

            def after_paging():
                transfer(c.object_words(fn), after_ship)

            def after_ship():
                span.end = sim.now
                function_done(fn.section_name)
                start_task(machine_name, queue)

            transfer(c.lisp_core_words, after_download)

        # --- section masters --------------------------------------------
        def function_done(section_name: str) -> None:
            section_remaining[section_name] -= 1
            if section_remaining[section_name] == 0:
                run_section_combine(section_name)

        def run_section_combine(section_name: str) -> None:
            home = pool[HOME]
            indices = sections[section_name]
            result_words = sum(c.object_words(functions[i]) for i in indices)
            combine_units = sum(functions[i].bundles for i in indices) + len(
                indices
            )
            combine_cpu = combine_units / c.combine_rate

            def after_read():
                report.section_cpu += combine_cpu
                home.run_cpu(combine_cpu, section_finished)

            def section_finished():
                sections_remaining[0] -= 1
                if sections_remaining[0] == 0:
                    run_phase4()

            transfer(result_words, after_read)

        # --- master: phase 4 tail ------------------------------------------
        def run_phase4() -> None:
            home = pool[HOME]
            assembly = c.assembly_seconds(profile)
            report.assembly_cpu = assembly

            def after_assembly():
                transfer(profile.download_words, finish)

            def finish():
                done_time[0] = sim.now

            home.run_cpu(assembly, after_assembly)

        # --- master: startup, parse, scheduling ------------------------------
        def master() -> None:
            home = pool[HOME]

            def after_c_start():
                transfer(c.lisp_core_words, after_master_download)

            def after_master_download():
                home.run_cpu(c.lisp_init_sec, after_master_init)

            def after_master_init():
                heap = c.lisp_base_memory + c.parse_heap(profile)
                parse_cost = c.parse_seconds(profile) * c.slowdown(heap)
                report.parse_once_cpu = parse_cost + c.lisp_init_sec
                home.run_cpu(parse_cost, after_parse)

            def after_parse():
                schedule_cost = (
                    c.master_schedule_sec_per_task * len(functions)
                )
                report.master_cpu += c.c_process_start_sec + schedule_cost
                home.run_cpu(schedule_cost, launch_sections)

            def launch_sections():
                for _section in sections:
                    report.section_cpu += (
                        c.c_process_start_sec + c.section_start_sec
                    )
                start_delay = c.c_process_start_sec + c.section_start_sec
                home.cpu_busy += start_delay * len(sections)

                def release():
                    for machine_name, queue in queues.items():
                        start_task(machine_name, queue)

                sim.schedule(start_delay, release)

            home.run_cpu(c.c_process_start_sec, after_c_start)

        master()
        sim.run()

        report.elapsed = done_time[0]
        report.cpu_busy = pool.busy_times()
        return report
