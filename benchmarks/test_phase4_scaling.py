"""Phase-4 scaling benchmarks: parallel back end + link/module cache.

Three legs, guarding three different claims:

1. **Scaling** — the deterministic work-unit model.  Parallel phase 4's
   critical path (LPT-scheduled per-section link jobs plus the
   sequential download tail,
   :func:`~repro.driver.phases.phase4_critical_path_work`) must shrink
   at least 2x from 1 to 4 jobs on an unbalanced multi-section module.
   Wall clock at each job count is *recorded* but never asserted:
   CPython's GIL serializes a thread-pool link regardless of core
   count, so the machine-independent critical path is the honest
   scaling measure.

2. **Katseff baseline** — the paper's own point of comparison (§4.2.2).
   Katseff parallelized *assembly only* by data partitioning, leaving
   fixup (and in our pipeline: linking and download) sequential.  Our
   distributed assembly moves the same work onto the phase-2/3 function
   masters, so the back end's remaining critical path must beat the
   Katseff-style total (partitioned assembly + sequential link tail)
   at every worker count.

3. **Incremental warm edit** — real wall clock.  With a warm link
   cache, a 1-function edit re-links exactly one section and serves
   the rest from disk; that must beat re-linking everything, measured
   as paired rounds with the same drift-cancelling median as the other
   cache benchmarks.

Timings land in ``benchmarks/out/BENCH_phase4.json`` — the trajectory
point CI archives beside the other bench artifacts.
"""

import json
import platform
import statistics
import time

from repro.asmlink.parallel_assembler import assemble_parallel
from repro.cache import LinkCache
from repro.driver.function_master import FunctionTask, run_compile_task
from repro.driver.phases import (
    Phase4Stats,
    phase1_parse_and_check,
    phase4_critical_path_work,
    phase4_link_and_download,
    phase4_parallel,
)
from repro.driver.section_master import combine_section_results
from repro.machine.warp_array import WarpArrayModel
from repro.workloads.kernels import synthetic_function
from repro.workloads.sizes import lines_for

# Unequal sections (the LPT schedule has to pair them up for its
# speedup) but no single dominator: a section whose link work exceeds
# a quarter of the total would cap the 4-job critical path below 2x
# no matter how the rest is scheduled.
SECTION_SIZES = [
    "medium", "small", "medium", "small", "medium", "small", "medium",
    "small",
]
ARRAY = WarpArrayModel(cell_count=10)


def multi_section_program():
    """One section per entry of SECTION_SIZES, one cell each.

    ``synthetic_program`` emits a single section by design (the paper's
    S_n programs); phase 4 parallelizes *across* sections, so the bench
    needs a hand-built multi-section module.
    """
    parts = ["module bench_p4"]
    for index, size in enumerate(SECTION_SIZES):
        parts.append(f"section sec{index} (cells {index}..{index})")
        for fn in range(2):
            parts.append(
                synthetic_function(f"s{index}_f{fn}", lines_for(size))
            )
        parts.append("end")
    parts.append("end")
    return "\n".join(parts)


SOURCE = multi_section_program()
EDITED = SOURCE.replace("t := a[i] * b[j] + t * 0.9987;",
                        "t := a[i] * b[j] + t * 0.9987 + 0.0001;", 1)


def _combined_for(source):
    """Phases 1-3 once — the recombined input phase 4 consumes."""
    parsed = phase1_parse_and_check(source)
    combined = {}
    for section in parsed.module.sections:
        results = run_compile_task(
            FunctionTask(source, "<bench>", section.name, None)
        )
        combined[section.name] = combine_section_results(section, results)
    return parsed, combined


def _objects(combined):
    return {name: sec.objects for name, sec in combined.items()}


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_phase4_critical_path_scales(results_dir):
    parsed, combined = _combined_for(SOURCE)
    stats = Phase4Stats()
    module, _, _ = phase4_parallel(
        parsed, combined, ARRAY, jobs=1, stats=stats
    )
    assert stats.mode == "parallel"
    assert len(stats.section_link_work) == len(SECTION_SIZES)

    critical = {
        jobs: phase4_critical_path_work(stats, jobs) for jobs in (1, 2, 4, 8)
    }
    speedups = {jobs: critical[1] / critical[jobs] for jobs in critical}

    # Katseff baseline: partitioned assembly, then everything else
    # sequential.  Our back end (assembly already absorbed upstream,
    # links LPT-scheduled) must beat that total at every worker count.
    all_objects = [
        obj for section in parsed.module.sections
        for obj in combined[section.name].objects
    ]
    sequential_link_tail = stats.tail_work + sum(stats.section_link_work)
    katseff = {}
    for workers in (1, 2, 4, 8):
        baseline = assemble_parallel(all_objects, workers)
        katseff[workers] = (
            baseline.critical_path_work + sequential_link_tail
        )
        assert critical[workers] < katseff[workers], (
            f"{workers} workers: ours {critical[workers]} vs "
            f"Katseff-style {katseff[workers]}"
        )

    # Informational wall clock (GIL-bound; never asserted).
    sequential_wall = _timed(
        lambda: phase4_link_and_download(parsed, _objects(combined), ARRAY)
    )
    walls = {
        jobs: _timed(
            lambda j=jobs: phase4_parallel(parsed, combined, ARRAY, jobs=j)
        )
        for jobs in (1, 2, 4)
    }

    summary = {
        "workload": "2 functions x " + "/".join(SECTION_SIZES),
        "python": platform.python_version(),
        "section_assembly_work": stats.section_assembly_work,
        "section_link_work": stats.section_link_work,
        "tail_work": stats.tail_work,
        "critical_path_work": {str(j): w for j, w in critical.items()},
        "critical_path_speedup": {
            str(j): round(s, 3) for j, s in speedups.items()
        },
        "katseff_style_work": {str(j): w for j, w in katseff.items()},
        "sequential_wall_s": round(sequential_wall, 6),
        "parallel_wall_s": {str(j): round(w, 6) for j, w in walls.items()},
    }
    (results_dir / "BENCH_phase4_scaling.json").write_text(
        json.dumps(summary, indent=2) + "\n"
    )
    print(
        f"\nphase-4 critical path: 1j={critical[1]} 4j={critical[4]} "
        f"(speedup {speedups[4]:.2f}x at 4 jobs; "
        f"Katseff-style at 4 workers: {katseff[4]})"
    )
    # The acceptance bar: >= 2x critical-path improvement at 4 jobs.
    assert speedups[4] >= 2.0
    # Monotone in the job count.
    assert critical[1] >= critical[2] >= critical[4] >= critical[8]


def test_warm_link_cache_edit_beats_full_relink(results_dir, tmp_path):
    """Warm-edit leg: re-link 1 section + 7 cache loads vs re-link 8."""
    cache = LinkCache(tmp_path / "link")
    parsed, combined = _combined_for(SOURCE)
    fill_wall = _timed(
        lambda: phase4_parallel(
            parsed, combined, ARRAY, jobs=1, link_cache=cache
        )
    )

    parsed2, combined2 = _combined_for(EDITED)
    # The edit round itself: exactly one section misses.
    edit_stats = Phase4Stats()
    phase4_parallel(
        parsed2, combined2, ARRAY, jobs=1, link_cache=cache,
        stats=edit_stats,
    )
    assert (edit_stats.link_cache_hits, edit_stats.link_cache_misses) == (
        len(SECTION_SIZES) - 1,
        1,
    )
    assert edit_stats.mode == "parallel"

    # Steady state of the edit-recompile loop: fully warm (module tier)
    # vs a full sequential re-link, as paired rounds.
    rounds = 7
    full_walls, warm_walls = [], []
    for _ in range(rounds):
        full_walls.append(
            _timed(
                lambda: phase4_link_and_download(
                    parsed2, _objects(combined2), ARRAY
                )
            )
        )
        stats = Phase4Stats()
        start = time.perf_counter()
        module, _, _ = phase4_parallel(
            parsed2, combined2, ARRAY, jobs=1, link_cache=cache, stats=stats
        )
        warm_walls.append(time.perf_counter() - start)
        assert stats.mode == "cached"

    # Correctness before speed: the warm module is bit-identical.
    from repro.asmlink.download import module_digest

    want = module_digest(
        phase4_link_and_download(parsed2, _objects(combined2), ARRAY)[0]
    )
    assert module_digest(module) == want

    diffs = sorted(f - w for f, w in zip(full_walls, warm_walls))
    median_diff = diffs[rounds // 2]
    warm_wins = sum(1 for d in diffs if d > 0)
    summary = {
        "workload": "2 functions x " + "/".join(SECTION_SIZES)
        + ", 1-function edit",
        "rounds": rounds,
        "python": platform.python_version(),
        "fill_wall_s": round(fill_wall, 6),
        "full_relink_walls_s": [round(w, 6) for w in full_walls],
        "warm_cache_walls_s": [round(w, 6) for w in warm_walls],
        "full_relink_median_s": round(statistics.median(full_walls), 6),
        "warm_cache_median_s": round(statistics.median(warm_walls), 6),
        "median_paired_diff_s": round(median_diff, 6),
        "warm_wins": warm_wins,
        "edit_hits": edit_stats.link_cache_hits,
        "edit_misses": edit_stats.link_cache_misses,
        "cache_entries": cache.entry_count(),
        "cache_bytes": cache.size_bytes(),
    }
    (results_dir / "BENCH_phase4.json").write_text(
        json.dumps(summary, indent=2) + "\n"
    )
    (results_dir / "phase4_scaling.txt").write_text(
        f"{rounds} paired rounds (full re-link then warm-cache per round)\n"
        f"full re-link median: {summary['full_relink_median_s']:.4f}s\n"
        f"warm-cache median:   {summary['warm_cache_median_s']:.4f}s\n"
        f"median paired diff:  {median_diff:+.4f}s "
        f"(warm wins {warm_wins}/{rounds} rounds)\n"
        f"1-function edit:     {edit_stats.link_cache_misses} miss, "
        f"{edit_stats.link_cache_hits} hits\n"
        f"advantage:           "
        f"{summary['full_relink_median_s'] / summary['warm_cache_median_s']:.2f}x\n"
    )
    print(
        f"\nwarm link-cache advantage: "
        f"{summary['full_relink_median_s'] / summary['warm_cache_median_s']:.2f}x, "
        f"median paired diff {median_diff:+.4f}s, "
        f"warm wins {warm_wins}/{rounds}"
    )
    # The acceptance bar: the warm-edit recompile median strictly beats
    # the full re-link median.
    assert median_diff > 0
    assert summary["warm_cache_median_s"] < summary["full_relink_median_s"]
