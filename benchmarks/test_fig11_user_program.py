"""Figure 11 + §4.3: the user-program (mechanical engineering) speedups.

Paper: one workstation per function (9 processors) gives speedup 4.5 with
small-function processors idle at least 15 minutes; with the
lines+loop-nesting load-balancing heuristic "the speedup for 5 processors
is almost as good as the speedup for 9 processors", and the speedup for 2
processors is 2.16 — *superlinear*, because the sequential compiler
swaps.
"""

from figures_common import user_program_figure, write_figure
from repro.metrics.experiments import measure_user_program


def test_fig11_user_program(benchmark, results_dir):
    fig = benchmark(user_program_figure)
    write_figure(results_dir, fig)

    grouped = fig.series_named("load-balanced grouping")

    # Substantial overall speedup at 9 processors (paper: 4.5; our
    # calibration lands in the 3-5 band).
    assert 3.0 <= grouped.points[9] <= 5.5
    # Near-superlinear speedup at 2 processors (paper: 2.16).
    assert grouped.points[2] >= 1.85
    # 5 processors is almost as good as 9 (within 15%).
    assert abs(grouped.points[5] - grouped.points[9]) <= 0.15 * grouped.points[9]
    # Monotone up to 5 processors.
    assert grouped.points[2] < grouped.points[3] < grouped.points[5]


def test_fcfs_one_per_processor_leaves_small_processors_idle(results_dir, benchmark):
    """§4.3 first measurement: with one workstation per function, each
    processor compiling a small function idles for a large fraction of
    the compilation (the paper observed >= 15 minutes)."""
    pair = benchmark(measure_user_program, 9, None, "one-per-processor")
    elapsed = pair.parallel.elapsed
    spans = pair.parallel.spans
    small_spans = [s for s in spans if s.end - s.start < elapsed / 2]
    assert small_spans, "expected small functions to finish early"
    idle = [elapsed - s.end for s in small_spans]
    # Small-function processors idle for the majority of the compilation.
    assert min(idle) > 0.5 * elapsed


def test_grouping_matches_one_per_processor_with_fewer_machines(benchmark):
    """§4.3: 'instead of scheduling one function per processor, smaller
    functions can be grouped and compiled on the same processor, so the
    same speedup can be observed using fewer processors.'"""
    five = measure_user_program(5, strategy="grouped")
    nine = benchmark(measure_user_program, 9, None, "one-per-processor")
    assert five.speedup >= 0.85 * nine.speedup
