"""Artifact-cache benchmarks (real wall-clock on this machine).

The incremental-compilation claim: a recompile served from the
persistent function-level artifact cache must beat a from-scratch
compile, because hits skip phases 2-3 entirely (an unpickle replaces
optimization + scheduling) and never cross a process boundary.

Measured as paired rounds (cold then warm per round, median of the
per-round differences) for the same drift-cancelling reasons as
``test_warm_farm.py``.  Timings also land in
``benchmarks/out/BENCH_artifact_cache.json`` — the cold-vs-warm-cache
trajectory point CI archives next to the pytest-benchmark JSON.
"""

import json
import platform
import statistics
import time

from repro.cache import ArtifactCache
from repro.driver.function_master import clear_phase1_cache
from repro.driver.master import ParallelCompiler
from repro.driver.sequential import SequentialCompiler
from repro.parallel.local import SerialBackend
from repro.workloads.synthetic import synthetic_program

SIZE, FUNCTIONS = "medium", 6
SOURCE = synthetic_program(SIZE, FUNCTIONS)


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_warm_cache_recompile_beats_cold_compile(results_dir, tmp_path):
    clear_phase1_cache()
    sequential_digest = SequentialCompiler().compile(SOURCE).digest

    cache = ArtifactCache(tmp_path / "cache")
    cold_compiler = ParallelCompiler(backend=SerialBackend())
    warm_compiler = ParallelCompiler(backend=SerialBackend(), cache=cache)

    # Fill the cache (the cold-with-writeback run: misses + atomic puts).
    fill_wall = _timed(lambda: warm_compiler.compile(SOURCE))

    rounds = 7
    cold_walls, warm_walls = [], []
    warm_result = None
    for _ in range(rounds):
        cold_walls.append(_timed(lambda: cold_compiler.compile(SOURCE)))
        start = time.perf_counter()
        warm_result = warm_compiler.compile(SOURCE)
        warm_walls.append(time.perf_counter() - start)

    # Correctness before speed: all-hits output is bit-identical and no
    # function paid phase-2/3 work.
    assert warm_result.digest == sequential_digest
    assert warm_result.profile.artifact_cache_misses() == 0
    assert warm_result.profile.artifact_cache_hits() == FUNCTIONS

    diffs = sorted(c - w for c, w in zip(cold_walls, warm_walls))
    median_diff = diffs[rounds // 2]
    warm_wins = sum(1 for d in diffs if d > 0)
    summary = {
        "workload": f"{FUNCTIONS} x f_{SIZE}",
        "rounds": rounds,
        "python": platform.python_version(),
        "fill_wall_s": round(fill_wall, 6),
        "cold_walls_s": [round(w, 6) for w in cold_walls],
        "warm_cache_walls_s": [round(w, 6) for w in warm_walls],
        "cold_median_s": round(statistics.median(cold_walls), 6),
        "warm_cache_median_s": round(statistics.median(warm_walls), 6),
        "median_paired_diff_s": round(median_diff, 6),
        "warm_wins": warm_wins,
        "cache_entries": cache.entry_count(),
        "cache_bytes": cache.size_bytes(),
    }
    (results_dir / "BENCH_artifact_cache.json").write_text(
        json.dumps(summary, indent=2) + "\n"
    )
    (results_dir / "artifact_cache.txt").write_text(
        f"{rounds} paired rounds (cold then warm-cache per round)\n"
        f"cold compile median:     {summary['cold_median_s']:.3f}s\n"
        f"warm-cache median:       {summary['warm_cache_median_s']:.3f}s\n"
        f"median paired diff:      {median_diff:+.3f}s "
        f"(warm wins {warm_wins}/{rounds} rounds)\n"
        f"cache fill (miss) run:   {fill_wall:.3f}s\n"
        f"advantage:               "
        f"{summary['cold_median_s'] / summary['warm_cache_median_s']:.2f}x\n"
    )
    print(f"\nwarm-cache advantage: "
          f"{summary['cold_median_s'] / summary['warm_cache_median_s']:.2f}x, "
          f"median paired diff {median_diff:+.3f}s, "
          f"warm wins {warm_wins}/{rounds}")
    # The acceptance bar: warm-cache recompile median strictly below the
    # cold compile median.  Typical advantage is >5x — the warm side
    # unpickles six artifacts instead of optimizing and scheduling them.
    assert median_diff > 0
    assert summary["warm_cache_median_s"] < summary["cold_median_s"]


def test_one_function_edit_recompiles_incrementally(results_dir, tmp_path):
    """The compile-server scenario, timed: edit one function, resubmit."""
    cache = ArtifactCache(tmp_path / "cache")
    compiler = ParallelCompiler(backend=SerialBackend(), cache=cache)
    compiler.compile(SOURCE)

    # Body-only edit of f1 (a renamed function would change sibling
    # signatures and invalidate the whole section).
    edited = SOURCE.replace("acc := 0.0;", "acc := 0.5;", 1)
    assert edited != SOURCE
    full_wall = _timed(
        lambda: ParallelCompiler(backend=SerialBackend()).compile(edited)
    )
    start = time.perf_counter()
    incremental = compiler.compile(edited)
    incremental_wall = time.perf_counter() - start

    assert incremental.digest == SequentialCompiler().compile(edited).digest
    assert incremental.profile.artifact_cache_misses() == 1
    assert incremental.profile.artifact_cache_hits() == FUNCTIONS - 1
    (results_dir / "artifact_cache_incremental.txt").write_text(
        f"one-function edit on {FUNCTIONS} x f_{SIZE}\n"
        f"full recompile:        {full_wall:.3f}s\n"
        f"incremental recompile: {incremental_wall:.3f}s "
        f"(1 miss, {FUNCTIONS - 1} hits)\n"
    )
    print(f"\nincremental recompile {incremental_wall:.3f}s vs "
          f"full {full_wall:.3f}s")
