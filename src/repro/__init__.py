"""repro: Parallel Compilation for a Parallel Machine (PLDI 1989).

A full reimplementation of the Gross/Zobel/Zolg parallel Warp compiler:

- :mod:`repro.lang` — the W2-like source language (lexer, parser, sema)
- :mod:`repro.ir` / :mod:`repro.opt` — IR, flowgraph, optimizer (phase 2)
- :mod:`repro.codegen` — software pipelining + VLIW scheduling (phase 3)
- :mod:`repro.asmlink` — assembler, linker, download modules (phase 4)
- :mod:`repro.warpsim` — functional simulator for the Warp array
- :mod:`repro.driver` — sequential and parallel compiler drivers
- :mod:`repro.parallel` — execution backends (serial, multiprocessing)
- :mod:`repro.cache` — persistent function-level artifact cache
- :mod:`repro.cluster` — discrete-event workstation-network simulator
- :mod:`repro.workloads` — the paper's synthetic and user programs
- :mod:`repro.metrics` — speedup and overhead accounting (§4)

Quick start::

    from repro import SequentialCompiler, ParallelCompiler
    result = SequentialCompiler().compile(source_text)
"""

from .cluster import ClusterSimulation, CostModel
from .driver import ParallelCompiler, SequentialCompiler
from .machine import WarpArrayModel, WarpCellModel
from .warpsim import run_module

__version__ = "1.0.0"

from .cache import ArtifactCache  # noqa: E402 (needs __version__ for salts)

__all__ = [
    "ArtifactCache",
    "ClusterSimulation",
    "CostModel",
    "ParallelCompiler",
    "SequentialCompiler",
    "WarpArrayModel",
    "WarpCellModel",
    "run_module",
    "__version__",
]
