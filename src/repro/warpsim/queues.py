"""Bounded FIFO queues — the systolic pathways between adjacent cells."""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Union

Number = Union[int, float]


class CellQueue:
    """A bounded FIFO connecting one cell to its right neighbor."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._items: Deque[Number] = deque()
        self.total_pushed = 0
        self.total_popped = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        return len(self._items) >= self.capacity

    @property
    def is_empty(self) -> bool:
        return not self._items

    def push(self, value: Number) -> None:
        if self.is_full:
            raise OverflowError("push to a full queue (sender must stall)")
        self._items.append(value)
        self.total_pushed += 1

    def pop(self) -> Number:
        if self.is_empty:
            raise IndexError("pop from an empty queue (receiver must stall)")
        self.total_popped += 1
        return self._items.popleft()

    def drain(self) -> List[Number]:
        """Remove and return everything (used to collect final outputs)."""
        items = list(self._items)
        self.total_popped += len(items)
        self._items.clear()
        return items
