"""Corpus regression tests.

Every fuzz-found (and minimized) reproducer in ``tests/corpus/`` is
replayed through the pipelines named in its entry; the oracle must
report full agreement.  Adding a JSON entry — by hand or via
``warpcc fuzz --minimize`` — automatically adds a test here.
"""

from pathlib import Path

import pytest

from repro.fuzz.oracle import DifferentialOracle, OracleConfig
from repro.fuzz.reduce import CORPUS_SCHEMA, load_corpus_entry

CORPUS_DIR = Path(__file__).parent / "corpus"
ENTRIES = sorted(CORPUS_DIR.glob("fuzz_*.json"))


def test_corpus_is_not_empty():
    assert ENTRIES, f"no corpus entries under {CORPUS_DIR}"


@pytest.mark.parametrize("path", ENTRIES, ids=lambda p: p.stem)
def test_corpus_entry_replays_clean(path):
    entry = load_corpus_entry(path)
    assert entry["schema"] == CORPUS_SCHEMA
    config = OracleConfig(pipelines=tuple(entry["pipelines"]))
    with DifferentialOracle(config) as oracle:
        report = oracle.check(
            entry["source"],
            inputs=entry["inputs"],
            seed=entry.get("seed", 0),
        )
    assert report.ok, "\n".join(report.describe())


@pytest.mark.parametrize("path", ENTRIES, ids=lambda p: p.stem)
def test_corpus_entry_is_well_formed(path):
    entry = load_corpus_entry(path)
    assert entry["source"].startswith("module ")
    assert all(isinstance(v, (int, float)) for v in entry["inputs"])
    assert set(entry["kinds"]) <= {
        "digest", "diagnostic", "semantic", "crash"
    }
