"""Supervision overhead benchmarks (real wall-clock on this machine).

The robustness claim has a price tag, and it must be near zero: wrapping
the warm-worker farm in :class:`SupervisedBackend` with no faults
injected may not cost more than noise — deadlines are bookkeeping,
hedging waits ``hedge_min_age`` before cloning work, and validation is
one sha256 per result.

Measured as paired rounds (bare then supervised per round) like
``test_warm_farm.py``, plus one seeded chaos round (crashes + hangs +
corruption) to record how expensive *absorbing* faults is.  Both land in
``benchmarks/out/BENCH_chaos.json``, the trajectory point CI archives.
"""

import json
import platform
import statistics
import time

from repro.driver.function_master import clear_phase1_cache
from repro.driver.master import ParallelCompiler
from repro.driver.sequential import SequentialCompiler
from repro.parallel.fault_tolerance import ChaosBackend
from repro.parallel.local import SerialBackend
from repro.parallel.supervisor import SupervisedBackend
from repro.parallel.warm_pool import WarmPoolBackend
from repro.workloads.synthetic import synthetic_program

SIZE, FUNCTIONS = "small", 8
SOURCE = synthetic_program(SIZE, FUNCTIONS)
WORKERS = 2
ROUNDS = 7


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_supervised_no_fault_overhead_within_noise(results_dir):
    clear_phase1_cache()
    sequential_digest = SequentialCompiler().compile(SOURCE).digest

    with WarmPoolBackend(max_workers=WORKERS) as bare_pool, \
            WarmPoolBackend(max_workers=WORKERS) as supervised_pool:
        supervised = SupervisedBackend(supervised_pool)
        bare_compiler = ParallelCompiler(backend=bare_pool)
        supervised_compiler = ParallelCompiler(backend=supervised)

        # Warm both pools (worker spawn + first-parse costs out of band).
        bare_compiler.compile(SOURCE)
        supervised_result = supervised_compiler.compile(SOURCE)
        assert supervised_result.digest == sequential_digest

        bare_walls, supervised_walls = [], []
        for _ in range(ROUNDS):
            bare_walls.append(_timed(lambda: bare_compiler.compile(SOURCE)))
            supervised_walls.append(
                _timed(lambda: supervised_compiler.compile(SOURCE))
            )

        # No faults were injected, so no supervision machinery may have
        # triggered — the counters prove the overhead is pure bookkeeping.
        stats = supervised.supervision
        assert stats.timeouts == 0
        assert stats.poisoned_tasks == 0
        assert stats.degradations == 0
        assert stats.corrupt_payloads == 0

    # One seeded chaos round on an in-process farm: how much wall does
    # *absorbing* crashes, hangs, and corruption cost?
    chaos = ChaosBackend(
        SerialBackend(),
        workers=4,
        seed=0,
        crash_rate=0.3,
        hang_rate=0.3,
        hang_delay=0.1,
        corrupt_rate=0.25,
    )
    chaos_backend = SupervisedBackend(
        chaos, task_timeout=1.0, max_attempts=4, hedge_after=None
    )
    start = time.perf_counter()
    chaos_result = ParallelCompiler(backend=chaos_backend).compile(SOURCE)
    chaos_wall = time.perf_counter() - start
    assert chaos_result.digest == sequential_digest

    bare_median = statistics.median(bare_walls)
    supervised_median = statistics.median(supervised_walls)
    summary = {
        "workload": f"{FUNCTIONS} x f_{SIZE}",
        "workers": WORKERS,
        "rounds": ROUNDS,
        "python": platform.python_version(),
        "bare_warm_walls_s": [round(w, 6) for w in bare_walls],
        "supervised_walls_s": [round(w, 6) for w in supervised_walls],
        "bare_median_s": round(bare_median, 6),
        "supervised_median_s": round(supervised_median, 6),
        "overhead_ratio": round(supervised_median / bare_median, 4),
        "chaos_round": {
            "seed": 0,
            "wall_s": round(chaos_wall, 6),
            "injected_crashes": chaos.injected_crashes,
            "injected_hangs": chaos.injected_hangs,
            "injected_corruptions": chaos.injected_corruptions,
            "timeouts": chaos_backend.supervision.timeouts,
            "retries": chaos_backend.supervision.retries,
            "corrupt_payloads": chaos_backend.supervision.corrupt_payloads,
        },
    }
    (results_dir / "BENCH_chaos.json").write_text(
        json.dumps(summary, indent=2) + "\n"
    )
    (results_dir / "chaos_overhead.txt").write_text(
        f"{ROUNDS} paired rounds (bare warm pool then supervised per round)\n"
        f"bare warm-pool median:   {bare_median:.3f}s\n"
        f"supervised median:       {supervised_median:.3f}s "
        f"({summary['overhead_ratio']:.2f}x)\n"
        f"seeded chaos round:      {chaos_wall:.3f}s "
        f"({chaos.injected_crashes} crash(es), {chaos.injected_hangs} "
        f"hang(s), {chaos.injected_corruptions} corruption(s) absorbed)\n"
    )
    print(
        f"\nsupervision overhead {summary['overhead_ratio']:.2f}x "
        f"(bare {bare_median:.3f}s, supervised {supervised_median:.3f}s); "
        f"chaos round {chaos_wall:.3f}s"
    )
    # The guard: supervised no-fault wall within noise of the bare warm
    # pool.  1.5x + 50ms leaves headroom for scheduler jitter on small
    # absolute times while still catching a hot-loop regression.
    assert supervised_median <= bare_median * 1.5 + 0.05
