"""Warm-worker compile farm: a process pool that outlives compilations.

The paper's implementation overhead is dominated by per-task startup:
every function master is a fresh Lisp process that must "download a
portion of a large core image" and re-derive phase-1 state before any
useful work.  Our :class:`~repro.parallel.local.ProcessPoolBackend` has
the same pathology — a new ``ProcessPoolExecutor`` per ``run_tasks``
call, and a full re-parse in every worker.

:class:`WarmPoolBackend` removes both costs:

- the executor starts lazily on first use and **stays alive across
  compilations** (explicit :meth:`shutdown`, or use the backend as a
  context manager);
- because worker processes survive, each worker's phase-1 LRU cache
  (:mod:`repro.driver.function_master`) stays hot — the second task for
  the same module skips parse + sema entirely;
- tasks are dispatched in §4.3 cost-balanced batches
  (:func:`repro.parallel.schedule.batch_tasks_by_cost`), so tiny
  functions share one IPC round-trip instead of paying one each;
- a crashed worker (``BrokenProcessPool``) is survivable: the broken
  pool is discarded and the batch re-run on a fresh one — safe because
  function masters are pure (same task, same object code).
"""

from __future__ import annotations

import concurrent.futures
import os
import threading
from concurrent.futures.process import BrokenProcessPool
from typing import Iterator, List, Optional

from ..driver.function_master import (
    FunctionTask,
    FunctionTaskResult,
    run_compile_batch,
)
from .schedule import batch_tasks_by_cost, provided_task_costs


class WarmPoolBackend:
    """A persistent multiprocessing farm satisfying ``ExecutionBackend``."""

    def __init__(
        self,
        max_workers: Optional[int] = None,
        batches_per_worker: int = 2,
        crash_retries: int = 1,
    ):
        if max_workers is None:
            max_workers = max(1, (os.cpu_count() or 2) - 1)
        if max_workers < 1:
            raise ValueError(f"need at least one worker, got {max_workers}")
        if batches_per_worker < 1:
            raise ValueError(
                f"need at least one batch per worker, got {batches_per_worker}"
            )
        if crash_retries < 0:
            raise ValueError(
                f"crash retries must be non-negative, got {crash_retries}"
            )
        self._max_workers = max_workers
        self._batches_per_worker = batches_per_worker
        self._crash_retries = crash_retries
        self._pool: Optional[concurrent.futures.ProcessPoolExecutor] = None
        #: guards pool creation/teardown — the compile service may reach
        #: the farm from several threads (dispatcher, drain, telemetry);
        #: without the lock two racing _ensure_pool calls would each
        #: spawn an executor and leak one.
        self._pool_lock = threading.Lock()
        self._last_effective_workers: Optional[int] = None
        #: pluggable LPT cost seam; None packs batches by the static
        #: §4.3 hint (see schedule.provided_task_costs)
        self.cost_provider = None
        #: telemetry: completed run_tasks calls / pools rebuilt after crash
        self.dispatches = 0
        self.crash_recoveries = 0

    # -- ExecutionBackend protocol ------------------------------------

    @property
    def worker_count(self) -> int:
        return self._max_workers

    @property
    def effective_worker_count(self) -> int:
        if self._last_effective_workers is None:
            return self._max_workers
        return self._last_effective_workers

    def run_tasks(self, tasks: List[FunctionTask]) -> List[FunctionTaskResult]:
        return list(self.run_tasks_streaming(tasks))

    def run_tasks_streaming(
        self, tasks: List[FunctionTask]
    ) -> Iterator[FunctionTaskResult]:
        """Yield results batch-by-batch as the farm completes them.

        Crash recovery is batch-granular: after a ``BrokenProcessPool``
        only batches whose results have not yet been yielded are rerun on
        the fresh pool (function masters are pure, so a rerun is safe; a
        yielded batch is never rerun, so the consumer sees no duplicates).
        """
        if not tasks:
            return
        chunks = batch_tasks_by_cost(
            provided_task_costs(tasks, self.cost_provider),
            min(len(tasks), self._max_workers * self._batches_per_worker),
        )
        batches = [[tasks[i] for i in chunk] for chunk in chunks]
        self._last_effective_workers = min(self._max_workers, len(batches))
        pending = list(range(len(batches)))
        for attempt in range(self._crash_retries + 1):
            pool = self._ensure_pool()
            completed: List[int] = []
            try:
                # submit itself raises BrokenProcessPool when the pool
                # died between calls (e.g. a worker crashed while idle).
                futures = {
                    pool.submit(run_compile_batch, batches[index]): index
                    for index in pending
                }
                for future in concurrent.futures.as_completed(futures):
                    results = future.result()
                    completed.append(futures[future])
                    yield from results
                self.dispatches += 1
                return
            except BrokenProcessPool:
                # A worker died mid-batch.  Discard the broken pool and
                # retry whatever had not completed.
                self.crash_recoveries += 1
                self._discard_pool()
                pending = [i for i in pending if i not in completed]
                if attempt == self._crash_retries:
                    raise
        raise AssertionError("unreachable")  # pragma: no cover

    # -- pool lifecycle -----------------------------------------------

    @property
    def is_warm(self) -> bool:
        """True when a live executor is being kept across calls."""
        return self._pool is not None

    def _ensure_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = concurrent.futures.ProcessPoolExecutor(
                    max_workers=self._max_workers
                )
            return self._pool

    def _discard_pool(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def shutdown(self, wait: bool = True) -> None:
        """Stop the farm.  The next ``run_tasks`` lazily restarts it."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait)

    def __enter__(self) -> "WarmPoolBackend":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        self.shutdown()
        return False
