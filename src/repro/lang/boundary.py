"""Boundary scanner: split a module at ``section``/``function`` heads.

The parallel front end needs to know *where* each function's text lives
before it can parse the functions concurrently — but deriving that from
a full parse would defeat the point.  This scanner is the answer for a
block-structured grammar: a single character-level skim that replicates
the lexer's trivia/word/number rules exactly (so a ``function`` inside a
``--`` comment or glued to a float literal is never mistaken for a
keyword) and tracks block depth through ``begin``/``if``/``for``/
``while``/``end``.  It never builds tokens or an AST; its output is one
half-open byte window per function plus the offset where the header ends
(the ``begin`` keyword), which is all the parallel parser and the
signature pass need.

The scanner only has to be *right on valid modules*: whenever the input
deviates from the expected module/section/function shape it returns
``None`` and the caller falls back to the sequential front end, which
reports the canonical diagnostics.  Operator-level garbage is invisible
to the word skim, but it always lands either inside a function window
(caught by that window's real parse) or in the skeleton between windows
(caught by the skeleton's real parse) — both trigger the same fallback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

#: keywords that open a nested ``... end`` block inside a function body
_BLOCK_OPENERS = frozenset({"if", "for", "while"})

#: structural words that may never appear inside a function body/header
_STRUCTURE_WORDS = frozenset({"module", "section", "function"})


@dataclass(frozen=True)
class FunctionWindow:
    """Byte offsets of one function: ``[start, end)`` covers the text
    from its ``function`` keyword through its closing ``end`` inclusive;
    ``header_end`` is the offset of the ``begin`` keyword (the header —
    name, parameters, return type, var block — is ``[start, header_end)``)."""

    start: int
    header_end: int
    end: int


@dataclass(frozen=True)
class SectionBoundaries:
    """The function windows of one section, in source order."""

    function_windows: Tuple[FunctionWindow, ...]


@dataclass(frozen=True)
class ModuleBoundaries:
    """Every section's function windows, in source order."""

    sections: Tuple[SectionBoundaries, ...]

    def all_windows(self) -> List[FunctionWindow]:
        return [w for sec in self.sections for w in sec.function_windows]

    def function_count(self) -> int:
        return sum(len(sec.function_windows) for sec in self.sections)


def _words(text: str) -> Iterator[Tuple[str, int, int]]:
    """Yield ``(word, start, end)`` for every identifier/keyword word,
    skipping trivia and numbers with the lexer's exact rules.

    Fidelity matters: ``1e5end`` lexes as FLOAT_LIT then ``end`` (the
    exponent rule stops before the ``e`` of a second word), and a naive
    regex scan would disagree.  Operators are skipped one character at a
    time — none of them contains a word character, so they can never
    absorb the start of a keyword.
    """
    pos, n = 0, len(text)
    while pos < n:
        ch = text[pos]
        if ch in " \t\r\n":
            pos += 1
            continue
        if ch == "-" and text.startswith("--", pos):
            newline = text.find("\n", pos)
            pos = n if newline < 0 else newline + 1
            continue
        if ch.isalpha() or ch == "_":
            end = pos + 1
            while end < n and (text[end].isalnum() or text[end] == "_"):
                end += 1
            yield text[pos:end], pos, end
            pos = end
            continue
        if ch.isdigit():
            # Mirror Lexer._lex_number: digits, optional fraction (a '.'
            # only when not the '..' range operator), optional exponent
            # only when a digit actually follows the sign.
            end = pos
            while end < n and text[end].isdigit():
                end += 1
            if end < n and text[end] == "." and not text.startswith("..", end):
                end += 1
                while end < n and text[end].isdigit():
                    end += 1
            if end < n and text[end] in "eE":
                exp_end = end + 1
                if exp_end < n and text[exp_end] in "+-":
                    exp_end += 1
                if exp_end < n and text[exp_end].isdigit():
                    end = exp_end
                    while end < n and text[end].isdigit():
                        end += 1
            pos = end
            continue
        pos += 1


def scan_boundaries(text: str) -> Optional[ModuleBoundaries]:
    """Token-skim ``text`` and return its function windows, or ``None``
    when the word-level structure does not match a well-formed module
    (the caller must fall back to the sequential front end)."""
    words = list(_words(text))
    n = len(words)

    def word_at(j: int) -> Optional[str]:
        return words[j][0] if j < n else None

    if word_at(0) != "module":
        return None
    i = 2  # 'module' + its name; a missing/keyword name fails skeleton parse
    sections: List[SectionBoundaries] = []
    while word_at(i) == "section":
        i += 1
        # Section header: name + 'cells' (the punctuation is invisible).
        # Skim to the first structural word; a malformed header either
        # trips the checks below or fails the skeleton parse later.
        while i < n and word_at(i) not in (
            "function", "end", "section", "module", "begin",
        ):
            i += 1
        windows: List[FunctionWindow] = []
        while word_at(i) == "function":
            fn_start = words[i][1]
            i += 1
            # Header: everything up to 'begin'.  A structural word (or
            # 'end', or EOF) before 'begin' means a malformed header.
            while i < n and word_at(i) not in (
                "begin", "end", "function", "section", "module",
            ):
                i += 1
            if word_at(i) != "begin":
                return None
            header_end = words[i][1]
            i += 1
            depth = 1
            fn_end: Optional[int] = None
            while i < n and depth > 0:
                word = words[i][0]
                if word in _BLOCK_OPENERS:
                    depth += 1
                elif word == "end":
                    depth -= 1
                    if depth == 0:
                        fn_end = words[i][2]
                elif word == "begin" or word in _STRUCTURE_WORDS:
                    return None  # cannot nest inside a function body
                i += 1
            if fn_end is None:
                return None  # ran out of input before the body closed
            windows.append(FunctionWindow(fn_start, header_end, fn_end))
        if word_at(i) != "end":
            return None  # section never closed
        i += 1
        sections.append(SectionBoundaries(tuple(windows)))
    if word_at(i) != "end":
        return None  # module never closed
    i += 1
    if i != n:
        return None  # trailing words after the module end
    # Trailing *operator* garbage (e.g. a stray ';') is invisible here;
    # it lands in the final skeleton gap and fails the skeleton parse.
    return ModuleBoundaries(tuple(sections))
