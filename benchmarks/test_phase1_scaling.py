"""Phase-1 scaling benchmarks: parallel front end + span-hash parse cache.

Two legs, guarding two different claims:

1. **Scaling** — the deterministic work-unit model.  Parallel phase 1's
   critical path (sequential skeleton + LPT-scheduled function windows,
   :func:`~repro.driver.phases.phase1_critical_path_work`) must shrink
   at least 2x from 1 to 4 jobs on the f_huge workload.  Wall clock at
   each job count is *recorded* but never asserted: CPython's GIL
   serializes a thread-pool parse regardless of core count, so the
   machine-independent critical path is the honest scaling measure (it
   is what a free-threaded or process-backed phase 1 would pay).

2. **Incremental warm edit** — real wall clock.  With a warm parse
   cache, a 1-function edit re-parses exactly one function and
   rebases the rest from disk; that must beat re-parsing everything,
   measured as paired rounds with the same drift-cancelling median as
   the artifact-cache benchmark.

Timings land in ``benchmarks/out/BENCH_phase1.json`` — the trajectory
point CI archives beside the other bench artifacts.
"""

import json
import platform
import statistics
import time

from repro.cache import ParseCache
from repro.driver.phases import (
    Phase1Stats,
    phase1_critical_path_work,
    phase1_parallel,
    phase1_parse_and_check,
)
from repro.workloads.synthetic import synthetic_program

SIZE, FUNCTIONS = "huge", 8
SOURCE = synthetic_program(SIZE, FUNCTIONS)


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_phase1_critical_path_scales(results_dir):
    stats = Phase1Stats()
    phase1_parallel(SOURCE, jobs=1, stats=stats)
    assert stats.mode == "parallel"
    assert len(stats.window_work) == FUNCTIONS

    critical = {
        jobs: phase1_critical_path_work(stats, jobs) for jobs in (1, 2, 4, 8)
    }
    speedups = {jobs: critical[1] / critical[jobs] for jobs in critical}

    # Informational wall clock (GIL-bound; never asserted).
    sequential_wall = _timed(lambda: phase1_parse_and_check(SOURCE))
    walls = {
        jobs: _timed(lambda j=jobs: phase1_parallel(SOURCE, jobs=j))
        for jobs in (1, 2, 4)
    }

    summary = {
        "workload": f"{FUNCTIONS} x f_{SIZE}",
        "python": platform.python_version(),
        "skeleton_work": stats.skeleton_work,
        "window_work": stats.window_work,
        "critical_path_work": {str(j): w for j, w in critical.items()},
        "critical_path_speedup": {
            str(j): round(s, 3) for j, s in speedups.items()
        },
        "sequential_wall_s": round(sequential_wall, 6),
        "parallel_wall_s": {str(j): round(w, 6) for j, w in walls.items()},
    }
    (results_dir / "BENCH_phase1_scaling.json").write_text(
        json.dumps(summary, indent=2) + "\n"
    )
    print(
        f"\nphase-1 critical path: 1j={critical[1]} 4j={critical[4]} "
        f"(speedup {speedups[4]:.2f}x at 4 jobs)"
    )
    # The acceptance bar: >= 2x critical-path improvement at 4 jobs.
    assert speedups[4] >= 2.0
    # Monotone in the job count.
    assert critical[1] >= critical[2] >= critical[4] >= critical[8]


def test_warm_parse_cache_edit_beats_full_parse(results_dir, tmp_path):
    """Warm-edit leg: parse 1 function + rebase 7 from disk vs parse 8."""
    cache = ParseCache(tmp_path / "parse")
    fill_wall = _timed(
        lambda: phase1_parallel(SOURCE, jobs=1, parse_cache=cache)
    )

    # Line-count-changing body edit of f1: later functions shift down,
    # so every warm round exercises the span rebase too.
    edited = SOURCE.replace(
        "acc := 0.0;",
        "acc := 0.0;\n    acc := acc + 1.0;",
        1,
    )
    assert edited != SOURCE
    # Pre-warm the edited variant's one changed window, then time pure
    # warm rounds (all 8 functions served from cache) against full
    # parses — the steady state of an edit-recompile loop.
    warm_stats = Phase1Stats()
    phase1_parallel(edited, jobs=1, parse_cache=cache, stats=warm_stats)
    assert (warm_stats.cache_hits, warm_stats.cache_misses) == (
        FUNCTIONS - 1,
        1,
    )

    rounds = 7
    full_walls, warm_walls = [], []
    for _ in range(rounds):
        full_walls.append(_timed(lambda: phase1_parse_and_check(edited)))
        stats = Phase1Stats()
        start = time.perf_counter()
        parsed = phase1_parallel(
            edited, jobs=1, parse_cache=cache, stats=stats
        )
        warm_walls.append(time.perf_counter() - start)
        assert (stats.cache_hits, stats.cache_misses) == (FUNCTIONS, 0)

    # Correctness before speed: rebased warm output is bit-identical.
    assert parsed.module == phase1_parse_and_check(edited).module

    diffs = sorted(f - w for f, w in zip(full_walls, warm_walls))
    median_diff = diffs[rounds // 2]
    warm_wins = sum(1 for d in diffs if d > 0)
    summary = {
        "workload": f"{FUNCTIONS} x f_{SIZE}, 1-function edit",
        "rounds": rounds,
        "python": platform.python_version(),
        "fill_wall_s": round(fill_wall, 6),
        "full_parse_walls_s": [round(w, 6) for w in full_walls],
        "warm_cache_walls_s": [round(w, 6) for w in warm_walls],
        "full_parse_median_s": round(statistics.median(full_walls), 6),
        "warm_cache_median_s": round(statistics.median(warm_walls), 6),
        "median_paired_diff_s": round(median_diff, 6),
        "warm_wins": warm_wins,
        "edit_hits": warm_stats.cache_hits,
        "edit_misses": warm_stats.cache_misses,
        "cache_entries": cache.entry_count(),
        "cache_bytes": cache.size_bytes(),
    }
    (results_dir / "BENCH_phase1.json").write_text(
        json.dumps(summary, indent=2) + "\n"
    )
    (results_dir / "phase1_scaling.txt").write_text(
        f"{rounds} paired rounds (full parse then warm-cache per round)\n"
        f"full parse median:   {summary['full_parse_median_s']:.3f}s\n"
        f"warm-cache median:   {summary['warm_cache_median_s']:.3f}s\n"
        f"median paired diff:  {median_diff:+.3f}s "
        f"(warm wins {warm_wins}/{rounds} rounds)\n"
        f"1-function edit:     {warm_stats.cache_misses} miss, "
        f"{warm_stats.cache_hits} hits\n"
        f"advantage:           "
        f"{summary['full_parse_median_s'] / summary['warm_cache_median_s']:.2f}x\n"
    )
    print(
        f"\nwarm parse-cache advantage: "
        f"{summary['full_parse_median_s'] / summary['warm_cache_median_s']:.2f}x, "
        f"median paired diff {median_diff:+.3f}s, "
        f"warm wins {warm_wins}/{rounds}"
    )
    # The acceptance bar: the warm-edit recompile median strictly beats
    # the full parse median.
    assert median_diff > 0
    assert summary["warm_cache_median_s"] < summary["full_parse_median_s"]
