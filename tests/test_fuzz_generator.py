"""The seeded program generator: determinism, validity, round-trips."""

import pytest

from repro.fuzz import config_for_size_class, generate_program
from repro.fuzz.generator import SIZE_CLASS_PRESETS
from repro.lang.diagnostics import DiagnosticSink
from repro.lang.parser import parse_text
from repro.lang.sema import check_module
from repro.lang.unparse import unparse_module

from helpers import parse_ok


def _valid(source: str) -> bool:
    sink = DiagnosticSink()
    module = parse_text(source, sink)
    if sink.has_errors:
        return False
    check_module(module, sink)
    return not sink.has_errors


class TestDeterminism:
    def test_same_seed_same_source(self):
        a = generate_program(42)
        b = generate_program(42)
        assert a.source == b.source
        assert a.inputs() == b.inputs()

    def test_different_seeds_differ(self):
        assert generate_program(1).source != generate_program(2).source

    def test_inputs_are_pure(self):
        prog = generate_program(7)
        assert prog.inputs() == prog.inputs()
        assert len(prog.inputs()) == prog.stream_arity


class TestValidity:
    @pytest.mark.parametrize("size_class", sorted(SIZE_CLASS_PRESETS))
    def test_every_size_class_generates_valid_modules(self, size_class):
        config = config_for_size_class(size_class)
        for seed in range(5):
            prog = generate_program(seed, config)
            sink = DiagnosticSink()
            module = parse_text(prog.source, sink)
            assert not sink.has_errors, sink.render()
            check_module(module, sink)
            assert not sink.has_errors, (
                f"{size_class} seed {seed}:\n{sink.render()}\n{prog.source}"
            )

    def test_unknown_size_class_rejected(self):
        with pytest.raises(ValueError):
            config_for_size_class("colossal")

    def test_function_names_recorded(self):
        prog = generate_program(3)
        assert "main" in prog.function_names


class TestUnparseRoundTrip:
    @pytest.mark.parametrize("seed", range(10))
    def test_round_trip_is_valid_and_stable(self, seed):
        prog = generate_program(seed, config_for_size_class("small"))
        module, _ = parse_ok(prog.source)
        rendered = unparse_module(module)
        assert _valid(rendered), rendered
        # A second round-trip is a fixed point: unparse(parse(x)) == x
        # for x already in rendered form.
        again = unparse_module(parse_ok(rendered)[0])
        assert again == rendered

    def test_round_trip_preserves_compiled_output(self):
        from repro.driver.sequential import SequentialCompiler

        prog = generate_program(5, config_for_size_class("tiny"))
        rendered = unparse_module(parse_ok(prog.source)[0])
        original = SequentialCompiler().compile(prog.source)
        rerendered = SequentialCompiler().compile(rendered)
        assert original.digest == rerendered.digest
