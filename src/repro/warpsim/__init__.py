"""Functional simulator for the Warp array."""

from .array_runner import ArrayRunner, RunResult, run_module
from .cell_state import CellState, CellStats, SimulationError
from .executor import step_cell
from .queues import CellQueue

__all__ = [
    "ArrayRunner",
    "CellQueue",
    "CellState",
    "CellStats",
    "RunResult",
    "SimulationError",
    "run_module",
    "step_cell",
]
