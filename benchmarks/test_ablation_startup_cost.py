"""Ablation: Lisp process startup cost on/off.

§4.2.3 lists "startup time for lisp processes (portion of large core
image must be downloaded, and each lisp process has to interpret
initializing information)" as a major system-overhead contributor.  With
startup free, even tiny functions should parallelize.
"""

from figures_common import write_figure
from repro.cluster.costs import CostModel
from repro.metrics.experiments import measure_pair
from repro.metrics.series import Figure


def free_startup() -> CostModel:
    return CostModel(
        lisp_core_words=0.0,
        lisp_init_sec=0.0,
        c_process_start_sec=0.0,
        section_start_sec=0.0,
    )


def build_figure() -> Figure:
    fig = Figure(
        "Ablation: startup cost",
        "Lisp startup cost vs tiny/small speedup at n=8",
        "size class",
        "speedup (elapsed)",
        xs=["tiny", "small", "medium"],
    )
    default = fig.new_series("default startup")
    free = fig.new_series("free startup")
    for size in fig.xs:
        default.add(size, measure_pair(size, 8).speedup)
        free.add(size, measure_pair(size, 8, costs=free_startup()).speedup)
    return fig


def test_startup_cost_explains_tiny_slowdown(benchmark, results_dir):
    fig = benchmark(build_figure)
    write_figure(results_dir, fig)

    default = fig.series_named("default startup")
    free = fig.series_named("free startup")

    # With real startup costs, tiny functions lose; with free startup
    # they win (the slowdown is the startup, nothing else).
    assert default.points["tiny"] < 1.0
    assert free.points["tiny"] > 1.5

    # Every size benefits from cheaper startup.
    for size in fig.xs:
        assert free.points[size] > default.points[size]

    # The benefit shrinks as functions grow (startup amortizes).
    gain = {
        size: free.points[size] / default.points[size] for size in fig.xs
    }
    assert gain["tiny"] > gain["small"] > gain["medium"]
