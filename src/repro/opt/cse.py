"""Local common-subexpression elimination.

Within a block, a pure computation with operands identical to an earlier
one is replaced by a copy of the earlier result.  Loads participate too:
a load is available until a store to the same array or a call (calls may
store through the callee — conservatively treated as clobbering all
arrays).  Commutative operations are keyed on sorted operands.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..ir.cfg import FunctionIR
from ..ir.instructions import COMMUTATIVE, Instr, Opcode
from ..ir.values import Const, VReg

_PURE = {
    Opcode.ADD,
    Opcode.SUB,
    Opcode.MUL,
    Opcode.DIV,
    Opcode.MOD,
    Opcode.NEG,
    Opcode.ABS,
    Opcode.SQRT,
    Opcode.MIN,
    Opcode.MAX,
    Opcode.NOT,
    Opcode.AND,
    Opcode.OR,
    Opcode.CEQ,
    Opcode.CNE,
    Opcode.CLT,
    Opcode.CLE,
    Opcode.CGT,
    Opcode.CGE,
    Opcode.ITOF,
    Opcode.FTOI,
}


def eliminate_common_subexpressions(function: FunctionIR) -> int:
    changes = 0
    for block in function.blocks:
        changes += _cse_block(block.instructions)
    return changes


def _operand_key(value):
    if isinstance(value, VReg):
        return ("r", value.type, value.id)
    return ("c", value.type, value.value)


def _expr_key(instr: Instr):
    keys = [_operand_key(v) for v in instr.operands]
    if instr.op in COMMUTATIVE:
        keys.sort()
    array_name = instr.array.name if instr.array is not None else None
    return (instr.op, tuple(keys), array_name)


def _cse_block(instructions: List[Instr]) -> int:
    available: Dict[tuple, VReg] = {}
    #: register -> expression keys that mention it (for invalidation)
    mentioned_by: Dict[VReg, List[tuple]] = {}
    changes = 0

    def invalidate_register(reg: VReg) -> None:
        for key in mentioned_by.pop(reg, []):
            available.pop(key, None)
        stale = [k for k, v in available.items() if v == reg]
        for k in stale:
            available.pop(k, None)

    def invalidate_loads(array_name=None) -> None:
        stale = [
            k
            for k in available
            if k[0] is Opcode.LOAD and (array_name is None or k[2] == array_name)
        ]
        for k in stale:
            available.pop(k, None)

    for index, instr in enumerate(instructions):
        if instr.op is Opcode.STORE:
            invalidate_loads(instr.array.name)
            continue
        if instr.op is Opcode.CALL:
            invalidate_loads()
            if instr.dest is not None:
                invalidate_register(instr.dest)
            continue

        new_fact = None
        if instr.op in _PURE or instr.op is Opcode.LOAD:
            key = _expr_key(instr)
            prior = available.get(key)
            if prior is not None and prior != instr.dest:
                instructions[index] = Instr(
                    Opcode.MOV, dest=instr.dest, operands=(prior,)
                )
                instr = instructions[index]
                changes += 1
            elif prior is None and instr.dest not in instr.uses():
                # Record the fact only after invalidating the old dest facts;
                # self-referencing computations (x = x + 1) are never recorded.
                new_fact = (key, instr)

        if instr.dest is not None:
            invalidate_register(instr.dest)
        if new_fact is not None:
            key, producer = new_fact
            available[key] = producer.dest
            for reg in producer.uses():
                mentioned_by.setdefault(reg, []).append(key)
    return changes
