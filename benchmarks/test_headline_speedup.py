"""The abstract's headline result.

Paper: "For typical programs in our environment, we observe a speedup
ranging from 3 to 6 using not more than 9 processors."
"""

from figures_common import write_figure
from repro.metrics.experiments import measure_pair, measure_user_program
from repro.metrics.series import Figure


def build_figure() -> Figure:
    fig = Figure(
        "Headline",
        "Speedup for typical programs, <= 9 processors",
        "workload",
        "speedup (elapsed)",
        xs=[
            "medium x8",
            "large x8",
            "huge x8",
            "user program (9 procs)",
            "user program (5 procs)",
        ],
    )
    series = fig.new_series("speedup")
    series.add("medium x8", measure_pair("medium", 8).speedup)
    series.add("large x8", measure_pair("large", 8).speedup)
    series.add("huge x8", measure_pair("huge", 8).speedup)
    series.add(
        "user program (9 procs)",
        measure_user_program(9, strategy="grouped").speedup,
    )
    series.add(
        "user program (5 procs)",
        measure_user_program(5, strategy="grouped").speedup,
    )
    return fig


def test_headline_speedup(benchmark, results_dir):
    fig = benchmark(build_figure)
    write_figure(results_dir, fig)
    series = fig.series_named("speedup")

    # Every typical (medium-or-bigger) workload speeds up by at least 3x
    # on at most 9 processors; nothing exceeds the ideal.
    for workload in fig.xs:
        assert 3.0 <= series.points[workload] <= 9.0
    # The paper's 3-6 band holds for the mixed user program.
    assert 3.0 <= series.points["user program (9 procs)"] <= 6.0
    assert 3.0 <= series.points["user program (5 procs)"] <= 6.0
