"""The compile-time / code-quality trade-off (§6).

"Any strategy that reduces the compilation time benefits the users in two
ways: the actual compilation time is reduced, or the compiler can employ
more time consuming optimizations and thereby improve the quality of the
code generated."

This bench measures both sides on the same kernel: optimization level vs
(a) compile work and (b) simulated execution cycles of the generated
code.  Parallel compilation is what makes the -O2 column affordable.
"""

from figures_common import write_figure
from repro.driver.sequential import SequentialCompiler
from repro.machine.warp_array import WarpArrayModel
from repro.metrics.series import Figure
from repro.warpsim.array_runner import run_module

KERNEL = """
module tradeoff
section s (cells 0..0)
  function main()
  var i, k: int; v, acc: float; a: array[32] of float;
  begin
    for k := 1 to 4 do
      receive(v);
      for i := 0 to 31 do
        a[i] := v * 0.5 + i * (2.0 * 0.25);
      end;
      acc := 0.0;
      for i := 0 to 31 do
        acc := acc + a[i] * 1.5;
      end;
      send(acc);
    end;
  end
end
end
"""

INPUTS = [1.0, 2.0, 3.0, 4.0]


def build_figure() -> Figure:
    fig = Figure(
        "§6 trade-off",
        "Optimization level vs compile work and code quality",
        "opt level",
        "value",
        xs=[0, 1, 2],
    )
    work = fig.new_series("compile work (units)")
    cycles = fig.new_series("execution cycles")
    outputs = None
    for level in (0, 1, 2):
        compiler = SequentialCompiler(
            array=WarpArrayModel(cell_count=1), opt_level=level
        )
        result = compiler.compile(KERNEL)
        run = run_module(result.download, list(INPUTS))
        if outputs is None:
            outputs = run.outputs
        assert run.outputs == outputs  # optimization never changes results
        work.add(level, float(result.profile.function_work()))
        cycles.add(level, float(run.cycles))
    return fig


def test_optimization_buys_code_quality_for_compile_time(
    benchmark, results_dir
):
    fig = benchmark(build_figure)
    write_figure(results_dir, fig)

    work = fig.series_named("compile work (units)")
    cycles = fig.series_named("execution cycles")

    # More optimization -> strictly more compile work...
    assert work.points[0] < work.points[1] < work.points[2]
    # ...and strictly faster generated code.
    assert cycles.points[0] > cycles.points[1] > cycles.points[2]
    # The -O2 (software-pipelined) code is substantially faster than -O0
    # (the accumulator recurrence bounds the win on this kernel).
    assert cycles.points[2] < 0.8 * cycles.points[0]
