"""Figure data model: named series over an x-axis, rendered as tables.

Each benchmark regenerates one of the paper's figures as a
:class:`Figure` — the same series the plot showed, printed as an aligned
table so `pytest benchmarks/ --benchmark-only` output reads like the
paper's evaluation section.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence


@dataclass
class Series:
    """One line of a figure."""

    label: str
    points: Dict[object, float] = field(default_factory=dict)

    def add(self, x, y: float) -> None:
        self.points[x] = y

    def ys(self, xs: Sequence) -> List[float]:
        return [self.points[x] for x in xs]


@dataclass
class Figure:
    """A reproduced figure: id, axes, and its series."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    xs: List[object] = field(default_factory=list)
    series: List[Series] = field(default_factory=list)

    def new_series(self, label: str) -> Series:
        s = Series(label)
        self.series.append(s)
        return s

    def series_named(self, label: str) -> Series:
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(f"no series {label!r} in figure {self.figure_id}")

    def render(self) -> str:
        """Aligned text table: one row per x, one column per series."""
        header = [self.x_label] + [s.label for s in self.series]
        rows = [header]
        for x in self.xs:
            row = [str(x)]
            for s in self.series:
                value = s.points.get(x)
                row.append("-" if value is None else f"{value:.2f}")
            rows.append(row)
        widths = [
            max(len(row[col]) for row in rows) for col in range(len(header))
        ]
        lines = [
            f"{self.figure_id}: {self.title}",
            f"  ({self.y_label})",
        ]
        for row in rows:
            lines.append(
                "  " + "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
            )
        return "\n".join(lines)
