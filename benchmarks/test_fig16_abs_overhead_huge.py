"""Figure 16 (appendix): absolute overhead for f_huge.

f_huge has the largest *absolute* overhead of all sizes: its function
masters page against the shared file server.
"""

from figures_common import absolute_overhead_figure, overheads_for, write_figure
from repro.workloads.sizes import FUNCTION_COUNTS, SIZE_ORDER


def test_fig16_abs_overhead_huge(benchmark, results_dir):
    fig = benchmark(absolute_overhead_figure, ["huge"], "Figure 16")
    write_figure(results_dir, fig)

    total = fig.series_named("total overhead f_huge")
    system = fig.series_named("system overhead f_huge")

    # Overhead takes off once several huge function masters page against
    # the shared server at once (n=2 can even dip slightly negative when
    # the sequential compiler's own memory pressure dominates).
    assert total.points[8] > total.points[4] > 0
    assert total.points[8] > 3.0 * max(total.points[1], 1.0)
    # System overhead is the bulk of the total at n=8.
    assert system.points[8] > 0.7 * total.points[8]

    # f_huge's absolute overhead at n=8 tops every other size class.
    huge_at_8 = total.points[8]
    for size in SIZE_ORDER:
        if size == "huge":
            continue
        other = overheads_for(size)[8].total_overhead
        assert huge_at_8 > other
