"""Ablation: procedure inlining improves parallel compilation (§5.1).

"The observation that parallel compilation is of marginal value when
compiling small functions supports our view that procedure inlining is an
important optimization ... the increase in size of each function operated
upon will also improve the speedup obtained by the parallel compiler."

We compile a module of four kernels that each call three tiny helpers,
(a) as written (16 small-ish tasks), and (b) after inlining with the
now-uncalled helpers dropped (4 fatter tasks), and compare the cluster
speedups.
"""

from figures_common import write_figure
from repro.asmlink.assembler import assembly_work_units
from repro.cluster.cluster import ClusterSimulation
from repro.codegen.compiler import compile_function
from repro.driver.phases import phase1_parse_and_check
from repro.driver.results import FunctionReport, WorkProfile
from repro.ir.instructions import Opcode
from repro.ir.loops import loop_nest_weight
from repro.ir.lowering import lower_module
from repro.machine.warp_cell import WarpCellModel
from repro.metrics.series import Figure
from repro.opt.inline import inline_calls_in_module
from repro.parallel.schedule import one_function_per_processor
from repro.workloads.kernels import synthetic_function


def _helper(name: str, scale: str) -> str:
    return (
        f"  function {name}(v: float) : float\n"
        f"  var q: int; r: float;\n"
        f"  begin\n"
        f"    r := v;\n"
        f"    for q := 0 to 7 do r := r * {scale} + 1.0; end;\n"
        f"    return r;\n"
        f"  end"
    )


def _worker(index: int) -> str:
    return (
        f"  function work{index}(x: float, y: float) : float\n"
        f"  var i: int; acc: float;\n"
        f"  begin\n"
        f"    acc := 0.0;\n"
        f"    for i := 0 to 15 do\n"
        f"      acc := acc + x * {index + 1}.0;\n"
        f"    end;\n"
        f"    return h{index}a(acc) + h{index}b(acc + y);\n"
        f"  end"
    )


def _source() -> str:
    parts = []
    for index in range(4):
        parts.append(_helper(f"h{index}a", "0.5"))
        parts.append(_helper(f"h{index}b", "0.25"))
        parts.append(_worker(index))
    body = "\n".join(parts)
    return f"module inl\nsection s (cells 0..0)\n{body}\nend\nend\n"


def _profile(inline: bool) -> WorkProfile:
    parsed = phase1_parse_and_check(_source())
    module_ir = lower_module(parsed.module, parsed.sema)
    cell = WarpCellModel()
    keep = {
        name: list(fns) for name, fns in module_ir.functions.items()
    }
    if inline:
        inline_calls_in_module(module_ir, threshold=200)
        # Helpers are dead once nothing calls them.
        called = {
            instr.callee
            for fn in module_ir.all_functions()
            for instr in fn.all_instructions()
            if instr.op is Opcode.CALL
        }
        keep = {
            name: [
                fn
                for fn in fns
                if fn.name in called or not fn.name.startswith("h")
            ]
            for name, fns in module_ir.functions.items()
        }

    profile = WorkProfile(
        parse_work=parsed.parse_work,
        sema_work=parsed.sema_work,
        source_lines=parsed.source_lines,
    )
    for section_name, fns in keep.items():
        for fn in fns:
            ir_size = fn.instruction_count()
            weight = loop_nest_weight(fn)
            obj = compile_function(fn, cell, opt_level=2)
            profile.functions.append(
                FunctionReport(
                    section_name=section_name,
                    name=fn.name,
                    source_lines=max(4, ir_size // 4),
                    ir_instructions=ir_size,
                    loop_weight=weight,
                    work_units=obj.info.work_units,
                    bundles=obj.bundle_count(),
                    pipelined_loops=obj.info.pipelined_loops,
                    initiation_intervals=list(obj.info.initiation_intervals),
                )
            )
            profile.assembly_work += assembly_work_units(obj)
    profile.link_work = len(profile.functions)
    profile.download_words = sum(f.bundles for f in profile.functions) * 4
    return profile


def build_figure() -> Figure:
    sim = ClusterSimulation()
    fig = Figure(
        "Ablation: inlining",
        "Procedure inlining vs parallel-compilation speedup",
        "configuration",
        "value",
        xs=["as written", "inlined"],
    )
    speedups = fig.new_series("speedup (one function per processor)")
    tasks = fig.new_series("parallel tasks")
    for label, inline in (("as written", False), ("inlined", True)):
        profile = _profile(inline)
        seq = sim.run_sequential(profile)
        par = sim.run_parallel(
            profile, one_function_per_processor(profile.functions)
        )
        speedups.add(label, seq.elapsed / par.elapsed)
        tasks.add(label, len(profile.functions))
    return fig


def test_inlining_improves_parallel_speedup(benchmark, results_dir):
    fig = benchmark(build_figure)
    write_figure(results_dir, fig)

    speedups = fig.series_named("speedup (one function per processor)")
    tasks = fig.series_named("parallel tasks")

    # Inlining removes the helper tasks...
    assert tasks.points["inlined"] < tasks.points["as written"]
    # ...and the fatter remaining functions parallelize better.
    assert speedups.points["inlined"] > speedups.points["as written"]
