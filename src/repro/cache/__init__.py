"""Persistent function-level artifact cache (incremental compilation).

The paper's correctness argument — "function masters are pure: the same
task always produces the same object code" — makes phase-2/3 results
cacheable not just within a run (the warm farm's phase-1 LRU) but
*across* runs.  This package keys each function's compiled artifact by a
content fingerprint of everything that can influence phases 2 and 3
(:mod:`repro.cache.fingerprint`) and stores the pickled result in an
on-disk, concurrency-safe, size-bounded store
(:mod:`repro.cache.store`).  The driver consults it before dispatching
tasks to a backend, so editing one function of a module re-runs phases
2-3 for exactly that function.
"""

from .fingerprint import (
    CACHE_SCHEMA_VERSION,
    compiler_salt,
    function_fingerprint,
    module_fingerprints,
)
from .store import ArtifactCache, CacheStats, default_cache_dir

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "CACHE_SCHEMA_VERSION",
    "compiler_salt",
    "default_cache_dir",
    "function_fingerprint",
    "module_fingerprints",
]
