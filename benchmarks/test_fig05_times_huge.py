"""Figure 5: execution times for f_huge.

Paper: "Still, the parallel compiler is much faster than the sequential
compiler.  However, compared to f_large, the speedup obtained by the
parallel compilation decreases."
"""

from figures_common import times_figure, write_figure
from repro.metrics.experiments import measure_pair
from repro.workloads.sizes import FUNCTION_COUNTS


def test_fig05_times_huge(benchmark, results_dir):
    fig = benchmark(times_figure, "huge", "Figure 5")
    write_figure(results_dir, fig)

    seq = fig.series_named("elapsed seq")
    par = fig.series_named("elapsed par")
    for n in (2, 4, 8):
        assert par.points[n] < seq.points[n]  # still much faster

    # But the speedup is clearly lower than f_large's once several
    # function masters page concurrently (n >= 4); at n=2 the two sizes
    # are within noise of each other.
    for n in (4, 8):
        assert (
            measure_pair("huge", n).speedup
            < measure_pair("large", n).speedup
        )
    assert (
        measure_pair("huge", 2).speedup
        <= 1.05 * measure_pair("large", 2).speedup
    )
