"""Backend/cache ownership and the dispatch seam in the master."""

from repro.driver.master import ParallelCompiler
from repro.driver.sequential import SequentialCompiler
from repro.parallel.backend import stream_task_results
from repro.parallel.local import SerialBackend

SOURCE = """
module own_demo
section s (cells 0..0)
  function main()
  var v: float; k: int;
  begin
    for k := 1 to 3 do receive(v); send(v * 2.0); end;
  end
end
end
"""


class ShutdownProbe(SerialBackend):
    def __init__(self):
        super().__init__()
        self.shutdowns = 0

    def shutdown(self):
        self.shutdowns += 1


class TestOwnership:
    def test_borrowed_backend_survives_close(self):
        backend = ShutdownProbe()
        with ParallelCompiler(backend=backend) as compiler:
            compiler.compile(SOURCE)
        assert backend.shutdowns == 0

    def test_owned_backend_is_shut_down_once(self):
        backend = ShutdownProbe()
        compiler = ParallelCompiler(backend=backend, owns_backend=True)
        compiler.compile(SOURCE)
        compiler.close()
        assert backend.shutdowns == 1

    def test_close_tolerates_shutdownless_backend(self):
        compiler = ParallelCompiler(
            backend=SerialBackend(), owns_backend=True
        )
        compiler.compile(SOURCE)
        compiler.close()  # SerialBackend has no shutdown(): no-op


class TestDispatchSeam:
    def test_custom_dispatch_replaces_backend(self):
        """A dispatch callable sees every cache-miss task and its
        results flow back into a bit-identical module."""
        seen = []
        inner = SerialBackend()

        def dispatch(tasks):
            seen.extend(tasks)
            return stream_task_results(inner, tasks)

        expected = SequentialCompiler().compile(SOURCE).digest
        result = ParallelCompiler(
            backend=SerialBackend(), dispatch=dispatch
        ).compile(SOURCE)
        assert result.digest == expected
        assert [t.function_name for t in seen] == ["main"]

    def test_dispatch_profile_reports_dispatch_workers(self):
        class WideDispatch:
            effective_worker_count = 7

            def __call__(self, tasks):
                return stream_task_results(SerialBackend(), tasks)

        result = ParallelCompiler(
            backend=SerialBackend(), dispatch=WideDispatch()
        ).compile(SOURCE)
        assert result.profile.workers_used == 7
