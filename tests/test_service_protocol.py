"""The JSON-lines socket protocol: serve, submit, status, shutdown."""

import json
import socket
import threading
import time

import pytest

from repro.driver.sequential import SequentialCompiler
from repro.parallel.local import SerialBackend
from repro.service import (
    CompileService,
    ServiceClient,
    ServiceError,
    ServiceSocketServer,
)
from repro.service.client import parse_address, resolve_address

SOURCE = """
module proto_mod
section s (cells 0..0)
  function main()
  var v: float; k: int;
  begin
    for k := 1 to 3 do receive(v); send(v * 2.0); end;
  end
end
end
"""


@pytest.fixture
def endpoint():
    service = CompileService(SerialBackend(), max_running=2)
    server = ServiceSocketServer(service)
    thread = threading.Thread(
        target=server.serve_until_shutdown, daemon=True
    )
    thread.start()
    try:
        yield server.address, service
    finally:
        if not thread.is_alive():
            return
        server.request_shutdown(drain=False)
        thread.join(timeout=30.0)


class TestAddresses:
    def test_parse_address(self):
        assert parse_address("127.0.0.1:80") == ("127.0.0.1", 80)

    def test_parse_address_rejects_portless(self):
        with pytest.raises(ValueError, match="HOST:PORT"):
            parse_address("localhost")

    def test_resolve_prefers_explicit(self, monkeypatch):
        monkeypatch.setenv("WARPCC_SERVICE", "env:1")
        assert resolve_address("cli:2") == "cli:2"
        assert resolve_address(None) == "env:1"

    def test_resolve_without_any_address(self, monkeypatch):
        monkeypatch.delenv("WARPCC_SERVICE", raising=False)
        with pytest.raises(ServiceError) as excinfo:
            resolve_address(None)
        assert excinfo.value.reason == "no-address"


class TestProtocol:
    def test_ping(self, endpoint):
        address, _ = endpoint
        reply = ServiceClient(address).ping()
        assert reply["protocol"] == 1

    def test_submit_streams_events_and_matches_solo_digest(self, endpoint):
        address, _ = endpoint
        expected = SequentialCompiler().compile(SOURCE).digest
        events = []
        job = ServiceClient(address).submit_and_wait(
            SOURCE,
            tenant="alice",
            filename="proto_mod.w2",
            on_event=events.append,
            timeout=60.0,
        )
        assert job["state"] == "done"
        assert job["digest"] == expected
        assert job["report"]["digest"] == expected
        names = [event["event"] for event in events]
        assert names[0] == "queued" and names[-1] == "done"
        assert "function_done" in names

    def test_status_overview_and_gantt(self, endpoint):
        address, _ = endpoint
        client = ServiceClient(address)
        job = client.submit_and_wait(SOURCE, tenant="bob", timeout=60.0)
        overview = client.status(gantt=True)
        assert overview["stats"]["done"] >= 1
        assert any(j["job"] == job["job"] for j in overview["jobs"])
        assert "slot 0" in overview["gantt"]
        detail = client.status(job["job"])
        assert detail["job"]["state"] == "done"

    def test_unknown_job_is_a_protocol_error(self, endpoint):
        address, _ = endpoint
        client = ServiceClient(address)
        with pytest.raises(ServiceError) as excinfo:
            client.status("j999")
        assert excinfo.value.reason == "unknown-job"
        with pytest.raises(ServiceError):
            client.cancel("j999")

    def test_malformed_request_does_not_kill_server(self, endpoint):
        address, _ = endpoint
        host, port = parse_address(address)
        with socket.create_connection((host, port), timeout=10.0) as sock:
            sock.sendall(b"this is not json\n")
            sock.shutdown(socket.SHUT_WR)
            reply = json.loads(sock.makefile().readline())
        assert reply["ok"] is False
        assert ServiceClient(address).ping()["ok"] is True

    def test_admission_reason_crosses_the_wire(self, endpoint):
        address, service = endpoint
        service.per_tenant_inflight = 0  # force immediate rejection
        client = ServiceClient(address)
        try:
            with pytest.raises(ServiceError) as excinfo:
                client.submit(SOURCE, tenant="alice")
            assert excinfo.value.reason == "tenant-cap"
        finally:
            service.per_tenant_inflight = 8

    def test_bad_json_reply_names_the_reason_and_drops_the_connection(
        self, endpoint
    ):
        address, _ = endpoint
        host, port = parse_address(address)
        with socket.create_connection((host, port), timeout=10.0) as sock:
            sock.sendall(b"{not json]\n")
            rfile = sock.makefile("rb")
            reply = json.loads(rfile.readline())
            assert reply["ok"] is False
            assert reply["reason"] == "bad-json"
            # Framing state is unknowable after garbage: the server must
            # drop the connection, not keep guessing at line boundaries.
            assert rfile.readline() == b""
        assert ServiceClient(address).ping()["ok"] is True

    def test_oversized_line_is_refused_not_buffered(self, endpoint, monkeypatch):
        import repro.service.server as server_mod

        monkeypatch.setattr(server_mod, "MAX_REQUEST_BYTES", 256)
        address, _ = endpoint
        host, port = parse_address(address)
        with socket.create_connection((host, port), timeout=10.0) as sock:
            sock.sendall(b'{"op": "ping", "pad": "' + b"x" * 4096 + b'"}\n')
            rfile = sock.makefile("rb")
            reply = json.loads(rfile.readline())
            assert reply["ok"] is False
            assert reply["reason"] == "oversized-frame"
            assert rfile.readline() == b""
        assert ServiceClient(address).ping()["ok"] is True

    def test_connection_dying_mid_line_never_parses(self, endpoint):
        address, _ = endpoint
        host, port = parse_address(address)
        with socket.create_connection((host, port), timeout=10.0) as sock:
            sock.sendall(b'{"op": "shut')  # no newline: writer died here
            sock.shutdown(socket.SHUT_WR)
            rfile = sock.makefile("rb")
            reply = json.loads(rfile.readline())
            assert reply["ok"] is False
            assert reply["reason"] == "truncated-frame"
        # The partial frame was never dispatched: the service is still up.
        assert ServiceClient(address).ping()["ok"] is True

    def test_non_object_frame_is_rejected(self, endpoint):
        address, _ = endpoint
        host, port = parse_address(address)
        with socket.create_connection((host, port), timeout=10.0) as sock:
            sock.sendall(b"[1, 2, 3]\n")
            rfile = sock.makefile("rb")
            reply = json.loads(rfile.readline())
            assert reply["ok"] is False
            assert reply["reason"] == "bad-request"

    def test_blank_lines_are_skipped_not_errors(self, endpoint):
        address, _ = endpoint
        host, port = parse_address(address)
        with socket.create_connection((host, port), timeout=10.0) as sock:
            sock.sendall(b'\n\n{"op": "ping"}\n')
            reply = json.loads(sock.makefile("rb").readline())
            assert reply["ok"] is True

    def test_client_retries_initial_connect_through_startup_race(self):
        """``warpcc submit`` racing ``warpcc serve`` binding its socket:
        the client's capped-backoff connect must ride out the refused
        window and succeed once the server is up."""
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()  # port free: connects refused until we bind below

        service = CompileService(SerialBackend(), max_running=2)
        started = threading.Event()

        def late_serve():
            time.sleep(0.3)
            server = ServiceSocketServer(service, port=port)
            started.set()
            server.serve_until_shutdown()

        thread = threading.Thread(target=late_serve, daemon=True)
        thread.start()
        client = ServiceClient(
            f"127.0.0.1:{port}", connect_attempts=12, connect_backoff=0.05
        )
        assert client.ping()["ok"] is True
        assert started.is_set()
        client.shutdown(drain=False)
        thread.join(timeout=30.0)

    def test_client_connect_gives_up_with_the_real_error(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        client = ServiceClient(
            f"127.0.0.1:{port}", connect_attempts=2, connect_backoff=0.01
        )
        with pytest.raises(ConnectionRefusedError):
            client.ping()

    def test_shutdown_drains_in_flight_jobs(self):
        service = CompileService(SerialBackend())
        server = ServiceSocketServer(service)
        thread = threading.Thread(
            target=server.serve_until_shutdown, daemon=True
        )
        thread.start()
        client = ServiceClient(server.address)
        job_id = client.submit(SOURCE, tenant="alice")
        reply = client.shutdown(drain=True)
        assert reply["draining"] is True
        thread.join(timeout=60.0)
        assert not thread.is_alive()
        assert service.job(job_id).state == "done"
