"""Loop dependence analysis for software pipelining.

Given an innermost, single-block loop body, builds the dependence graph
the modulo scheduler needs: edges between body instructions labelled with
a *kind* (true / anti / output / memory / io) and an *iteration distance*
(0 = same iteration, d>0 = the sink executes d iterations after the
source).

Array subscripts are classified against the loop induction variable with a
simple single-index-variable (SIV) test: subscripts of the form ``i + c``
with constant ``c`` lead to exact dependence distances; anything else is
treated conservatively.  This mirrors "computation of global dependencies"
in phase 2 of the paper's compiler (§3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..ir.cfg import BasicBlock, FunctionIR
from ..ir.instructions import Instr, Opcode
from ..ir.loops import Loop
from ..ir.values import Const, VReg

#: Dependence kinds.
TRUE = "true"
ANTI = "anti"
OUTPUT = "output"
MEMORY = "memory"
IO = "io"

_SIDE_EFFECT_OPS = {Opcode.SEND, Opcode.RECV, Opcode.CALL}


@dataclass(frozen=True)
class DependenceEdge:
    """``sink`` must issue no earlier than ``distance`` iterations after
    ``source`` (plus a latency offset the scheduler computes)."""

    source: int  # index into the body instruction list
    sink: int
    kind: str
    distance: int


@dataclass
class DependenceGraph:
    """Dependence edges over one loop body's instruction list."""

    instructions: List[Instr]
    edges: List[DependenceEdge] = field(default_factory=list)

    def successors(self, index: int) -> List[DependenceEdge]:
        return [e for e in self.edges if e.source == index]

    def add(self, source: int, sink: int, kind: str, distance: int) -> None:
        edge = DependenceEdge(source, sink, kind, distance)
        if edge not in self.edges:
            self.edges.append(edge)


@dataclass(frozen=True)
class Subscript:
    """Classification of an array index against the induction register."""

    kind: str  # 'affine' (i + offset), 'const', 'invariant', 'unknown'
    offset: int = 0  # for 'affine' and 'const'
    reg: Optional[VReg] = None  # for 'invariant'


def find_induction_register(
    function: FunctionIR, loop: Loop
) -> Optional[Tuple[VReg, int]]:
    """The loop's induction register and its per-iteration step.

    Recognizes the pattern lowering emits: a header comparing ``var`` to a
    bound and a body ending with ``var := var + step``.  Returns None when
    the loop does not match (the pipeliner then falls back to list
    scheduling).
    """
    header = function.block_named(loop.header)
    term = header.terminator
    if term is None or term.op is not Opcode.BR:
        return None
    compare = None
    for instr in header.body:
        if instr.dest is not None and instr.dest == term.operands[0]:
            compare = instr
    if compare is None or compare.op not in (Opcode.CLE, Opcode.CGE):
        return None
    var = compare.operands[0]
    if not isinstance(var, VReg):
        return None

    body_blocks = loop.blocks - {loop.header}
    if len(body_blocks) != 1:
        return None
    body = function.block_named(next(iter(body_blocks)))
    # Find the trailing 'var := var + step' pattern:  add t, var, #s ; mov var, t
    step = _find_step(body, var)
    if step is None:
        return None
    return var, step


def _find_step(body: BasicBlock, var: VReg) -> Optional[int]:
    instructions = body.body
    add_dest: Optional[VReg] = None
    step: Optional[int] = None
    for instr in instructions:
        if (
            instr.op is Opcode.ADD
            and len(instr.operands) == 2
            and instr.operands[0] == var
            and isinstance(instr.operands[1], Const)
        ):
            add_dest = instr.dest
            step = int(instr.operands[1].value)
        elif (
            instr.op is Opcode.MOV
            and instr.dest == var
            and add_dest is not None
            and instr.operands[0] == add_dest
        ):
            return step
        elif instr.dest == var:
            add_dest = None  # var redefined some other way
            step = None
    return None


def classify_subscript(
    body: BasicBlock, index_value, induction: Optional[VReg]
) -> Subscript:
    """Classify an array index operand relative to the induction variable."""
    if isinstance(index_value, Const):
        return Subscript(kind="const", offset=int(index_value.value))
    if not isinstance(index_value, VReg):
        return Subscript(kind="unknown")
    if induction is not None and index_value == induction:
        return Subscript(kind="affine", offset=0)
    defining = _single_definition(body, index_value)
    if defining is None:
        # Defined outside the body (and not redefined inside): invariant.
        if not _defined_in(body, index_value):
            return Subscript(kind="invariant", reg=index_value)
        return Subscript(kind="unknown")
    if induction is None:
        return Subscript(kind="unknown")
    if defining.op is Opcode.ADD and len(defining.operands) == 2:
        a, b = defining.operands
        if a == induction and isinstance(b, Const):
            return Subscript(kind="affine", offset=int(b.value))
        if b == induction and isinstance(a, Const):
            return Subscript(kind="affine", offset=int(a.value))
    if defining.op is Opcode.SUB and len(defining.operands) == 2:
        a, b = defining.operands
        if a == induction and isinstance(b, Const):
            return Subscript(kind="affine", offset=-int(b.value))
    return Subscript(kind="unknown")


def _single_definition(body: BasicBlock, reg: VReg) -> Optional[Instr]:
    found = None
    for instr in body.instructions:
        if instr.dest == reg:
            if found is not None:
                return None
            found = instr
    return found


def _defined_in(body: BasicBlock, reg: VReg) -> bool:
    return any(instr.dest == reg for instr in body.instructions)


def build_dependence_graph(
    function: FunctionIR, loop: Loop
) -> Optional[DependenceGraph]:
    """Dependence graph for a pipelinable loop's body, or None if the loop
    shape is not analyzable."""
    body_blocks = loop.blocks - {loop.header}
    if len(body_blocks) != 1:
        return None
    body = function.block_named(next(iter(body_blocks)))
    instructions = body.body  # excludes the back-edge jump
    graph = DependenceGraph(instructions=instructions)

    induction_info = find_induction_register(function, loop)
    induction = induction_info[0] if induction_info else None
    step = induction_info[1] if induction_info else 1

    _register_dependences(graph, instructions)
    _memory_dependences(graph, body, instructions, induction, step)
    _io_dependences(graph, instructions)
    return graph


def _register_dependences(graph: DependenceGraph, instructions: List[Instr]) -> None:
    defs_of: Dict[VReg, List[int]] = {}
    uses_of: Dict[VReg, List[int]] = {}
    for i, instr in enumerate(instructions):
        if instr.dest is not None:
            defs_of.setdefault(instr.dest, []).append(i)
        for reg in instr.uses():
            uses_of.setdefault(reg, []).append(i)

    for reg, def_sites in defs_of.items():
        use_sites = uses_of.get(reg, [])
        # True deps: each use depends on the latest earlier def (distance 0)
        # or on the last def of the previous iteration (distance 1).
        last_def = def_sites[-1]
        for use in use_sites:
            earlier = [d for d in def_sites if d < use]
            if earlier:
                graph.add(earlier[-1], use, TRUE, 0)
            else:
                graph.add(last_def, use, TRUE, 1)
        # Anti deps: a def must wait for earlier reads of the old value.
        for use in use_sites:
            later_defs = [d for d in def_sites if d >= use]
            if later_defs:
                if later_defs[0] != use:
                    graph.add(use, later_defs[0], ANTI, 0)
            else:
                first_def = def_sites[0]
                graph.add(use, first_def, ANTI, 1)
        # Output deps between successive defs, wrapping across iterations.
        for a, b in zip(def_sites, def_sites[1:]):
            graph.add(a, b, OUTPUT, 0)
        graph.add(def_sites[-1], def_sites[0], OUTPUT, 1)


def _memory_dependences(
    graph: DependenceGraph,
    body: BasicBlock,
    instructions: List[Instr],
    induction: Optional[VReg],
    step: int,
) -> None:
    accesses = [
        (i, instr)
        for i, instr in enumerate(instructions)
        if instr.op in (Opcode.LOAD, Opcode.STORE)
    ]
    for x in range(len(accesses)):
        for y in range(x, len(accesses)):
            i, a = accesses[x]
            j, b = accesses[y]
            if i == j:
                continue
            if a.op is Opcode.LOAD and b.op is Opcode.LOAD:
                continue
            if a.array.name != b.array.name:
                continue
            _memory_pair(graph, body, induction, step, i, a, j, b)


def _memory_pair(
    graph: DependenceGraph,
    body: BasicBlock,
    induction: Optional[VReg],
    step: int,
    i: int,
    a: Instr,
    j: int,
    b: Instr,
) -> None:
    sub_a = classify_subscript(body, a.operands[0], induction)
    sub_b = classify_subscript(body, b.operands[0], induction)

    if sub_a.kind == "affine" and sub_b.kind == "affine" and step != 0:
        delta = sub_a.offset - sub_b.offset  # a touches what b touches later
        if delta % step != 0:
            return  # provably independent
        d = delta // step
        if d == 0:
            graph.add(i, j, MEMORY, 0)
        elif d > 0:
            # a in iteration k touches the cell b touches in iteration k+d.
            graph.add(i, j, MEMORY, d)
        else:
            graph.add(j, i, MEMORY, -d)
        return
    if sub_a.kind == "const" and sub_b.kind == "const":
        if sub_a.offset != sub_b.offset:
            return
        graph.add(i, j, MEMORY, 0)
        graph.add(j, i, MEMORY, 1)
        return
    if (
        sub_a.kind == "invariant"
        and sub_b.kind == "invariant"
        and sub_a.reg == sub_b.reg
    ):
        graph.add(i, j, MEMORY, 0)
        graph.add(j, i, MEMORY, 1)
        return
    # Unknown subscripts: serialize within and across iterations.
    graph.add(i, j, MEMORY, 0)
    graph.add(j, i, MEMORY, 1)


def _io_dependences(graph: DependenceGraph, instructions: List[Instr]) -> None:
    """Sends, receives, and calls keep their program order (queues!)."""
    effects = [
        i for i, instr in enumerate(instructions) if instr.op in _SIDE_EFFECT_OPS
    ]
    for a, b in zip(effects, effects[1:]):
        graph.add(a, b, IO, 0)
    if len(effects) >= 1:
        graph.add(effects[-1], effects[0], IO, 1)
