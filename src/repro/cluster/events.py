"""Discrete-event simulation kernel.

A tiny, deterministic event queue: callbacks fire in (time, sequence)
order, so two events at the same instant run in scheduling order.  All of
the cluster model (CPUs, Ethernet, file server) is built from this kernel
plus the processor-sharing resource in :mod:`repro.cluster.network`.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple


class Simulator:
    """Deterministic event loop with virtual time."""

    def __init__(self):
        self.now = 0.0
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._sequence = itertools.count()
        self._running = False

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` seconds from now (delay >= 0)."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(
            self._queue, (self.now + delay, next(self._sequence), callback)
        )

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        self.schedule(max(0.0, time - self.now), callback)

    def run(self, until: Optional[float] = None) -> float:
        """Drain the queue (or stop at ``until``); returns the final time."""
        self._running = True
        while self._queue:
            time, _seq, callback = heapq.heappop(self._queue)
            if until is not None and time > until:
                heapq.heappush(self._queue, (time, _seq, callback))
                break
            self.now = time
            callback()
        self._running = False
        return self.now

    @property
    def pending_events(self) -> int:
        return len(self._queue)
