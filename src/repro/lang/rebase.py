"""Span rebasing for cached per-function parse trees.

A parse-cache entry stores a function's checked AST with the absolute
spans it had when first parsed.  When the same function text reappears
at a different place in the file (an edit above it inserted or deleted
lines), the cached tree is still structurally correct but every span is
stale.  Rebasing rewrites every :class:`~repro.lang.source.Position` by
the line/offset delta between the old and new window base — columns are
untouched, which is sound because the cache key includes the window's
start *column* (see :mod:`repro.cache.parse_store`), so a hit guarantees
the function begins at the same column and every intra-function column
is reproduced exactly.  The result is bit-identical to a fresh parse at
the new location.

The walk mutates the (freshly unpickled, unshared) tree in place.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from . import ast_nodes as ast
from .source import Position, Span


class _Shifter:
    """Rewrites positions by a fixed (line, offset) delta."""

    def __init__(self, delta_line: int, delta_offset: int, filename: str):
        self._dl = delta_line
        self._do = delta_offset
        self._filename = filename
        # Merged spans share Position objects; memoizing keeps the walk
        # linear and preserves sharing in the rebased tree.
        self._memo: Dict[Tuple[int, int, int], Position] = {}

    def position(self, pos: Position) -> Position:
        key = (pos.line, pos.column, pos.offset)
        cached = self._memo.get(key)
        if cached is None:
            cached = Position(
                line=pos.line + self._dl,
                column=pos.column,
                offset=pos.offset + self._do,
            )
            self._memo[key] = cached
        return cached

    def span(self, span: Span) -> Span:
        return Span(
            self._filename, self.position(span.start), self.position(span.end)
        )


def rebase_function(
    fn: ast.Function,
    calls: List[Tuple[str, Span]],
    old_base: Position,
    new_base: Position,
    filename: str,
) -> List[Tuple[str, Span]]:
    """Shift every span in ``fn`` (and the call-site list) from
    ``old_base`` to ``new_base``; returns the rebased call list.

    No-op (returns ``calls`` unchanged) when the base did not move and
    the filename matches.
    """
    delta_line = new_base.line - old_base.line
    delta_offset = new_base.offset - old_base.offset
    if delta_line == 0 and delta_offset == 0 and (
        fn.span.filename == filename
    ):
        return calls
    shifter = _Shifter(delta_line, delta_offset, filename)
    fn.span = shifter.span(fn.span)
    for param in fn.params:
        param.span = shifter.span(param.span)
    for decl in fn.locals:
        decl.span = shifter.span(decl.span)
    for stmt in fn.body:
        _rebase_stmt(stmt, shifter)
    return [(callee, shifter.span(span)) for callee, span in calls]


def _rebase_stmt(stmt: ast.Stmt, shifter: _Shifter) -> None:
    stmt.span = shifter.span(stmt.span)
    if isinstance(stmt, ast.AssignStmt):
        _rebase_expr(stmt.target, shifter)
        _rebase_expr(stmt.value, shifter)
    elif isinstance(stmt, ast.IfStmt):
        _rebase_expr(stmt.condition, shifter)
        for s in stmt.then_body:
            _rebase_stmt(s, shifter)
        for s in stmt.else_body:
            _rebase_stmt(s, shifter)
    elif isinstance(stmt, ast.ForStmt):
        _rebase_expr(stmt.low, shifter)
        _rebase_expr(stmt.high, shifter)
        _rebase_expr(stmt.step, shifter)
        for s in stmt.body:
            _rebase_stmt(s, shifter)
    elif isinstance(stmt, ast.WhileStmt):
        _rebase_expr(stmt.condition, shifter)
        for s in stmt.body:
            _rebase_stmt(s, shifter)
    elif isinstance(stmt, (ast.ReturnStmt, ast.SendStmt)):
        _rebase_expr(stmt.value, shifter)
    elif isinstance(stmt, ast.ReceiveStmt):
        _rebase_expr(stmt.target, shifter)
    elif isinstance(stmt, ast.CallStmt):
        _rebase_expr(stmt.call, shifter)
    else:  # pragma: no cover - exhaustive over AST statements
        raise TypeError(f"unhandled statement {type(stmt).__name__}")


def _rebase_expr(expr: Optional[ast.Expr], shifter: _Shifter) -> None:
    if expr is None:
        return
    expr.span = shifter.span(expr.span)
    if isinstance(expr, ast.IndexExpr):
        _rebase_expr(expr.base, shifter)
        _rebase_expr(expr.index, shifter)
    elif isinstance(expr, ast.UnaryExpr):
        _rebase_expr(expr.operand, shifter)
    elif isinstance(expr, ast.BinaryExpr):
        _rebase_expr(expr.left, shifter)
        _rebase_expr(expr.right, shifter)
    elif isinstance(expr, ast.CallExpr):
        for arg in expr.args:
            _rebase_expr(arg, shifter)
