"""Section masters: recombination of per-function results.

"When code has been generated for each function of the section, the
section master combines the results so that the parallel compiler
produces the same input for the assembly phase as the sequential
compiler.  Furthermore, the section master process is responsible to
combine the diagnostic output" (§3.2).

Function masters finish in arbitrary order; the section master restores
*source order*, which is what makes the parallel compiler's output
bit-identical to the sequential one.

:class:`StreamingSectionCombiner` is the incremental form: results are
fed in one at a time as they arrive (from the artifact cache or from a
streaming backend), and each section is combined the moment its last
function lands — a module that is mostly cache hits reaches phase 4
without waiting on a global barrier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..asmlink.objformat import AssembledFunction, ObjectFunction
from ..lang import ast_nodes as ast
from .function_master import FunctionTaskResult, result_payload_digest
from .results import FunctionReport


class SectionCombineError(Exception):
    """Results do not cover the section's functions exactly."""


@dataclass
class CombinedSection:
    """A section's recombined compilation output, in source order."""

    section_name: str
    objects: List[ObjectFunction] = field(default_factory=list)
    reports: List[FunctionReport] = field(default_factory=list)
    diagnostics: List[str] = field(default_factory=list)
    #: work proxy for the recombination itself (drives the cost model)
    combine_work: int = 0
    #: distributed-assembly payloads, keyed by function name (functions
    #: whose master's assembly failed are absent; the linker assembles
    #: them itself)
    assembled: Dict[str, AssembledFunction] = field(default_factory=dict)
    #: per-function payload digests in source order — the content
    #: fingerprints the link cache keys a section's CellProgram by
    payload_digests: List[str] = field(default_factory=list)


def combine_section_results(
    section: ast.Section, results: List[FunctionTaskResult]
) -> CombinedSection:
    """Restore source order and merge diagnostics for one section."""
    by_name: Dict[str, FunctionTaskResult] = {}
    for result in results:
        if result.section_name != section.name:
            raise SectionCombineError(
                f"result for {result.section_name}.{result.function_name} "
                f"delivered to section master {section.name!r}"
            )
        if result.function_name in by_name:
            raise SectionCombineError(
                f"duplicate result for function {result.function_name!r}"
            )
        by_name[result.function_name] = result

    expected = [fn.name for fn in section.functions]
    missing = [name for name in expected if name not in by_name]
    if missing:
        raise SectionCombineError(
            f"section {section.name!r} missing results for {missing}"
        )
    extra = [name for name in by_name if name not in expected]
    if extra:
        raise SectionCombineError(
            f"section {section.name!r} got unexpected results for {extra}"
        )

    combined = CombinedSection(section_name=section.name)
    for name in expected:
        result = by_name[name]
        combined.objects.append(result.obj)
        combined.reports.append(result.report)
        combined.diagnostics.extend(result.diagnostics)
        combined.combine_work += result.obj.bundle_count() + 1
        # getattr: results built by hand in older tests (and artifacts
        # pickled before the schema bump) may predate the field.
        assembled = getattr(result, "assembled", None)
        if assembled is not None:
            combined.assembled[name] = assembled
        combined.payload_digests.append(
            result.payload_digest or result_payload_digest(result)
        )
    return combined


class StreamingSectionCombiner:
    """Section masters that combine while function masters still run.

    Feed every :class:`FunctionTaskResult` through :meth:`add`; a section
    is combined (validated, source-ordered) eagerly when its result count
    reaches its function count.  :meth:`finalize` combines whatever
    remains and raises :class:`SectionCombineError` for sections with
    missing, duplicate, or misdelivered results — the same checks the
    barrier-style :func:`combine_section_results` performs.
    """

    def __init__(self, sections: Sequence[ast.Section]):
        self._sections: Dict[str, ast.Section] = {}
        self._pending: Dict[str, List[FunctionTaskResult]] = {}
        self._combined: Dict[str, CombinedSection] = {}
        for section in sections:
            if section.name in self._sections:
                raise SectionCombineError(
                    f"duplicate section {section.name!r}"
                )
            self._sections[section.name] = section
            self._pending[section.name] = []

    def add(self, result: FunctionTaskResult) -> Optional[CombinedSection]:
        """Accept one result; returns the combined section if this result
        completed it, else None."""
        section = self._sections.get(result.section_name)
        if section is None:
            raise SectionCombineError(
                f"result for unknown section {result.section_name!r}"
            )
        if result.section_name in self._combined:
            raise SectionCombineError(
                f"late result for already-combined section "
                f"{result.section_name!r}"
            )
        pending = self._pending[result.section_name]
        pending.append(result)
        if len(pending) < len(section.functions):
            return None
        # combine_section_results re-validates: duplicates masquerading
        # as completeness (two results for one function) raise here.
        combined = combine_section_results(section, pending)
        self._combined[result.section_name] = combined
        del self._pending[result.section_name][:]
        return combined

    @property
    def sections_combined(self) -> int:
        return len(self._combined)

    def combined_sections(self) -> List[CombinedSection]:
        """Sections combined so far, in module order — lets the driver
        start linking cache-served sections before any task returns."""
        return [
            self._combined[name]
            for name in self._sections
            if name in self._combined
        ]

    def finalize(self) -> Dict[str, CombinedSection]:
        """Combine any not-yet-complete sections (raising on missing
        results) and return section name -> combined, for all sections."""
        for name, section in self._sections.items():
            if name not in self._combined:
                self._combined[name] = combine_section_results(
                    section, self._pending[name]
                )
        return self._combined
