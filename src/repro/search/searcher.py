"""The optimization-variant search engine (``warpcc search``).

The paper's machinery makes this almost free: function masters are pure
functions of (source, config), the artifact cache memoizes them, and
phase 4 is a pure recombination of object functions.  The search
exploits all three —

1. compile the module once per config in the variant space (each
   compile rides the normal :class:`ParallelCompiler` surface: warm
   pools, supervision, fabric, every cache tier — budgets are already
   part of the artifact fingerprints, so warm searches skip straight to
   linking);
2. establish the **baseline**: the reference-config module, simulated
   on the scoring inputs (if the baseline itself fails to simulate the
   search abstains and ships it unchanged — there is no semantic
   signature to judge variants against);
3. for every (function, non-reference config) pair, build the *swap
   module* — the baseline with exactly that one function replaced —
   and score it in warpsim.  Scores are memoized in the
   :class:`~repro.cache.variant_store.VariantStore` keyed by (function
   fingerprint, config, input digest).  A variant whose object code is
   bit-identical to the baseline's is skipped outright; one that
   fails to simulate or changes the observed outputs is disqualified;
4. pick each function's winner: minimum (cycles, config index) over
   the baseline and every surviving variant — strictly-better-or-
   reference, ties break toward the earlier config, so the outcome is
   a pure function of (source, space, inputs);
5. recombine the winners into one module and **verify** it end-to-end:
   the winner module must reproduce the baseline outputs and take no
   more cycles than the baseline, else the search ships the baseline.
   This final gate is what makes cached scores safe: a stale or
   poisoned score can waste a measurement, never ship a slower or
   wrong module.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..asmlink.download import module_digest, module_size_words
from ..asmlink.objformat import ObjectFunction
from ..cache import compiler_salt, module_fingerprints, variant_key
from ..cache.variant_store import VariantScore, VariantStore
from ..driver.function_master import phase1_cached
from ..driver.master import ParallelCompiler
from ..driver.phases import ParsedProgram, phase4_link_and_download
from ..driver.results import CompilationResult
from ..machine.warp_array import WarpArrayModel
from ..warpsim.scoring import (
    DEFAULT_SCORE_MAX_CYCLES,
    ModuleScore,
    input_set_digest,
    score_module,
    seeded_input_sets,
)
from .space import VariantConfig, VariantSpace, default_space

Number = Union[int, float]
FnKey = Tuple[str, str]  # (section name, function name)

#: Makes a compiler for one config.  The default shares the caller's
#: backend and cache tiers across every config; tests substitute this to
#: inject miscompiles or count compiles.
CompilerFactory = Callable[[VariantConfig], ParallelCompiler]


@dataclass
class SearchOutcome:
    """Everything ``warpcc search`` knows when it finishes."""

    #: what ships: the winner module when verified, else the baseline.
    result: CompilationResult
    #: the reference-config compile the search measured against.
    baseline: CompilationResult
    #: per-function winning config key (reference key when no variant won).
    winners: Dict[FnKey, str] = field(default_factory=dict)
    #: (section, function, config key) per category, in search order.
    simulated: List[Tuple[str, str, str]] = field(default_factory=list)
    cached: List[Tuple[str, str, str]] = field(default_factory=list)
    identical: List[Tuple[str, str, str]] = field(default_factory=list)
    disqualified: List[Tuple[str, str, str]] = field(default_factory=list)
    baseline_cycles: Optional[int] = None
    module_cycles: Optional[int] = None
    #: False when the final whole-module re-simulation rejected the
    #: winner (or the baseline itself would not simulate) and the
    #: baseline shipped instead.
    verified: bool = False
    #: why the search abstained entirely (baseline simulation failure);
    #: None whenever variants were actually judged.
    abstained: Optional[str] = None
    input_digest: str = ""
    space_keys: List[str] = field(default_factory=list)

    @property
    def cycles_saved(self) -> int:
        if self.baseline_cycles is None or self.module_cycles is None:
            return 0
        return self.baseline_cycles - self.module_cycles


def _objects_by_section(
    result: CompilationResult,
) -> Dict[str, List[ObjectFunction]]:
    """Section name -> object functions, preserving source order."""
    grouped: Dict[str, List[ObjectFunction]] = {}
    for obj in result.objects:
        grouped.setdefault(obj.section_name, []).append(obj)
    return grouped


def _swap(
    objects: Dict[str, List[ObjectFunction]],
    section_name: str,
    replacement: ObjectFunction,
) -> Dict[str, List[ObjectFunction]]:
    """A copy of ``objects`` with one function replaced in place."""
    swapped = dict(objects)
    swapped[section_name] = [
        replacement if obj.name == replacement.name else obj
        for obj in objects[section_name]
    ]
    return swapped


def _link(
    parsed: ParsedProgram,
    objects: Dict[str, List[ObjectFunction]],
    array: WarpArrayModel,
    diagnostics_text: str,
):
    module, _, _ = phase4_link_and_download(
        parsed, objects, array, diagnostics_text
    )
    return module


def _default_factory(
    backend,
    array: WarpArrayModel,
    cache,
    parse_cache,
    link_cache,
    granularity: str,
) -> CompilerFactory:
    def factory(config: VariantConfig) -> ParallelCompiler:
        return ParallelCompiler(
            backend=backend,
            array=array,
            opt_level=config.opt_level,
            granularity=granularity,
            cache=cache,
            parse_cache=parse_cache,
            link_cache=link_cache,
            unroll_budget=config.unroll_budget,
            ii_budget=config.ii_budget,
        )

    return factory


def search_module(
    source_text: str,
    filename: str = "<input>",
    space: Optional[VariantSpace] = None,
    input_sets: Optional[Sequence[Sequence[Number]]] = None,
    input_seed: int = 0,
    array: Optional[WarpArrayModel] = None,
    backend=None,
    cache=None,
    parse_cache=None,
    link_cache=None,
    variant_store: Optional[VariantStore] = None,
    granularity: str = "function",
    max_cycles: int = DEFAULT_SCORE_MAX_CYCLES,
    compiler_factory: Optional[CompilerFactory] = None,
) -> SearchOutcome:
    """Compile ``source_text`` under every config in ``space``, score the
    variants in warpsim, and ship the verified per-function winners.

    ``input_sets`` are the recorded scoring inputs; when None, a
    deterministic synthetic set derived from ``input_seed`` is used.
    The shipped module's digest is a pure function of (source, space,
    inputs): independent of backend, submission order, and cache state.
    """
    space = space if space is not None else default_space()
    array = array or WarpArrayModel()
    if input_sets is None:
        input_sets = seeded_input_sets(input_seed)
    input_sets = [list(s) for s in input_sets]
    input_digest = input_set_digest(input_sets)
    factory = compiler_factory or _default_factory(
        backend, array, cache, parse_cache, link_cache, granularity
    )

    # One compile wave per config.  The fabric hub dedups first-result-
    # wins per (section, function) within a wave, so variants of one
    # function must never share a wave — whole-module waves guarantee it.
    results: Dict[str, CompilationResult] = {}
    for config in space:
        compiler = factory(config)
        try:
            results[config.key()] = compiler.compile(source_text, filename)
        finally:
            compiler.close()
    baseline = results[space.reference.key()]

    parsed, _ = phase1_cached(source_text, filename)
    baseline_objects = _objects_by_section(baseline)

    outcome = SearchOutcome(
        result=baseline,
        baseline=baseline,
        input_digest=input_digest,
        space_keys=space.keys(),
    )

    baseline_score = score_module(
        baseline.download, input_sets, array, max_cycles
    )
    if not baseline_score.ok:
        # No semantic signature to judge against: abstain, ship baseline.
        outcome.abstained = baseline_score.error
        _annotate(outcome, space, baseline, {}, results)
        return outcome
    outcome.baseline_cycles = baseline_score.cycles

    # Reference-config fingerprints identify the function *body*; the
    # config under measurement is a separate key component.
    base_fps = module_fingerprints(
        parsed.module,
        opt_level=space.reference.opt_level,
        cell_count=array.cell_count,
        granularity=granularity,
        salt=compiler_salt(),
    )

    obj_index: Dict[str, Dict[FnKey, ObjectFunction]] = {}
    for key, result in results.items():
        obj_index[key] = {
            (obj.section_name, obj.name): obj for obj in result.objects
        }

    # candidates[fn] = list of (cycles, config index, config key)
    candidates: Dict[FnKey, List[Tuple[int, int, str]]] = {}
    fn_keys = [
        (obj.section_name, obj.name) for obj in baseline.objects
    ]
    for fn_key in fn_keys:
        section_name, function_name = fn_key
        base_obj = obj_index[space.reference.key()][fn_key]
        entries: List[Tuple[int, int, str]] = [
            (baseline_score.cycles, 0, space.reference.key())
        ]
        for index, config in enumerate(space):
            if index == 0:
                continue
            config_key = config.key()
            variant_obj = obj_index[config_key].get(fn_key)
            if variant_obj is None:  # partial build at this config
                outcome.disqualified.append((*fn_key, config_key))
                continue
            if variant_obj.digest_text() == base_obj.digest_text():
                outcome.identical.append((*fn_key, config_key))
                continue
            score = _score_variant(
                outcome,
                variant_store,
                base_fps[fn_key],
                config_key,
                input_digest,
                parsed,
                baseline_objects,
                section_name,
                variant_obj,
                array,
                baseline.diagnostics_text,
                input_sets,
                max_cycles,
                fn_key,
            )
            if (
                not score.ok
                or score.outputs != baseline_score.outputs
            ):
                outcome.disqualified.append((*fn_key, config_key))
                continue
            entries.append((score.cycles, index, config_key))
        candidates[fn_key] = entries

    winners: Dict[FnKey, str] = {}
    winner_cycles: Dict[FnKey, int] = {}
    for fn_key, entries in candidates.items():
        cycles, _, config_key = min(entries)
        winners[fn_key] = config_key
        winner_cycles[fn_key] = cycles
    outcome.winners = winners

    changed = {
        fn_key: key
        for fn_key, key in winners.items()
        if key != space.reference.key()
    }
    if changed:
        final_objects = dict(baseline_objects)
        for fn_key, config_key in changed.items():
            final_objects = _swap(
                final_objects, fn_key[0], obj_index[config_key][fn_key]
            )
        final_module = _link(
            parsed, final_objects, array, baseline.diagnostics_text
        )
        final_score = score_module(
            final_module, input_sets, array, max_cycles
        )
        verified = (
            final_score.ok
            and final_score.outputs == baseline_score.outputs
            and final_score.cycles <= baseline_score.cycles
        )
        if verified:
            outcome.verified = True
            outcome.module_cycles = final_score.cycles
            flat = [
                obj
                for section in parsed.module.sections
                for obj in final_objects[section.name]
            ]
            outcome.result = CompilationResult(
                module_name=baseline.module_name,
                download=final_module,
                digest=module_digest(final_module),
                diagnostics_text=baseline.diagnostics_text,
                profile=copy.deepcopy(baseline.profile),
                objects=flat,
            )
            outcome.result.profile.download_words = module_size_words(
                final_module
            )
        else:
            # Interaction between winners broke the per-swap prediction:
            # ship the baseline, report every winner as the reference.
            outcome.winners = {
                fn_key: space.reference.key() for fn_key in winners
            }
            winner_cycles = {
                fn_key: baseline_score.cycles for fn_key in winners
            }
            outcome.module_cycles = baseline_score.cycles
            outcome.result = baseline
    else:
        # Every function kept the reference config; the baseline module
        # *is* the winner module, already simulated and trivially valid.
        outcome.verified = True
        outcome.module_cycles = baseline_score.cycles

    _annotate(
        outcome, space, baseline, winner_cycles, results
    )
    return outcome


def _score_variant(
    outcome: SearchOutcome,
    variant_store: Optional[VariantStore],
    base_fingerprint: str,
    config_key: str,
    input_digest: str,
    parsed: ParsedProgram,
    baseline_objects: Dict[str, List[ObjectFunction]],
    section_name: str,
    variant_obj: ObjectFunction,
    array: WarpArrayModel,
    diagnostics_text: str,
    input_sets: List[List[Number]],
    max_cycles: int,
    fn_key: FnKey,
) -> VariantScore:
    """One (function, config) measurement, memoized in the store."""
    store_key = None
    if variant_store is not None:
        store_key = variant_key(base_fingerprint, config_key, input_digest)
        cached = variant_store.get(store_key)
        if cached is not None and cached.config_key == config_key:
            outcome.cached.append((*fn_key, config_key))
            return cached
    try:
        swap_module = _link(
            parsed,
            _swap(baseline_objects, section_name, variant_obj),
            array,
            diagnostics_text,
        )
    except Exception as exc:  # noqa: BLE001 - a variant that won't link loses
        score = VariantScore(
            config_key=config_key,
            cycles=None,
            outputs=None,
            error=f"link: {exc!r}",
        )
    else:
        measured: ModuleScore = score_module(
            swap_module, input_sets, array, max_cycles
        )
        score = VariantScore(
            config_key=config_key,
            cycles=measured.cycles,
            outputs=measured.outputs,
            error=measured.error,
        )
    outcome.simulated.append((*fn_key, config_key))
    if variant_store is not None and store_key is not None:
        try:
            variant_store.put(store_key, score)
        except Exception:  # noqa: BLE001 - cache write is best-effort
            pass
    return score


def _annotate(
    outcome: SearchOutcome,
    space: VariantSpace,
    baseline: CompilationResult,
    winner_cycles: Dict[FnKey, int],
    results: Dict[str, CompilationResult],
) -> None:
    """Fold the search's telemetry into the shipped result's profile.

    Function reports for non-reference winners are taken from that
    config's compile, so bundle counts and initiation intervals describe
    the code that actually ships.
    """
    profile = outcome.result.profile
    if profile is baseline.profile and outcome.result is baseline:
        # Shipping the baseline: annotate a copy, not the compile's own
        # profile object (search metadata must not leak into plain
        # compiles that share the CompilationResult).
        outcome.result = CompilationResult(
            module_name=baseline.module_name,
            download=baseline.download,
            digest=baseline.digest,
            diagnostics_text=baseline.diagnostics_text,
            profile=copy.deepcopy(baseline.profile),
            objects=list(baseline.objects),
        )
        profile = outcome.result.profile
    profile.searched = True
    profile.search_space = list(outcome.space_keys)
    profile.search_variants_simulated = len(outcome.simulated)
    profile.search_variants_cached = len(outcome.cached)
    profile.search_variants_identical = len(outcome.identical)
    profile.search_variants_disqualified = len(outcome.disqualified)
    wins: Dict[str, int] = {}
    for config_key in outcome.winners.values():
        wins[config_key] = wins.get(config_key, 0) + 1
    profile.search_wins = wins
    profile.search_baseline_cycles = outcome.baseline_cycles or 0
    profile.search_module_cycles = outcome.module_cycles or 0
    profile.search_cycles_saved = outcome.cycles_saved

    reference_key = space.reference.key()
    for position, report in enumerate(list(profile.functions)):
        fn_key = (report.section_name, report.name)
        winner = outcome.winners.get(fn_key, reference_key)
        if winner != reference_key:
            donor = results[winner].profile
            for candidate in donor.functions:
                if candidate.key == fn_key:
                    replacement = copy.deepcopy(candidate)
                    profile.functions[position] = replacement
                    report = replacement
                    break
        report.winner_config = winner
        if fn_key in winner_cycles:
            report.simulated_cycles = winner_cycles[fn_key]
        elif outcome.baseline_cycles is not None:
            report.simulated_cycles = outcome.baseline_cycles
