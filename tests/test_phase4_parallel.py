"""Parallel + incremental phase 4: bit-identity with the sequential
back end, and the link/module cache's invalidation contract.

The headline property mirrors the paper's own correctness requirement
(recombined parallel output must be bit-identical to sequential, §3.2)
at the back end: over 200 generator seeds across size classes, the
download module produced by :func:`phase4_parallel` — cold, warm
(section tier), and fully warm (module tier) — has the same
:func:`module_digest` as the sequential
:func:`phase4_link_and_download`.  Error paths raise the identical
canonical diagnostics via wholesale fallback, and a 1-function edit on
a warm link cache re-links exactly one section.
"""

import tempfile

import pytest

from repro.asmlink.download import module_digest
from repro.cache import ArtifactCache, LinkCache
from repro.driver.function_master import FunctionTask, run_compile_task
from repro.driver.master import ParallelCompiler
from repro.driver.phases import (
    Phase4Runner,
    Phase4Stats,
    phase1_parse_and_check,
    phase4_critical_path_work,
    phase4_link_and_download,
    phase4_parallel,
)
from repro.driver.section_master import combine_section_results
from repro.driver.sequential import SequentialCompiler
from repro.fuzz import config_for_size_class, generate_program
from repro.lang.diagnostics import CompileError
from repro.machine.warp_array import WarpArrayModel
from repro.parallel.local import SerialBackend


def _combined_for(source, array=None):
    """Phases 1-3 once, recombined per section — phase 4's input."""
    parsed = phase1_parse_and_check(source)
    combined = {}
    for section in parsed.module.sections:
        results = run_compile_task(
            FunctionTask(source, "<t>", section.name, None)
        )
        combined[section.name] = combine_section_results(section, results)
    return parsed, combined


def _objects(combined):
    return {name: sec.objects for name, sec in combined.items()}


ARRAY = WarpArrayModel(cell_count=10)


# ---------------------------------------------------------------------------
# 200-seed matrix: sequential vs parallel vs cache-warm
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("block", range(4))
def test_parallel_phase4_matches_sequential_across_seeds(block):
    """200 consecutive seeds (50 per block): the parallel back end —
    cold, section-tier warm, and module-tier warm — produces a module
    digest bit-identical to the sequential tail."""
    size_class = ("tiny", "small", "medium", "small")[block]
    config = config_for_size_class(size_class)
    with tempfile.TemporaryDirectory() as tmp:
        cache = LinkCache(tmp)
        for seed in range(block * 50, block * 50 + 50):
            source = generate_program(seed, config).source
            parsed, combined = _combined_for(source)
            seq_module, seq_aw, seq_lw = phase4_link_and_download(
                parsed, _objects(combined), ARRAY
            )
            want = module_digest(seq_module)
            # Plain parallel, no cache.
            stats = Phase4Stats()
            par_module, par_aw, par_lw = phase4_parallel(
                parsed, combined, ARRAY, jobs=2, stats=stats
            )
            assert module_digest(par_module) == want, (
                f"{size_class} seed {seed}"
            )
            assert stats.mode == "parallel", (
                f"{size_class} seed {seed} fell back: {stats.fallback_reason}"
            )
            assert (par_aw, par_lw) == (seq_aw, seq_lw)
            # Cold through the cache: every section is a miss.
            cold = Phase4Stats()
            cold_module, _, _ = phase4_parallel(
                parsed, combined, ARRAY, jobs=2, link_cache=cache, stats=cold
            )
            assert module_digest(cold_module) == want
            assert cold.link_cache_misses == len(parsed.module.sections)
            assert cold.link_cache_hits == 0
            # Fully warm: the module tier answers, phase 4 is skipped.
            warm = Phase4Stats()
            warm_module, _, _ = phase4_parallel(
                parsed, combined, ARRAY, jobs=2, link_cache=cache, stats=warm
            )
            assert module_digest(warm_module) == want
            assert warm.mode == "cached"
            assert warm.module_cache_hit


# ---------------------------------------------------------------------------
# Hand-built multi-section module for the incremental tests
# ---------------------------------------------------------------------------

SECTIONS = 3
SOURCE = """
module m
  section a (cells 0..2)
    function a1(): int begin return 11; end
    function a2(): int begin return 12; end
  end
  section b (cells 3..5)
    function b1(): int begin return 21; end
    function b2(): int begin return 22; end
  end
  section c (cells 6..8)
    function c1(): int begin return 31; end
  end
end
"""
EDITED = SOURCE.replace("return 12;", "return 1200;")


def test_link_cache_cold_then_warm_section_tier():
    """Without the module tier in play (different diagnostics text per
    run would also do it, here we just bypass lookup), the section tier
    alone serves every section on the second run."""
    parsed, combined = _combined_for(SOURCE)
    want = module_digest(
        phase4_link_and_download(parsed, _objects(combined), ARRAY)[0]
    )
    with tempfile.TemporaryDirectory() as tmp:
        cache = LinkCache(tmp)
        cold = Phase4Stats()
        runner = Phase4Runner(
            parsed, ARRAY, jobs=2, link_cache=cache, stats=cold
        )
        module, _, _ = runner.finish(combined)  # no lookup_module probe
        assert module_digest(module) == want
        assert (cold.link_cache_hits, cold.link_cache_misses) == (0, SECTIONS)
        warm = Phase4Stats()
        runner = Phase4Runner(
            parsed, ARRAY, jobs=2, link_cache=cache, stats=warm
        )
        module, _, _ = runner.finish(combined)
        assert module_digest(module) == want
        assert (warm.link_cache_hits, warm.link_cache_misses) == (SECTIONS, 0)
        assert warm.mode == "parallel"  # section tier, not module tier


def test_one_function_edit_relinks_exactly_one_section():
    """The acceptance criterion: editing one function on a warm cache
    misses exactly its own section and hits every other."""
    with tempfile.TemporaryDirectory() as tmp:
        cache = LinkCache(tmp)
        parsed, combined = _combined_for(SOURCE)
        phase4_parallel(parsed, combined, ARRAY, jobs=2, link_cache=cache)
        parsed2, combined2 = _combined_for(EDITED)
        stats = Phase4Stats()
        module, _, _ = phase4_parallel(
            parsed2, combined2, ARRAY, jobs=2, link_cache=cache, stats=stats
        )
        assert stats.mode == "parallel"  # module tier must miss
        assert (stats.link_cache_hits, stats.link_cache_misses) == (
            SECTIONS - 1,
            1,
        )
        want = module_digest(
            phase4_link_and_download(parsed2, _objects(combined2), ARRAY)[0]
        )
        assert module_digest(module) == want


def test_geometry_change_invalidates_section_entries():
    """Same source, different cell data-memory size: every key changes,
    so nothing is served stale."""
    parsed, combined = _combined_for(SOURCE)
    with tempfile.TemporaryDirectory() as tmp:
        cache = LinkCache(tmp)
        phase4_parallel(parsed, combined, ARRAY, jobs=2, link_cache=cache)
        small = WarpArrayModel(cell_count=10)
        small.cell.data_memory_words //= 2
        stats = Phase4Stats()
        module, _, _ = phase4_parallel(
            parsed, combined, small, jobs=2, link_cache=cache, stats=stats
        )
        assert stats.link_cache_hits == 0
        assert stats.link_cache_misses == SECTIONS
        want = module_digest(
            phase4_link_and_download(parsed, _objects(combined), small)[0]
        )
        assert module_digest(module) == want


def test_diagnostics_text_keys_the_module_tier():
    """Module-tier entries embed the diagnostics text; a different text
    must miss (and the relinked module carries the new text)."""
    parsed, combined = _combined_for(SOURCE)
    with tempfile.TemporaryDirectory() as tmp:
        cache = LinkCache(tmp)
        phase4_parallel(
            parsed, combined, ARRAY, diagnostics_text="warn: a",
            jobs=2, link_cache=cache,
        )
        stats = Phase4Stats()
        module, _, _ = phase4_parallel(
            parsed, combined, ARRAY, diagnostics_text="warn: b",
            jobs=2, link_cache=cache, stats=stats,
        )
        assert not stats.module_cache_hit
        assert module.diagnostics_text == "warn: b"


def test_stripped_assembly_still_links_identically():
    """Results without distributed-assembly payloads (old workers, or a
    master that failed to assemble) link to the same bits — the link
    job just assembles in place."""
    parsed, combined = _combined_for(SOURCE)
    want = module_digest(
        phase4_link_and_download(parsed, _objects(combined), ARRAY)[0]
    )
    for section in combined.values():
        section.assembled.clear()
    stats = Phase4Stats()
    module, _, _ = phase4_parallel(
        parsed, combined, ARRAY, jobs=2, stats=stats
    )
    assert stats.mode == "parallel"
    assert module_digest(module) == want


def test_mismatched_assembly_payload_is_reassembled():
    """A pre-assembled payload that does not match its object function
    (corruption the supervisor never saw) is discarded, not linked."""
    parsed, combined = _combined_for(SOURCE)
    want = module_digest(
        phase4_link_and_download(parsed, _objects(combined), ARRAY)[0]
    )
    victim = combined["a"].assembled["a1"]
    victim.frame_words += 7717
    module, _, _ = phase4_parallel(parsed, combined, ARRAY, jobs=2)
    assert module_digest(module) == want


# ---------------------------------------------------------------------------
# Error paths: identical diagnostics through fallback
# ---------------------------------------------------------------------------


def test_bad_cell_range_raises_identical_error():
    small = WarpArrayModel(cell_count=3)
    parsed, combined = _combined_for(SOURCE)
    with pytest.raises(ValueError) as seq_err:
        phase4_link_and_download(parsed, _objects(combined), small)
    stats = Phase4Stats()
    with pytest.raises(ValueError) as par_err:
        phase4_parallel(parsed, combined, small, jobs=2, stats=stats)
    assert str(par_err.value) == str(seq_err.value)
    assert stats.mode == "fallback"
    assert "range validation" in stats.fallback_reason


def test_poisoned_section_falls_back_to_sequential():
    parsed, combined = _combined_for(SOURCE)
    combined["b"].reports[0].poisoned = 1
    stats = Phase4Stats()
    module, _, _ = phase4_parallel(
        parsed, combined, ARRAY, jobs=2, stats=stats
    )
    assert stats.mode == "fallback"
    assert "poisoned" in stats.fallback_reason
    want = module_digest(
        phase4_link_and_download(parsed, _objects(combined), ARRAY)[0]
    )
    assert module_digest(module) == want


def test_poisoned_section_never_served_from_module_cache():
    with tempfile.TemporaryDirectory() as tmp:
        cache = LinkCache(tmp)
        parsed, combined = _combined_for(SOURCE)
        phase4_parallel(parsed, combined, ARRAY, jobs=2, link_cache=cache)
        combined["a"].reports[0].poisoned = 1
        stats = Phase4Stats()
        runner = Phase4Runner(
            parsed, ARRAY, jobs=2, link_cache=cache, stats=stats
        )
        assert runner.lookup_module(combined) is None
        assert not stats.module_cache_hit


def test_duplicate_section_delivery_taints():
    parsed, combined = _combined_for(SOURCE)
    stats = Phase4Stats()
    runner = Phase4Runner(parsed, ARRAY, jobs=2, stats=stats)
    runner.section_ready(combined["a"])
    runner.section_ready(combined["a"])  # double delivery
    module, _, _ = runner.finish(combined)
    assert stats.mode == "fallback"
    assert "duplicate" in stats.fallback_reason
    want = module_digest(
        phase4_link_and_download(parsed, _objects(combined), ARRAY)[0]
    )
    assert module_digest(module) == want


def test_unknown_section_taints():
    parsed, combined = _combined_for(SOURCE)
    stray = combine_section_results(
        phase1_parse_and_check(SOURCE).module.section_named("a"),
        run_compile_task(FunctionTask(SOURCE, "<t>", "a", None)),
    )
    stray.section_name = "ghost"
    for obj in stray.objects:
        obj.section_name = "ghost"
    runner = Phase4Runner(parsed, ARRAY, jobs=2)
    runner.section_ready(stray)
    assert runner._taint_reason is not None


def test_jobs_must_be_positive():
    parsed, combined = _combined_for(SOURCE)
    with pytest.raises(ValueError):
        Phase4Runner(parsed, ARRAY, jobs=0)
    stats = Phase4Stats()
    with pytest.raises(ValueError):
        phase4_critical_path_work(stats, 0)


ERROR_MODULES = [
    # sema: undeclared variable
    "module m section s (cells 0..1) function f() begin x := 1; end end end",
    # parse: missing module end
    "module m section s (cells 0..1) function f() begin return; end",
    # sema: recursion
    "module m section s (cells 0..1) function f(): int begin "
    "return f(); end end end",
]


@pytest.mark.parametrize("source", ERROR_MODULES)
def test_error_modules_identical_diagnostics_end_to_end(source):
    """Front-end errors never reach phase 4, but the phase-4-parallel
    compiler must still render the canonical diagnostics."""

    def _render(error):
        return "\n".join(d.render() for d in error.diagnostics)

    with pytest.raises(CompileError) as seq_err:
        SequentialCompiler().compile(source)
    compiler = ParallelCompiler(backend=SerialBackend(), phase4_jobs=2)
    with pytest.raises(CompileError) as par_err:
        compiler.compile(source)
    assert _render(par_err.value) == _render(seq_err.value)


# ---------------------------------------------------------------------------
# Deterministic scaling model
# ---------------------------------------------------------------------------


def test_critical_path_work_model():
    stats = Phase4Stats(
        section_assembly_work=[40, 30, 20, 10],
        section_link_work=[40, 30, 20, 10],
        tail_work=10,
    )
    # jobs=1 without distributed assembly is exactly the sequential
    # back end: all assembly + all link + the tail.
    sequential = phase4_critical_path_work(
        stats, 1, distributed_assembly=False
    )
    assert sequential == 10 + (40 + 30 + 20 + 10) * 2
    one = phase4_critical_path_work(stats, 1)
    two = phase4_critical_path_work(stats, 2)
    four = phase4_critical_path_work(stats, 4)
    assert one == 10 + 100
    assert two == 10 + 50  # LPT: {40,10} {30,20}
    assert four == 10 + 40
    assert four <= two <= one <= sequential


def test_runner_fills_work_model_on_every_path():
    parsed, combined = _combined_for(SOURCE)
    for link_cache in (None, LinkCache(tempfile.mkdtemp())):
        stats = Phase4Stats()
        phase4_parallel(
            parsed, combined, ARRAY, jobs=2,
            link_cache=link_cache, stats=stats,
        )
        assert len(stats.section_link_work) == SECTIONS
        assert len(stats.section_assembly_work) == SECTIONS
        assert stats.tail_work > 0


# ---------------------------------------------------------------------------
# End-to-end through the compiler driver and the CLI
# ---------------------------------------------------------------------------


def test_compiler_with_parallel_back_end_is_bit_identical():
    seq = SequentialCompiler().compile(SOURCE)
    with tempfile.TemporaryDirectory() as tmp:
        compiler = ParallelCompiler(
            backend=SerialBackend(),
            cache=ArtifactCache(tmp + "/artifacts"),
            phase4_jobs=2,
            link_cache=LinkCache(tmp + "/link"),
        )
        cold = compiler.compile(SOURCE)
        assert cold.digest == seq.digest
        assert cold.profile.phase4_mode == "parallel"
        assert cold.profile.link_cache_misses == SECTIONS
        assert cold.profile.link_cache_hits == 0
        # Fully warm: artifacts and module tier both answer.
        warm = compiler.compile(SOURCE)
        assert warm.digest == seq.digest
        assert warm.profile.phase4_mode == "cached"
        # A 1-function edit re-links exactly one section.
        edit = compiler.compile(EDITED)
        assert edit.digest == SequentialCompiler().compile(EDITED).digest
        assert edit.profile.phase4_mode == "parallel"
        assert edit.profile.link_cache_misses == 1
        assert edit.profile.link_cache_hits == SECTIONS - 1
        assert "phase4_mode" in warm.profile.to_dict()


def test_compile_cli_json_reports_link_cache(tmp_path, capsys):
    import json

    from repro.cli import main

    source_path = tmp_path / "m.w"
    source_path.write_text(SOURCE)
    argv = [
        "compile", str(source_path),
        "--phase4-jobs", "2", "--jobs", "1",
        "--cache-dir", str(tmp_path / "cache"),
        "--json",
    ]
    assert main(argv) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["profile"]["phase4_mode"] == "parallel"
    assert document["profile"]["link_cache_misses"] == SECTIONS
    assert document["link_cache"]["misses"] >= SECTIONS
    assert main(argv) == 0
    warm = json.loads(capsys.readouterr().out)
    assert warm["profile"]["phase4_mode"] == "cached"


def test_no_link_cache_flag_disables_the_cache(tmp_path, capsys):
    import json

    from repro.cli import main

    source_path = tmp_path / "m.w"
    source_path.write_text(SOURCE)
    argv = [
        "compile", str(source_path),
        "--phase4-jobs", "2", "--jobs", "1", "--no-link-cache",
        "--cache-dir", str(tmp_path / "cache"),
        "--json",
    ]
    for _ in range(2):  # never goes warm without the cache
        assert main(argv) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["profile"]["phase4_mode"] == "parallel"
        assert "link_cache" not in document
