"""Result types shared by the sequential and parallel drivers.

A compilation produces, besides the download module, a *work profile*:
deterministic per-phase work counts the workstation-cluster simulator
prices into virtual seconds.  The parallel and sequential compilers emit
identical artifacts (the paper's correctness requirement) and identical
work profiles — what differs is how the work is laid out over processors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..asmlink.objformat import DownloadModule, ObjectFunction


@dataclass
class FunctionReport:
    """Everything the schedulers and the cost model know about one
    function's compilation."""

    section_name: str
    name: str
    source_lines: int
    ir_instructions: int
    loop_weight: int
    work_units: int  # phases 2+3 (optimize + allocate + schedule)
    bundles: int
    pipelined_loops: int
    initiation_intervals: List[int] = field(default_factory=list)
    frame_words: int = 0
    #: variant search: the winning config's key (None outside search
    #: mode) and the simulated cycle count of the module with this
    #: function's winner swapped in (None when never simulated).
    winner_config: Optional[str] = None
    simulated_cycles: Optional[int] = None
    #: phase-1 cache telemetry: whether this report's task found its
    #: module already parsed in the worker's cache (0/1 each; a
    #: section-level task records on its first function's report only).
    phase1_cache_hits: int = 0
    phase1_cache_misses: int = 0
    #: artifact-cache telemetry: whether this function's phase-2/3 result
    #: was served from the persistent cache (hit) or compiled and written
    #: back (miss).  Both stay 0 when no artifact cache is configured.
    artifact_cache_hits: int = 0
    artifact_cache_misses: int = 0
    #: supervision flags (0/1): ``poisoned`` means the task was pulled
    #: out of the farm after repeated failures and compiled in-process;
    #: ``failed`` means even the in-process compile failed, so the
    #: object code is a stub and the module is only partially valid.
    poisoned: int = 0
    failed: int = 0

    @property
    def key(self) -> tuple:
        return (self.section_name, self.name)

    def to_dict(self) -> Dict:
        """JSON-serializable view (``warpcc compile --json``, the compile
        service's status protocol)."""
        return {
            "section": self.section_name,
            "name": self.name,
            "source_lines": self.source_lines,
            "ir_instructions": self.ir_instructions,
            "loop_weight": self.loop_weight,
            "work_units": self.work_units,
            "bundles": self.bundles,
            "pipelined_loops": self.pipelined_loops,
            "initiation_intervals": list(self.initiation_intervals),
            "frame_words": self.frame_words,
            "winner_config": self.winner_config,
            "simulated_cycles": self.simulated_cycles,
            "phase1_cache_hits": self.phase1_cache_hits,
            "phase1_cache_misses": self.phase1_cache_misses,
            "artifact_cache_hits": self.artifact_cache_hits,
            "artifact_cache_misses": self.artifact_cache_misses,
            "poisoned": self.poisoned,
            "failed": self.failed,
        }


@dataclass
class WorkProfile:
    """Deterministic work counts for one module compilation."""

    parse_work: int = 0
    sema_work: int = 0
    #: wall-time telemetry for the master's own phase-1 run (aggregate
    #: worker time on the parallel front end) and which front end ran:
    #: ``sequential``, ``parallel``, ``fallback`` (parallel path bailed
    #: to sequential), or ``memo`` (whole-module LRU hit, no parse).
    phase1_parse_ms: float = 0.0
    phase1_sema_ms: float = 0.0
    phase1_mode: str = "sequential"
    #: span-hash parse-cache counters for the master's phase-1 run (the
    #: incremental front end; distinct from the per-worker whole-module
    #: memo counted on the function reports).
    parse_cache_hits: int = 0
    parse_cache_misses: int = 0
    #: wall-time telemetry for phase 4 (aggregate link-job time on the
    #: parallel back end) and which back end ran: ``sequential``,
    #: ``parallel``, ``cached`` (whole-module cache hit, phase 4
    #: skipped), or ``fallback`` (parallel path bailed to sequential).
    phase4_assembly_ms: float = 0.0
    phase4_link_ms: float = 0.0
    phase4_mode: str = "sequential"
    #: link-cache counters for this compile's phase 4 (per-section
    #: CellProgram tier; a whole-module hit reports mode ``cached``
    #: with zero section probes).
    link_cache_hits: int = 0
    link_cache_misses: int = 0
    functions: List[FunctionReport] = field(default_factory=list)
    assembly_work: int = 0
    link_work: int = 0
    download_words: int = 0
    #: total source lines (proxy for file-reading cost)
    source_lines: int = 0
    #: workers that actually ran the function-master tasks (a backend
    #: asked for more workers than tasks caps at the task count; speedup
    #: metrics must divide by this, not the requested pool size)
    workers_used: int = 1
    #: artifact-cache maintenance events observed during this compile
    #: (size-bound evictions and corrupt entries discarded); hit/miss
    #: counts live on the per-function reports.
    artifact_cache_evictions: int = 0
    artifact_cache_corrupt: int = 0
    #: supervision counters for this compile (all 0 unless the backend
    #: was wrapped in :class:`repro.parallel.supervisor.SupervisedBackend`;
    #: ``supervised`` records whether a supervisor was present at all).
    supervised: bool = False
    supervisor_timeouts: int = 0
    supervisor_hedges_won: int = 0
    supervisor_quarantines: int = 0
    supervisor_poisoned_tasks: int = 0
    supervisor_degradations: int = 0
    supervisor_corrupt_payloads: int = 0
    #: variant-search counters (all zero / empty outside ``warpcc
    #: search``).  ``search_wins`` maps a config key ("o2u64i0") to how
    #: many functions it won; cycle counts are whole-module simulated
    #: cycles over the search's input set.
    searched: bool = False
    search_space: List[str] = field(default_factory=list)
    search_variants_simulated: int = 0
    search_variants_cached: int = 0
    search_variants_identical: int = 0
    search_variants_disqualified: int = 0
    search_wins: Dict[str, int] = field(default_factory=dict)
    search_baseline_cycles: int = 0
    search_module_cycles: int = 0
    search_cycles_saved: int = 0

    def function_work(self) -> int:
        return sum(f.work_units for f in self.functions)

    def phase1_cache_hits(self) -> int:
        """Tasks that skipped parse+sema thanks to a warm worker cache."""
        return sum(f.phase1_cache_hits for f in self.functions)

    def phase1_cache_misses(self) -> int:
        return sum(f.phase1_cache_misses for f in self.functions)

    def redundant_parse_work_saved(self) -> int:
        """Parse+sema work units not re-done because of cache hits."""
        return (self.parse_work + self.sema_work) * self.phase1_cache_hits()

    def artifact_cache_hits(self) -> int:
        """Functions whose phase-2/3 work came from the persistent cache."""
        return sum(f.artifact_cache_hits for f in self.functions)

    def artifact_cache_misses(self) -> int:
        return sum(f.artifact_cache_misses for f in self.functions)

    def cached_function_work(self) -> int:
        """Phase-2/3 work units served from the artifact cache."""
        return sum(
            f.work_units for f in self.functions if f.artifact_cache_hits
        )

    def total_work(self) -> int:
        return (
            self.parse_work
            + self.sema_work
            + self.function_work()
            + self.assembly_work
            + self.link_work
        )

    def poisoned_functions(self) -> List[FunctionReport]:
        """Functions isolated from the farm after repeated failures."""
        return [f for f in self.functions if f.poisoned]

    def failed_functions(self) -> List[FunctionReport]:
        """Functions whose in-process isolation compile failed too — the
        module carries a stub for them and the build is partial."""
        return [f for f in self.functions if f.failed]

    def by_section(self) -> Dict[str, List[FunctionReport]]:
        sections: Dict[str, List[FunctionReport]] = {}
        for report in self.functions:
            sections.setdefault(report.section_name, []).append(report)
        return sections

    def to_dict(self) -> Dict:
        """JSON-serializable view of the profile and its counters."""
        return {
            "parse_work": self.parse_work,
            "sema_work": self.sema_work,
            "phase1_parse_ms": self.phase1_parse_ms,
            "phase1_sema_ms": self.phase1_sema_ms,
            "phase1_mode": self.phase1_mode,
            "parse_cache_hits": self.parse_cache_hits,
            "parse_cache_misses": self.parse_cache_misses,
            "phase4_assembly_ms": self.phase4_assembly_ms,
            "phase4_link_ms": self.phase4_link_ms,
            "phase4_mode": self.phase4_mode,
            "link_cache_hits": self.link_cache_hits,
            "link_cache_misses": self.link_cache_misses,
            "assembly_work": self.assembly_work,
            "link_work": self.link_work,
            "download_words": self.download_words,
            "source_lines": self.source_lines,
            "workers_used": self.workers_used,
            "total_work": self.total_work(),
            "function_work": self.function_work(),
            "phase1_cache_hits": self.phase1_cache_hits(),
            "phase1_cache_misses": self.phase1_cache_misses(),
            "artifact_cache_hits": self.artifact_cache_hits(),
            "artifact_cache_misses": self.artifact_cache_misses(),
            "artifact_cache_evictions": self.artifact_cache_evictions,
            "artifact_cache_corrupt": self.artifact_cache_corrupt,
            "supervised": self.supervised,
            "supervisor_timeouts": self.supervisor_timeouts,
            "supervisor_hedges_won": self.supervisor_hedges_won,
            "supervisor_quarantines": self.supervisor_quarantines,
            "supervisor_poisoned_tasks": self.supervisor_poisoned_tasks,
            "supervisor_degradations": self.supervisor_degradations,
            "supervisor_corrupt_payloads": self.supervisor_corrupt_payloads,
            "searched": self.searched,
            "search_space": list(self.search_space),
            "search_variants_simulated": self.search_variants_simulated,
            "search_variants_cached": self.search_variants_cached,
            "search_variants_identical": self.search_variants_identical,
            "search_variants_disqualified": self.search_variants_disqualified,
            "search_wins": dict(self.search_wins),
            "search_baseline_cycles": self.search_baseline_cycles,
            "search_module_cycles": self.search_module_cycles,
            "search_cycles_saved": self.search_cycles_saved,
            "functions": [f.to_dict() for f in self.functions],
        }


@dataclass
class CompilationResult:
    """The complete outcome of compiling one module."""

    module_name: str
    download: DownloadModule
    digest: str
    diagnostics_text: str
    profile: WorkProfile
    objects: List[ObjectFunction] = field(default_factory=list)

    def report_lines(self) -> List[str]:
        lines = [
            f"module {self.module_name}: "
            f"{len(self.profile.functions)} function(s), "
            f"total work {self.profile.total_work()}"
        ]
        for fn in self.profile.functions:
            ii_text = (
                f" II={fn.initiation_intervals}" if fn.initiation_intervals else ""
            )
            cycles_text = (
                f" ~{fn.simulated_cycles} cycles"
                if fn.simulated_cycles is not None
                else ""
            )
            winner_text = (
                f" [{fn.winner_config}]" if fn.winner_config else ""
            )
            mark = ""
            if fn.failed:
                mark = " [POISONED: no object code]"
            elif fn.poisoned:
                mark = " [poisoned: isolated in-process]"
            lines.append(
                f"  {fn.section_name}.{fn.name}: {fn.source_lines} lines, "
                f"{fn.work_units} work units, {fn.bundles} bundles, "
                f"{fn.pipelined_loops} pipelined loop(s)"
                f"{ii_text}{cycles_text}{winner_text}{mark}"
            )
        if self.profile.searched:
            wins = ", ".join(
                f"{key} x{count}"
                for key, count in sorted(self.profile.search_wins.items())
            )
            lines.append(
                f"search: {len(self.profile.search_space)} config(s), "
                f"baseline {self.profile.search_baseline_cycles} cycles -> "
                f"{self.profile.search_module_cycles} cycles "
                f"(saved {self.profile.search_cycles_saved}); "
                f"{self.profile.search_variants_simulated} simulated, "
                f"{self.profile.search_variants_cached} cached, "
                f"{self.profile.search_variants_identical} identical, "
                f"{self.profile.search_variants_disqualified} disqualified"
                + (f"; wins: {wins}" if wins else "")
            )
        if self.profile.supervised:
            lines.append(
                f"supervision: {self.profile.supervisor_timeouts} timeout(s), "
                f"{self.profile.supervisor_hedges_won} hedge(s) won, "
                f"{self.profile.supervisor_quarantines} quarantine(s), "
                f"{self.profile.supervisor_poisoned_tasks} poisoned task(s), "
                f"{self.profile.supervisor_degradations} degradation(s), "
                f"{self.profile.supervisor_corrupt_payloads} corrupt payload(s)"
            )
        return lines

    def to_dict(self) -> Dict:
        """Machine-readable report (``warpcc compile --json``): the job
        digest, per-function metrics, cache and supervisor counters —
        everything the text report says, parseable without scraping."""
        return {
            "module": self.module_name,
            "digest": self.digest,
            "diagnostics": self.diagnostics_text,
            "download_cells": self.download.cells_used,
            "download_words": self.profile.download_words,
            "profile": self.profile.to_dict(),
        }
