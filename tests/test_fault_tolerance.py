"""Fault-tolerant parallel compilation (the §5.2 reliability problem)."""

import pytest

from repro.driver.master import ParallelCompiler
from repro.driver.sequential import SequentialCompiler
from repro.parallel.fault_tolerance import (
    FlakyBackend,
    FunctionMasterFailure,
    RetryBudgetExceeded,
    RetryingBackend,
)
from repro.parallel.local import SerialBackend

from helpers import wrap_function

SOURCE = wrap_function(
    "\n".join(
        f"function f{i}(x: float) : float begin return x + {float(i)}; end"
        for i in range(6)
    )
)


def flaky(rate: float, seed: int = 7, **kwargs) -> FlakyBackend:
    return FlakyBackend(SerialBackend(), rate, seed=seed, **kwargs)


class TestFlakyBackend:
    def test_zero_rate_is_transparent(self):
        par = ParallelCompiler(backend=flaky(0.0)).compile(SOURCE)
        seq = SequentialCompiler().compile(SOURCE)
        assert par.digest == seq.digest

    def test_failures_are_deterministic(self):
        from repro.driver.phases import phase1_parse_and_check

        a = flaky(0.5, seed=3)
        b = flaky(0.5, seed=3)
        tasks = ParallelCompiler(backend=SerialBackend())._build_tasks(
            phase1_parse_and_check(SOURCE), SOURCE, "<t>"
        )
        _, fail_a = a.run_tasks_partial(tasks)
        _, fail_b = b.run_tasks_partial(tasks)
        assert [f.task.function_name for f in fail_a] == [
            f.task.function_name for f in fail_b
        ]

    def test_run_tasks_raises_on_injected_failure(self):
        backend = flaky(0.999, seed=1)
        with pytest.raises(FunctionMasterFailure):
            ParallelCompiler(backend=backend).compile(SOURCE)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            flaky(1.0)


class TestRetryingBackend:
    def test_recovers_from_transient_failures(self):
        # Each task fails at most twice; three attempts always suffice.
        inner = flaky(0.9, seed=11, max_failures_per_task=2)
        backend = RetryingBackend(inner, max_attempts=3)
        par = ParallelCompiler(backend=backend).compile(SOURCE)
        seq = SequentialCompiler().compile(SOURCE)
        assert par.digest == seq.digest
        assert inner.injected_failures > 0
        assert backend.retries_performed >= inner.injected_failures

    def test_budget_exhaustion_raises(self):
        inner = flaky(0.999, seed=2)  # practically always failing
        backend = RetryingBackend(inner, max_attempts=2)
        with pytest.raises(RetryBudgetExceeded) as excinfo:
            ParallelCompiler(backend=backend).compile(SOURCE)
        assert excinfo.value.failures

    def test_wraps_plain_backend_without_partial_api(self):
        backend = RetryingBackend(SerialBackend(), max_attempts=2)
        par = ParallelCompiler(backend=backend).compile(SOURCE)
        seq = SequentialCompiler().compile(SOURCE)
        assert par.digest == seq.digest
        assert backend.retries_performed == 0

    def test_catches_real_exceptions_per_task(self):
        class ExplodingBackend:
            worker_count = 1

            def __init__(self):
                self.calls = 0

            def run_tasks(self, tasks):
                self.calls += 1
                if self.calls == 1:
                    raise RuntimeError("child process killed")
                return SerialBackend().run_tasks(tasks)

        backend = RetryingBackend(ExplodingBackend(), max_attempts=3)
        par = ParallelCompiler(backend=backend).compile(SOURCE)
        assert len(par.profile.functions) == 6

    def test_invalid_attempts_rejected(self):
        with pytest.raises(ValueError):
            RetryingBackend(SerialBackend(), max_attempts=0)

    def test_retried_results_arrive_in_any_order_but_combine_correctly(self):
        inner = flaky(0.6, seed=5, max_failures_per_task=1)
        backend = RetryingBackend(inner, max_attempts=2)
        par = ParallelCompiler(backend=backend).compile(SOURCE)
        names = [f.name for f in par.profile.functions]
        assert names == [f"f{i}" for i in range(6)]  # source order restored
