"""Lowering: typed AST -> three-address IR (start of compiler phase 2).

Scalars become virtual registers; arrays become statically allocated frame
slots in the cell's data memory.  Loops and conditionals become explicit
control flow.  Implicit int->float widenings from semantic analysis become
explicit ITOF instructions.

Lowering of one function needs only that function's AST plus the *types* of
its section's other functions (for calls) — so lowering, like the rest of
phases 2-3, runs independently per function in the parallel compiler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..lang import ast_nodes as ast
from ..lang.sema import SemaResult
from ..lang.types import ArrayType, FLOAT, INT, Type, VOID
from .builder import IRBuilder
from .cfg import FunctionIR, ModuleIR
from .instructions import Opcode
from .values import Const, FrameArray, IR_FLOAT, IR_INT, Value, VReg

_BINARY_OPCODES = {
    "+": Opcode.ADD,
    "-": Opcode.SUB,
    "*": Opcode.MUL,
    "/": Opcode.DIV,
    "%": Opcode.MOD,
    "=": Opcode.CEQ,
    "<>": Opcode.CNE,
    "<": Opcode.CLT,
    "<=": Opcode.CLE,
    ">": Opcode.CGT,
    ">=": Opcode.CGE,
    "and": Opcode.AND,
    "or": Opcode.OR,
}

_COMPARISON_SET = {"=", "<>", "<", "<=", ">", ">="}


def ir_type_of(source_type: Type) -> str:
    """Map a scalar source type to its IR type."""
    if source_type == INT:
        return IR_INT
    if source_type == FLOAT:
        return IR_FLOAT
    raise ValueError(f"no scalar IR type for {source_type}")


@dataclass
class _CalleeInfo:
    """What lowering needs to know about a callable: its signature."""

    param_types: List[Type]
    return_type: Type


class LoweringError(Exception):
    """Internal error: lowering ran on an AST sema did not fully check."""


class FunctionLowerer:
    """Lowers a single, semantically checked function to IR."""

    def __init__(
        self,
        section: ast.Section,
        function: ast.Function,
        sema: SemaResult,
    ):
        self._section = section
        self._fn = function
        self._scope = sema.scope_for(section, function)
        self._callees: Dict[str, _CalleeInfo] = {
            f.name: _CalleeInfo([p.type for p in f.params], f.return_type)
            for f in section.functions
        }
        return_type = (
            None if function.return_type == VOID else ir_type_of(function.return_type)
        )
        self._ir = FunctionIR(
            name=function.name,
            section_name=section.name,
            return_type=return_type,
            source_lines=function.line_count(),
        )
        self._builder = IRBuilder(self._ir)
        self._vars: Dict[str, VReg] = {}
        self._arrays: Dict[str, FrameArray] = {}

    def lower(self) -> FunctionIR:
        builder = self._builder
        entry = builder.new_block("entry")
        builder.set_block(entry)
        self._bind_storage()
        for stmt in self._fn.body:
            self._lower_stmt(stmt)
        if not builder.block_terminated():
            # Implicit fall-off-the-end return (void value for typed
            # functions is a checked error in sema only when there is no
            # return at all; a fall-through path returns a zero value).
            if self._ir.return_type is None:
                builder.ret()
            else:
                zero = Const(
                    0 if self._ir.return_type == IR_INT else 0.0,
                    self._ir.return_type,
                )
                builder.ret(zero)
        self._ir.remove_unreachable_blocks()
        self._ir.validate()
        return self._ir

    def _bind_storage(self) -> None:
        """Assign registers to scalars and frame offsets to arrays."""
        for param in self._fn.params:
            reg = self._builder.vreg(ir_type_of(param.type))
            self._vars[param.name] = reg
            self._ir.param_regs.append(reg)
        offset = 0
        for decl in self._fn.locals:
            if isinstance(decl.type, ArrayType):
                array = FrameArray(
                    name=decl.name,
                    element_type=ir_type_of(decl.type.element),
                    length=decl.type.length,
                    offset=offset,
                )
                offset += decl.type.length
                self._arrays[decl.name] = array
                self._ir.arrays.append(array)
            else:
                ir_type = ir_type_of(decl.type)
                reg = self._builder.vreg(ir_type)
                self._vars[decl.name] = reg
                # Locals start at zero, as the era's stack-less cells did.
                self._builder.mov(reg, Const(0 if ir_type == IR_INT else 0.0, ir_type))

    # -- statements ---------------------------------------------------------

    def _lower_stmt(self, stmt: ast.Stmt) -> None:
        if self._builder.block_terminated():
            # Code after return within the same block: unreachable; give it
            # its own block so lowering stays structural (DCE removes it).
            dead = self._builder.new_block("dead")
            self._builder.set_block(dead)
        if isinstance(stmt, ast.AssignStmt):
            self._lower_assign(stmt)
        elif isinstance(stmt, ast.IfStmt):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.ForStmt):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.WhileStmt):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.ReturnStmt):
            self._lower_return(stmt)
        elif isinstance(stmt, ast.SendStmt):
            self._builder.send(self._lower_expr(stmt.value))
        elif isinstance(stmt, ast.ReceiveStmt):
            self._lower_receive(stmt)
        elif isinstance(stmt, ast.CallStmt):
            self._lower_call(stmt.call, want_result=False)
        else:  # pragma: no cover - exhaustive over AST statements
            raise LoweringError(f"unhandled statement {type(stmt).__name__}")

    def _lower_assign(self, stmt: ast.AssignStmt) -> None:
        target = stmt.target
        if isinstance(target, ast.VarRef):
            reg = self._vars.get(target.name)
            if reg is None:
                raise LoweringError(f"assignment to non-scalar {target.name!r}")
            value = self._coerce(self._lower_expr(stmt.value), reg.type)
            self._builder.mov(reg, value)
        elif isinstance(target, ast.IndexExpr):
            array = self._array_of(target)
            index = self._lower_expr(target.index)
            value = self._coerce(self._lower_expr(stmt.value), array.element_type)
            self._builder.store(array, index, value)
        else:
            raise LoweringError("invalid assignment target survived sema")

    def _lower_if(self, stmt: ast.IfStmt) -> None:
        builder = self._builder
        cond = self._lower_expr(stmt.condition)
        then_block = builder.new_block("if.then")
        join_block = builder.new_block("if.join")
        else_block = builder.new_block("if.else") if stmt.else_body else join_block
        builder.br(cond, then_block, else_block)

        builder.set_block(then_block)
        for s in stmt.then_body:
            self._lower_stmt(s)
        if not builder.block_terminated():
            builder.jmp(join_block)

        if stmt.else_body:
            builder.set_block(else_block)
            for s in stmt.else_body:
                self._lower_stmt(s)
            if not builder.block_terminated():
                builder.jmp(join_block)

        builder.set_block(join_block)

    def _lower_for(self, stmt: ast.ForStmt) -> None:
        builder = self._builder
        var = self._vars.get(stmt.var)
        if var is None:
            raise LoweringError(f"loop over non-scalar {stmt.var!r}")
        low = self._coerce(self._lower_expr(stmt.low), IR_INT)
        high = self._coerce(self._lower_expr(stmt.high), IR_INT)
        step_value = 1
        if stmt.step is not None:
            step_value = _constant_int(stmt.step)
            if step_value is None or step_value == 0:
                raise LoweringError("for-step must be a nonzero integer constant")
        builder.mov(var, low)
        # Hoist the bound into a dedicated register so the loop body cannot
        # clobber it through the user variable (Pascal 'to' semantics).
        bound = builder.vreg(IR_INT)
        builder.mov(bound, high)

        header = builder.new_block("for.header")
        body = builder.new_block("for.body")
        exit_block = builder.new_block("for.exit")
        builder.jmp(header)

        builder.set_block(header)
        compare = Opcode.CLE if step_value > 0 else Opcode.CGE
        cond = builder.binary(compare, var, bound, IR_INT)
        builder.br(cond, body, exit_block)

        builder.set_block(body)
        for s in stmt.body:
            self._lower_stmt(s)
        if not builder.block_terminated():
            stepped = builder.binary(
                Opcode.ADD, var, Const(step_value, IR_INT), IR_INT
            )
            builder.mov(var, stepped)
            builder.jmp(header)

        builder.set_block(exit_block)

    def _lower_while(self, stmt: ast.WhileStmt) -> None:
        builder = self._builder
        header = builder.new_block("while.header")
        body = builder.new_block("while.body")
        exit_block = builder.new_block("while.exit")
        builder.jmp(header)

        builder.set_block(header)
        cond = self._lower_expr(stmt.condition)
        builder.br(cond, body, exit_block)

        builder.set_block(body)
        for s in stmt.body:
            self._lower_stmt(s)
        if not builder.block_terminated():
            builder.jmp(header)

        builder.set_block(exit_block)

    def _lower_return(self, stmt: ast.ReturnStmt) -> None:
        if stmt.value is None:
            self._builder.ret()
            return
        value = self._lower_expr(stmt.value)
        if self._ir.return_type is not None:
            value = self._coerce(value, self._ir.return_type)
        self._builder.ret(value)

    def _lower_receive(self, stmt: ast.ReceiveStmt) -> None:
        target = stmt.target
        if isinstance(target, ast.VarRef):
            reg = self._vars.get(target.name)
            if reg is None:
                raise LoweringError(f"receive into non-scalar {target.name!r}")
            received = self._builder.recv(reg.type)
            self._builder.mov(reg, received)
        elif isinstance(target, ast.IndexExpr):
            array = self._array_of(target)
            index = self._lower_expr(target.index)
            received = self._builder.recv(array.element_type)
            self._builder.store(array, index, received)
        else:
            raise LoweringError("invalid receive target survived sema")

    # -- expressions ----------------------------------------------------------

    def _lower_expr(self, expr: ast.Expr) -> Value:
        if isinstance(expr, ast.IntLiteral):
            return Const(expr.value, IR_INT)
        if isinstance(expr, ast.FloatLiteral):
            return Const(expr.value, IR_FLOAT)
        if isinstance(expr, ast.VarRef):
            reg = self._vars.get(expr.name)
            if reg is None:
                raise LoweringError(f"scalar use of array {expr.name!r}")
            return reg
        if isinstance(expr, ast.IndexExpr):
            array = self._array_of(expr)
            index = self._lower_expr(expr.index)
            return self._builder.load(array, index)
        if isinstance(expr, ast.UnaryExpr):
            return self._lower_unary(expr)
        if isinstance(expr, ast.BinaryExpr):
            return self._lower_binary(expr)
        if isinstance(expr, ast.CallExpr):
            result = self._lower_call(expr, want_result=True)
            if result is None:
                raise LoweringError(f"void call {expr.callee!r} used as a value")
            return result
        raise LoweringError(  # pragma: no cover - exhaustive over AST exprs
            f"unhandled expression {type(expr).__name__}"
        )

    def _lower_unary(self, expr: ast.UnaryExpr) -> Value:
        operand = self._lower_expr(expr.operand)
        if expr.op == "-":
            return self._builder.unary(Opcode.NEG, operand, operand.type)
        if expr.op == "not":
            return self._builder.unary(Opcode.NOT, operand, IR_INT)
        raise LoweringError(f"unknown unary operator {expr.op!r}")

    def _lower_binary(self, expr: ast.BinaryExpr) -> Value:
        left = self._lower_expr(expr.left)
        right = self._lower_expr(expr.right)
        opcode = _BINARY_OPCODES.get(expr.op)
        if opcode is None:
            raise LoweringError(f"unknown binary operator {expr.op!r}")
        if expr.op in ("and", "or"):
            return self._builder.binary(opcode, left, right, IR_INT)
        if expr.op in _COMPARISON_SET:
            left, right = self._unify(left, right)
            return self._builder.binary(opcode, left, right, IR_INT)
        if expr.op == "%":
            return self._builder.binary(opcode, left, right, IR_INT)
        left, right = self._unify(left, right)
        return self._builder.binary(opcode, left, right, left.type)

    def _lower_builtin(self, expr: ast.CallExpr) -> Value:
        """Hardware intrinsics: abs/min/max on either ALU, sqrt on the
        square-root unit (always float)."""
        args = [self._lower_expr(arg) for arg in expr.args]
        if expr.callee == "sqrt":
            return self._builder.unary(
                Opcode.SQRT, self._coerce(args[0], IR_FLOAT), IR_FLOAT
            )
        if expr.callee == "abs":
            return self._builder.unary(Opcode.ABS, args[0], args[0].type)
        opcode = Opcode.MIN if expr.callee == "min" else Opcode.MAX
        left, right = self._unify(args[0], args[1])
        return self._builder.binary(opcode, left, right, left.type)

    def _lower_call(self, expr: ast.CallExpr, want_result: bool) -> Optional[VReg]:
        from ..lang.sema import BUILTIN_FUNCTIONS

        if expr.callee in BUILTIN_FUNCTIONS:
            result = self._lower_builtin(expr)
            if isinstance(result, VReg):
                return result
            raise LoweringError("builtin lowered to a non-register value")
        info = self._callees.get(expr.callee)
        if info is None:
            raise LoweringError(f"call to unknown function {expr.callee!r}")
        args = []
        for arg, param_type in zip(expr.args, info.param_types):
            value = self._lower_expr(arg)
            args.append(self._coerce(value, ir_type_of(param_type)))
        result_type = (
            None
            if info.return_type == VOID
            else ir_type_of(info.return_type)
        )
        if not want_result:
            result_type_for_call = result_type  # keep dest so value isn't lost
            return self._builder.call(expr.callee, tuple(args), result_type_for_call)
        return self._builder.call(expr.callee, tuple(args), result_type)

    # -- helpers -----------------------------------------------------------------

    def _array_of(self, expr: ast.IndexExpr) -> FrameArray:
        if not isinstance(expr.base, ast.VarRef):
            raise LoweringError("array base must be a variable")
        array = self._arrays.get(expr.base.name)
        if array is None:
            raise LoweringError(f"{expr.base.name!r} is not an array")
        return array

    def _coerce(self, value: Value, target_type: str) -> Value:
        """Insert int->float conversion when needed."""
        if value.type == target_type:
            return value
        if value.type == IR_INT and target_type == IR_FLOAT:
            if isinstance(value, Const):
                return Const(float(value.value), IR_FLOAT)
            return self._builder.itof(value)
        raise LoweringError(
            f"cannot coerce {value.type!r} to {target_type!r} (sema gap)"
        )

    def _unify(self, left: Value, right: Value):
        """Widen operands so both have the same IR type."""
        if left.type == right.type:
            return left, right
        if left.type == IR_INT:
            return self._coerce(left, IR_FLOAT), right
        return left, self._coerce(right, IR_FLOAT)


def _constant_int(expr: ast.Expr) -> Optional[int]:
    """Evaluate an expression that must be an integer constant, else None."""
    if isinstance(expr, ast.IntLiteral):
        return expr.value
    if isinstance(expr, ast.UnaryExpr) and expr.op == "-":
        inner = _constant_int(expr.operand)
        return None if inner is None else -inner
    return None


def lower_function(
    section: ast.Section, function: ast.Function, sema: SemaResult
) -> FunctionIR:
    """Lower one checked function to IR."""
    return FunctionLowerer(section, function, sema).lower()


def lower_module(module: ast.Module, sema: SemaResult) -> ModuleIR:
    """Lower every function of a checked module."""
    result = ModuleIR(name=module.name)
    for section in module.sections:
        result.section_cells[section.name] = (section.first_cell, section.last_cell)
        result.functions[section.name] = [
            lower_function(section, fn, sema) for fn in section.functions
        ]
    return result
