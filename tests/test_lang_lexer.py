"""Lexer unit tests."""

import pytest

from repro.lang.diagnostics import DiagnosticSink
from repro.lang.lexer import tokenize
from repro.lang.source import SourceFile
from repro.lang.tokens import TokenKind


def lex(text: str):
    sink = DiagnosticSink()
    tokens = tokenize(SourceFile("<test>", text), sink)
    return tokens, sink


def kinds(text: str):
    tokens, sink = lex(text)
    assert not sink.has_errors, sink.render()
    return [t.kind for t in tokens]


class TestBasicTokens:
    def test_empty_input_yields_only_eof(self):
        assert kinds("") == [TokenKind.EOF]

    def test_whitespace_only(self):
        assert kinds("  \t\n  \r\n") == [TokenKind.EOF]

    def test_identifier(self):
        tokens, _ = lex("foo_bar42")
        assert tokens[0].kind is TokenKind.IDENT
        assert tokens[0].value == "foo_bar42"

    def test_keywords_are_not_identifiers(self):
        assert kinds("module section function begin end") == [
            TokenKind.MODULE,
            TokenKind.SECTION,
            TokenKind.FUNCTION,
            TokenKind.BEGIN,
            TokenKind.END,
            TokenKind.EOF,
        ]

    def test_keyword_prefix_is_identifier(self):
        tokens, _ = lex("formula")
        assert tokens[0].kind is TokenKind.IDENT

    def test_case_sensitive_keywords(self):
        tokens, _ = lex("Module")
        assert tokens[0].kind is TokenKind.IDENT


class TestNumbers:
    def test_integer_literal(self):
        tokens, _ = lex("42")
        assert tokens[0].kind is TokenKind.INT_LIT
        assert tokens[0].value == 42

    def test_float_literal(self):
        tokens, _ = lex("3.25")
        assert tokens[0].kind is TokenKind.FLOAT_LIT
        assert tokens[0].value == 3.25

    def test_float_with_exponent(self):
        tokens, _ = lex("1e3 2.5e-2")
        assert tokens[0].value == 1000.0
        assert tokens[1].value == 0.025

    def test_integer_followed_by_dotdot_is_not_float(self):
        assert kinds("0..7") == [
            TokenKind.INT_LIT,
            TokenKind.DOTDOT,
            TokenKind.INT_LIT,
            TokenKind.EOF,
        ]

    def test_zero(self):
        tokens, _ = lex("0")
        assert tokens[0].value == 0


class TestOperators:
    def test_assign_vs_colon(self):
        assert kinds(": :=") == [
            TokenKind.COLON,
            TokenKind.ASSIGN,
            TokenKind.EOF,
        ]

    def test_comparison_operators(self):
        assert kinds("= <> < <= > >=") == [
            TokenKind.EQ,
            TokenKind.NE,
            TokenKind.LT,
            TokenKind.LE,
            TokenKind.GT,
            TokenKind.GE,
            TokenKind.EOF,
        ]

    def test_arithmetic(self):
        assert kinds("+ - * / %") == [
            TokenKind.PLUS,
            TokenKind.MINUS,
            TokenKind.STAR,
            TokenKind.SLASH,
            TokenKind.PERCENT,
            TokenKind.EOF,
        ]

    def test_brackets(self):
        assert kinds("( ) [ ]") == [
            TokenKind.LPAREN,
            TokenKind.RPAREN,
            TokenKind.LBRACKET,
            TokenKind.RBRACKET,
            TokenKind.EOF,
        ]


class TestCommentsAndErrors:
    def test_comment_to_end_of_line(self):
        assert kinds("a -- comment here\nb") == [
            TokenKind.IDENT,
            TokenKind.IDENT,
            TokenKind.EOF,
        ]

    def test_comment_at_eof_without_newline(self):
        assert kinds("a -- trailing") == [TokenKind.IDENT, TokenKind.EOF]

    def test_double_minus_is_comment_not_two_minuses(self):
        assert kinds("1 --x\n- 2") == [
            TokenKind.INT_LIT,
            TokenKind.MINUS,
            TokenKind.INT_LIT,
            TokenKind.EOF,
        ]

    def test_unknown_character_reports_error(self):
        tokens, sink = lex("a @ b")
        assert sink.has_errors
        assert "unexpected character" in sink.render()
        # Lexing continues past the bad character.
        assert [t.kind for t in tokens] == [
            TokenKind.IDENT,
            TokenKind.IDENT,
            TokenKind.EOF,
        ]


class TestSpans:
    def test_token_positions(self):
        tokens, _ = lex("ab\ncd")
        assert tokens[0].span.start.line == 1
        assert tokens[0].span.start.column == 1
        assert tokens[1].span.start.line == 2
        assert tokens[1].span.start.column == 1

    def test_span_covers_token_text(self):
        tokens, _ = lex("  hello  ")
        span = tokens[0].span
        assert span.end.offset - span.start.offset == len("hello")
