"""Parallel make: module-level build parallelism (paper §3.4).

"A different approach to parallel compilation is taken by parallel
versions of the make utility [1, 3].  These programs allow separate
compilations to proceed concurrently.  The input to parallel make is a
UNIX makefile in which the user explicitly specifies dependencies between
modules ... The compiler invoked by parallel make is the default
sequential compiler, and all potential parallelism has been identified by
the creator of the makefile."

This module simulates such a build: each make target is one module
compilation (priced by the cluster simulator), targets run concurrently
on a pool of machines subject to the declared dependencies, and —
matching the paper's closing observation — the per-module compiler can be
either the sequential one (classic parallel make) or our parallel
compiler (the coexistence scenario).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..driver.results import WorkProfile
from .schedule import one_function_per_processor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..cluster.cluster import ClusterSimulation


@dataclass
class MakeTarget:
    """One makefile rule: a module to compile after its dependencies."""

    name: str
    profile: WorkProfile
    dependencies: List[str] = field(default_factory=list)


@dataclass
class MakeScheduleEntry:
    target: str
    machine: int
    start: float
    end: float


@dataclass
class MakeResult:
    elapsed: float
    schedule: List[MakeScheduleEntry] = field(default_factory=list)
    #: lazy target-name index over ``schedule`` (each target appears
    #: exactly once); rebuilt if the schedule list changed size.
    _by_target: Optional[Dict[str, MakeScheduleEntry]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def entry_for(self, target: str) -> MakeScheduleEntry:
        if self._by_target is None or len(self._by_target) != len(self.schedule):
            self._by_target = {entry.target: entry for entry in self.schedule}
        try:
            return self._by_target[target]
        except KeyError:
            raise KeyError(f"no schedule entry for {target!r}") from None


class MakeCycleError(Exception):
    """The makefile's dependency graph has a cycle."""


def simulate_parallel_make(
    targets: List[MakeTarget],
    machines: int,
    sim: Optional["ClusterSimulation"] = None,
    parallel_modules: bool = False,
) -> MakeResult:
    """Greedy list scheduling of make targets over a machine pool.

    Each target's duration comes from the cluster simulator: the
    sequential compiler by default, or the parallel compiler when
    ``parallel_modules`` is set (each module then transiently grabs one
    workstation per function — the coexistence scenario; machine
    accounting for those extra workstations is not modeled, matching the
    paper's qualitative discussion).
    """
    if machines < 1:
        raise ValueError(f"need at least one machine, got {machines}")
    if sim is None:
        from ..cluster.cluster import ClusterSimulation

        sim = ClusterSimulation()
    by_name = {t.name: t for t in targets}
    for target in targets:
        for dep in target.dependencies:
            if dep not in by_name:
                raise KeyError(
                    f"target {target.name!r} depends on unknown {dep!r}"
                )

    durations: Dict[str, float] = {}
    for target in targets:
        if parallel_modules:
            assignment = one_function_per_processor(target.profile.functions)
            durations[target.name] = sim.run_parallel(
                target.profile, assignment
            ).elapsed
        else:
            durations[target.name] = sim.run_sequential(target.profile).elapsed

    finish: Dict[str, float] = {}
    machine_free = [0.0] * machines
    remaining = {t.name for t in targets}
    schedule: List[MakeScheduleEntry] = []

    while remaining:
        ready = sorted(
            name
            for name in remaining
            if all(dep in finish for dep in by_name[name].dependencies)
        )
        if not ready:
            raise MakeCycleError(
                f"dependency cycle among {sorted(remaining)}"
            )
        # Longest-processing-time first among the ready set.
        ready.sort(key=lambda n: (-durations[n], n))
        progressed = False
        for name in ready:
            target = by_name[name]
            dep_ready = max(
                (finish[d] for d in target.dependencies), default=0.0
            )
            machine = min(range(machines), key=lambda m: machine_free[m])
            start = max(machine_free[machine], dep_ready)
            end = start + durations[name]
            machine_free[machine] = end
            finish[name] = end
            remaining.discard(name)
            schedule.append(
                MakeScheduleEntry(
                    target=name, machine=machine, start=start, end=end
                )
            )
            progressed = True
        if not progressed:  # pragma: no cover - defensive
            raise MakeCycleError("scheduler made no progress")

    elapsed = max(finish.values(), default=0.0)
    schedule.sort(key=lambda e: (e.start, e.machine))
    return MakeResult(elapsed=elapsed, schedule=schedule)
