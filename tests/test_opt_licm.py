"""Loop-invariant code motion."""

import pytest

from repro.ir.instructions import Opcode
from repro.ir.loops import find_loops
from repro.opt.licm import hoist_loop_invariants
from repro.opt.pass_manager import PassManager

from helpers import compile_and_run, echo_module, single_function_ir, wrap_function


def loop_body_ops(fn):
    nest = find_loops(fn)
    ops = []
    for loop in nest.all_loops():
        for name in loop.blocks:
            ops.extend(i.op for i in fn.block_named(name).instructions)
    return ops


class TestHoisting:
    def test_invariant_multiply_hoisted(self):
        fn = single_function_ir(
            wrap_function(
                "function f(x: float, y: float) : float\n"
                "var i: int; acc: float;\n"
                "begin\n"
                "for i := 0 to 9 do acc := acc + x * y; end;\n"
                "return acc;\nend"
            )
        )
        # The multiply is recomputed every iteration before LICM.
        assert Opcode.MUL in loop_body_ops(fn)
        moved = hoist_loop_invariants(fn)
        assert moved >= 1
        assert Opcode.MUL not in loop_body_ops(fn)
        fn.validate()

    def test_variant_computation_not_hoisted(self):
        fn = single_function_ir(
            wrap_function(
                "function f(x: float) : float\n"
                "var i: int; acc: float;\n"
                "begin\n"
                "for i := 0 to 9 do acc := acc + x * i; end;\n"
                "return acc;\nend"
            )
        )
        hoist_loop_invariants(fn)
        assert Opcode.MUL in loop_body_ops(fn)  # depends on i

    def test_division_never_speculated(self):
        fn = single_function_ir(
            wrap_function(
                "function f(x: float, y: float) : float\n"
                "var i: int; acc: float;\n"
                "begin\n"
                "for i := 0 to 9 do acc := acc + x / y; end;\n"
                "return acc;\nend"
            )
        )
        hoist_loop_invariants(fn)
        assert Opcode.DIV in loop_body_ops(fn)

    def test_loads_not_hoisted(self):
        fn = single_function_ir(
            wrap_function(
                "function f()\n"
                "var i: int; acc: float; a: array[4] of float;\n"
                "begin\n"
                "for i := 0 to 9 do acc := acc + a[0]; end;\n"
                "a[0] := acc;\nend"
            )
        )
        hoist_loop_invariants(fn)
        assert Opcode.LOAD in loop_body_ops(fn)

    def test_chain_of_invariants_hoisted(self):
        fn = single_function_ir(
            wrap_function(
                "function f(x: float) : float\n"
                "var i: int; acc: float;\n"
                "begin\n"
                "for i := 0 to 9 do acc := acc + (x * 2.0) * (x * 2.0 + 1.0); "
                "end;\n"
                "return acc;\nend"
            )
        )
        moved = hoist_loop_invariants(fn)
        assert moved >= 2
        body_ops = loop_body_ops(fn)
        assert body_ops.count(Opcode.MUL) == 0

    def test_nested_loop_invariant_leaves_inner(self):
        fn = single_function_ir(
            wrap_function(
                "function f(x: float) : float\n"
                "var i, j: int; acc: float;\n"
                "begin\n"
                "for i := 0 to 3 do\n"
                "  for j := 0 to 3 do acc := acc + x * 3.0; end;\n"
                "end;\n"
                "return acc;\nend"
            )
        )
        hoist_loop_invariants(fn)
        nest = find_loops(fn)
        inner = nest.innermost_loops()[0]
        inner_ops = [
            i.op
            for name in inner.blocks
            for i in fn.block_named(name).instructions
        ]
        assert Opcode.MUL not in inner_ops


class TestSemanticsPreserved:
    def test_zero_trip_loop_with_hoisting(self):
        body = (
            "  var i: int; acc: float;\n"
            "  begin\n"
            "    acc := x;\n"
            "    for i := 5 to 2 do acc := acc + x * 3.0; end;\n"
            "    return acc;\n"
            "  end"
        )
        result = compile_and_run(echo_module(body, 2), [1.0, -4.0])
        assert result.output_floats() == [1.0, -4.0]

    def test_end_to_end_results_unchanged_by_licm(self):
        body = (
            "  var i: int; acc: float;\n"
            "  begin\n"
            "    acc := 0.0;\n"
            "    for i := 0 to 7 do acc := acc + (x + 1.0) * 2.0; end;\n"
            "    return acc;\n"
            "  end"
        )
        src = echo_module(body, 2)
        expected = [(v + 1.0) * 2.0 * 8 for v in (1.0, 2.5)]
        for level in (0, 1, 2):
            result = compile_and_run(src, [1.0, 2.5], opt_level=level)
            assert result.output_floats() == expected

    def test_pipeline_runs_licm(self):
        fn = single_function_ir(
            wrap_function(
                "function f(x: float) : float\n"
                "var i: int; acc: float;\n"
                "begin\n"
                "for i := 0 to 9 do acc := acc + x * 5.0; end;\n"
                "return acc;\nend"
            )
        )
        stats = PassManager(opt_level=2).run(fn)
        assert stats.changes.get("loop-invariant-code-motion", 0) >= 1
