"""Recursive-descent parser for the W2-like Warp source language.

Grammar (EBNF, ``{}`` repetition, ``[]`` option)::

    module   = "module" IDENT { section } "end"
    section  = "section" IDENT "(" "cells" INT ".." INT ")" { function } "end"
    function = "function" IDENT "(" [ param { "," param } ] ")" [ ":" type ]
               [ "var" { decl } ] "begin" { stmt } "end"
    param    = IDENT ":" type
    decl     = IDENT { "," IDENT } ":" type ";"
    type     = "int" | "float" | "array" "[" INT "]" "of" type
    stmt     = if | for | while | return | send | receive | assign_or_call
    if       = "if" expr "then" { stmt } [ "else" { stmt } ] "end" ";"
    for      = "for" IDENT ":=" expr "to" expr [ "by" expr ] "do" { stmt } "end" ";"
    while    = "while" expr "do" { stmt } "end" ";"
    return   = "return" [ expr ] ";"
    send     = "send" "(" expr ")" ";"
    receive  = "receive" "(" postfix ")" ";"
    assign_or_call = postfix [ ":=" expr ] ";"

Expression precedence, low to high: ``or`` < ``and`` < ``not`` <
comparisons < additive < multiplicative < unary minus < postfix < primary.

Errors are reported to the sink and the parser synchronizes at statement
boundaries, so a single compilation reports as many problems as possible —
the master process aborts parallel compilation only after parsing the whole
program (paper §3.2).
"""

from __future__ import annotations

from typing import List, Optional

from . import ast_nodes as ast
from .diagnostics import DiagnosticSink
from .lexer import tokenize
from .source import SourceFile, Span
from .tokens import Token, TokenKind
from .types import ArrayType, FLOAT, INT, Type, VOID


class _ParseError(Exception):
    """Internal signal: the current construct cannot be parsed further."""


_COMPARISON_OPS = {
    TokenKind.EQ: "=",
    TokenKind.NE: "<>",
    TokenKind.LT: "<",
    TokenKind.LE: "<=",
    TokenKind.GT: ">",
    TokenKind.GE: ">=",
}

_ADDITIVE_OPS = {TokenKind.PLUS: "+", TokenKind.MINUS: "-"}

_MULTIPLICATIVE_OPS = {
    TokenKind.STAR: "*",
    TokenKind.SLASH: "/",
    TokenKind.PERCENT: "%",
}

_STATEMENT_STARTERS = {
    TokenKind.IF,
    TokenKind.FOR,
    TokenKind.WHILE,
    TokenKind.RETURN,
    TokenKind.SEND,
    TokenKind.RECEIVE,
    TokenKind.IDENT,
}


class Parser:
    """Parses one source file into a :class:`repro.lang.ast_nodes.Module`."""

    def __init__(self, tokens: List[Token], sink: DiagnosticSink):
        self._tokens = tokens
        self._sink = sink
        self._index = 0

    # -- token stream helpers ---------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _at(self, kind: TokenKind) -> bool:
        return self._current.kind is kind

    def _advance(self) -> Token:
        token = self._current
        if token.kind is not TokenKind.EOF:
            self._index += 1
        return token

    def _accept(self, kind: TokenKind) -> Optional[Token]:
        if self._at(kind):
            return self._advance()
        return None

    def _expect(self, kind: TokenKind) -> Token:
        if self._at(kind):
            return self._advance()
        self._sink.error(
            f"expected {kind.value!r}, found {self._current.text!r}",
            self._current.span,
        )
        raise _ParseError()

    def _span_from(self, start: Span) -> Span:
        end = self._tokens[max(self._index - 1, 0)].span
        return start.merge(end)

    # -- program structure --------------------------------------------------

    def parse_module(self) -> ast.Module:
        start = self._current.span
        try:
            self._expect(TokenKind.MODULE)
            name = self._expect(TokenKind.IDENT).text
        except _ParseError:
            return ast.Module(name="<error>", sections=[], span=start)
        sections: List[ast.Section] = []
        while self._at(TokenKind.SECTION):
            section = self._parse_section()
            if section is not None:
                sections.append(section)
        if not self._accept(TokenKind.END):
            self._sink.error(
                f"expected 'section' or 'end', found {self._current.text!r}",
                self._current.span,
            )
        if not self._at(TokenKind.EOF):
            self._sink.error(
                f"trailing input after module end: {self._current.text!r}",
                self._current.span,
            )
        return ast.Module(name=name, sections=sections, span=self._span_from(start))

    def _parse_section(self) -> Optional[ast.Section]:
        start = self._current.span
        try:
            self._expect(TokenKind.SECTION)
            name = self._expect(TokenKind.IDENT).text
            self._expect(TokenKind.LPAREN)
            self._expect(TokenKind.CELLS)
            first = self._expect(TokenKind.INT_LIT).value
            self._expect(TokenKind.DOTDOT)
            last = self._expect(TokenKind.INT_LIT).value
            self._expect(TokenKind.RPAREN)
        except _ParseError:
            self._synchronize_to({TokenKind.SECTION, TokenKind.END})
            return None
        functions: List[ast.Function] = []
        while self._at(TokenKind.FUNCTION):
            fn = self._parse_function()
            if fn is not None:
                functions.append(fn)
        try:
            self._expect(TokenKind.END)
        except _ParseError:
            self._synchronize_to({TokenKind.SECTION, TokenKind.END})
            self._accept(TokenKind.END)
        return ast.Section(
            name=name,
            first_cell=first,
            last_cell=last,
            functions=functions,
            span=self._span_from(start),
        )

    def parse_function(self) -> Optional[ast.Function]:
        """Parse exactly one function, then require EOF.

        Entry point for the parallel front end: the token stream is one
        function's byte window (from the boundary scanner), lexed through
        a :class:`~repro.lang.source.WindowedSource` so every span is
        absolute.  Unconsumed tokens mean the window and the grammar
        disagree — an error, which makes the caller fall back to the
        sequential parse for canonical diagnostics.
        """
        fn = self._parse_function()
        if not self._at(TokenKind.EOF):
            self._sink.error(
                f"trailing input after function end: {self._current.text!r}",
                self._current.span,
            )
        return fn

    def parse_function_signature(self) -> Optional[ast.Function]:
        """Header-only parse: name, parameters, return type.

        Used by the parallel front end's sequential signature pass; the
        result is a body-less stub whose signature is exactly what the
        per-function checkers (and the parse-cache key) need.  Tokens
        after the return type (the ``var`` block) are deliberately left
        unconsumed — the body window's full parse validates them.
        Returns ``None`` when the header itself is malformed.
        """
        start = self._current.span
        try:
            self._expect(TokenKind.FUNCTION)
            name = self._expect(TokenKind.IDENT).text
            params = self._parse_params()
            return_type: Type = VOID
            if self._accept(TokenKind.COLON):
                return_type = self._parse_type()
        except _ParseError:
            return None
        return ast.Function(
            name=name,
            params=params,
            return_type=return_type,
            locals=[],
            body=[],
            span=self._span_from(start),
        )

    def _parse_function(self) -> Optional[ast.Function]:
        start = self._current.span
        try:
            self._expect(TokenKind.FUNCTION)
            name = self._expect(TokenKind.IDENT).text
            params = self._parse_params()
            return_type: Type = VOID
            if self._accept(TokenKind.COLON):
                return_type = self._parse_type()
            local_decls = self._parse_var_block()
            self._expect(TokenKind.BEGIN)
        except _ParseError:
            self._synchronize_to(
                {TokenKind.FUNCTION, TokenKind.SECTION, TokenKind.END}
            )
            return None
        body = self._parse_statements(terminators={TokenKind.END})
        try:
            self._expect(TokenKind.END)
        except _ParseError:
            self._synchronize_to({TokenKind.FUNCTION, TokenKind.SECTION})
        return ast.Function(
            name=name,
            params=params,
            return_type=return_type,
            locals=local_decls,
            body=body,
            span=self._span_from(start),
        )

    def _parse_params(self) -> List[ast.Param]:
        self._expect(TokenKind.LPAREN)
        params: List[ast.Param] = []
        if not self._at(TokenKind.RPAREN):
            while True:
                name_tok = self._expect(TokenKind.IDENT)
                self._expect(TokenKind.COLON)
                param_type = self._parse_type()
                params.append(
                    ast.Param(name=name_tok.text, type=param_type, span=name_tok.span)
                )
                if not self._accept(TokenKind.COMMA):
                    break
        self._expect(TokenKind.RPAREN)
        return params

    def _parse_var_block(self) -> List[ast.VarDecl]:
        decls: List[ast.VarDecl] = []
        if not self._accept(TokenKind.VAR):
            return decls
        while self._at(TokenKind.IDENT):
            names = [self._expect(TokenKind.IDENT)]
            while self._accept(TokenKind.COMMA):
                names.append(self._expect(TokenKind.IDENT))
            self._expect(TokenKind.COLON)
            decl_type = self._parse_type()
            self._expect(TokenKind.SEMICOLON)
            for tok in names:
                decls.append(ast.VarDecl(name=tok.text, type=decl_type, span=tok.span))
        return decls

    def _parse_type(self) -> Type:
        if self._accept(TokenKind.INT):
            return INT
        if self._accept(TokenKind.FLOAT):
            return FLOAT
        if self._accept(TokenKind.ARRAY):
            self._expect(TokenKind.LBRACKET)
            length_tok = self._expect(TokenKind.INT_LIT)
            self._expect(TokenKind.RBRACKET)
            self._expect(TokenKind.OF)
            element = self._parse_type()
            if isinstance(element, ArrayType):
                self._sink.error(
                    "multi-dimensional arrays are not supported", length_tok.span
                )
            return ArrayType(element=element, length=length_tok.value)
        self._sink.error(
            f"expected a type, found {self._current.text!r}", self._current.span
        )
        raise _ParseError()

    # -- statements -----------------------------------------------------------

    def _parse_statements(self, terminators) -> List[ast.Stmt]:
        stmts: List[ast.Stmt] = []
        stop = set(terminators) | {TokenKind.EOF}
        while self._current.kind not in stop:
            if self._current.kind not in _STATEMENT_STARTERS:
                self._sink.error(
                    f"expected a statement, found {self._current.text!r}",
                    self._current.span,
                )
                self._synchronize_to(stop | {TokenKind.SEMICOLON})
                self._accept(TokenKind.SEMICOLON)
                continue
            try:
                stmts.append(self._parse_statement())
            except _ParseError:
                self._synchronize_to(stop | {TokenKind.SEMICOLON})
                self._accept(TokenKind.SEMICOLON)
        return stmts

    def _parse_statement(self) -> ast.Stmt:
        kind = self._current.kind
        if kind is TokenKind.IF:
            return self._parse_if()
        if kind is TokenKind.FOR:
            return self._parse_for()
        if kind is TokenKind.WHILE:
            return self._parse_while()
        if kind is TokenKind.RETURN:
            return self._parse_return()
        if kind is TokenKind.SEND:
            return self._parse_send()
        if kind is TokenKind.RECEIVE:
            return self._parse_receive()
        return self._parse_assign_or_call()

    def _parse_if(self) -> ast.IfStmt:
        start = self._expect(TokenKind.IF).span
        condition = self._parse_expr()
        self._expect(TokenKind.THEN)
        then_body = self._parse_statements({TokenKind.ELSE, TokenKind.END})
        else_body: List[ast.Stmt] = []
        if self._accept(TokenKind.ELSE):
            else_body = self._parse_statements({TokenKind.END})
        self._expect(TokenKind.END)
        self._expect(TokenKind.SEMICOLON)
        return ast.IfStmt(
            span=self._span_from(start),
            condition=condition,
            then_body=then_body,
            else_body=else_body,
        )

    def _parse_for(self) -> ast.ForStmt:
        start = self._expect(TokenKind.FOR).span
        var = self._expect(TokenKind.IDENT).text
        self._expect(TokenKind.ASSIGN)
        low = self._parse_expr()
        self._expect(TokenKind.TO)
        high = self._parse_expr()
        step: Optional[ast.Expr] = None
        if self._accept(TokenKind.BY):
            step = self._parse_expr()
        self._expect(TokenKind.DO)
        body = self._parse_statements({TokenKind.END})
        self._expect(TokenKind.END)
        self._expect(TokenKind.SEMICOLON)
        return ast.ForStmt(
            span=self._span_from(start),
            var=var,
            low=low,
            high=high,
            step=step,
            body=body,
        )

    def _parse_while(self) -> ast.WhileStmt:
        start = self._expect(TokenKind.WHILE).span
        condition = self._parse_expr()
        self._expect(TokenKind.DO)
        body = self._parse_statements({TokenKind.END})
        self._expect(TokenKind.END)
        self._expect(TokenKind.SEMICOLON)
        return ast.WhileStmt(
            span=self._span_from(start), condition=condition, body=body
        )

    def _parse_return(self) -> ast.ReturnStmt:
        start = self._expect(TokenKind.RETURN).span
        value: Optional[ast.Expr] = None
        if not self._at(TokenKind.SEMICOLON):
            value = self._parse_expr()
        self._expect(TokenKind.SEMICOLON)
        return ast.ReturnStmt(span=self._span_from(start), value=value)

    def _parse_send(self) -> ast.SendStmt:
        start = self._expect(TokenKind.SEND).span
        self._expect(TokenKind.LPAREN)
        value = self._parse_expr()
        self._expect(TokenKind.RPAREN)
        self._expect(TokenKind.SEMICOLON)
        return ast.SendStmt(span=self._span_from(start), value=value)

    def _parse_receive(self) -> ast.ReceiveStmt:
        start = self._expect(TokenKind.RECEIVE).span
        self._expect(TokenKind.LPAREN)
        target = self._parse_postfix()
        self._expect(TokenKind.RPAREN)
        self._expect(TokenKind.SEMICOLON)
        return ast.ReceiveStmt(span=self._span_from(start), target=target)

    def _parse_assign_or_call(self) -> ast.Stmt:
        start = self._current.span
        target = self._parse_postfix()
        if self._accept(TokenKind.ASSIGN):
            value = self._parse_expr()
            self._expect(TokenKind.SEMICOLON)
            return ast.AssignStmt(
                span=self._span_from(start), target=target, value=value
            )
        self._expect(TokenKind.SEMICOLON)
        if isinstance(target, ast.CallExpr):
            return ast.CallStmt(span=self._span_from(start), call=target)
        self._sink.error("expression statement must be a call", target.span)
        raise _ParseError()

    # -- expressions -----------------------------------------------------------

    def _parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        expr = self._parse_and()
        while self._at(TokenKind.OR):
            self._advance()
            right = self._parse_and()
            expr = ast.BinaryExpr(
                span=expr.span.merge(right.span), op="or", left=expr, right=right
            )
        return expr

    def _parse_and(self) -> ast.Expr:
        expr = self._parse_not()
        while self._at(TokenKind.AND):
            self._advance()
            right = self._parse_not()
            expr = ast.BinaryExpr(
                span=expr.span.merge(right.span), op="and", left=expr, right=right
            )
        return expr

    def _parse_not(self) -> ast.Expr:
        if self._at(TokenKind.NOT):
            start = self._advance().span
            operand = self._parse_not()
            return ast.UnaryExpr(
                span=start.merge(operand.span), op="not", operand=operand
            )
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Expr:
        expr = self._parse_additive()
        if self._current.kind in _COMPARISON_OPS:
            op = _COMPARISON_OPS[self._advance().kind]
            right = self._parse_additive()
            expr = ast.BinaryExpr(
                span=expr.span.merge(right.span), op=op, left=expr, right=right
            )
        return expr

    def _parse_additive(self) -> ast.Expr:
        expr = self._parse_multiplicative()
        while self._current.kind in _ADDITIVE_OPS:
            op = _ADDITIVE_OPS[self._advance().kind]
            right = self._parse_multiplicative()
            expr = ast.BinaryExpr(
                span=expr.span.merge(right.span), op=op, left=expr, right=right
            )
        return expr

    def _parse_multiplicative(self) -> ast.Expr:
        expr = self._parse_unary()
        while self._current.kind in _MULTIPLICATIVE_OPS:
            op = _MULTIPLICATIVE_OPS[self._advance().kind]
            right = self._parse_unary()
            expr = ast.BinaryExpr(
                span=expr.span.merge(right.span), op=op, left=expr, right=right
            )
        return expr

    def _parse_unary(self) -> ast.Expr:
        if self._at(TokenKind.MINUS):
            start = self._advance().span
            operand = self._parse_unary()
            return ast.UnaryExpr(
                span=start.merge(operand.span), op="-", operand=operand
            )
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            if self._at(TokenKind.LBRACKET):
                self._advance()
                index = self._parse_expr()
                end = self._expect(TokenKind.RBRACKET).span
                expr = ast.IndexExpr(
                    span=expr.span.merge(end), base=expr, index=index
                )
            elif self._at(TokenKind.LPAREN) and isinstance(expr, ast.VarRef):
                self._advance()
                args: List[ast.Expr] = []
                if not self._at(TokenKind.RPAREN):
                    args.append(self._parse_expr())
                    while self._accept(TokenKind.COMMA):
                        args.append(self._parse_expr())
                end = self._expect(TokenKind.RPAREN).span
                expr = ast.CallExpr(
                    span=expr.span.merge(end), callee=expr.name, args=args
                )
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        token = self._current
        if token.kind is TokenKind.INT_LIT:
            self._advance()
            return ast.IntLiteral(span=token.span, value=token.value)
        if token.kind is TokenKind.FLOAT_LIT:
            self._advance()
            return ast.FloatLiteral(span=token.span, value=token.value)
        if token.kind is TokenKind.IDENT:
            self._advance()
            return ast.VarRef(span=token.span, name=token.text)
        if token.kind is TokenKind.LPAREN:
            self._advance()
            expr = self._parse_expr()
            self._expect(TokenKind.RPAREN)
            return expr
        self._sink.error(
            f"expected an expression, found {token.text!r}", token.span
        )
        raise _ParseError()

    # -- error recovery ----------------------------------------------------------

    def _synchronize_to(self, kinds) -> None:
        """Skip tokens until one of ``kinds`` (or EOF) is current."""
        stop = set(kinds) | {TokenKind.EOF}
        while self._current.kind not in stop:
            self._advance()


def parse_source(source: SourceFile, sink: DiagnosticSink) -> ast.Module:
    """Lex and parse ``source`` into a module, reporting problems to ``sink``."""
    tokens = tokenize(source, sink)
    return Parser(tokens, sink).parse_module()


def parse_text(text: str, sink: DiagnosticSink, filename: str = "<input>") -> ast.Module:
    """Parse a string of source text (convenience for tests and examples)."""
    return parse_source(SourceFile(filename, text), sink)
