"""Global constant propagation across blocks, branches, and loops."""

import pytest

from repro.ir.instructions import Opcode
from repro.ir.values import Const, IR_INT
from repro.opt.gconst import propagate_constants_globally
from repro.opt.pass_manager import PassManager

from helpers import compile_and_run, echo_module, single_function_ir, wrap_function


def ops_of(fn):
    return [i.op for i in fn.all_instructions()]


class TestCrossBlockPropagation:
    def test_constant_flows_through_branch_join(self):
        fn = single_function_ir(
            wrap_function(
                "function f(n: int) : int\nvar k: int;\nbegin\n"
                "k := 7;\n"
                "if n > 0 then n := n + 1; else n := n - 1; end;\n"
                "return k;\nend"
            )
        )
        PassManager(2).run(fn)
        rets = [i for i in fn.all_instructions() if i.op is Opcode.RET]
        assert rets[0].operands[0] == Const(7, IR_INT)

    def test_agreeing_arms_propagate(self):
        fn = single_function_ir(
            wrap_function(
                "function f(n: int) : int\nvar k: int;\nbegin\n"
                "if n > 0 then k := 5; else k := 5; end;\n"
                "return k;\nend"
            )
        )
        PassManager(2).run(fn)
        rets = [i for i in fn.all_instructions() if i.op is Opcode.RET]
        assert rets[0].operands[0] == Const(5, IR_INT)

    def test_disagreeing_arms_do_not_propagate(self):
        fn = single_function_ir(
            wrap_function(
                "function f(n: int) : int\nvar k: int;\nbegin\n"
                "if n > 0 then k := 5; else k := 6; end;\n"
                "return k;\nend"
            )
        )
        PassManager(2).run(fn)
        rets = [i for i in fn.all_instructions() if i.op is Opcode.RET]
        assert not isinstance(rets[0].operands[0], Const)

    def test_loop_redefined_value_varies(self):
        fn = single_function_ir(
            wrap_function(
                "function f(n: int) : int\nvar i, k: int;\nbegin\n"
                "k := 1;\n"
                "for i := 0 to n do k := k * 2; end;\n"
                "return k;\nend"
            )
        )
        propagate_constants_globally(fn)
        # k varies around the loop; the return must still read a register.
        rets = [i for i in fn.all_instructions() if i.op is Opcode.RET]
        assert not isinstance(rets[0].operands[0], Const)

    def test_loop_invariant_constant_propagates_into_body(self):
        fn = single_function_ir(
            wrap_function(
                "function f(n: int) : int\nvar i, k, acc: int;\nbegin\n"
                "k := 3;\n"
                "for i := 0 to n do acc := acc + k; end;\n"
                "return acc;\nend"
            )
        )
        changes = propagate_constants_globally(fn)
        assert changes >= 1
        body = fn.block_named("for.body")
        adds = [i for i in body.instructions if i.op is Opcode.ADD]
        assert any(
            Const(3, IR_INT) in a.operands for a in adds
        )

    def test_whole_branch_deleted_when_condition_constant(self):
        fn = single_function_ir(
            wrap_function(
                "function f() : int\nvar k: int;\nbegin\n"
                "k := 2;\n"
                "if k > 10 then return 1; end;\n"
                "return 0;\nend"
            )
        )
        PassManager(2).run(fn)
        assert Opcode.BR not in ops_of(fn)
        rets = [i for i in fn.all_instructions() if i.op is Opcode.RET]
        assert len(rets) == 1
        assert rets[0].operands[0] == Const(0, IR_INT)


class TestSemanticsPreserved:
    def test_end_to_end_with_constants_through_control_flow(self):
        body = (
            "  var k: int; scale: float;\n"
            "  begin\n"
            "    k := 4;\n"
            "    if x > 0.0 then scale := 2.0; else scale := 2.0; end;\n"
            "    return x * scale + k;\n"
            "  end"
        )
        src = echo_module(body, 3)
        for level in (0, 1, 2):
            out = compile_and_run(src, [1.0, -1.0, 0.5], opt_level=level)
            assert out.output_floats() == [6.0, 2.0, 5.0]
