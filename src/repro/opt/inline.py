"""Procedure inlining.

The paper singles out inlining as the optimization that makes parallel
compilation *more* effective: "Not only will procedure inlining allow the
code generator to perform a better job, the increase in size of each
function operated upon will also improve the speedup obtained by the
parallel compiler" (§5.1).  Inlining needs callee bodies, so — like
parsing — it is a whole-section activity performed by the master before
partitioning.

Inlining a call site clones the callee's blocks with fresh registers and
block names, maps parameters to argument values, turns returns into jumps
to a continuation block, and re-homes the callee's arrays into the
caller's frame.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

from ..ir.cfg import BasicBlock, FunctionIR, ModuleIR
from ..ir.instructions import Instr, Opcode
from ..ir.values import Const, FrameArray, VReg

#: Default "small function" threshold, in IR instructions.
DEFAULT_THRESHOLD = 60


def inline_calls_in_module(
    module: ModuleIR, threshold: int = DEFAULT_THRESHOLD
) -> int:
    """Inline small callees everywhere; returns the number of sites inlined."""
    total = 0
    for section_name, functions in module.functions.items():
        by_name = {fn.name: fn for fn in functions}
        for fn in functions:
            total += inline_calls_in_function(fn, by_name, threshold)
    return total


def inline_calls_in_function(
    function: FunctionIR,
    callees: Dict[str, FunctionIR],
    threshold: int = DEFAULT_THRESHOLD,
) -> int:
    """Repeatedly inline eligible call sites in ``function``.

    The section call graph is acyclic (checked by sema), so this
    terminates: each round replaces a call with a body that may itself
    contain calls, but the nesting depth is bounded by the call graph.
    """
    inlined = 0
    # Bound the work so pathological chains cannot blow up code size.
    for _ in range(100):
        site = _find_site(function, callees, threshold)
        if site is None:
            break
        block_index, instr_index, callee = site
        _inline_site(function, block_index, instr_index, callee)
        function.validate()
        inlined += 1
    return inlined


def _find_site(
    function: FunctionIR, callees: Dict[str, FunctionIR], threshold: int
) -> Optional[tuple]:
    for block_index, block in enumerate(function.blocks):
        for instr_index, instr in enumerate(block.instructions):
            if instr.op is not Opcode.CALL:
                continue
            callee = callees.get(instr.callee)
            if callee is None or callee.name == function.name:
                continue
            if callee.instruction_count() > threshold:
                continue
            # A callee that itself still contains calls is inlined only
            # after its own calls are gone — keeps cloning simple.
            if any(i.op is Opcode.CALL for i in callee.all_instructions()):
                continue
            return block_index, instr_index, callee
    return None


def _inline_site(
    function: FunctionIR, block_index: int, instr_index: int, callee: FunctionIR
) -> None:
    block = function.blocks[block_index]
    call = block.instructions[instr_index]

    reg_map: Dict[VReg, VReg] = {}

    def clone_reg(reg: VReg) -> VReg:
        mapped = reg_map.get(reg)
        if mapped is None:
            mapped = function.new_vreg(reg.type)
            reg_map[reg] = mapped
        return mapped

    # Re-home the callee's arrays at fresh offsets in the caller's frame.
    suffix = f".inl{function.next_vreg_id}_{len(function.blocks)}"
    array_map: Dict[str, FrameArray] = {}
    next_offset = sum(a.length for a in function.arrays)
    for array in callee.arrays:
        new_array = FrameArray(
            name=f"{callee.name}.{array.name}{suffix}",
            element_type=array.element_type,
            length=array.length,
            offset=next_offset,
        )
        next_offset += array.length
        array_map[array.name] = new_array
        function.arrays.append(new_array)

    label_map = {
        b.name: f"{callee.name}.{b.name}{suffix}" for b in callee.blocks
    }
    continuation_name = f"{block.name}.cont{suffix}"

    # Clone callee blocks, rewriting registers, arrays, labels and returns.
    cloned_blocks: List[BasicBlock] = []
    for src_block in callee.blocks:
        cloned = BasicBlock(label_map[src_block.name])
        for instr in src_block.instructions:
            cloned.instructions.extend(
                _clone_instr(
                    instr, clone_reg, array_map, label_map, call.dest,
                    continuation_name,
                )
            )
        cloned_blocks.append(cloned)

    # Parameter setup: mov cloned-param := argument.
    setup: List[Instr] = []
    for param, arg in zip(callee.param_regs, call.operands):
        setup.append(Instr(Opcode.MOV, dest=clone_reg(param), operands=(arg,)))

    # Split the caller block around the call.
    before = block.instructions[:instr_index]
    after = block.instructions[instr_index + 1:]
    entry_label = label_map[callee.entry.name]
    block.instructions = before + setup + [Instr(Opcode.JMP, labels=(entry_label,))]
    continuation = BasicBlock(continuation_name, after)
    function.blocks[block_index + 1: block_index + 1] = (
        cloned_blocks + [continuation]
    )


def _clone_instr(
    instr: Instr,
    clone_reg,
    array_map: Dict[str, FrameArray],
    label_map: Dict[str, str],
    call_dest: Optional[VReg],
    continuation: str,
) -> List[Instr]:
    if instr.op is Opcode.RET:
        result: List[Instr] = []
        if instr.operands and call_dest is not None:
            value = instr.operands[0]
            mapped = clone_reg(value) if isinstance(value, VReg) else value
            result.append(Instr(Opcode.MOV, dest=call_dest, operands=(mapped,)))
        result.append(Instr(Opcode.JMP, labels=(continuation,)))
        return result
    operands = tuple(
        clone_reg(v) if isinstance(v, VReg) else v for v in instr.operands
    )
    dest = clone_reg(instr.dest) if instr.dest is not None else None
    array = array_map[instr.array.name] if instr.array is not None else None
    labels = tuple(label_map[label] for label in instr.labels)
    return [
        Instr(
            instr.op,
            dest=dest,
            operands=operands,
            array=array,
            labels=labels,
            callee=instr.callee,
        )
    ]
