"""Unit tests for the boundary scanner (the parallel front end's splitter).

The scanner's contract: on any module the sequential parser accepts, the
function windows it reports coincide exactly with the parser's function
spans; on anything it cannot classify with certainty it returns None
(fallback), never a wrong split.
"""

from repro.lang.boundary import scan_boundaries
from repro.lang.diagnostics import DiagnosticSink
from repro.lang.lexer import tokenize
from repro.lang.parser import Parser
from repro.lang.source import SourceFile


def _parse(source: str):
    sink = DiagnosticSink()
    tokens = tokenize(SourceFile("<input>", source), sink)
    module = Parser(tokens, sink).parse_module()
    assert not sink.has_errors, sink.render()
    return module


def _assert_windows_match_parser(source: str):
    """Every window's [start, end) must equal the parser's function span
    offsets, and header_end must be the 'begin' keyword's offset."""
    boundaries = scan_boundaries(source)
    assert boundaries is not None
    module = _parse(source)
    assert len(boundaries.sections) == len(module.sections)
    for sec_bounds, section in zip(boundaries.sections, module.sections):
        assert len(sec_bounds.function_windows) == len(section.functions)
        for window, fn in zip(sec_bounds.function_windows, section.functions):
            assert window.start == fn.span.start.offset
            assert window.end == fn.span.end.offset
            assert source[window.header_end:].startswith("begin")


SIMPLE = """\
module m
  section s (cells 0..1)
    function f(x: float): float
    begin
      return x + 1.0;
    end
    function g(): int
    var
      n: int;
    begin
      n := 2;
      return n;
    end
  end
end
"""


def test_windows_match_parser_spans():
    _assert_windows_match_parser(SIMPLE)


def test_nested_blocks_tracked():
    source = """\
module m
  section s (cells 0..1)
    function f(n: int): int
    var
      i, acc: int;
    begin
      acc := 0;
      for i := 0 to n do
        if acc > 3 then
          acc := acc + 1;
        else
          while acc < 2 do
            acc := acc + 2;
          end;
        end;
      end;
      return acc;
    end
  end
end
"""
    _assert_windows_match_parser(source)


def test_keywords_in_comments_are_invisible():
    source = """\
module m
  -- function end begin section module
  section s (cells 0..1)
    -- end function
    function f(): int  -- begin end
    begin
      -- if end while
      return 1;
    end
  end
end
"""
    _assert_windows_match_parser(source)


def test_number_keyword_adjacency():
    """'1e5end' lexes as FLOAT then 'end' — the scanner's number skim
    must agree with the lexer, or the body's closing 'end' is missed."""
    source = (
        "module m section s (cells 0..1) "
        "function f(): float var x: float; begin x := 1e5end "
        "function g(): float begin return 2.5e-1; end end end"
    )
    # '1e5end' is a float literal immediately followed by 'end': the
    # statement is missing its ';' so the *parser* rejects it, but the
    # scanner must still split at the same place the lexer would.
    boundaries = scan_boundaries(source)
    assert boundaries is not None
    windows = boundaries.all_windows()
    assert len(windows) == 2
    first = source[windows[0].start : windows[0].end]
    assert first.endswith("1e5end")


def test_range_op_not_a_fraction():
    """'0..1' must not be consumed as a float fraction."""
    source = SIMPLE.replace("cells 0..1", "cells 0..3")
    _assert_windows_match_parser(source)


def test_weird_spacing_and_one_line_module():
    source = (
        "module m section s(cells 0..1) function   f(  ):int "
        "begin return 1 ; end function g():int begin return 2; end end end"
    )
    _assert_windows_match_parser(source)


# -- fallback cases: the scanner must refuse, never mis-split ----------


def test_missing_function_end_falls_back():
    assert scan_boundaries(
        "module m section s (cells 0..1) function f(): int begin return 1; end"
    ) is None  # section/module 'end's consumed by the body scan


def test_missing_module_keyword_falls_back():
    assert scan_boundaries("section s (cells 0..1) end") is None


def test_nested_begin_falls_back():
    assert scan_boundaries(
        "module m section s (cells 0..1) function f(): int begin begin "
        "return 1; end end end end"
    ) is None


def test_structural_keyword_in_body_falls_back():
    assert scan_boundaries(
        "module m section s (cells 0..1) function f(): int begin "
        "section return 1; end end end"
    ) is None


def test_header_without_begin_falls_back():
    assert scan_boundaries(
        "module m section s (cells 0..1) function f(): int end end end"
    ) is None


def test_trailing_words_fall_back():
    assert scan_boundaries(SIMPLE + "stray") is None


def test_eof_mid_body_falls_back():
    assert scan_boundaries(
        "module m section s (cells 0..1) function f(): int begin return 1;"
    ) is None


def test_empty_section_scans():
    """A function-less section is structurally fine for the scanner
    (sema rejects it later, canonically, via the fallback path)."""
    boundaries = scan_boundaries("module m section s (cells 0..1) end end")
    assert boundaries is not None
    assert boundaries.function_count() == 0
