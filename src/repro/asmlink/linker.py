"""Linker: lay a section's functions out into per-cell programs.

Each function's frame (its arrays plus spill area) gets a static base
address in the cell's data memory — the language forbids recursion, so
static allocation is exact.  Every cell of a section runs the same
program; the entry function is ``main`` if the section has one, otherwise
the section's first function.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..machine.warp_cell import WarpCellModel
from .assembler import assemble_function
from .objformat import AssembledFunction, CellProgram, ObjectFunction


class LinkError(Exception):
    """The section does not fit the cell or references are unresolved."""


def link_section(
    section_name: str,
    objects: List[ObjectFunction],
    cell: WarpCellModel,
    preassembled: Optional[Dict[str, AssembledFunction]] = None,
) -> CellProgram:
    """Assemble and link one section's functions into a cell program.

    ``preassembled`` maps function names to :class:`AssembledFunction`
    payloads produced ahead of time by the function masters (distributed
    assembly).  Assembly is pure — the same object function always
    assembles to the same bundles — so using a pre-assembled payload is
    output-identical to assembling here; any function missing from the
    map (or shipped by a master whose assembly failed) is assembled on
    the spot, raising the canonical :class:`AssemblyError`.
    """
    if not objects:
        raise LinkError(f"section {section_name!r} has no functions to link")
    names = [o.name for o in objects]
    if len(set(names)) != len(names):
        raise LinkError(f"duplicate function names in section {section_name!r}")

    assembled: Dict[str, AssembledFunction] = {}
    frame_bases: Dict[str, int] = {}
    base = 0
    for obj in objects:
        if obj.section_name != section_name:
            raise LinkError(
                f"function {obj.name!r} belongs to section "
                f"{obj.section_name!r}, not {section_name!r}"
            )
        ready = (preassembled or {}).get(obj.name)
        if ready is None:
            ready = assemble_function(obj)
        assembled[obj.name] = ready
        frame_bases[obj.name] = base
        base += obj.frame_words

    if base > cell.data_memory_words:
        raise LinkError(
            f"section {section_name!r} needs {base} data words; the cell "
            f"has {cell.data_memory_words}"
        )

    _check_call_targets(section_name, assembled)

    entry = "main" if "main" in assembled else objects[0].name
    return CellProgram(
        section_name=section_name,
        functions=assembled,
        entry=entry,
        frame_bases=frame_bases,
        data_words=base,
    )


def _check_call_targets(
    section_name: str, assembled: Dict[str, AssembledFunction]
) -> None:
    for function in assembled.values():
        for bundle in function.bundles:
            for op in bundle.all_ops():
                if op.callee is not None and op.callee not in assembled:
                    raise LinkError(
                        f"call to {op.callee!r} from {function.name!r} "
                        f"cannot be resolved within section {section_name!r}"
                    )


def link_work_units(objects: List[ObjectFunction]) -> int:
    """Cost proxy for linking: bundles touched plus symbol table size."""
    return sum(o.bundle_count() for o in objects) + len(objects)
