"""Distributed fabric scaling guard (real wall-clock on this machine).

Open-loop: one module with many functions compiled through the remote
fabric, first against one ``warpcc worker`` subprocess, then against
two.  Remote workers are separate Python processes, so two of them hold
two GILs — the second node must buy real wall-clock, or the fabric's
dispatch overhead has regressed past its value.

A third leg SIGKILLs one of the two workers mid-run and requires the
compile to finish anyway with the sequential reference digest — the
robustness half of the scaling claim, priced in the same report.

Results land in ``benchmarks/out/BENCH_fabric.json``, the trajectory
point CI archives.
"""

import json
import os
import pathlib
import platform
import signal
import statistics
import subprocess
import sys
import threading
import time

from repro.driver.function_master import clear_phase1_cache
from repro.driver.master import ParallelCompiler
from repro.driver.sequential import SequentialCompiler
from repro.fabric import FabricHub, RemoteBackend
from repro.workloads.synthetic import synthetic_program

REPO = pathlib.Path(__file__).resolve().parent.parent

SIZE, FUNCTIONS = "medium", 8
SOURCE = synthetic_program(SIZE, FUNCTIONS, module_name="fabric_bench")
ROUNDS = 3


def _start_worker(address: str, node_id: str) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "worker",
            "--connect", address, "--serial", "--node-id", node_id,
        ],
        cwd=REPO,
        env={**os.environ, "PYTHONPATH": str(REPO / "src")},
        stdout=subprocess.DEVNULL,
        stderr=subprocess.STDOUT,
    )


def _stop_workers(workers) -> None:
    for worker in workers:
        if worker.poll() is None:
            worker.terminate()
    for worker in workers:
        try:
            worker.wait(timeout=10.0)
        except subprocess.TimeoutExpired:
            worker.kill()


def _timed_rounds(compiler, reference: str):
    walls = []
    for _ in range(ROUNDS):
        start = time.perf_counter()
        result = compiler.compile(SOURCE)
        walls.append(time.perf_counter() - start)
        assert result.digest == reference
    return walls


def _fleet_walls(node_count: int, reference: str):
    with FabricHub(lease_ttl=4.0, heartbeat_interval=1.0) as hub:
        workers = [
            _start_worker(hub.address, f"bench-node-{i}")
            for i in range(node_count)
        ]
        try:
            assert hub.wait_for_nodes(node_count, timeout=60.0)
            compiler = ParallelCompiler(backend=RemoteBackend(hub))
            compiler.compile(SOURCE)  # warm the workers' phase-1 caches
            return _timed_rounds(compiler, reference)
        finally:
            _stop_workers(workers)


def test_fabric_scaling_and_node_kill(results_dir):
    clear_phase1_cache()
    reference = SequentialCompiler().compile(SOURCE).digest

    one_node = _fleet_walls(1, reference)
    two_node = _fleet_walls(2, reference)

    # Node-kill leg: two workers, one dies mid-compile, the run must
    # finish with the reference digest.
    with FabricHub(lease_ttl=4.0, heartbeat_interval=1.0) as hub:
        workers = [
            _start_worker(hub.address, f"kill-node-{i}") for i in range(2)
        ]
        try:
            assert hub.wait_for_nodes(2, timeout=60.0)
            compiler = ParallelCompiler(backend=RemoteBackend(hub))
            compiler.compile(SOURCE)  # warm
            killer = threading.Timer(
                0.1, workers[0].send_signal, [signal.SIGKILL]
            )
            killer.start()
            start = time.perf_counter()
            result = compiler.compile(SOURCE)
            kill_wall = time.perf_counter() - start
            killer.join()
            assert result.digest == reference
            kill_stats = hub.stats.copy()
        finally:
            _stop_workers(workers)

    one_median = statistics.median(one_node)
    two_median = statistics.median(two_node)
    summary = {
        "workload": f"{FUNCTIONS} x f_{SIZE}",
        "rounds": ROUNDS,
        "python": platform.python_version(),
        "cores": os.cpu_count() or 1,
        "one_node_walls_s": [round(w, 6) for w in one_node],
        "two_node_walls_s": [round(w, 6) for w in two_node],
        "one_node_median_s": round(one_median, 6),
        "two_node_median_s": round(two_median, 6),
        "speedup_2_over_1": round(one_median / two_median, 4),
        "node_kill_completed": True,
        "node_kill_wall_s": round(kill_wall, 6),
        "node_kill_nodes_lost": kill_stats.nodes_lost,
        "node_kill_tasks_requeued": kill_stats.tasks_requeued,
    }
    (results_dir / "BENCH_fabric.json").write_text(
        json.dumps(summary, indent=2) + "\n"
    )
    print(
        f"\nfabric scaling: 1 node {one_median:.3f}s, 2 nodes "
        f"{two_median:.3f}s ({summary['speedup_2_over_1']:.2f}x); "
        f"node-kill round {kill_wall:.3f}s "
        f"({kill_stats.tasks_requeued} task(s) requeued)"
    )
    assert kill_stats.nodes_lost >= 1
    # The scaling guard needs real cores: worker nodes are separate
    # processes, so on a multicore host the second node must buy
    # wall-clock.  On a 1-2 core box parallel processes just time-slice;
    # there the guard degrades to "the fabric must not make two nodes
    # *slower* than one beyond dispatch noise".
    if (os.cpu_count() or 1) >= 4:
        assert two_median <= one_median * 0.95, (
            f"2 nodes ({two_median:.3f}s) failed to beat 1 node "
            f"({one_median:.3f}s)"
        )
    else:
        assert two_median <= one_median * 1.25, (
            f"2 nodes ({two_median:.3f}s) regressed past dispatch noise "
            f"vs 1 node ({one_median:.3f}s) on a {os.cpu_count()}-core host"
        )
