"""IR construction helper used by lowering and by tests.

The builder tracks a current insertion block and provides typed emit
helpers.  It also owns label generation, so block names are deterministic
for a given construction order — a requirement for the parallel compiler,
whose per-function output must be bit-identical to the sequential
compiler's (paper §3.2: the section master must produce "the same input
for the assembly phase as the sequential compiler").
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .cfg import BasicBlock, FunctionIR
from .instructions import Instr, Opcode
from .values import Const, FrameArray, IR_FLOAT, IR_INT, Value, VReg


class IRBuilder:
    """Builds one :class:`FunctionIR` incrementally."""

    def __init__(self, function: FunctionIR):
        self.function = function
        self._label_counters: Dict[str, int] = {}
        self._current: Optional[BasicBlock] = None

    # -- blocks -------------------------------------------------------------

    def new_block(self, hint: str) -> BasicBlock:
        """Create (but do not enter) a new uniquely named block."""
        count = self._label_counters.get(hint, 0)
        self._label_counters[hint] = count + 1
        name = hint if count == 0 else f"{hint}.{count}"
        block = BasicBlock(name)
        self.function.blocks.append(block)
        return block

    def set_block(self, block: BasicBlock) -> None:
        self._current = block

    @property
    def current_block(self) -> BasicBlock:
        if self._current is None:
            raise ValueError("no current block set")
        return self._current

    def block_terminated(self) -> bool:
        return self.current_block.terminator is not None

    # -- emission -----------------------------------------------------------

    def emit(self, instr: Instr) -> Instr:
        block = self.current_block
        if block.terminator is not None:
            raise ValueError(f"emitting into terminated block {block.name!r}")
        block.instructions.append(instr)
        return instr

    def vreg(self, ir_type: str) -> VReg:
        return self.function.new_vreg(ir_type)

    def li(self, value, ir_type: str) -> VReg:
        dest = self.vreg(ir_type)
        self.emit(Instr(Opcode.LI, dest=dest, operands=(Const(value, ir_type),)))
        return dest

    def mov(self, dest: VReg, source: Value) -> None:
        self.emit(Instr(Opcode.MOV, dest=dest, operands=(source,)))

    def unary(self, op: Opcode, operand: Value, result_type: str) -> VReg:
        dest = self.vreg(result_type)
        self.emit(Instr(op, dest=dest, operands=(operand,)))
        return dest

    def binary(self, op: Opcode, left: Value, right: Value, result_type: str) -> VReg:
        dest = self.vreg(result_type)
        self.emit(Instr(op, dest=dest, operands=(left, right)))
        return dest

    def itof(self, value: Value) -> VReg:
        return self.unary(Opcode.ITOF, value, IR_FLOAT)

    def load(self, array: FrameArray, index: Value) -> VReg:
        dest = self.vreg(array.element_type)
        self.emit(Instr(Opcode.LOAD, dest=dest, operands=(index,), array=array))
        return dest

    def store(self, array: FrameArray, index: Value, value: Value) -> None:
        self.emit(Instr(Opcode.STORE, operands=(index, value), array=array))

    def call(self, callee: str, args: Tuple[Value, ...], result_type: Optional[str]) -> Optional[VReg]:
        dest = self.vreg(result_type) if result_type is not None else None
        self.emit(Instr(Opcode.CALL, dest=dest, operands=args, callee=callee))
        return dest

    def send(self, value: Value) -> None:
        self.emit(Instr(Opcode.SEND, operands=(value,)))

    def recv(self, ir_type: str) -> VReg:
        dest = self.vreg(ir_type)
        self.emit(Instr(Opcode.RECV, dest=dest))
        return dest

    # -- terminators ---------------------------------------------------------

    def jmp(self, target: BasicBlock) -> None:
        self.emit(Instr(Opcode.JMP, labels=(target.name,)))

    def br(self, cond: Value, if_true: BasicBlock, if_false: BasicBlock) -> None:
        self.emit(
            Instr(Opcode.BR, operands=(cond,), labels=(if_true.name, if_false.name))
        )

    def ret(self, value: Optional[Value] = None) -> None:
        operands = (value,) if value is not None else ()
        self.emit(Instr(Opcode.RET, operands=operands))
