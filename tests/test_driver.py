"""Drivers: sequential vs parallel equivalence, diagnostics, masters."""

import pytest

from repro.driver.function_master import FunctionTask, run_function_master
from repro.driver.master import ParallelCompiler
from repro.driver.phases import phase1_parse_and_check
from repro.driver.section_master import (
    SectionCombineError,
    combine_section_results,
)
from repro.driver.sequential import SequentialCompiler
from repro.lang.diagnostics import CompileError
from repro.parallel.local import ProcessPoolBackend, SerialBackend
from repro.warpsim.array_runner import run_module

from helpers import wrap_function


MULTI_SECTION = """
module prog
section alpha (cells 0..1)
  function work(x: float) : float begin return x * 2.0; end
  function main()
  var v: float; k: int;
  begin
    for k := 1 to 2 do receive(v); send(work(v)); end;
  end
end
section beta (cells 2..2)
  function main()
  var v: float; k: int;
  begin
    for k := 1 to 2 do receive(v); send(v + 0.5); end;
  end
end
end
"""


class TestPhase1:
    def test_parse_error_aborts(self):
        with pytest.raises(CompileError):
            phase1_parse_and_check("module broken")

    def test_semantic_error_aborts(self):
        with pytest.raises(CompileError):
            phase1_parse_and_check(
                wrap_function("function f() begin x := 1; end")
            )

    def test_work_counts_positive(self):
        parsed = phase1_parse_and_check(MULTI_SECTION)
        assert parsed.parse_work > 0
        assert parsed.sema_work > 0
        assert parsed.source_lines > 10


class TestSequentialCompiler:
    def test_compiles_multi_section_program(self):
        result = SequentialCompiler().compile(MULTI_SECTION)
        assert result.module_name == "prog"
        assert len(result.profile.functions) == 3
        assert result.download.cells_used == 3

    def test_profile_in_source_order(self):
        result = SequentialCompiler().compile(MULTI_SECTION)
        keys = [(f.section_name, f.name) for f in result.profile.functions]
        assert keys == [("alpha", "work"), ("alpha", "main"), ("beta", "main")]

    def test_compiled_module_runs(self):
        result = SequentialCompiler().compile(MULTI_SECTION)
        out = run_module(result.download, [1.0, 2.0]).output_floats()
        # alpha (2 cells): x*2 twice; beta: +0.5
        assert out == [1.0 * 4 + 0.5, 2.0 * 4 + 0.5]

    def test_digest_stable_across_runs(self):
        a = SequentialCompiler().compile(MULTI_SECTION)
        b = SequentialCompiler().compile(MULTI_SECTION)
        assert a.digest == b.digest

    def test_report_lines(self):
        result = SequentialCompiler().compile(MULTI_SECTION)
        text = "\n".join(result.report_lines())
        assert "alpha.work" in text


class TestFunctionMaster:
    def test_compiles_exactly_one_function(self):
        task = FunctionTask(
            source_text=MULTI_SECTION,
            filename="<t>",
            section_name="alpha",
            function_name="work",
        )
        result = run_function_master(task)
        assert result.obj.name == "work"
        assert result.report.section_name == "alpha"

    def test_unknown_function_raises(self):
        task = FunctionTask(
            source_text=MULTI_SECTION,
            filename="<t>",
            section_name="alpha",
            function_name="nope",
        )
        with pytest.raises(KeyError):
            run_function_master(task)


class TestSectionMaster:
    def _results(self):
        parsed = phase1_parse_and_check(MULTI_SECTION)
        section = parsed.module.section_named("alpha")
        tasks = [
            FunctionTask(MULTI_SECTION, "<t>", "alpha", fn.name)
            for fn in section.functions
        ]
        return section, [run_function_master(t) for t in tasks]

    def test_recombines_in_source_order(self):
        section, results = self._results()
        combined = combine_section_results(section, list(reversed(results)))
        assert [o.name for o in combined.objects] == ["work", "main"]

    def test_missing_result_rejected(self):
        section, results = self._results()
        with pytest.raises(SectionCombineError, match="missing"):
            combine_section_results(section, results[:1])

    def test_duplicate_result_rejected(self):
        section, results = self._results()
        with pytest.raises(SectionCombineError, match="duplicate"):
            combine_section_results(section, results + [results[0]])

    def test_foreign_result_rejected(self):
        section, results = self._results()
        stray = run_function_master(
            FunctionTask(MULTI_SECTION, "<t>", "beta", "main")
        )
        with pytest.raises(SectionCombineError):
            combine_section_results(section, results + [stray])


class TestParallelEqualsSequential:
    """The paper's §3.2 requirement: the section master produces "the same
    input for the assembly phase as the sequential compiler"."""

    def test_serial_backend_digest_identical(self):
        seq = SequentialCompiler().compile(MULTI_SECTION)
        par = ParallelCompiler(backend=SerialBackend()).compile(MULTI_SECTION)
        assert par.digest == seq.digest
        assert par.diagnostics_text == seq.diagnostics_text

    def test_process_pool_digest_identical(self):
        seq = SequentialCompiler().compile(MULTI_SECTION)
        par = ParallelCompiler(
            backend=ProcessPoolBackend(max_workers=3)
        ).compile(MULTI_SECTION)
        assert par.digest == seq.digest

    def test_work_profiles_identical(self):
        seq = SequentialCompiler().compile(MULTI_SECTION)
        par = ParallelCompiler(backend=SerialBackend()).compile(MULTI_SECTION)
        seq_work = [(f.key, f.work_units) for f in seq.profile.functions]
        par_work = [(f.key, f.work_units) for f in par.profile.functions]
        assert seq_work == par_work

    def test_parallel_output_runs_identically(self):
        par = ParallelCompiler(backend=SerialBackend()).compile(MULTI_SECTION)
        out = run_module(par.download, [3.0, 4.0]).output_floats()
        assert out == [12.5, 16.5]

    def test_parallel_aborts_on_errors_before_dispatch(self):
        bad = wrap_function("function f() begin y := 1; end")
        with pytest.raises(CompileError):
            ParallelCompiler(backend=SerialBackend()).compile(bad)
