"""Per-job Gantt rendering over shared pool slots."""

import pytest

from repro.metrics.job_gantt import (
    JobSpan,
    assign_slots,
    render_job_gantt,
    slot_utilization,
)


def _span(job, start, end, label="s.f"):
    return JobSpan(job_id=job, label=label, start=start, end=end)


class TestAssignSlots:
    def test_sequential_spans_share_one_slot(self):
        lanes = assign_slots([_span("a", 0, 1), _span("b", 1, 2)])
        assert len(lanes) == 1
        assert [s.job_id for s in lanes[0]] == ["a", "b"]

    def test_overlap_opens_a_second_slot(self):
        lanes = assign_slots([_span("a", 0, 2), _span("b", 1, 3)])
        assert len(lanes) == 2

    def test_slot_cap_reuses_earliest_free_lane(self):
        spans = [_span("a", 0, 2), _span("b", 0, 3), _span("c", 0.5, 4)]
        lanes = assign_slots(spans, slots=2)
        assert len(lanes) == 2
        assert sum(len(lane) for lane in lanes) == 3

    def test_assignment_is_deterministic(self):
        spans = [
            _span("b", 0, 2), _span("a", 0, 2),
            _span("c", 1, 3), _span("a", 2, 4),
        ]
        first = assign_slots(spans)
        second = assign_slots(list(reversed(spans)))
        as_ids = lambda lanes: [[s.job_id for s in lane] for lane in lanes]
        assert as_ids(first) == as_ids(second)


class TestRender:
    def test_chart_shows_slots_and_legend(self):
        chart = render_job_gantt(
            [_span("j1", 0, 1), _span("j2", 0.5, 2)], width=20
        )
        assert "slot 0" in chart and "slot 1" in chart
        assert "A=j1" in chart and "B=j2" in chart

    def test_empty_spans(self):
        assert "no task spans" in render_job_gantt([])

    def test_rejects_silly_width(self):
        with pytest.raises(ValueError, match="width"):
            render_job_gantt([_span("a", 0, 1)], width=3)


class TestUtilization:
    def test_fully_busy_single_slot(self):
        spans = [_span("a", 0, 1), _span("b", 1, 2)]
        assert slot_utilization(spans) == pytest.approx(1.0)

    def test_idle_gap_lowers_utilization(self):
        spans = [_span("a", 0, 1), _span("b", 3, 4)]
        assert slot_utilization(spans) == pytest.approx(0.5)

    def test_empty_is_zero(self):
        assert slot_utilization([]) == 0.0
