"""Text Gantt charts of compilation timelines.

The paper's Figure 2 sketches "the level of parallelism during
compilation of program S" — master, section masters, and function masters
over execution time.  This module renders the same picture from a real
:class:`TimingReport`: one row per machine, time flowing left to right,
with startup (core download + init + re-parse) distinguished from the
compile phase.
"""

from __future__ import annotations

from typing import Dict, List

from ..cluster.cluster import TimingReport

#: Glyphs: '.' idle, '=' startup, '#' compiling.
IDLE, STARTUP, COMPUTE = ".", "=", "#"


def render_gantt(report: TimingReport, width: int = 72) -> str:
    """Render the parallel compilation as one text row per machine."""
    if width < 10:
        raise ValueError(f"width must be >= 10, got {width}")
    if report.elapsed <= 0:
        raise ValueError("report has no elapsed time to draw")
    scale = width / report.elapsed

    rows: Dict[str, List[str]] = {}
    for span in sorted(report.spans, key=lambda s: (s.machine, s.start)):
        row = rows.setdefault(span.machine, [IDLE] * width)
        start = min(width - 1, int(span.start * scale))
        mid = min(width, max(start + 1, int(span.compute_start * scale)))
        end = min(width, max(mid + 1, int(span.end * scale)))
        for i in range(start, mid):
            row[i] = STARTUP
        for i in range(mid, end):
            row[i] = COMPUTE

    label_width = max((len(name) for name in rows), default=4)
    lines = [
        f"timeline: 0 .. {report.elapsed:.1f} virtual seconds "
        f"({IDLE} idle, {STARTUP} startup, {COMPUTE} compiling)"
    ]
    for machine in sorted(rows):
        lines.append(f"{machine.rjust(label_width)} |{''.join(rows[machine])}|")
    return "\n".join(lines)


def utilization(report: TimingReport) -> Dict[str, float]:
    """Fraction of the elapsed time each machine spent on CPU work."""
    if report.elapsed <= 0:
        raise ValueError("report has no elapsed time")
    return {
        machine: busy / report.elapsed
        for machine, busy in sorted(report.cpu_busy.items())
    }
