"""Reference interpreter: direct evaluation of the source semantics.

Used as the oracle for differential testing — whatever the optimizer,
scheduler, and software pipeliner do, compiled code executed on the Warp
simulator must produce exactly what this interpreter produces.

Supports one section; each cell of the section runs the section program
in a chain, like the real array.  Arithmetic matches the machine:
truncated integer division, IEEE doubles for floats.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.ir.instructions import _truncated_div, _truncated_mod
from repro.lang import ast_nodes as ast
from repro.lang.types import ArrayType, FLOAT, INT

Number = Union[int, float]


class ReferenceTrap(Exception):
    """Division by zero or queue starvation in the reference semantics."""


class _Returning(Exception):
    def __init__(self, value: Optional[Number]):
        self.value = value


class _FunctionFrame:
    """One call's view of a function's statically allocated frame.

    Scalars are re-zeroed on every call (the compiled prologue emits the
    movs); arrays live in the cell's data memory — zero-filled once at
    download time and *persistent across calls*, exactly like the
    machine's stack-less frames — so the caller passes in the function's
    static array storage instead of fresh copies.
    """

    def __init__(
        self,
        fn: ast.Function,
        args: List[Number],
        static_arrays: Dict[str, List[Number]],
    ):
        self.scalars: Dict[str, Number] = {}
        self.arrays = static_arrays
        for param, arg in zip(fn.params, args):
            self.scalars[param.name] = _coerce(arg, param.type)
        for decl in fn.locals:
            if not isinstance(decl.type, ArrayType):
                self.scalars[decl.name] = 0 if decl.type == INT else 0.0


def _coerce(value: Number, target) -> Number:
    if target == INT:
        return int(value)
    return float(value)


class CellInterpreter:
    """Runs one cell's section program against input/output streams."""

    def __init__(
        self,
        section: ast.Section,
        inputs: List[Number],
        max_steps: int = 1_000_000,
    ):
        self.section = section
        self.inputs = list(inputs)
        self.outputs: List[Number] = []
        self.functions = {fn.name: fn for fn in section.functions}
        # Fuel, shared by the whole cell: mutated (fuzzed/reduced)
        # programs can loop forever; trap instead of hanging the oracle.
        self.steps_left = max_steps
        # Static frame arrays, one set per function for the cell's whole
        # lifetime (cells are stack-less; data memory is zero-filled at
        # download time and persists across calls).
        self.static_arrays: Dict[str, Dict[str, List[Number]]] = {}
        for fn in section.functions:
            arrays: Dict[str, List[Number]] = {}
            for decl in fn.locals:
                if isinstance(decl.type, ArrayType):
                    zero = 0 if decl.type.element == INT else 0.0
                    arrays[decl.name] = [zero] * decl.type.length
            self.static_arrays[fn.name] = arrays

    def run(self, entry_name: str) -> List[Number]:
        entry = self.functions[entry_name]
        try:
            self.call(entry, [])
        except _Returning:
            pass
        return self.outputs

    def call(self, fn: ast.Function, args: List[Number]) -> Optional[Number]:
        frame = _FunctionFrame(fn, args, self.static_arrays[fn.name])
        try:
            for stmt in fn.body:
                self._exec(stmt, frame)
        except _Returning as ret:
            if ret.value is None:
                return None
            return _coerce(ret.value, fn.return_type)
        if fn.return_type == INT:
            return 0
        if fn.return_type == FLOAT:
            return 0.0
        return None

    # -- statements ---------------------------------------------------------

    def _exec(self, stmt: ast.Stmt, frame: _FunctionFrame) -> None:
        self.steps_left -= 1
        if self.steps_left < 0:
            raise ReferenceTrap("step budget exhausted (runaway loop?)")
        if isinstance(stmt, ast.AssignStmt):
            value = self._eval(stmt.value, frame)
            self._store(stmt.target, value, frame)
        elif isinstance(stmt, ast.IfStmt):
            if self._eval(stmt.condition, frame) != 0:
                for s in stmt.then_body:
                    self._exec(s, frame)
            else:
                for s in stmt.else_body:
                    self._exec(s, frame)
        elif isinstance(stmt, ast.ForStmt):
            self._exec_for(stmt, frame)
        elif isinstance(stmt, ast.WhileStmt):
            while self._eval(stmt.condition, frame) != 0:
                for s in stmt.body:
                    self._exec(s, frame)
        elif isinstance(stmt, ast.ReturnStmt):
            value = (
                self._eval(stmt.value, frame) if stmt.value is not None else None
            )
            raise _Returning(value)
        elif isinstance(stmt, ast.SendStmt):
            self.outputs.append(self._eval(stmt.value, frame))
        elif isinstance(stmt, ast.ReceiveStmt):
            if not self.inputs:
                raise ReferenceTrap("receive on empty input stream")
            self._store(stmt.target, self.inputs.pop(0), frame)
        elif isinstance(stmt, ast.CallStmt):
            self._eval(stmt.call, frame)
        else:  # pragma: no cover
            raise AssertionError(f"unhandled statement {type(stmt).__name__}")

    def _exec_for(self, stmt: ast.ForStmt, frame: _FunctionFrame) -> None:
        low = int(self._eval(stmt.low, frame))
        high = int(self._eval(stmt.high, frame))
        step = 1
        if stmt.step is not None:
            step = int(self._eval(stmt.step, frame))
        frame.scalars[stmt.var] = low
        value = low
        while (step > 0 and value <= high) or (step < 0 and value >= high):
            for s in stmt.body:
                self._exec(s, frame)
            value = int(frame.scalars[stmt.var]) + step
            frame.scalars[stmt.var] = value

    def _store(self, target: ast.Expr, value: Number, frame: _FunctionFrame):
        if isinstance(target, ast.VarRef):
            current = frame.scalars[target.name]
            target_type = INT if isinstance(current, int) else FLOAT
            frame.scalars[target.name] = _coerce(value, target_type)
        elif isinstance(target, ast.IndexExpr):
            array = frame.arrays[target.base.name]
            index = int(self._eval(target.index, frame))
            if not 0 <= index < len(array):
                raise ReferenceTrap(f"index {index} out of bounds")
            element = array[0]
            target_type = INT if isinstance(element, int) else FLOAT
            array[index] = _coerce(value, target_type)
        else:  # pragma: no cover
            raise AssertionError("bad store target")

    # -- expressions ----------------------------------------------------------

    def _eval(self, expr: ast.Expr, frame: _FunctionFrame) -> Number:
        if isinstance(expr, ast.IntLiteral):
            return expr.value
        if isinstance(expr, ast.FloatLiteral):
            return expr.value
        if isinstance(expr, ast.VarRef):
            return frame.scalars[expr.name]
        if isinstance(expr, ast.IndexExpr):
            array = frame.arrays[expr.base.name]
            index = int(self._eval(expr.index, frame))
            if not 0 <= index < len(array):
                raise ReferenceTrap(f"index {index} out of bounds")
            return array[index]
        if isinstance(expr, ast.UnaryExpr):
            operand = self._eval(expr.operand, frame)
            if expr.op == "-":
                return -operand
            return 0 if operand else 1
        if isinstance(expr, ast.BinaryExpr):
            return self._eval_binary(expr, frame)
        if isinstance(expr, ast.CallExpr):
            if expr.callee in ("abs", "sqrt", "min", "max"):
                return self._eval_builtin(expr, frame)
            fn = self.functions[expr.callee]
            args = [
                _coerce(self._eval(arg, frame), param.type)
                for arg, param in zip(expr.args, fn.params)
            ]
            return self.call(fn, args)
        raise AssertionError(  # pragma: no cover
            f"unhandled expression {type(expr).__name__}"
        )

    def _eval_builtin(self, expr: ast.CallExpr, frame) -> Number:
        import math

        values = [self._eval(arg, frame) for arg in expr.args]
        if expr.callee == "abs":
            return abs(values[0])
        if expr.callee == "sqrt":
            value = float(values[0])
            if value < 0:
                raise ReferenceTrap("sqrt of a negative number")
            return math.sqrt(value)
        left, right = values
        if isinstance(left, float) or isinstance(right, float):
            left, right = float(left), float(right)
        return min(left, right) if expr.callee == "min" else max(left, right)

    def _eval_binary(self, expr: ast.BinaryExpr, frame) -> Number:
        op = expr.op
        if op == "and":
            left = self._eval(expr.left, frame)
            right = self._eval(expr.right, frame)
            return 1 if (left and right) else 0
        if op == "or":
            left = self._eval(expr.left, frame)
            right = self._eval(expr.right, frame)
            return 1 if (left or right) else 0
        left = self._eval(expr.left, frame)
        right = self._eval(expr.right, frame)
        if isinstance(left, float) or isinstance(right, float):
            left, right = float(left), float(right)
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise ReferenceTrap("division by zero")
            if isinstance(left, int) and isinstance(right, int):
                return _truncated_div(left, right)
            return left / right
        if op == "%":
            if right == 0:
                raise ReferenceTrap("modulo by zero")
            return _truncated_mod(left, right)
        comparisons = {
            "=": left == right,
            "<>": left != right,
            "<": left < right,
            "<=": left <= right,
            ">": left > right,
            ">=": left >= right,
        }
        return 1 if comparisons[op] else 0


def interpret_module(
    module: ast.Module,
    inputs: List[Number],
    max_steps: int = 1_000_000,
) -> List[Number]:
    """Run a (possibly multi-cell) single/multi-section module.

    Cells run left to right; each cell's outputs feed the next cell, as on
    the array.  Entry per section: 'main' if present else first function.
    """
    stream = list(inputs)
    for section in sorted(module.sections, key=lambda s: s.first_cell):
        entry = "main" if section.function_named("main") else (
            section.functions[0].name
        )
        for _cell in range(section.cell_count):
            interp = CellInterpreter(section, stream, max_steps=max_steps)
            stream = interp.run(entry)
    return stream
