"""The per-worker phase-1 cache: correctness, keying, and telemetry.

A warm worker that receives its second task for the same module must
skip parse + sema entirely — and produce byte-identical object code to a
cold parse.  The cache is keyed by (sha256(source), filename), so two
modules sharing a filename can never collide.
"""

import pytest

from repro.driver.function_master import (
    FunctionTask,
    clear_phase1_cache,
    configure_phase1_cache,
    phase1_cache_stats,
    phase1_cached,
    run_compile_task,
)
from repro.driver.master import ParallelCompiler
from repro.driver.section_master import combine_section_results
from repro.driver.sequential import SequentialCompiler
from repro.lang.diagnostics import CompileError
from repro.parallel.local import SerialBackend

from helpers import wrap_function

SOURCE_A = """
module cachemod
section s (cells 0..0)
  function f(x: float) : float begin return x + 1.0; end
  function g(x: float) : float begin return x * 2.0; end
end
end
"""

#: same filename as SOURCE_A in the tests below, different content
SOURCE_B = """
module cachemod
section s (cells 0..0)
  function f(x: float) : float begin return x - 1.0; end
end
end
"""


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_phase1_cache()
    configure_phase1_cache(8)
    yield
    clear_phase1_cache()
    configure_phase1_cache(8)


class TestCacheSemantics:
    def test_hit_returns_same_compiled_object_bytes(self):
        task = FunctionTask(SOURCE_A, "<t>", "s", "f")
        cold = run_compile_task(task)[0]
        warm = run_compile_task(task)[0]
        assert phase1_cache_stats() == (1, 1)
        assert warm.obj.digest_text() == cold.obj.digest_text()

    def test_hit_reuses_the_same_parse(self):
        first, hit_first = phase1_cached(SOURCE_A, "<t>")
        second, hit_second = phase1_cached(SOURCE_A, "<t>")
        assert (hit_first, hit_second) == (False, True)
        assert second is first

    def test_keyed_by_content_not_filename(self):
        run_compile_task(FunctionTask(SOURCE_A, "same.w", "s", "f"))
        result = run_compile_task(FunctionTask(SOURCE_B, "same.w", "s", "f"))
        hits, misses = phase1_cache_stats()
        assert (hits, misses) == (0, 2)
        # The second compile really used SOURCE_B's text (f subtracts).
        assert "sub" in result[0].obj.digest_text()

    def test_different_filename_is_a_different_key(self):
        phase1_cached(SOURCE_A, "a.w")
        _parsed, hit = phase1_cached(SOURCE_A, "b.w")
        assert not hit

    def test_errors_are_never_cached(self):
        bad = wrap_function("function f() begin y := 1; end")
        for _ in range(2):
            with pytest.raises(CompileError):
                phase1_cached(bad, "<t>")
        assert phase1_cache_stats() == (0, 0)

    def test_lru_eviction_is_bounded(self):
        configure_phase1_cache(1)
        phase1_cached(SOURCE_A, "<t>")
        phase1_cached(SOURCE_B, "<t>")  # evicts A
        _parsed, hit = phase1_cached(SOURCE_A, "<t>")
        assert not hit
        assert phase1_cache_stats() == (0, 3)

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            configure_phase1_cache(0)


class TestCacheTelemetry:
    def test_counters_surface_in_function_report(self):
        task = FunctionTask(SOURCE_A, "<t>", "s", "g")
        cold = run_compile_task(task)[0]
        warm = run_compile_task(task)[0]
        assert cold.report.phase1_cache_misses == 1
        assert cold.report.phase1_cache_hits == 0
        assert warm.report.phase1_cache_hits == 1
        assert warm.report.phase1_cache_misses == 0

    def test_serial_backend_tasks_hit_the_masters_parse(self):
        # The master's own parse seeds the cache, so every in-process
        # function-master task is a hit.
        result = ParallelCompiler(backend=SerialBackend()).compile(SOURCE_A)
        assert result.profile.phase1_cache_hits() == 2
        assert result.profile.phase1_cache_misses() == 0
        assert result.profile.redundant_parse_work_saved() == (
            2 * (result.profile.parse_work + result.profile.sema_work)
        )

    def test_section_task_records_on_first_report_only(self):
        results = run_compile_task(FunctionTask(SOURCE_A, "<t>", "s", None))
        assert [r.report.phase1_cache_misses for r in results] == [1, 0]


class TestCachedOutputIdentity:
    def test_serial_parallel_digest_identical_with_warm_cache(self):
        sequential = SequentialCompiler().compile(SOURCE_A)
        compiler = ParallelCompiler(backend=SerialBackend())
        first = compiler.compile(SOURCE_A)
        second = compiler.compile(SOURCE_A)  # fully cache-served
        assert first.digest == sequential.digest
        assert second.digest == sequential.digest
        assert second.diagnostics_text == sequential.diagnostics_text


class TestSectionDiagnosticsRenderedOnce:
    def test_section_task_attaches_diagnostics_once(self):
        parsed, _ = phase1_cached(SOURCE_A, "<d>")
        parsed.sink.warning("synthetic warning for the dedup test")
        results = run_compile_task(FunctionTask(SOURCE_A, "<d>", "s", None))
        assert len(results) == 2
        assert len(results[0].diagnostics) == 1
        assert "synthetic warning" in results[0].diagnostics[0]
        assert results[1].diagnostics == []

    def test_recombined_section_has_no_duplicates(self):
        parsed, _ = phase1_cached(SOURCE_A, "<d>")
        parsed.sink.warning("synthetic warning for the dedup test")
        section = parsed.module.section_named("s")
        results = run_compile_task(FunctionTask(SOURCE_A, "<d>", "s", None))
        combined = combine_section_results(section, results)
        assert len(combined.diagnostics) == 1
