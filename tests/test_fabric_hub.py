"""Fabric hub: leases, heartbeats, exact re-queue, dedup, degradation."""

import socket
import threading
import time

import pytest

from repro.driver.function_master import FunctionTask
from repro.driver.master import ParallelCompiler
from repro.driver.sequential import SequentialCompiler
from repro.fabric import FabricHub, RemoteBackend, WorkerNodeAgent
from repro.fabric.wire import FABRIC_SECRET_ENV, Connection
from repro.parallel.local import SerialBackend
from repro.parallel.supervisor import SupervisedBackend
from repro.service import CompileService

SOURCE = """
module hub_mod
section s (cells 0..1)
  function main()
  var v: float; k: int;
  begin
    for k := 1 to 3 do receive(v); send(v * 2.0); end;
  end
  function double_it()
  var x: float;
  begin
    receive(x); send(x + x);
  end
  function third()
  var y: float;
  begin
    receive(y); send(y * 3.0);
  end
end
end
"""

FUNCTIONS = ("main", "double_it", "third")


def _tasks():
    return [
        FunctionTask(
            source_text=SOURCE,
            filename="hub_mod.w2",
            section_name="s",
            function_name=name,
        )
        for name in FUNCTIONS
    ]


def _sequential_digest():
    return SequentialCompiler().compile(SOURCE).digest


class FakeNode:
    """A scripted peer speaking the node protocol — the test decides
    exactly which frames to send and when to vanish."""

    def __init__(self, address, node_id="fake", workers=4, timeout=10.0):
        host, _, port = address.rpartition(":")
        sock = socket.create_connection((host, int(port)), timeout=timeout)
        sock.settimeout(timeout)
        self.conn = Connection(sock)
        self.conn.send(
            {"op": "register", "node": node_id, "workers": workers}
        )
        welcome = self.conn.recv()
        assert welcome and welcome.get("ok"), welcome

    def recv_task(self):
        while True:
            frame = self.conn.recv()
            assert frame is not None, "hub closed the connection"
            if frame.get("op") == "task":
                return frame
            if frame.get("op") == "shutdown":
                raise AssertionError("hub shut down mid-test")

    def heartbeat(self):
        self.conn.send({"op": "heartbeat"})

    def vanish(self):
        """Die abruptly: no goodbye, no acks — the crash case."""
        self.conn.close()


@pytest.fixture
def hub():
    with FabricHub(lease_ttl=1.0, heartbeat_interval=0.2) as h:
        yield h


class TestRegistration:
    def test_agents_register_and_count_workers(self, hub):
        agents = [
            WorkerNodeAgent(
                hub.address, SerialBackend(), node_id=f"n{i}"
            ).start()
            for i in range(2)
        ]
        try:
            assert hub.wait_for_nodes(2, timeout=10.0)
            assert hub.live_node_count() == 2
            assert hub.total_workers() == 2
            assert RemoteBackend(hub).worker_count == 2
            assert hub.node_ids() == ["n0", "n1"]
        finally:
            for agent in agents:
                agent.stop()

    def test_silent_node_loses_its_lease(self, hub):
        node = FakeNode(hub.address, node_id="mute")
        assert hub.wait_for_nodes(1, timeout=10.0)
        deadline = time.monotonic() + 10.0
        while hub.live_node_count() and time.monotonic() < deadline:
            time.sleep(0.05)  # no heartbeats: the lease must expire
        assert hub.live_node_count() == 0
        assert hub.stats.nodes_lost == 1
        node.vanish()

    def test_heartbeats_keep_a_lease_alive(self, hub):
        node = FakeNode(hub.address, node_id="beater")
        assert hub.wait_for_nodes(1, timeout=10.0)
        for _ in range(10):  # 2+ lease lifetimes
            node.heartbeat()
            time.sleep(0.2)
        assert hub.live_node_count() == 1
        assert hub.stats.nodes_lost == 0
        node.vanish()

    def test_reconnecting_node_supersedes_its_stale_lease(self, hub):
        first = FakeNode(hub.address, node_id="same")
        assert hub.wait_for_nodes(1, timeout=10.0)
        second = FakeNode(hub.address, node_id="same")
        deadline = time.monotonic() + 10.0
        while hub.stats.nodes_registered < 2 and time.monotonic() < deadline:
            time.sleep(0.02)
        assert hub.live_node_count() == 1
        assert hub.stats.nodes_registered == 2
        first.vanish()
        second.vanish()


class TestSchedulingAndFailure:
    def test_remote_compile_matches_sequential(self, hub):
        agents = [
            WorkerNodeAgent(
                hub.address, SerialBackend(), node_id=f"n{i}"
            ).start()
            for i in range(2)
        ]
        try:
            assert hub.wait_for_nodes(2, timeout=10.0)
            result = ParallelCompiler(backend=RemoteBackend(hub)).compile(
                SOURCE
            )
            assert result.digest == _sequential_digest()
            assert hub.stats.tasks_dispatched == len(FUNCTIONS)
            assert hub.stats.degraded_waves == 0
        finally:
            for agent in agents:
                agent.stop()

    def test_dead_node_requeues_exactly_its_unacked_tasks(self, hub):
        """The acceptance invariant: a node that vanishes re-queues each
        unacknowledged task exactly once, and a result it managed to
        send before dying still wins (no lost, no duplicated results)."""
        fake = FakeNode(hub.address, node_id="doomed", workers=4)
        assert hub.wait_for_nodes(1, timeout=10.0)

        backend = RemoteBackend(hub)
        results = []
        consumer = threading.Thread(
            target=lambda: results.extend(backend.run_tasks(_tasks())),
            daemon=True,
        )
        consumer.start()

        frames = [fake.recv_task() for _ in range(3)]
        assert {f["id"] for f in frames} == {"w0.0", "w0.1", "w0.2"}
        # Complete ONE task for real (result + ack), send the result of a
        # SECOND without the ack, then crash.
        from repro.driver.function_master import run_compile_task
        from repro.fabric.wire import decode_task, encode_result

        done_frame, unacked_frame, untouched_frame = frames
        done_result = run_compile_task(decode_task(done_frame))[0]
        fake.conn.send(encode_result(done_result, done_frame["id"]))
        fake.conn.send({"op": "task-done", "id": done_frame["id"]})
        unacked_result = run_compile_task(decode_task(unacked_frame))[0]
        fake.conn.send(encode_result(unacked_result, unacked_frame["id"]))
        fake.vanish()  # no ack for task 2, nothing at all for task 3

        consumer.join(timeout=60.0)
        assert not consumer.is_alive(), "wave never completed"
        # Exactly one result per function: nothing lost, nothing doubled.
        keys = sorted(r.function_name for r in results)
        assert keys == sorted(FUNCTIONS)
        # Exactly the two unacknowledged tasks were re-queued; the acked
        # one was not.
        assert hub.stats.tasks_requeued == 2
        # No other fleet: both re-queued tasks fell back locally, and the
        # re-run of the already-yielded result was deduplicated.
        assert hub.stats.tasks_local_fallback == 2
        assert hub.stats.results_deduped == 1
        assert hub.stats.nodes_lost == 1

    def test_zero_nodes_degrades_to_the_local_pool(self, hub):
        backend = RemoteBackend(hub)
        result = ParallelCompiler(backend=backend).compile(SOURCE)
        assert result.digest == _sequential_digest()
        assert hub.stats.degraded_waves == 1
        assert hub.stats.tasks_dispatched == 0

    def test_node_joining_mid_stream_is_used_next_wave(self, hub):
        backend = RemoteBackend(hub)
        assert backend.worker_count == 1  # floor, not zero
        agent = WorkerNodeAgent(
            hub.address, SerialBackend(), node_id="late"
        ).start()
        try:
            assert hub.wait_for_nodes(1, timeout=10.0)
            result = ParallelCompiler(backend=backend).compile(SOURCE)
            assert result.digest == _sequential_digest()
            assert hub.stats.tasks_dispatched == len(FUNCTIONS)
        finally:
            agent.stop()

    def test_empty_wave_is_a_noop(self, hub):
        assert RemoteBackend(hub).run_tasks([]) == []


class TestComposition:
    def test_supervised_backend_composes_unchanged(self, hub):
        agents = [
            WorkerNodeAgent(
                hub.address, SerialBackend(), node_id=f"n{i}"
            ).start()
            for i in range(2)
        ]
        try:
            assert hub.wait_for_nodes(2, timeout=10.0)
            backend = SupervisedBackend(
                RemoteBackend(hub), hedge_after=None
            )
            result = ParallelCompiler(backend=backend).compile(SOURCE)
            assert result.digest == _sequential_digest()
        finally:
            for agent in agents:
                agent.stop()

    def test_compile_service_composes_unchanged(self, hub):
        agent = WorkerNodeAgent(
            hub.address, SerialBackend(), node_id="svc"
        ).start()
        try:
            assert hub.wait_for_nodes(1, timeout=10.0)
            with CompileService(RemoteBackend(hub)) as service:
                job_id = service.submit(SOURCE, tenant="alice")
                job = service.wait(job_id, timeout=60.0)
                assert job.state == "done"
                assert job.result.digest == _sequential_digest()
        finally:
            agent.stop()


class TestAuthentication:
    """With WARPCC_FABRIC_SECRET set the hub challenges registrations:
    no lease — and therefore no task payload — for a peer that cannot
    prove the secret."""

    def test_shared_secret_fleet_compiles(self, monkeypatch):
        monkeypatch.setenv(FABRIC_SECRET_ENV, "fleet-secret")
        with FabricHub(lease_ttl=1.0, heartbeat_interval=0.2) as hub:
            agent = WorkerNodeAgent(
                hub.address, SerialBackend(), node_id="authed"
            ).start()
            try:
                assert hub.wait_for_nodes(1, timeout=10.0)
                result = ParallelCompiler(backend=RemoteBackend(hub)).compile(
                    SOURCE
                )
                assert result.digest == _sequential_digest()
                assert hub.stats.degraded_waves == 0
            finally:
                agent.stop()

    def test_peer_without_secret_never_gains_a_lease(self, monkeypatch):
        monkeypatch.setenv(FABRIC_SECRET_ENV, "fleet-secret")
        with FabricHub(lease_ttl=1.0, heartbeat_interval=0.2) as hub:
            host, _, port = hub.address.rpartition(":")
            sock = socket.create_connection((host, int(port)), timeout=10.0)
            sock.settimeout(10.0)
            conn = Connection(sock)
            conn.send({"op": "register", "node": "intruder", "workers": 4})
            challenge = conn.recv()
            assert challenge is not None
            assert challenge.get("op") == "challenge"  # not a welcome
            conn.send({"op": "auth", "hmac": "0" * 64})
            rejection = conn.recv()
            assert rejection is not None
            assert not rejection.get("ok")
            assert rejection.get("reason") == "unauthenticated"
            assert hub.live_node_count() == 0
            assert hub.stats.nodes_registered == 0
            conn.close()


class TestHubRestart:
    def test_agent_outlives_the_hub_and_rejoins_its_successor(self):
        """Restarting 'warpcc serve' must not tear down the fleet: the
        plain shutdown frame ends the session, and the agent's
        reconnect loop finds the successor hub on the same port."""
        first = FabricHub(lease_ttl=1.0, heartbeat_interval=0.2)
        port = int(first.address.rpartition(":")[2])
        agent = WorkerNodeAgent(
            first.address,
            SerialBackend(),
            node_id="persistent",
            connect_attempts=16,
        ).start()
        second = None
        try:
            assert first.wait_for_nodes(1, timeout=10.0)
            first.close()  # hub restart, not fleet retirement
            second = FabricHub(
                port=port, lease_ttl=1.0, heartbeat_interval=0.2
            )
            assert second.wait_for_nodes(1, timeout=30.0)
            assert second.node_ids() == ["persistent"]
        finally:
            agent.stop()
            first.close()
            if second is not None:
                second.close()

    def test_retire_fleet_stops_the_agents(self):
        hub = FabricHub(lease_ttl=1.0, heartbeat_interval=0.2)
        agent = WorkerNodeAgent(
            hub.address, SerialBackend(), node_id="retiree"
        ).start()
        try:
            assert hub.wait_for_nodes(1, timeout=10.0)
            hub.close(retire_fleet=True)
            agent._thread.join(timeout=10.0)
            assert not agent._thread.is_alive(), "agent ignored retirement"
        finally:
            agent.stop()


class TestWaveCleanup:
    def test_authoritative_error_purges_the_wave_state(self, hub):
        """A compile error on the wave's last open task must sweep the
        wave's task states out of the hub (a long-running serve process
        would otherwise leak one wave per failed compile)."""
        fake = FakeNode(hub.address, node_id="bouncer")
        assert hub.wait_for_nodes(1, timeout=10.0)
        bad = FunctionTask(
            source_text="this is not a module",
            filename="bad.w2",
            section_name="s",
            function_name="main",
        )
        backend = RemoteBackend(hub)
        errors = []

        def consume():
            try:
                backend.run_tasks([bad])
            except Exception as exc:  # noqa: BLE001 - the point of the test
                errors.append(exc)

        consumer = threading.Thread(target=consume, daemon=True)
        consumer.start()
        frame = fake.recv_task()
        # The node bounces the task; the local fallback reproduces the
        # canonical compile error, which ends the wave.
        fake.conn.send({"op": "task-failed", "id": frame["id"], "error": "boom"})
        consumer.join(timeout=60.0)
        assert not consumer.is_alive(), "wave never surfaced the error"
        assert errors, "compile error was swallowed"
        assert hub._tasks == {}, "failed wave leaked its task states"
        fake.vanish()
