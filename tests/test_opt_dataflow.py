"""Dataflow analyses: liveness, reaching definitions, dependence graphs."""

import pytest

from repro.ir.instructions import Opcode
from repro.ir.loops import find_loops
from repro.opt.dependence import (
    ANTI,
    IO,
    MEMORY,
    OUTPUT,
    TRUE,
    build_dependence_graph,
    classify_subscript,
    find_induction_register,
)
from repro.opt.dataflow import (
    facts_of,
    mask_of,
    solve_backward,
    solve_backward_sets,
    solve_forward,
    solve_forward_sets,
)
from repro.opt.liveness import block_use_def, live_variables
from repro.opt.reaching import reaching_definitions

from helpers import single_function_ir, wrap_function


LOOP_SRC = wrap_function(
    "function f(x: float) : float\n"
    "var i: int; acc: float; a: array[16] of float;\n"
    "begin\n"
    "for i := 0 to 15 do\n"
    "  a[i] := x * 2.0;\n"
    "  acc := acc + a[i];\n"
    "end;\n"
    "return acc;\nend"
)


class TestLiveness:
    def test_param_live_into_loop(self):
        fn = single_function_ir(LOOP_SRC)
        facts = live_variables(fn)
        x = fn.param_regs[0]
        assert x in facts.entry["for.body"]

    def test_dead_after_last_use(self):
        fn = single_function_ir(
            wrap_function(
                "function f(x: float) : float\nvar y: float;\n"
                "begin y := x + 1.0; return y; end"
            )
        )
        facts = live_variables(fn)
        # Nothing is live out of the exit block.
        exit_block = fn.blocks[-1]
        assert facts.exit[exit_block.name] == frozenset()

    def test_loop_carried_register_live_around_backedge(self):
        fn = single_function_ir(LOOP_SRC)
        facts = live_variables(fn)
        header = fn.block_named("for.header")
        # The accumulator is live on entry to the header (used after the
        # loop and redefined each iteration).
        live_in = facts.entry["for.header"]
        body_defs = {
            i.dest
            for i in fn.block_named("for.body").instructions
            if i.dest is not None
        }
        assert any(reg in live_in for reg in body_defs)


DIAMOND_SRC = wrap_function(
    "function f(n: int) : int\nvar t: int;\n"
    "begin\n"
    "if n > 0 then t := n * 2; else t := n - 1; end;\n"
    "while t > 0 do t := t - 3; end;\n"
    "return t;\nend"
)


class TestBitsetMatchesReferenceSets:
    """The bitset kernels must agree exactly with the frozenset solvers
    on every CFG (branches, loops, unreachable-free diamonds)."""

    def _use_def(self, fn):
        gen, kill = {}, {}
        for block in fn.blocks:
            gen[block.name], kill[block.name] = block_use_def(block)
        return gen, kill

    @pytest.mark.parametrize("src", [LOOP_SRC, DIAMOND_SRC])
    def test_backward_equivalence(self, src):
        fn = single_function_ir(src)
        gen, kill = self._use_def(fn)
        fast = solve_backward(fn, gen, kill)
        slow = solve_backward_sets(fn, gen, kill)
        assert fast.entry == slow.entry
        assert fast.exit == slow.exit

    @pytest.mark.parametrize("src", [LOOP_SRC, DIAMOND_SRC])
    def test_forward_equivalence(self, src):
        fn = single_function_ir(src)
        gen, kill = self._use_def(fn)
        boundary = frozenset(fn.param_regs)
        fast = solve_forward(fn, gen, kill, boundary=boundary)
        slow = solve_forward_sets(fn, gen, kill, boundary=boundary)
        assert fast.entry == slow.entry
        assert fast.exit == slow.exit

    @pytest.mark.parametrize("src", [LOOP_SRC, DIAMOND_SRC])
    def test_live_variables_equals_reference_pipeline(self, src):
        fn = single_function_ir(src)
        gen, kill = self._use_def(fn)
        fast = live_variables(fn)
        slow = solve_backward_sets(fn, gen, kill)
        assert fast.entry == slow.entry
        assert fast.exit == slow.exit

    def test_mask_roundtrip(self):
        index = {}
        facts = ["a", "b", "c", "d"]
        mask = mask_of(facts, index)
        assert mask == 0b1111
        assert facts_of(mask, list(index)) == frozenset(facts)
        assert mask_of(["b", "e"], index) == 0b10010
        assert facts_of(0, list(index)) == frozenset()


class TestReachingDefinitions:
    def test_param_definition_reaches_entry(self):
        fn = single_function_ir(
            wrap_function("function f(n: int) : int begin return n; end")
        )
        rd = reaching_definitions(fn)
        n = fn.param_regs[0]
        entry_defs = rd.reaching_entry(fn.entry.name)
        assert (fn.entry.name, -1, n) in entry_defs

    def test_redefinition_kills(self):
        fn = single_function_ir(
            wrap_function(
                "function f(n: int) : int\nbegin\n"
                "if n > 0 then n := 1; else n := 2; end;\n"
                "return n;\nend"
            )
        )
        rd = reaching_definitions(fn)
        join = [b for b in fn.blocks if b.name.startswith("if.join")][0]
        n = fn.param_regs[0]
        reaching = {d for d in rd.reaching_entry(join.name) if d[2] == n}
        # Both arm definitions reach the join; the param def does not.
        assert len(reaching) == 2
        assert all(d[1] != -1 for d in reaching)

    def test_loop_definition_reaches_header(self):
        fn = single_function_ir(LOOP_SRC)
        rd = reaching_definitions(fn)
        header_defs = rd.reaching_entry("for.header")
        assert any(d[0] == "for.body" for d in header_defs)


def loop_and_graph(src: str):
    fn = single_function_ir(src)
    loop = find_loops(fn).innermost_loops()[0]
    graph = build_dependence_graph(fn, loop)
    assert graph is not None
    return fn, loop, graph


class TestInduction:
    def test_finds_induction_register_and_step(self):
        fn = single_function_ir(LOOP_SRC)
        loop = find_loops(fn).innermost_loops()[0]
        result = find_induction_register(fn, loop)
        assert result is not None
        _reg, step = result
        assert step == 1

    def test_negative_step(self):
        fn = single_function_ir(
            wrap_function(
                "function f()\nvar i: int; x: float;\n"
                "begin for i := 9 to 0 by -3 do x := x + 1.0; end; end"
            )
        )
        loop = find_loops(fn).innermost_loops()[0]
        _reg, step = find_induction_register(fn, loop)
        assert step == -3


class TestDependenceGraph:
    def test_accumulator_has_carried_true_dependence(self):
        _fn, _loop, graph = loop_and_graph(
            wrap_function(
                "function f() : float\nvar i: int; acc: float;\n"
                "begin for i := 0 to 7 do acc := acc + 1.0; end; "
                "return acc; end"
            )
        )
        carried_true = [
            e for e in graph.edges if e.kind == TRUE and e.distance == 1
        ]
        assert carried_true

    def test_same_index_store_load_distance_zero(self):
        _fn, _loop, graph = loop_and_graph(LOOP_SRC)
        mem = [e for e in graph.edges if e.kind == MEMORY]
        assert any(e.distance == 0 for e in mem)

    def test_offset_subscripts_give_exact_distance(self):
        _fn, _loop, graph = loop_and_graph(
            wrap_function(
                "function f()\nvar i: int; a: array[32] of float;\n"
                "begin for i := 1 to 30 do a[i] := a[i - 1] + 1.0; end; end"
            )
        )
        mem = [e for e in graph.edges if e.kind == MEMORY]
        assert any(e.distance == 1 for e in mem)

    def test_disjoint_strided_accesses_independent(self):
        """a[i] and a[i+1] with step 2 never collide: no memory edge."""
        _fn, _loop, graph = loop_and_graph(
            wrap_function(
                "function f()\nvar i: int; a: array[34] of float;\n"
                "begin for i := 0 to 31 by 2 do a[i + 1] := a[i] * 2.0; "
                "end; end"
            )
        )
        mem = [e for e in graph.edges if e.kind == MEMORY]
        assert mem == []

    def test_io_operations_chained(self):
        _fn, _loop, graph = loop_and_graph(
            wrap_function(
                "function f()\nvar i: int; x: float;\n"
                "begin for i := 0 to 7 do receive(x); send(x * 2.0); end; end"
            )
        )
        io = [e for e in graph.edges if e.kind == IO]
        assert any(e.distance == 0 for e in io)
        assert any(e.distance == 1 for e in io)  # order across iterations

    def test_anti_and_output_edges_present(self):
        _fn, _loop, graph = loop_and_graph(
            wrap_function(
                "function f() : float\nvar i: int; t: float;\n"
                "begin for i := 0 to 7 do t := t * 0.5; end; return t; end"
            )
        )
        kinds = {e.kind for e in graph.edges}
        assert ANTI in kinds
        assert OUTPUT in kinds


class TestSubscriptClassification:
    def test_constant_subscript(self):
        fn = single_function_ir(
            wrap_function(
                "function f()\nvar i: int; a: array[4] of float;\n"
                "begin for i := 0 to 3 do a[0] := a[0] + 1.0; end; end"
            )
        )
        loop = find_loops(fn).innermost_loops()[0]
        body = fn.block_named(next(iter(loop.blocks - {loop.header})))
        stores = [i for i in body.instructions if i.op is Opcode.STORE]
        induction, _step = find_induction_register(fn, loop)
        sub = classify_subscript(body, stores[0].operands[0], induction)
        assert sub.kind == "const"
        assert sub.offset == 0
