"""Source positions, spans, diagnostics, and the type lattice."""

import pytest

from repro.lang.diagnostics import (
    CompileError,
    Diagnostic,
    DiagnosticSink,
    Severity,
)
from repro.lang.source import Position, SourceFile, Span
from repro.lang.types import (
    ArrayType,
    FLOAT,
    INT,
    VOID,
    is_assignable,
    unify_arithmetic,
)


class TestSourceFile:
    def test_position_at_start(self):
        src = SourceFile("f", "abc\ndef")
        pos = src.position_at(0)
        assert (pos.line, pos.column) == (1, 1)

    def test_position_after_newline(self):
        src = SourceFile("f", "abc\ndef")
        pos = src.position_at(4)
        assert (pos.line, pos.column) == (2, 1)

    def test_position_mid_line(self):
        src = SourceFile("f", "abc\ndef")
        pos = src.position_at(6)
        assert (pos.line, pos.column) == (2, 3)

    def test_position_at_eof(self):
        src = SourceFile("f", "ab")
        assert src.position_at(2).column == 3

    def test_position_out_of_range(self):
        with pytest.raises(ValueError):
            SourceFile("f", "ab").position_at(5)

    def test_line_text(self):
        src = SourceFile("f", "first\nsecond\nthird")
        assert src.line_text(2) == "second"
        assert src.line_text(3) == "third"

    def test_line_text_out_of_range(self):
        with pytest.raises(ValueError):
            SourceFile("f", "one").line_text(5)

    def test_count_lines(self):
        assert SourceFile("f", "").count_lines() == 1
        assert SourceFile("f", "a\nb\nc").count_lines() == 3
        assert SourceFile("f", "a\n").count_lines() == 2


class TestSpan:
    def _span(self, a, b):
        return Span("f", Position(1, a + 1, a), Position(1, b + 1, b))

    def test_merge_covers_both(self):
        merged = self._span(2, 4).merge(self._span(7, 9))
        assert merged.start.offset == 2
        assert merged.end.offset == 9

    def test_merge_order_independent(self):
        a, b = self._span(2, 4), self._span(7, 9)
        assert a.merge(b) == b.merge(a)

    def test_merge_different_files_rejected(self):
        other = Span("g", Position(1, 1, 0), Position(1, 2, 1))
        with pytest.raises(ValueError):
            self._span(0, 1).merge(other)

    def test_str_form(self):
        assert str(self._span(0, 1)) == "f:1:1"


class TestDiagnostics:
    def test_render_format(self):
        sink = DiagnosticSink()
        sink.error("bad thing", Span("f", Position(3, 7, 20), Position(3, 8, 21)))
        assert sink.render() == "f:3:7: error: bad thing"

    def test_warnings_do_not_count_as_errors(self):
        sink = DiagnosticSink()
        sink.warning("meh")
        assert not sink.has_errors
        sink.check()  # no raise

    def test_check_raises_with_summary(self):
        sink = DiagnosticSink()
        for i in range(5):
            sink.error(f"e{i}")
        with pytest.raises(CompileError) as excinfo:
            sink.check()
        assert "+2 more" in str(excinfo.value)
        assert len(excinfo.value.diagnostics) == 5

    def test_merged_in_source_order(self):
        sink = DiagnosticSink()
        late = Span("f", Position(9, 1, 90), Position(9, 2, 91))
        early = Span("f", Position(2, 1, 10), Position(2, 2, 11))
        sink.error("later", late)
        sink.error("earlier", early)
        ordered = sink.merged_in_source_order()
        assert [d.message for d in ordered] == ["earlier", "later"]

    def test_extend_merges_sinks(self):
        a, b = DiagnosticSink(), DiagnosticSink()
        a.error("one")
        b.error("two")
        a.extend(b)
        assert a.error_count == 2


class TestTypes:
    def test_assignability(self):
        assert is_assignable(INT, INT)
        assert is_assignable(FLOAT, FLOAT)
        assert is_assignable(FLOAT, INT)  # widening
        assert not is_assignable(INT, FLOAT)  # narrowing
        assert not is_assignable(ArrayType(INT, 4), ArrayType(INT, 4))

    def test_unify_arithmetic(self):
        assert unify_arithmetic(INT, INT) == INT
        assert unify_arithmetic(INT, FLOAT) == FLOAT
        assert unify_arithmetic(FLOAT, FLOAT) == FLOAT
        assert unify_arithmetic(VOID, INT) is None
        assert unify_arithmetic(ArrayType(INT, 2), INT) is None

    def test_str_forms(self):
        assert str(ArrayType(FLOAT, 8)) == "array[8] of float"
        assert str(INT) == "int"
        assert str(VOID) == "void"

    def test_scalar_predicates(self):
        assert INT.is_scalar() and INT.is_numeric()
        assert not VOID.is_scalar()
        assert not ArrayType(INT, 2).is_scalar()
