"""Semantic analysis unit tests."""

import pytest

from repro.lang.types import FLOAT, INT, VOID

from helpers import parse_ok, sema_errors, wrap_function


def errors_of(body: str):
    return sema_errors(wrap_function(body))


class TestStructureChecks:
    def test_duplicate_section_names(self):
        errs = sema_errors(
            "module m\n"
            "section s (cells 0..0) function f() begin end end\n"
            "section s (cells 1..1) function g() begin end end\n"
            "end"
        )
        assert any("duplicate section" in e for e in errs)

    def test_overlapping_cell_ranges(self):
        errs = sema_errors(
            "module m\n"
            "section a (cells 0..2) function f() begin end end\n"
            "section b (cells 2..4) function g() begin end end\n"
            "end"
        )
        assert any("cell 2" in e for e in errs)

    def test_empty_cell_range(self):
        errs = sema_errors(
            "module m\nsection s (cells 3..1) function f() begin end end\nend"
        )
        assert any("empty cell range" in e for e in errs)

    def test_module_without_sections(self):
        errs = sema_errors("module m\nend")
        assert any("no sections" in e for e in errs)

    def test_section_without_functions(self):
        errs = sema_errors("module m\nsection s (cells 0..0) end\nend")
        assert any("no functions" in e for e in errs)

    def test_duplicate_function_names(self):
        errs = errors_of(
            "function f() begin end\nfunction f() begin end"
        )
        assert any("duplicate function" in e for e in errs)


class TestDeclarations:
    def test_duplicate_parameter(self):
        errs = errors_of("function f(x: int, x: int) begin end")
        assert any("duplicate parameter" in e for e in errs)

    def test_array_parameter_rejected(self):
        # Parameters must be scalar (they travel in registers).
        errs = sema_errors(
            "module m\nsection s (cells 0..0)\n"
            "function f(x: int) begin end\nend\nend"
        )
        assert errs == []
        # There's no syntax for array params, but redeclaration is checked:

    def test_redeclared_local(self):
        errs = errors_of("function f()\nvar x: int; x: float;\nbegin end")
        assert any("redeclaration" in e for e in errs)

    def test_zero_length_array(self):
        errs = errors_of(
            "function f()\nvar a: array[0] of int;\nbegin end"
        )
        assert any("positive length" in e for e in errs)


class TestTypeChecking:
    def test_int_widens_to_float(self):
        parse_ok(
            wrap_function(
                "function f()\nvar x: float;\nbegin x := 1; end"
            )
        )

    def test_float_to_int_rejected(self):
        errs = errors_of(
            "function f()\nvar i: int;\nbegin i := 1.5; end"
        )
        assert any("cannot assign float to int" in e for e in errs)

    def test_undeclared_variable(self):
        errs = errors_of("function f() begin y := 1; end")
        assert any("undeclared variable 'y'" in e for e in errs)

    def test_whole_array_assignment_rejected(self):
        errs = errors_of(
            "function f()\nvar a: array[4] of int; b: array[4] of int;\n"
            "begin a := b; end"
        )
        assert errs  # either 'cannot assign to a whole array' or similar

    def test_index_non_array(self):
        errs = errors_of(
            "function f()\nvar i: int;\nbegin i := i[0]; end"
        )
        assert any("cannot index" in e for e in errs)

    def test_float_array_index_rejected(self):
        errs = errors_of(
            "function f()\nvar a: array[4] of int; x: float;\n"
            "begin a[x] := 1; end"
        )
        assert any("array index must be int" in e for e in errs)

    def test_constant_index_bounds(self):
        errs = errors_of(
            "function f()\nvar a: array[4] of int;\nbegin a[4] := 1; end"
        )
        assert any("out of bounds" in e for e in errs)

    def test_mod_requires_ints(self):
        errs = errors_of(
            "function f()\nvar x: float;\nbegin x := x % 2.0; end"
        )
        assert any("'%' requires int" in e for e in errs)

    def test_logical_ops_require_int(self):
        errs = errors_of(
            "function f()\nvar i: int; x: float;\nbegin i := x and i; end"
        )
        assert any("requires int operands" in e for e in errs)

    def test_comparison_yields_int(self):
        parse_ok(
            wrap_function(
                "function f()\nvar i: int; x: float;\nbegin i := x < 2.0; end"
            )
        )


class TestLoops:
    def test_loop_variable_must_be_int(self):
        errs = errors_of(
            "function f()\nvar x: float;\nbegin for x := 0 to 3 do end; end"
        )
        assert any("must be int" in e for e in errs)

    def test_loop_variable_must_be_declared(self):
        errs = errors_of(
            "function f() begin for i := 0 to 3 do end; end"
        )
        assert any("undeclared loop variable" in e for e in errs)

    def test_float_bound_rejected(self):
        errs = errors_of(
            "function f()\nvar i: int;\nbegin for i := 0 to 2.5 do end; end"
        )
        assert any("loop bound must be int" in e for e in errs)

    def test_nonconstant_step_rejected(self):
        errs = errors_of(
            "function f()\nvar i, n: int;\nbegin for i := 0 to 9 by n do end; end"
        )
        assert any("integer constant" in e for e in errs)

    def test_zero_step_rejected(self):
        errs = errors_of(
            "function f()\nvar i: int;\nbegin for i := 0 to 9 by 0 do end; end"
        )
        assert any("nonzero" in e for e in errs)

    def test_negative_constant_step_allowed(self):
        parse_ok(
            wrap_function(
                "function f()\nvar i: int;\nbegin for i := 9 to 0 by -1 do end; end"
            )
        )


class TestReturns:
    def test_missing_return_for_typed_function(self):
        errs = errors_of("function f() : int begin end")
        assert any("no return statement" in e for e in errs)

    def test_value_return_from_void_function(self):
        errs = errors_of("function f() begin return 1; end")
        assert any("no return type" in e for e in errs)

    def test_bare_return_from_typed_function(self):
        errs = errors_of("function f() : int begin return; end")
        assert any("must return int" in e for e in errs)

    def test_return_type_mismatch(self):
        errs = errors_of("function f() : int begin return 1.5; end")
        assert any("return type mismatch" in e for e in errs)

    def test_int_return_widens_for_float_function(self):
        parse_ok(wrap_function("function f() : float begin return 1; end"))


class TestCallChecks:
    def test_undefined_callee(self):
        errs = errors_of("function f() begin g(); end")
        assert any("undefined function 'g'" in e for e in errs)

    def test_arity_mismatch(self):
        errs = errors_of(
            "function g(x: int) begin end\nfunction f() begin g(); end"
        )
        assert any("takes 1 argument" in e for e in errs)

    def test_argument_type_mismatch(self):
        errs = errors_of(
            "function g(x: int) begin end\n"
            "function f() begin g(1.5); end"
        )
        assert any("must be int, got float" in e for e in errs)

    def test_return_value_use_mismatch_across_functions(self):
        """The paper's motivating example for sequential phase 1: a type
        mismatch between a function's return value and its use at a call
        site requires whole-section checking (§3.2)."""
        errs = errors_of(
            "function g() : float begin return 1.0; end\n"
            "function f()\nvar i: int;\nbegin i := g(); end"
        )
        assert any("cannot assign float to int" in e for e in errs)

    def test_cross_section_call_rejected(self):
        errs = sema_errors(
            "module m\n"
            "section a (cells 0..0) function f() begin end end\n"
            "section b (cells 1..1) function h() begin f(); end end\n"
            "end"
        )
        assert any("undefined function 'f'" in e for e in errs)

    def test_direct_recursion_rejected(self):
        errs = errors_of("function f() begin f(); end")
        assert any("recursive call cycle" in e for e in errs)

    def test_mutual_recursion_rejected(self):
        errs = errors_of(
            "function f() begin g(); end\nfunction g() begin f(); end"
        )
        assert any("recursive call cycle" in e for e in errs)

    def test_acyclic_calls_accepted(self):
        parse_ok(
            wrap_function(
                "function h() begin end\n"
                "function g() begin h(); end\n"
                "function f() begin g(); h(); end"
            )
        )
