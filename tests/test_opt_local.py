"""Local optimization passes: folding, copy propagation, CSE, DCE, CFG
simplification, and the pass manager."""

import pytest

from repro.ir.instructions import Instr, Opcode
from repro.ir.values import Const, IR_FLOAT, IR_INT
from repro.opt.copyprop import propagate_copies
from repro.opt.cse import eliminate_common_subexpressions
from repro.opt.dce import eliminate_dead_code
from repro.opt.fold import fold_constants
from repro.opt.pass_manager import PassManager
from repro.opt.simplify import simplify_control_flow

from helpers import single_function_ir, wrap_function


def ops_of(fn):
    return [i.op for i in fn.all_instructions()]


def optimized(src: str, level: int = 2):
    fn = single_function_ir(src)
    stats = PassManager(opt_level=level).run(fn)
    return fn, stats


class TestConstantFolding:
    def test_folds_integer_arithmetic(self):
        fn, _ = optimized(
            wrap_function("function f() : int begin return 2 + 3 * 4; end")
        )
        ret = [i for i in fn.all_instructions() if i.op is Opcode.RET][0]
        assert ret.operands[0] == Const(14, IR_INT)

    def test_folds_float_arithmetic(self):
        fn, _ = optimized(
            wrap_function("function f() : float begin return 1.5 * 4.0; end")
        )
        ret = [i for i in fn.all_instructions() if i.op is Opcode.RET][0]
        assert ret.operands[0] == Const(6.0, IR_FLOAT)

    def test_multiply_by_one_removed(self):
        fn, _ = optimized(
            wrap_function(
                "function f(x: float) : float begin return x * 1.0; end"
            )
        )
        assert Opcode.MUL not in ops_of(fn)

    def test_add_zero_removed(self):
        fn, _ = optimized(
            wrap_function(
                "function f(n: int) : int begin return n + 0; end"
            )
        )
        assert Opcode.ADD not in ops_of(fn)

    def test_float_multiply_by_zero_not_folded(self):
        """0*x is unsound for floats (NaN, -0.0); must stay."""
        fn = single_function_ir(
            wrap_function(
                "function f(x: float) : float begin return x * 0.0; end"
            )
        )
        fold_constants(fn)
        assert Opcode.MUL in ops_of(fn)

    def test_int_multiply_by_zero_folded(self):
        fn, _ = optimized(
            wrap_function("function f(n: int) : int begin return n * 0; end")
        )
        ret = [i for i in fn.all_instructions() if i.op is Opcode.RET][0]
        assert ret.operands[0] == Const(0, IR_INT)

    def test_division_by_zero_not_folded(self):
        fn = single_function_ir(
            wrap_function("function f() : int begin return 1 / 0; end")
        )
        fold_constants(fn)
        assert Opcode.DIV in ops_of(fn)

    def test_truncated_division_semantics(self):
        fn, _ = optimized(
            wrap_function("function f() : int begin return -7 / 2; end")
        )
        ret = [i for i in fn.all_instructions() if i.op is Opcode.RET][0]
        assert ret.operands[0] == Const(-3, IR_INT)  # trunc, not floor

    def test_comparison_folding(self):
        fn, _ = optimized(
            wrap_function("function f() : int begin return 3 < 5; end")
        )
        ret = [i for i in fn.all_instructions() if i.op is Opcode.RET][0]
        assert ret.operands[0] == Const(1, IR_INT)


class TestCopyPropagation:
    def test_propagates_through_local_copy(self):
        fn, _ = optimized(
            wrap_function(
                "function f(x: float) : float\nvar y: float;\n"
                "begin y := x; return y + y; end"
            )
        )
        adds = [i for i in fn.all_instructions() if i.op is Opcode.ADD]
        assert adds[0].operands[0] == adds[0].operands[1] == fn.param_regs[0]

    def test_self_moves_removed(self):
        fn = single_function_ir(
            wrap_function(
                "function f(n: int) : int\nvar m: int;\n"
                "begin m := n; n := m; return n; end"
            )
        )
        propagate_copies(fn)
        for instr in fn.all_instructions():
            if instr.op is Opcode.MOV:
                assert instr.operands[0] != instr.dest

    def test_redefinition_invalidates_copy(self):
        fn, _ = optimized(
            wrap_function(
                "function f(n: int) : int\nvar m: int;\n"
                "begin m := n; n := n + 1; return m + n; end"
            )
        )
        # m must still be the OLD n: result = n + (n+1), checked by the
        # simulator tests; here we just check the pass converges validly.
        fn.validate()


class TestCSE:
    def test_repeated_expression_shared(self):
        fn = single_function_ir(
            wrap_function(
                "function f(x: float, y: float) : float\nvar a, b: float;\n"
                "begin a := x * y; b := x * y; return a + b; end"
            )
        )
        before = len([i for i in fn.all_instructions() if i.op is Opcode.MUL])
        eliminate_common_subexpressions(fn)
        after = len([i for i in fn.all_instructions() if i.op is Opcode.MUL])
        assert before == 2 and after == 1

    def test_commutative_match(self):
        fn = single_function_ir(
            wrap_function(
                "function f(x: float, y: float) : float\nvar a, b: float;\n"
                "begin a := x + y; b := y + x; return a + b; end"
            )
        )
        eliminate_common_subexpressions(fn)
        adds = [i for i in fn.all_instructions() if i.op is Opcode.ADD]
        # a+b must survive; one of x+y / y+x eliminated.
        assert len(adds) == 2

    def test_store_invalidates_loads_of_same_array(self):
        fn = single_function_ir(
            wrap_function(
                "function f()\nvar a: array[4] of int; x, y: int;\n"
                "begin x := a[0]; a[0] := 7; y := a[0]; x := x + y; end"
            )
        )
        loads_before = len(
            [i for i in fn.all_instructions() if i.op is Opcode.LOAD]
        )
        eliminate_common_subexpressions(fn)
        loads_after = len(
            [i for i in fn.all_instructions() if i.op is Opcode.LOAD]
        )
        assert loads_before == loads_after == 2

    def test_store_to_other_array_preserves_load(self):
        fn = single_function_ir(
            wrap_function(
                "function f()\nvar a: array[4] of int; b: array[4] of int; "
                "x, y: int;\n"
                "begin x := a[0]; b[0] := 7; y := a[0]; x := x + y; end"
            )
        )
        eliminate_common_subexpressions(fn)
        loads = [i for i in fn.all_instructions() if i.op is Opcode.LOAD]
        assert len(loads) == 1

    def test_self_referencing_computation_not_recorded(self):
        fn = single_function_ir(
            wrap_function(
                "function f(n: int) : int\n"
                "begin n := n + 1; n := n + 1; return n; end"
            )
        )
        eliminate_common_subexpressions(fn)
        adds = [i for i in fn.all_instructions() if i.op is Opcode.ADD]
        assert len(adds) == 2  # n+1 twice is NOT the same value


class TestDCE:
    def test_unused_computation_removed(self):
        fn = single_function_ir(
            wrap_function(
                "function f(x: float) : float\nvar dead: float;\n"
                "begin dead := x * 3.0; return x; end"
            )
        )
        eliminate_dead_code(fn)
        assert Opcode.MUL not in ops_of(fn)

    def test_stores_never_removed(self):
        fn = single_function_ir(
            wrap_function(
                "function f()\nvar a: array[4] of int;\nbegin a[0] := 1; end"
            )
        )
        eliminate_dead_code(fn)
        assert Opcode.STORE in ops_of(fn)

    def test_sends_never_removed(self):
        fn = single_function_ir(
            wrap_function("function f() begin send(1.0); end")
        )
        eliminate_dead_code(fn)
        assert Opcode.SEND in ops_of(fn)

    def test_transitively_dead_chain_removed(self):
        fn = single_function_ir(
            wrap_function(
                "function f(x: float) : float\nvar a, b, c: float;\n"
                "begin a := x + 1.0; b := a * 2.0; c := b - 3.0; return x; end"
            )
        )
        eliminate_dead_code(fn)
        # Everything except the return should be gone.
        assert ops_of(fn) == [Opcode.RET]

    def test_loop_carried_value_kept(self):
        fn = single_function_ir(
            wrap_function(
                "function f() : float\nvar i: int; acc: float;\n"
                "begin for i := 0 to 3 do acc := acc + 1.0; end; "
                "return acc; end"
            )
        )
        eliminate_dead_code(fn)
        assert Opcode.ADD in ops_of(fn)  # the accumulator survives


class TestSimplifyCFG:
    def test_constant_branch_becomes_jump(self):
        fn = single_function_ir(
            wrap_function(
                "function f() : int begin if 1 < 2 then return 1; end; "
                "return 0; end"
            )
        )
        PassManager(opt_level=2).run(fn)
        assert Opcode.BR not in ops_of(fn)

    def test_unreachable_else_removed(self):
        fn, _ = optimized(
            wrap_function(
                "function f() : int begin if 0 > 1 then return 1; "
                "else return 2; end; return 3; end"
            )
        )
        rets = [i for i in fn.all_instructions() if i.op is Opcode.RET]
        assert len(rets) == 1
        assert rets[0].operands[0] == Const(2, IR_INT)

    def test_straight_line_blocks_merged(self):
        fn, _ = optimized(
            wrap_function(
                "function f(n: int) : int begin if 1 = 1 then n := n + 1; "
                "end; return n; end"
            )
        )
        assert len(fn.blocks) == 1


class TestPassManager:
    def test_level0_does_nothing(self):
        src = wrap_function(
            "function f() : int begin return 2 + 3; end"
        )
        fn = single_function_ir(src)
        count_before = fn.instruction_count()
        stats = PassManager(opt_level=0).run(fn)
        assert fn.instruction_count() == count_before
        assert stats.work_units == 0

    def test_level2_reaches_fixpoint(self):
        fn, stats = optimized(
            wrap_function(
                "function f(x: float) : float\nvar a, b: float;\n"
                "begin a := x * 1.0; b := a + 0.0; return b; end"
            )
        )
        assert ops_of(fn) == [Opcode.RET]
        assert stats.rounds >= 2  # last round verifies the fixpoint

    def test_work_units_positive_and_accumulating(self):
        _, stats = optimized(
            wrap_function("function f(x: float) : float begin return x; end")
        )
        assert stats.work_units > 0
        assert set(stats.runs) == set(stats.instructions_visited)

    def test_invalid_level_rejected(self):
        with pytest.raises(ValueError):
            PassManager(opt_level=3)

    def test_level1_single_round(self):
        fn = single_function_ir(
            wrap_function("function f() : int begin return 1 + 1; end")
        )
        stats = PassManager(opt_level=1).run(fn)
        assert stats.rounds == 1
