"""Dominator analysis (Cooper-Harvey-Kennedy iterative algorithm).

Used by loop detection and by the optimizer's global passes.  Operates on
block names, which are stable identifiers within one function.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .cfg import FunctionIR


class DominatorTree:
    """Immediate-dominator mapping for one function's CFG."""

    def __init__(self, function: FunctionIR):
        self._function = function
        self._rpo = _reverse_postorder(function)
        self._rpo_index = {name: i for i, name in enumerate(self._rpo)}
        self.idom: Dict[str, Optional[str]] = self._compute()

    def dominates(self, a: str, b: str) -> bool:
        """True if block ``a`` dominates block ``b`` (reflexive)."""
        node: Optional[str] = b
        while node is not None:
            if node == a:
                return True
            if node == self._function.entry.name:
                return False
            node = self.idom[node]
        return False

    def dominators_of(self, name: str) -> List[str]:
        """All dominators of ``name``, from itself up to the entry block."""
        chain = [name]
        node = name
        while node != self._function.entry.name:
            node = self.idom[node]
            chain.append(node)
        return chain

    def _compute(self) -> Dict[str, Optional[str]]:
        entry = self._function.entry.name
        preds = self._function.predecessors()
        idom: Dict[str, Optional[str]] = {entry: entry}
        changed = True
        while changed:
            changed = False
            for name in self._rpo:
                if name == entry:
                    continue
                processed = [p for p in preds[name] if p in idom]
                if not processed:
                    continue
                new_idom = processed[0]
                for p in processed[1:]:
                    new_idom = self._intersect(new_idom, p, idom)
                if idom.get(name) != new_idom:
                    idom[name] = new_idom
                    changed = True
        idom[entry] = None
        return idom

    def _intersect(self, a: str, b: str, idom: Dict[str, Optional[str]]) -> str:
        index = self._rpo_index
        while a != b:
            while index[a] > index[b]:
                a = idom[a]
            while index[b] > index[a]:
                b = idom[b]
        return a


def _reverse_postorder(function: FunctionIR) -> List[str]:
    """Block names in reverse postorder from the entry."""
    block_map = function.block_map()
    visited = set()
    postorder: List[str] = []

    def visit(name: str) -> None:
        stack = [(name, iter(block_map[name].successors()))]
        visited.add(name)
        while stack:
            current, successors = stack[-1]
            advanced = False
            for succ in successors:
                if succ not in visited:
                    visited.add(succ)
                    stack.append((succ, iter(block_map[succ].successors())))
                    advanced = True
                    break
            if not advanced:
                postorder.append(current)
                stack.pop()

    visit(function.entry.name)
    return list(reversed(postorder))


def compute_dominators(function: FunctionIR) -> DominatorTree:
    """Build the dominator tree (unreachable blocks must be removed first)."""
    return DominatorTree(function)
