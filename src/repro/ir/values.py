"""IR values: virtual registers, constants, and array frame slots.

The IR is a conventional three-address code over an unbounded set of typed
virtual registers.  Scalars (parameters and scalar locals) are promoted to
virtual registers during lowering; arrays live in the cell's data memory
and are addressed through :class:`FrameArray` slots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

#: Scalar IR types: 'i' (32-bit integer) and 'f' (floating point).
IR_INT = "i"
IR_FLOAT = "f"


@dataclass(frozen=True)
class VReg:
    """A typed virtual register, unique within one function."""

    id: int
    type: str  # IR_INT or IR_FLOAT

    def __str__(self) -> str:
        return f"%{self.type}{self.id}"


@dataclass(frozen=True)
class Const:
    """An immediate operand."""

    value: Union[int, float]
    type: str

    def __str__(self) -> str:
        return f"#{self.value}"


#: Any operand of a three-address instruction.
Value = Union[VReg, Const]


@dataclass(frozen=True)
class FrameArray:
    """A statically allocated array in the cell's local data memory."""

    name: str
    element_type: str
    length: int
    offset: int  # word offset within the function's frame

    def __str__(self) -> str:
        return f"@{self.name}[{self.length}]"


def const_int(value: int) -> Const:
    return Const(int(value), IR_INT)


def const_float(value: float) -> Const:
    return Const(float(value), IR_FLOAT)


def type_of(value: Value) -> str:
    """The scalar IR type of an operand."""
    return value.type
