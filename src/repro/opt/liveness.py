"""Live-variable analysis over virtual registers.

Backward problem: a register is live at a point if some path from that
point reads it before any write.  Used by dead-code elimination and by the
register allocator's live-interval construction.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Tuple

from ..ir.cfg import BasicBlock, FunctionIR
from ..ir.instructions import Instr
from ..ir.values import VReg
from .dataflow import BlockFacts, solve_backward


def block_use_def(block: BasicBlock) -> Tuple[FrozenSet[VReg], FrozenSet[VReg]]:
    """(use, def) sets for a block: use = read before any write within it."""
    uses = set()
    defs = set()
    for instr in block.instructions:
        for reg in instr.uses():
            if reg not in defs:
                uses.add(reg)
        if instr.dest is not None:
            defs.add(instr.dest)
    return frozenset(uses), frozenset(defs)


def live_variables(function: FunctionIR) -> BlockFacts:
    """Solve liveness; ``entry``/``exit`` give live-in/live-out per block."""
    gen: Dict[str, FrozenSet[VReg]] = {}
    kill: Dict[str, FrozenSet[VReg]] = {}
    for block in function.blocks:
        uses, defs = block_use_def(block)
        gen[block.name] = uses
        kill[block.name] = defs
    return solve_backward(function, gen, kill)


def iterate_live_out(
    block: BasicBlock, live_out: FrozenSet[VReg]
) -> Iterator[Tuple[Instr, FrozenSet[VReg]]]:
    """Yield ``(instr, live-after-instr)`` in *reverse* block order.

    Callers walking backwards (e.g. DCE) get, for each instruction, the set
    of registers live immediately after it.
    """
    live = set(live_out)
    for instr in reversed(block.instructions):
        yield instr, frozenset(live)
        if instr.dest is not None:
            live.discard(instr.dest)
        live.update(instr.uses())
