"""The Warp array model: a linear systolic array of identical cells.

Cells are connected left-to-right by bounded FIFO queues ("pathways"); the
leftmost cell receives the external input stream and the rightmost cell
produces the external output stream.  A module's sections claim disjoint
contiguous cell ranges (checked by sema), and every cell in a section runs
that section's program.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .warp_cell import WarpCellModel


@dataclass
class WarpArrayModel:
    """Parameters of the whole machine."""

    cell_count: int = 10
    cell: WarpCellModel = field(default_factory=WarpCellModel)

    def __post_init__(self):
        if self.cell_count < 1:
            raise ValueError(f"need at least one cell, got {self.cell_count}")

    def validate_section_range(self, first: int, last: int) -> None:
        if not (0 <= first <= last < self.cell_count):
            raise ValueError(
                f"section cells {first}..{last} outside array of "
                f"{self.cell_count} cells"
            )


def default_array() -> WarpArrayModel:
    """The ten-cell array the paper's Warp machine had."""
    return WarpArrayModel(cell_count=10)
