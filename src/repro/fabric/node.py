"""The worker-node agent: one machine's pool, leased to the hub.

``warpcc worker --connect HOST:PORT`` runs one of these.  The agent
connects with capped exponential backoff + jitter (a fleet restarting
together must not stampede the hub), registers its local backend's
worker count, then serves tasks: each incoming task frame is decoded —
digest-checked — executed on the local backend, and its results are
streamed back followed by a ``task-done`` acknowledgement.  Heartbeats
ride a dedicated thread so a node busy compiling still renews its lease.

The agent is deliberately stateless between connections: if the hub
drops it (lease expiry, protocol error, hub restart — including the
hub's own ``shutdown`` frame, which just ends the session) it simply
reconnects and re-registers, so restarting ``warpcc serve`` never
requires touching the fleet.  Only a ``shutdown`` frame flagged
``retire`` (``FabricHub.close(retire_fleet=True)``) makes the agent
exit for good.  Any task whose acknowledgement didn't reach the hub
will be re-queued by the hub's lease machinery — the agent never
tracks that, which is what keeps the failure model simple enough to
trust.

When the hub requires a shared secret (``WARPCC_FABRIC_SECRET``), it
answers registration with a ``challenge`` frame; the agent proves the
secret with an HMAC over the nonce before the lease is granted.
"""

from __future__ import annotations

import os
import socket
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Optional

from ..parallel.backend import stream_task_results
from ..parallel.local import SerialBackend
from .chaos import FabricChaos
from .wire import (
    PROTOCOL_VERSION,
    Connection,
    ProtocolError,
    WireCorruption,
    connect_with_backoff,
    decode_task,
    encode_result,
    fabric_secret,
    hmac_tag,
)


def default_node_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


class WorkerNodeAgent:
    """Registers a local execution backend with a fabric hub."""

    def __init__(
        self,
        address: str,
        backend=None,
        *,
        node_id: Optional[str] = None,
        connect_attempts: int = 8,
        connect_base: float = 0.05,
        connect_cap: float = 2.0,
        reconnect: bool = True,
        chaos: Optional[FabricChaos] = None,
    ):
        host, _, port = address.rpartition(":")
        if not host or not port:
            raise ValueError(f"hub address must be HOST:PORT, got {address!r}")
        self.host, self.port = host, int(port)
        self.backend = backend if backend is not None else SerialBackend()
        self.node_id = node_id or default_node_id()
        self.connect_attempts = connect_attempts
        self.connect_base = connect_base
        self.connect_cap = connect_cap
        self.reconnect = reconnect
        self.chaos = chaos
        self.tasks_completed = 0
        self.tasks_failed = 0
        self.sessions = 0
        self._stop = threading.Event()
        self._conn: Optional[Connection] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "WorkerNodeAgent":
        """Run the agent on a daemon thread (tests, embedded fleets)."""
        self._thread = threading.Thread(
            target=self.run_forever,
            name=f"fabric-node-{self.node_id}",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        conn = self._conn
        if conn is not None:
            try:
                conn.send({"op": "goodbye", "node": self.node_id})
            except Exception:  # noqa: BLE001 - already gone is fine
                pass
            conn.close()
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def run_forever(self) -> None:
        """Serve until stopped; reconnects with backoff on any failure."""
        while not self._stop.is_set():
            try:
                sock = connect_with_backoff(
                    self.host,
                    self.port,
                    attempts=self.connect_attempts,
                    base=self.connect_base,
                    cap=self.connect_cap,
                )
            except OSError:
                if not self.reconnect or self._stop.is_set():
                    return
                self._stop.wait(self.connect_cap)
                continue
            conn = Connection(sock)
            if self.chaos is not None:
                conn = self.chaos.wrap(conn)
            self._conn = conn
            try:
                self._serve(conn)
            except (OSError, ProtocolError, ConnectionError):
                pass  # hub gone or chaos killed the link: reconnect
            finally:
                self._conn = None
                conn.close()
            if not self.reconnect:
                return

    # -- one connection's session --------------------------------------

    def _serve(self, conn) -> None:
        self.sessions += 1
        conn.send(
            {
                "op": "register",
                "node": self.node_id,
                "workers": self.backend.worker_count,
                "protocol": PROTOCOL_VERSION,
            }
        )
        welcome = conn.recv()
        if welcome is not None and welcome.get("op") == "challenge":
            secret = fabric_secret()
            if secret is None:
                # The hub requires a secret this agent wasn't given;
                # pause before the reconnect loop tries again so a
                # misconfigured agent doesn't hammer the hub.
                self._stop.wait(self.connect_cap)
                return
            nonce = str(welcome.get("nonce", ""))
            conn.send(
                {
                    "op": "auth",
                    "node": self.node_id,
                    "hmac": hmac_tag(nonce.encode("ascii"), secret),
                }
            )
            welcome = conn.recv()
        if welcome is None or not welcome.get("ok"):
            if welcome is not None:
                # Explicit rejection (failed auth, bad register):
                # retrying immediately can't help, so don't spin.
                self._stop.wait(self.connect_cap)
            return
        interval = float(welcome.get("heartbeat_interval", 2.0))
        session_over = threading.Event()
        heartbeat = threading.Thread(
            target=self._heartbeat_loop,
            args=(conn, interval, session_over),
            name=f"fabric-node-{self.node_id}-hb",
            daemon=True,
        )
        heartbeat.start()
        pool = ThreadPoolExecutor(
            max_workers=max(1, self.backend.worker_count),
            thread_name_prefix=f"fabric-node-{self.node_id}",
        )
        try:
            while not self._stop.is_set():
                frame = conn.recv()
                if frame is None:
                    return
                op = frame.get("op")
                if op == "task":
                    pool.submit(self._run_task, conn, frame)
                elif op == "shutdown":
                    # The hub going away ends this *session*, not the
                    # agent: the reconnect loop retries with backoff so
                    # a restarted hub finds its fleet waiting.  Only an
                    # explicit fleet retirement stops the agent.
                    if frame.get("retire"):
                        self._stop.set()
                    return
                elif op == "error":
                    return  # hub rejected us; reconnect fresh
        finally:
            session_over.set()
            pool.shutdown(wait=False)

    def _heartbeat_loop(self, conn, interval: float, session_over: threading.Event) -> None:
        while not session_over.wait(interval):
            try:
                conn.send({"op": "heartbeat", "node": self.node_id})
            except Exception:  # noqa: BLE001 - dead link ends the session
                return

    def _run_task(self, conn, frame: dict) -> None:
        task_id = str(frame.get("id", ""))
        try:
            task = decode_task(frame)
        except WireCorruption as exc:
            self.tasks_failed += 1
            self._send_quietly(
                conn, {"op": "task-failed", "id": task_id, "error": str(exc)}
            )
            return
        try:
            results = list(stream_task_results(self.backend, [task]))
        except Exception as exc:  # noqa: BLE001 - report, don't die
            self.tasks_failed += 1
            self._send_quietly(
                conn, {"op": "task-failed", "id": task_id, "error": repr(exc)}
            )
            return
        try:
            for result in results:
                if result.worker is None:
                    result.worker = f"node:{self.node_id}"
                conn.send(encode_result(result, task_id))
            conn.send({"op": "task-done", "id": task_id})
        except (OSError, ConnectionError, ProtocolError):
            # Link died before the ack: the hub re-queues this task.
            return
        self.tasks_completed += 1

    @staticmethod
    def _send_quietly(conn, frame: dict) -> None:
        try:
            conn.send(frame)
        except Exception:  # noqa: BLE001
            pass
