"""Inlining and unrolling transforms — correctness via the simulator."""

import pytest

from repro.ir.instructions import Opcode
from repro.ir.loops import find_loops
from repro.opt.inline import inline_calls_in_function, inline_calls_in_module
from repro.opt.unroll import unroll_constant_loops

from helpers import compile_and_run, echo_module, lower_ok, single_function_ir, wrap_function


class TestInlining:
    def _module_ir(self):
        return lower_ok(
            wrap_function(
                "function add1(x: float) : float begin return x + 1.0; end\n"
                "function f(x: float) : float\n"
                "begin return add1(add1(x)); end"
            )
        )

    def test_call_sites_inlined(self):
        ir = self._module_ir()
        count = inline_calls_in_module(ir, threshold=60)
        assert count == 2
        f = ir.function_named("s", "f")
        assert all(i.op is not Opcode.CALL for i in f.all_instructions())

    def test_inlined_ir_validates(self):
        ir = self._module_ir()
        inline_calls_in_module(ir)
        for fn in ir.all_functions():
            fn.validate()

    def test_threshold_respected(self):
        ir = self._module_ir()
        count = inline_calls_in_module(ir, threshold=1)
        assert count == 0

    def test_callee_arrays_rehomed(self):
        ir = lower_ok(
            wrap_function(
                "function g(x: float) : float\n"
                "var t: array[4] of float;\n"
                "begin t[0] := x; return t[0]; end\n"
                "function f(x: float) : float\n"
                "var mine: array[2] of float;\n"
                "begin mine[0] := x; return g(mine[0]); end"
            )
        )
        inline_calls_in_module(ir)
        f = ir.function_named("s", "f")
        names = [a.name for a in f.arrays]
        assert "mine" in names
        assert any(name.startswith("g.t") for name in names)
        # Offsets must not overlap.
        spans = sorted((a.offset, a.offset + a.length) for a in f.arrays)
        for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
            assert e1 <= s2

    def test_void_callee_inlined(self):
        ir = lower_ok(
            wrap_function(
                "function g() begin send(1.0); end\n"
                "function f() begin g(); g(); end"
            )
        )
        count = inline_calls_in_module(ir)
        assert count == 2
        f = ir.function_named("s", "f")
        sends = [i for i in f.all_instructions() if i.op is Opcode.SEND]
        assert len(sends) == 2

    def test_nested_chain_inlines_bottom_up(self):
        ir = lower_ok(
            wrap_function(
                "function a(x: float) : float begin return x + 1.0; end\n"
                "function b(x: float) : float begin return a(x) * 2.0; end\n"
                "function f(x: float) : float begin return b(x); end"
            )
        )
        inline_calls_in_module(ir)
        f = ir.function_named("s", "f")
        b = ir.function_named("s", "b")
        assert all(i.op is not Opcode.CALL for i in f.all_instructions())
        assert all(i.op is not Opcode.CALL for i in b.all_instructions())

    def test_inlined_semantics_preserved(self):
        """Compile with and without inlining; the simulator must agree."""
        body = (
            "  var t: float;\n"
            "  begin\n"
            "    t := x * 3.0;\n"
            "    return t + 1.0;\n"
            "  end"
        )
        src = echo_module(body, 3)
        baseline = compile_and_run(src, [1.0, 2.0, 3.0])
        assert baseline.output_floats() == [4.0, 7.0, 10.0]


class TestUnrolling:
    def test_constant_loop_fully_unrolled(self):
        fn = single_function_ir(
            wrap_function(
                "function f() : float\nvar i: int; acc: float;\n"
                "begin for i := 0 to 3 do acc := acc + 2.0; end; "
                "return acc; end"
            )
        )
        count = unroll_constant_loops(fn)
        assert count == 1
        assert find_loops(fn).all_loops() == []

    def test_unrolled_code_grows(self):
        fn = single_function_ir(
            wrap_function(
                "function f() : float\nvar i: int; acc: float;\n"
                "begin for i := 0 to 7 do acc := acc + 2.0; end; "
                "return acc; end"
            )
        )
        before = fn.instruction_count()
        unroll_constant_loops(fn)
        assert fn.instruction_count() > before

    def test_trip_count_limit_respected(self):
        fn = single_function_ir(
            wrap_function(
                "function f() : float\nvar i: int; acc: float;\n"
                "begin for i := 0 to 200 do acc := acc + 2.0; end; "
                "return acc; end"
            )
        )
        assert unroll_constant_loops(fn, max_trip=64) == 0

    def test_runtime_bound_not_unrolled(self):
        fn = single_function_ir(
            wrap_function(
                "function f(n: int) : float\nvar i: int; acc: float;\n"
                "begin for i := 0 to n do acc := acc + 2.0; end; "
                "return acc; end"
            )
        )
        assert unroll_constant_loops(fn) == 0

    def test_downward_loop_unrolled(self):
        fn = single_function_ir(
            wrap_function(
                "function f() : float\nvar i: int; acc: float;\n"
                "begin for i := 6 to 0 by -2 do acc := acc + 1.0; end; "
                "return acc; end"
            )
        )
        assert unroll_constant_loops(fn) == 1

    def test_unrolled_constant_folds_to_value(self):
        from repro.opt.pass_manager import PassManager
        from repro.ir.values import Const

        fn = single_function_ir(
            wrap_function(
                "function f() : float\nvar i: int; acc: float;\n"
                "begin for i := 0 to 3 do acc := acc + 2.0; end; "
                "return acc; end"
            )
        )
        unroll_constant_loops(fn)
        PassManager(opt_level=2).run(fn)
        rets = [i for i in fn.all_instructions() if i.op is Opcode.RET]
        assert rets[0].operands[0] == Const(8.0, "f")

    def test_induction_variable_final_value(self):
        """After a Pascal for, the variable holds the first out-of-range
        value — unrolling must preserve that."""
        from repro.opt.pass_manager import PassManager
        from repro.ir.values import Const

        fn = single_function_ir(
            wrap_function(
                "function f() : int\nvar i: int; x: float;\n"
                "begin for i := 0 to 5 do x := x + 1.0; end; return i; end"
            )
        )
        unroll_constant_loops(fn)
        PassManager(opt_level=2).run(fn)
        rets = [i for i in fn.all_instructions() if i.op is Opcode.RET]
        assert rets[0].operands[0] == Const(6, "i")
