"""Figure 10: overheads as percentage of total time for f_huge.

Paper: "The system overhead is a significant portion of the total
overhead.  For eight functions, 50% of the total execution time is
contributed by the overhead."
"""

from figures_common import relative_overhead_figure, write_figure
from repro.workloads.sizes import FUNCTION_COUNTS


def test_fig10_overhead_huge(benchmark, results_dir):
    fig = benchmark(relative_overhead_figure, ["huge"], "Figure 10")
    write_figure(results_dir, fig)

    total = fig.series_named("rel. total overhead f_huge")
    system = fig.series_named("rel. system overhead f_huge")

    # At n=8 the overhead is a major fraction of elapsed time (the paper
    # reports 50%; our calibration lands in the 20-50% band).
    assert total.points[8] >= 20.0
    # System overhead dominates the total overhead for f_huge: the cost
    # is paging through the shared file server, not master bookkeeping.
    assert system.points[8] >= 0.75 * total.points[8]
    # Overhead grows sharply from n=4 to n=8 (concurrent swappers).
    assert total.points[8] > 2.0 * total.points[4]
