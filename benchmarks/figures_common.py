"""Builders shared by the figure benchmarks.

Each builder regenerates one of the paper's figures from (cached) real
compilations plus the deterministic cluster simulation, returning a
:class:`repro.metrics.series.Figure` ready to render and check.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cluster.costs import CostModel
from repro.metrics.experiments import (
    MeasuredPair,
    measure_pair,
    measure_user_program,
    profile_for,
)
from repro.metrics.overhead import OverheadBreakdown, compute_overhead
from repro.metrics.series import Figure
from repro.workloads.sizes import FUNCTION_COUNTS, SIZE_CLASSES, SIZE_ORDER

#: Paper display names for the size classes.
PAPER_NAME = {
    "tiny": "f_tiny",
    "small": "f_small",
    "medium": "f_medium",
    "large": "f_large",
    "huge": "f_huge",
}


def pairs_for(size_class: str, costs: Optional[CostModel] = None):
    return {
        n: measure_pair(size_class, n, costs=costs) for n in FUNCTION_COUNTS
    }


def times_figure(size_class: str, figure_id: str) -> Figure:
    """Figures 3/4/5/12/13: elapsed + per-processor CPU, both compilers."""
    fig = Figure(
        figure_id,
        f"Execution times for {PAPER_NAME[size_class]}",
        "functions",
        "virtual seconds",
        xs=list(FUNCTION_COUNTS),
    )
    seq_elapsed = fig.new_series("elapsed seq")
    seq_cpu = fig.new_series("cpu seq")
    par_elapsed = fig.new_series("elapsed par")
    par_cpu = fig.new_series("cpu par")
    for n, pair in pairs_for(size_class).items():
        seq_elapsed.add(n, pair.sequential.elapsed)
        seq_cpu.add(n, pair.sequential.max_cpu)
        par_elapsed.add(n, pair.parallel.elapsed)
        par_cpu.add(n, pair.parallel.max_cpu)
    return fig


def speedup_vs_n_figure() -> Figure:
    """Figure 6: speedup over the sequential compiler, all sizes."""
    fig = Figure(
        "Figure 6",
        "Speedup over sequential compiler",
        "functions",
        "speedup (elapsed)",
        xs=list(FUNCTION_COUNTS),
    )
    for size in SIZE_ORDER:
        series = fig.new_series(PAPER_NAME[size])
        for n in FUNCTION_COUNTS:
            series.add(n, measure_pair(size, n).speedup)
    return fig


def speedup_vs_size_figure() -> Figure:
    """Figure 7: speedup versus function size (lines of code)."""
    fig = Figure(
        "Figure 7",
        "Speedup versus function size",
        "lines of code",
        "speedup (elapsed)",
        xs=[SIZE_CLASSES[s] for s in SIZE_ORDER],
    )
    for n in FUNCTION_COUNTS:
        series = fig.new_series(f"{n} function(s)")
        for size in SIZE_ORDER:
            series.add(SIZE_CLASSES[size], measure_pair(size, n).speedup)
    return fig


def overheads_for(size_class: str) -> Dict[int, OverheadBreakdown]:
    return {
        n: compute_overhead(pair.sequential, pair.parallel, pair.workers)
        for n, pair in pairs_for(size_class).items()
    }


def relative_overhead_figure(sizes: List[str], figure_id: str) -> Figure:
    """Figures 8/9/10: overheads as % of parallel elapsed time."""
    fig = Figure(
        figure_id,
        "Overheads as percentage of total time for "
        + " and ".join(PAPER_NAME[s] for s in sizes),
        "functions",
        "% of parallel elapsed",
        xs=list(FUNCTION_COUNTS),
    )
    for size in sizes:
        total = fig.new_series(f"rel. total overhead {PAPER_NAME[size]}")
        system = fig.new_series(f"rel. system overhead {PAPER_NAME[size]}")
        for n, ovh in overheads_for(size).items():
            total.add(n, ovh.relative_total)
            system.add(n, ovh.relative_system)
    return fig


def absolute_overhead_figure(sizes: List[str], figure_id: str) -> Figure:
    """Figures 14/15/16: absolute overhead times."""
    fig = Figure(
        figure_id,
        "Absolute overhead for " + " and ".join(PAPER_NAME[s] for s in sizes),
        "functions",
        "virtual seconds",
        xs=list(FUNCTION_COUNTS),
    )
    for size in sizes:
        total = fig.new_series(f"total overhead {PAPER_NAME[size]}")
        system = fig.new_series(f"system overhead {PAPER_NAME[size]}")
        for n, ovh in overheads_for(size).items():
            total.add(n, ovh.total_overhead)
            system.add(n, ovh.system_overhead)
    return fig


def user_program_figure() -> Figure:
    """Figure 11: user-program speedup for 2/3/5/9 processors."""
    fig = Figure(
        "Figure 11",
        "Speedup for a user program (mechanical engineering, 9 functions)",
        "processors",
        "speedup (elapsed)",
        xs=[2, 3, 5, 9],
    )
    grouped = fig.new_series("load-balanced grouping")
    for p in (2, 3, 5, 9):
        grouped.add(p, measure_user_program(p, strategy="grouped").speedup)
    fcfs = fig.new_series("one per processor (FCFS)")
    fcfs.add(
        9, measure_user_program(9, strategy="one-per-processor").speedup
    )
    return fig


def write_figure(results_dir, figure: Figure) -> str:
    text = figure.render()
    slug = "".join(
        ch if ch.isalnum() else "_" for ch in figure.figure_id.lower()
    ).strip("_")
    while "__" in slug:
        slug = slug.replace("__", "_")
    (results_dir / f"{slug or 'figure'}.txt").write_text(text + "\n")
    print("\n" + text)
    return text
