"""Binary download-module format (phase 4 "format conversion").

The paper's phase 4 ends with "linking, format conversion for download
modules" — the artifact shipped to the Warp interface unit.  This module
defines that wire format: a compact little-endian encoding of a
:class:`DownloadModule`, with a string table, per-section programs
(deduplicated — a section downloads once however many cells run it), and
fully resolved bundles.

The format round-trips exactly: ``decode_module(encode_module(m))``
yields a module whose digest equals the original's, and the decoded
module runs on the array simulator.
"""

from __future__ import annotations

import io
import struct
from typing import BinaryIO, Dict, List, Optional, Tuple

from ..ir.instructions import Opcode
from ..machine.resources import FUClass, PhysReg
from .objformat import (
    AssembledFunction,
    Bundle,
    CellProgram,
    DownloadModule,
    MachineOp,
)

MAGIC = b"WARP"
VERSION = 1

#: Stable wire ids for opcodes and functional units (enum order is part
#: of the format; bump VERSION when it changes).
_OPCODE_LIST = list(Opcode)
_OPCODE_ID = {op: i for i, op in enumerate(_OPCODE_LIST)}
_FU_LIST = list(FUClass)
_FU_ID = {fu: i for i, fu in enumerate(_FU_LIST)}

_OPERAND_REG = 0
_OPERAND_INT = 1
_OPERAND_FLOAT = 2


class FormatError(Exception):
    """The byte stream is not a valid download module."""


class _Writer:
    def __init__(self):
        self.buffer = io.BytesIO()
        self.strings: Dict[str, int] = {}
        self.string_list: List[str] = []

    def intern(self, text: str) -> int:
        index = self.strings.get(text)
        if index is None:
            index = len(self.string_list)
            self.strings[text] = index
            self.string_list.append(text)
        return index

    def u8(self, value: int) -> None:
        self.buffer.write(struct.pack("<B", value))

    def u16(self, value: int) -> None:
        self.buffer.write(struct.pack("<H", value))

    def u32(self, value: int) -> None:
        self.buffer.write(struct.pack("<I", value))

    def i64(self, value: int) -> None:
        self.buffer.write(struct.pack("<q", value))

    def f64(self, value: float) -> None:
        self.buffer.write(struct.pack("<d", value))


class _Reader:
    def __init__(self, data: bytes):
        self.buffer = io.BytesIO(data)
        self.strings: List[str] = []

    def _read(self, size: int) -> bytes:
        data = self.buffer.read(size)
        if len(data) != size:
            raise FormatError("truncated download module")
        return data

    def u8(self) -> int:
        return struct.unpack("<B", self._read(1))[0]

    def u16(self) -> int:
        return struct.unpack("<H", self._read(2))[0]

    def u32(self) -> int:
        return struct.unpack("<I", self._read(4))[0]

    def i64(self) -> int:
        return struct.unpack("<q", self._read(8))[0]

    def f64(self) -> float:
        return struct.unpack("<d", self._read(8))[0]

    def string(self) -> str:
        index = self.u32()
        if index >= len(self.strings):
            raise FormatError(f"string index {index} out of range")
        return self.strings[index]


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------


def encode_module(module: DownloadModule) -> bytes:
    """Serialize a download module to bytes."""
    writer = _Writer()
    # Body is written first into `writer.buffer`; the header and string
    # table are prepended at the end (interning happens during the walk).
    programs: List[Tuple[str, CellProgram]] = []
    seen = set()
    for cell in sorted(module.cell_programs):
        program = module.cell_programs[cell]
        if id(program) not in seen:
            seen.add(id(program))
            programs.append((program.section_name, program))

    writer.u32(writer.intern(module.module_name))
    writer.u32(writer.intern(module.diagnostics_text))
    writer.u16(len(programs))
    for _name, program in programs:
        _encode_program(writer, program)
    writer.u16(len(module.cell_programs))
    section_index = {name: i for i, (name, _p) in enumerate(programs)}
    for cell in sorted(module.cell_programs):
        writer.u16(cell)
        writer.u16(section_index[module.cell_programs[cell].section_name])

    body = writer.buffer.getvalue()
    head = io.BytesIO()
    head.write(MAGIC)
    head.write(struct.pack("<H", VERSION))
    head.write(struct.pack("<I", len(writer.string_list)))
    for text in writer.string_list:
        raw = text.encode("utf-8")
        head.write(struct.pack("<I", len(raw)))
        head.write(raw)
    return head.getvalue() + body


def _encode_program(writer: _Writer, program: CellProgram) -> None:
    writer.u32(writer.intern(program.section_name))
    writer.u32(writer.intern(program.entry))
    writer.u32(program.data_words)
    writer.u16(len(program.functions))
    for name in sorted(program.functions):
        function = program.functions[name]
        writer.u32(writer.intern(name))
        writer.u32(program.frame_bases[name])
        _encode_function(writer, function)


def _encode_function(writer: _Writer, function: AssembledFunction) -> None:
    writer.u32(writer.intern(function.section_name))
    writer.u8(len(function.param_regs))
    for reg in function.param_regs:
        _encode_reg(writer, reg)
    banks = {None: 0, "i": 1, "f": 2}
    writer.u8(banks[function.return_bank])
    writer.u32(function.frame_words)
    writer.u32(len(function.bundles))
    for bundle in function.bundles:
        ops = bundle.all_ops()
        writer.u8(len(ops))
        for op in ops:
            _encode_op(writer, op)


def _encode_reg(writer: _Writer, reg: PhysReg) -> None:
    writer.u8(1 if reg.bank == "i" else 2)
    writer.u16(reg.index)


def _encode_op(writer: _Writer, op: MachineOp) -> None:
    writer.u8(_OPCODE_ID[op.op])
    writer.u8(_FU_ID[op.fu])
    writer.u8(op.latency)
    if op.dest is None:
        writer.u8(0)
    else:
        _encode_reg(writer, op.dest)
    writer.u8(len(op.operands))
    for operand in op.operands:
        if isinstance(operand, PhysReg):
            writer.u8(_OPERAND_REG)
            _encode_reg(writer, operand)
        elif isinstance(operand, int):
            writer.u8(_OPERAND_INT)
            writer.i64(operand)
        else:
            writer.u8(_OPERAND_FLOAT)
            writer.f64(float(operand))
    if op.array_offset is None:
        writer.u8(0)
    else:
        writer.u8(1)
        writer.u32(op.array_offset)
        writer.u32(writer.intern(op.array_name or ""))
    writer.u8(len(op.labels))
    for label in op.labels:
        if not isinstance(label, int):
            raise FormatError(
                f"unresolved label {label!r}: assemble before encoding"
            )
        writer.u32(label)
    if op.callee is None:
        writer.u8(0)
    else:
        writer.u8(1)
        writer.u32(writer.intern(op.callee))


# ---------------------------------------------------------------------------
# Decoding
# ---------------------------------------------------------------------------


def decode_module(data: bytes) -> DownloadModule:
    """Reconstruct a download module from its wire format."""
    if data[:4] != MAGIC:
        raise FormatError("not a Warp download module (bad magic)")
    version = struct.unpack("<H", data[4:6])[0]
    if version != VERSION:
        raise FormatError(f"unsupported format version {version}")
    (string_count,) = struct.unpack("<I", data[6:10])
    offset = 10
    strings: List[str] = []
    for _ in range(string_count):
        (length,) = struct.unpack("<I", data[offset:offset + 4])
        offset += 4
        strings.append(data[offset:offset + length].decode("utf-8"))
        offset += length

    reader = _Reader(data[offset:])
    reader.strings = strings

    module_name = reader.string()
    diagnostics = reader.string()
    program_count = reader.u16()
    programs = [_decode_program(reader) for _ in range(program_count)]
    module = DownloadModule(
        module_name=module_name, diagnostics_text=diagnostics
    )
    cell_count = reader.u16()
    for _ in range(cell_count):
        cell = reader.u16()
        index = reader.u16()
        if index >= len(programs):
            raise FormatError(f"program index {index} out of range")
        module.cell_programs[cell] = programs[index]
    return module


def _decode_program(reader: _Reader) -> CellProgram:
    section_name = reader.string()
    entry = reader.string()
    data_words = reader.u32()
    program = CellProgram(
        section_name=section_name, entry=entry, data_words=data_words
    )
    for _ in range(reader.u16()):
        name = reader.string()
        frame_base = reader.u32()
        function = _decode_function(reader, name)
        program.functions[name] = function
        program.frame_bases[name] = frame_base
    return program


def _decode_function(reader: _Reader, name: str) -> AssembledFunction:
    section_name = reader.string()
    params = [_decode_reg(reader) for _ in range(reader.u8())]
    bank_code = reader.u8()
    return_bank = {0: None, 1: "i", 2: "f"}[bank_code]
    frame_words = reader.u32()
    bundles: List[Bundle] = []
    for _ in range(reader.u32()):
        bundle = Bundle()
        for _ in range(reader.u8()):
            bundle.add(_decode_op(reader))
        bundles.append(bundle)
    return AssembledFunction(
        name=name,
        section_name=section_name,
        bundles=bundles,
        param_regs=params,
        return_bank=return_bank,
        frame_words=frame_words,
    )


def _decode_reg(reader: _Reader) -> PhysReg:
    bank_code = reader.u8()
    if bank_code not in (1, 2):
        raise FormatError(f"bad register bank code {bank_code}")
    index = reader.u16()
    return PhysReg("i" if bank_code == 1 else "f", index)


def _decode_op(reader: _Reader) -> MachineOp:
    opcode_id = reader.u8()
    if opcode_id >= len(_OPCODE_LIST):
        raise FormatError(f"bad opcode id {opcode_id}")
    op = _OPCODE_LIST[opcode_id]
    fu = _FU_LIST[reader.u8()]
    latency = reader.u8()
    dest: Optional[PhysReg] = None
    bank_code = reader.u8()
    if bank_code:
        if bank_code not in (1, 2):
            raise FormatError(f"bad register bank code {bank_code}")
        dest = PhysReg("i" if bank_code == 1 else "f", reader.u16())
    operands = []
    for _ in range(reader.u8()):
        tag = reader.u8()
        if tag == _OPERAND_REG:
            operands.append(_decode_reg(reader))
        elif tag == _OPERAND_INT:
            operands.append(reader.i64())
        elif tag == _OPERAND_FLOAT:
            operands.append(reader.f64())
        else:
            raise FormatError(f"bad operand tag {tag}")
    array_offset = None
    array_name = None
    if reader.u8():
        array_offset = reader.u32()
        array_name = reader.string() or None
    labels = tuple(reader.u32() for _ in range(reader.u8()))
    callee = None
    if reader.u8():
        callee = reader.string()
    return MachineOp(
        op=op,
        fu=fu,
        latency=latency,
        dest=dest,
        operands=tuple(operands),
        array_offset=array_offset,
        array_name=array_name,
        labels=labels,
        callee=callee,
    )


def write_module(module: DownloadModule, path: str) -> int:
    """Encode to a file; returns the byte count."""
    data = encode_module(module)
    with open(path, "wb") as handle:
        handle.write(data)
    return len(data)


def read_module(path: str) -> DownloadModule:
    with open(path, "rb") as handle:
        return decode_module(handle.read())
