"""Fault-tolerant parallel compilation (the §5.2 reliability problem)."""

import pytest

from repro.driver.master import ParallelCompiler
from repro.driver.sequential import SequentialCompiler
from repro.parallel.fault_tolerance import (
    FlakyBackend,
    FunctionMasterFailure,
    RetryBudgetExceeded,
    RetryingBackend,
)
from repro.parallel.local import SerialBackend

from helpers import wrap_function

SOURCE = wrap_function(
    "\n".join(
        f"function f{i}(x: float) : float begin return x + {float(i)}; end"
        for i in range(6)
    )
)


def flaky(rate: float, seed: int = 7, **kwargs) -> FlakyBackend:
    return FlakyBackend(SerialBackend(), rate, seed=seed, **kwargs)


def build_tasks(source=SOURCE):
    from repro.driver.phases import phase1_parse_and_check

    return ParallelCompiler(backend=SerialBackend())._build_tasks(
        phase1_parse_and_check(source), source, "<t>"
    )


class TestFlakyBackend:
    def test_zero_rate_is_transparent(self):
        par = ParallelCompiler(backend=flaky(0.0)).compile(SOURCE)
        seq = SequentialCompiler().compile(SOURCE)
        assert par.digest == seq.digest

    def test_failures_are_deterministic(self):
        from repro.driver.phases import phase1_parse_and_check

        a = flaky(0.5, seed=3)
        b = flaky(0.5, seed=3)
        tasks = ParallelCompiler(backend=SerialBackend())._build_tasks(
            phase1_parse_and_check(SOURCE), SOURCE, "<t>"
        )
        _, fail_a = a.run_tasks_partial(tasks)
        _, fail_b = b.run_tasks_partial(tasks)
        assert [f.task.function_name for f in fail_a] == [
            f.task.function_name for f in fail_b
        ]

    def test_run_tasks_raises_on_injected_failure(self):
        backend = flaky(0.999, seed=1)
        with pytest.raises(FunctionMasterFailure):
            ParallelCompiler(backend=backend).compile(SOURCE)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            flaky(1.0)


class TestRetryingBackend:
    def test_recovers_from_transient_failures(self):
        # Each task fails at most twice; three attempts always suffice.
        inner = flaky(0.9, seed=11, max_failures_per_task=2)
        backend = RetryingBackend(inner, max_attempts=3)
        par = ParallelCompiler(backend=backend).compile(SOURCE)
        seq = SequentialCompiler().compile(SOURCE)
        assert par.digest == seq.digest
        assert inner.injected_failures > 0
        assert backend.retries_performed >= inner.injected_failures

    def test_budget_exhaustion_raises(self):
        inner = flaky(0.999, seed=2)  # practically always failing
        backend = RetryingBackend(inner, max_attempts=2)
        with pytest.raises(RetryBudgetExceeded) as excinfo:
            ParallelCompiler(backend=backend).compile(SOURCE)
        assert excinfo.value.failures

    def test_budget_exhaustion_reports_full_attempt_history(self):
        # Every attempt of every given-up task must appear — not just
        # the final round's failures.
        inner = flaky(0.999, seed=2)
        backend = RetryingBackend(inner, max_attempts=3)
        with pytest.raises(RetryBudgetExceeded) as excinfo:
            backend.run_tasks(build_tasks())
        failures = excinfo.value.failures
        assert len(failures) == 6 * 3  # 6 tasks x 3 attempts each
        f0_reasons = [
            f.reason for f in failures if f.task.function_name == "f0"
        ]
        assert f0_reasons == [
            "injected crash on attempt 1",
            "injected crash on attempt 2",
            "injected crash on attempt 3",
        ]

    def test_wraps_plain_backend_without_partial_api(self):
        backend = RetryingBackend(SerialBackend(), max_attempts=2)
        par = ParallelCompiler(backend=backend).compile(SOURCE)
        seq = SequentialCompiler().compile(SOURCE)
        assert par.digest == seq.digest
        assert backend.retries_performed == 0

    def test_catches_real_exceptions_per_task(self):
        class ExplodingBackend:
            worker_count = 1

            def __init__(self):
                self.calls = 0

            def run_tasks(self, tasks):
                self.calls += 1
                if self.calls == 1:
                    raise RuntimeError("child process killed")
                return SerialBackend().run_tasks(tasks)

        backend = RetryingBackend(ExplodingBackend(), max_attempts=3)
        par = ParallelCompiler(backend=backend).compile(SOURCE)
        assert len(par.profile.functions) == 6

    def test_invalid_attempts_rejected(self):
        with pytest.raises(ValueError):
            RetryingBackend(SerialBackend(), max_attempts=0)

    def test_retried_results_arrive_in_any_order_but_combine_correctly(self):
        inner = flaky(0.6, seed=5, max_failures_per_task=1)
        backend = RetryingBackend(inner, max_attempts=2)
        par = ParallelCompiler(backend=backend).compile(SOURCE)
        names = [f.name for f in par.profile.functions]
        assert names == [f"f{i}" for i in range(6)]  # source order restored


class TestChaosBackend:
    def chaos(self, **kwargs):
        from repro.parallel.fault_tolerance import ChaosBackend

        return ChaosBackend(SerialBackend(), **kwargs)

    def test_decisions_are_a_pure_function_of_the_seed(self):
        a = self.chaos(workers=4, seed=9, crash_rate=0.4)
        b = self.chaos(workers=4, seed=9, crash_rate=0.4)
        _, fail_a = a.run_tasks_partial(build_tasks())
        _, fail_b = b.run_tasks_partial(build_tasks())
        assert [f.task.function_name for f in fail_a] == [
            f.task.function_name for f in fail_b
        ]
        assert [f.worker for f in fail_a] == [f.worker for f in fail_b]

    def test_decisions_are_order_independent(self):
        # Unlike FlakyBackend's shared RNG, chaos decisions depend only
        # on (seed, task, attempt): reversing submission order must not
        # change which tasks crash — the property that keeps injection
        # deterministic under supervisor retries and hedges.
        forward = self.chaos(workers=4, seed=9, crash_rate=0.4)
        backward = self.chaos(workers=4, seed=9, crash_rate=0.4)
        _, fail_f = forward.run_tasks_partial(build_tasks())
        _, fail_b = backward.run_tasks_partial(list(reversed(build_tasks())))
        assert sorted(f.task.function_name for f in fail_f) == sorted(
            f.task.function_name for f in fail_b
        )

    def test_dead_worker_attempts_always_fail(self):
        backend = self.chaos(workers=1, seed=0, dead_workers=("w0",))
        results, failures = backend.run_tasks_partial(build_tasks())
        assert results == []
        assert len(failures) == 6
        assert all(f.worker == "w0" for f in failures)

    def test_poison_task_fails_on_distinct_workers(self):
        backend = self.chaos(workers=4, seed=0, poison=(("s", "f1"),))
        workers = set()
        for _ in range(3):
            _, failures = backend.run_tasks_partial(build_tasks()[1:2])
            assert len(failures) == 1
            workers.add(failures[0].worker)
        assert len(workers) == 3  # rotation guarantees distinct hosts

    def test_results_carry_worker_attribution(self):
        backend = self.chaos(workers=4, seed=0)
        results, failures = backend.run_tasks_partial(build_tasks())
        assert failures == []
        assert all(r.worker in backend.worker_names for r in results)

    def test_excluded_workers_receive_no_attempts(self):
        backend = self.chaos(workers=4, seed=0)
        backend.exclude_workers({"w0", "w1"})
        results, _ = backend.run_tasks_partial(build_tasks())
        assert all(r.worker in ("w2", "w3") for r in results)

    def test_corruption_breaks_the_payload_digest(self):
        from repro.driver.function_master import result_payload_digest

        backend = self.chaos(workers=4, seed=0, corrupt_rate=1.0)
        results, _ = backend.run_tasks_partial(build_tasks())
        assert backend.injected_corruptions == 6
        assert all(
            result_payload_digest(r) != r.payload_digest for r in results
        )

    def test_hang_delays_but_still_delivers(self):
        naps = []
        backend = self.chaos(
            workers=4,
            seed=0,
            hang_rate=1.0,
            hang_delay=0.01,
            sleep=naps.append,
        )
        results, failures = backend.run_tasks_partial(build_tasks())
        assert failures == []
        assert len(results) == 6
        assert naps == [0.01] * 6
        assert backend.injected_hangs == 6

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            self.chaos(crash_rate=1.5)
        with pytest.raises(ValueError):
            self.chaos(workers=0)
