"""The shared NFS file server of the diskless-workstation network.

All forty workstations "share the same file system" (§3.3): every Lisp
core image, source file, and result object moves through this one box.
It is a processor-sharing resource — concurrent requests split its
throughput — which is why starting many function masters at once gets
increasingly expensive ("multiple processes swap off the same file
server", §4.2.3).
"""

from __future__ import annotations

from typing import Callable

from .events import Simulator
from .network import SharedResource


class FileServer:
    """Thin veneer over a processor-sharing resource, in words/sec."""

    def __init__(self, sim: Simulator, rate: float):
        self.resource = SharedResource(sim, "file-server", rate)

    def request(self, words: float, done: Callable[[], None]) -> None:
        self.resource.submit(words, done)

    @property
    def busy_time(self) -> float:
        return self.resource.busy_time

    @property
    def active_requests(self) -> int:
        return self.resource.active_tasks
