"""Optimization-variant search: compile k configs, let warpsim judge.

See :mod:`repro.search.searcher` for the engine and
:mod:`repro.search.space` for the config lattice.
"""

from .searcher import CompilerFactory, SearchOutcome, search_module
from .space import (
    REFERENCE_CONFIG,
    REFERENCE_KEY,
    VariantConfig,
    VariantSpace,
    default_space,
)

__all__ = [
    "CompilerFactory",
    "REFERENCE_CONFIG",
    "REFERENCE_KEY",
    "SearchOutcome",
    "VariantConfig",
    "VariantSpace",
    "default_space",
    "search_module",
]
