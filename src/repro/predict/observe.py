"""Learned compile-cost model over a persistent observation store.

The paper's scheduler costs tasks with a static "lines + nesting"
estimate (§4.3, :func:`~repro.parallel.schedule.ast_cost_hint`).  After
enough compiles the system has ground truth the estimate never sees:
the wall-clock each function actually took.  This module closes the
loop:

- :class:`ObservationStore` persists one :class:`CostObservation` per
  content fingerprint (EWMA, a bounded window of recent samples, the
  static hint it was observed under).  Same PickleStore machinery as
  the artifact/parse/link/variant tiers: atomic writes, LRU eviction,
  corrupt entries deleted and counted.
- :class:`CostModel` is the pluggable cost provider: called with a
  :class:`~repro.driver.function_master.FunctionTask`, it returns a
  cost **in static-hint units** so learned and unseen tasks stay
  comparable inside one fair-share queue.  Unit conversion uses a
  calibration record — an EWMA of observed ``hint / seconds`` — so
  ``cost = predicted_seconds * hints_per_second``.

Fallback rules keep the model harmless: unseen fingerprint, too few
samples, missing calibration, unparseable source, any internal error —
all fall back to the task's static ``cost_hint``.  Learned costs
reorder dispatch; they can never alter a compile result (results are
routed by (section, function) key, not by cost).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..cache.fingerprint import function_fingerprint
from ..cache.store import PickleStore
from ..driver.function_master import FunctionTask, phase1_cached

#: recent samples kept per fingerprint (enough for a stable p90 without
#: letting one hot function grow its entry unboundedly)
SAMPLE_WINDOW = 32

#: fingerprint of the synthetic calibration record (hint-units-per-second
#: EWMA; ordinary fingerprints are hex digests so this can't collide)
CALIBRATION_KEY = "calibration"


@dataclass
class CostObservation:
    """Accumulated timing evidence for one function fingerprint."""

    fingerprint: str
    count: int = 0
    ewma_s: float = 0.0
    last_s: float = 0.0
    max_s: float = 0.0
    #: static §4.3 hint recorded with the last observation — the
    #: calibration pair tying seconds back to hint units
    hint: float = 1.0
    samples: List[float] = field(default_factory=list)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile of the retained sample window."""
        if not self.samples:
            return self.ewma_s
        ordered = sorted(self.samples)
        rank = -(-q * len(ordered) // 1)  # ceil(q * n)
        rank = min(len(ordered), max(1, int(rank)))
        return ordered[rank - 1]


class ObservationStore(PickleStore):
    """Persistent per-fingerprint compile-time observations (``observe/``)."""

    SUBDIR = "observe"
    PAYLOAD_TYPE = CostObservation

    def get(self, fingerprint: str) -> Optional[CostObservation]:
        return super().get(fingerprint)


def task_fingerprint(task: FunctionTask) -> Optional[str]:
    """The content fingerprint a task's artifact is cached under.

    Observations must key on *content*, not names, so a renamed file or
    a different module with the same function bodies shares history.
    Section-level tasks and unparseable sources return None — callers
    fall back to the static hint.
    """
    if task.function_name is None:
        return None
    try:
        parsed, _ = phase1_cached(task.source_text, task.filename)
        section = parsed.module.section_named(task.section_name)
        if section is None:
            return None
        function = next(
            (f for f in section.functions if f.name == task.function_name),
            None,
        )
        if function is None:
            return None
        return function_fingerprint(
            section,
            function,
            opt_level=task.opt_level,
            cell_count=task.cell_count,
            unroll_budget=task.unroll_budget,
            ii_budget=task.ii_budget,
        )
    except Exception:
        return None


class CostModel:
    """EWMA/percentile cost estimator over an :class:`ObservationStore`.

    Instances are callable — ``model(task)`` returns the estimated cost
    in static-hint units — so a model *is* a cost provider for the
    fair-share queue, the supervisor, and the LPT batchers.  All state
    is guarded by one lock; the store's atomic writes make concurrent
    processes last-writer-wins, which is fine for advisory data.
    """

    def __init__(
        self,
        store: ObservationStore,
        *,
        alpha: float = 0.25,
        window: int = SAMPLE_WINDOW,
        min_samples: int = 2,
    ):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if window < 1:
            raise ValueError(f"window must be positive, got {window}")
        if min_samples < 1:
            raise ValueError(
                f"min_samples must be positive, got {min_samples}"
            )
        self.store = store
        self.alpha = alpha
        self.window = window
        self.min_samples = min_samples
        self._lock = threading.Lock()
        #: write-through memo so the hot estimate path stays off disk
        self._memo: Dict[str, CostObservation] = {}
        #: telemetry: observations recorded / learned estimates served /
        #: static-hint fallbacks
        self.recorded = 0
        self.learned = 0
        self.fallbacks = 0

    # -- recording -----------------------------------------------------

    def observe_task(self, task: FunctionTask, seconds: float) -> None:
        """Record one task's measured wall clock (no-op when the task
        has no content fingerprint)."""
        fingerprint = task_fingerprint(task)
        if fingerprint is None:
            return
        self.observe(fingerprint, seconds, hint=float(task.cost_hint))

    def observe(
        self, fingerprint: str, seconds: float, hint: float = 1.0
    ) -> CostObservation:
        """Fold one sample into the fingerprint's observation and the
        global calibration record; persists both."""
        seconds = max(float(seconds), 1e-6)
        with self._lock:
            obs = self._update(
                fingerprint, seconds, hint=max(float(hint), 1.0)
            )
            # Calibration: EWMA of hint/seconds, keyed like any entry.
            self._update(CALIBRATION_KEY, max(hint, 1.0) / seconds, hint=1.0)
            self.recorded += 1
            return obs

    def _update(
        self, fingerprint: str, value: float, hint: float
    ) -> CostObservation:
        """EWMA + window update for one entry (caller holds the lock)."""
        obs = self._load(fingerprint)
        if obs is None:
            obs = CostObservation(fingerprint=fingerprint)
        if obs.count == 0:
            obs.ewma_s = value
        else:
            obs.ewma_s += self.alpha * (value - obs.ewma_s)
        obs.count += 1
        obs.last_s = value
        obs.max_s = max(obs.max_s, value)
        obs.hint = hint
        obs.samples = (obs.samples + [value])[-self.window:]
        self._memo[fingerprint] = obs
        try:
            self.store.put(fingerprint, obs)
        except OSError:
            pass  # advisory data: a full/broken disk must not fail a compile
        return obs

    def _load(self, fingerprint: str) -> Optional[CostObservation]:
        obs = self._memo.get(fingerprint)
        if obs is None:
            obs = self.store.get(fingerprint)
            if obs is not None:
                self._memo[fingerprint] = obs
        return obs

    # -- estimation ----------------------------------------------------

    def estimate_seconds(self, fingerprint: str) -> Optional[float]:
        """Predicted wall clock for a fingerprint, or None (unseen or
        fewer than ``min_samples`` observations)."""
        with self._lock:
            obs = self._load(fingerprint)
            if obs is None or obs.count < self.min_samples:
                return None
            return obs.ewma_s

    def percentile_seconds(
        self, fingerprint: str, q: float = 0.9
    ) -> Optional[float]:
        """High-percentile wall clock (deadline-style estimate)."""
        with self._lock:
            obs = self._load(fingerprint)
            if obs is None or obs.count < self.min_samples:
                return None
            return obs.percentile(q)

    def _hints_per_second(self) -> Optional[float]:
        calibration = self._load(CALIBRATION_KEY)
        if calibration is None or calibration.count < self.min_samples:
            return None
        if calibration.ewma_s <= 0:
            return None
        return calibration.ewma_s

    def cost_for(self, task: FunctionTask) -> float:
        """Estimated cost in static-hint units (the provider seam).

        Never raises; anything short of solid evidence returns the
        static §4.3 hint unchanged.
        """
        try:
            fingerprint = task_fingerprint(task)
            if fingerprint is not None:
                with self._lock:
                    obs = self._load(fingerprint)
                    ratio = self._hints_per_second()
                    if (
                        obs is not None
                        and obs.count >= self.min_samples
                        and ratio is not None
                    ):
                        self.learned += 1
                        return max(obs.ewma_s * ratio, 1e-6)
        except Exception:
            pass
        self.fallbacks += 1
        return float(task.cost_hint)

    __call__ = cost_for

    # -- telemetry -----------------------------------------------------

    def snapshot(self) -> dict:
        with self._lock:
            calibration = self._load(CALIBRATION_KEY)
            return {
                "recorded": self.recorded,
                "learned": self.learned,
                "fallbacks": self.fallbacks,
                "fingerprints": len(self._memo),
                "hints_per_second": (
                    round(calibration.ewma_s, 6)
                    if calibration is not None and calibration.count
                    else None
                ),
            }
