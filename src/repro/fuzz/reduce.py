"""Delta-debugging minimizer for oracle failures.

Shrinks a failing module while preserving the failure, then writes the
minimized reproducer into the corpus so every fuzz-found bug becomes a
permanent regression test (loaded by ``tests/test_corpus.py``).

The reducer edits the AST — three passes to fixpoint:

1. **drop functions** — remove whole functions (and emptied sections);
2. **drop statements** — ddmin over every statement list, including
   nested if/for/while bodies;
3. **simplify expressions/statements** — replace a binary node by one
   operand, a call by its first argument, a literal for a subtree;
   hoist an if/loop body into its parent.

Every candidate is rendered back to source (:mod:`repro.lang.unparse`),
re-validated through the real front end (parse + sema — an invalid
candidate is simply skipped), and re-run through the oracle.  A
candidate is kept only when the oracle still reports a mismatch of the
same kind.  The oracle-run budget bounds worst-case cost.
"""

from __future__ import annotations

import copy
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Tuple

from ..lang import ast_nodes as ast
from ..lang.diagnostics import DiagnosticSink
from ..lang.parser import parse_text
from ..lang.sema import check_module
from ..lang.unparse import unparse_module
from .oracle import DifferentialOracle

#: corpus entry format version
CORPUS_SCHEMA = 1


@dataclass
class ReductionResult:
    """Outcome of one minimization."""

    source: str
    original_source: str
    kinds: List[str]
    steps: int = 0
    oracle_runs: int = 0
    function_count: int = 0
    statement_count: int = 0

    @property
    def reduced(self) -> bool:
        return self.source != self.original_source


class _Budget(Exception):
    """Oracle-run budget exhausted; keep the best module found so far."""


class DeltaReducer:
    """Minimizes a failing source module against a differential oracle."""

    def __init__(
        self,
        oracle: DifferentialOracle,
        inputs: Optional[List[float]] = None,
        seed: int = 0,
        match_kinds: Optional[Sequence[str]] = None,
        max_oracle_runs: int = 400,
    ):
        self.oracle = oracle
        self.inputs = list(inputs or [])
        self.seed = seed
        self.match_kinds = set(match_kinds) if match_kinds else None
        self.max_oracle_runs = max_oracle_runs
        self.oracle_runs = 0
        self.steps = 0

    # -- interestingness ----------------------------------------------

    def _still_fails(self, source: str) -> bool:
        if self.oracle_runs >= self.max_oracle_runs:
            raise _Budget()
        self.oracle_runs += 1
        report = self.oracle.check(source, inputs=self.inputs, seed=self.seed)
        if report.ok:
            return False
        if self.match_kinds is None:
            return True
        return bool(self.match_kinds & set(report.kinds()))

    @staticmethod
    def _valid(source: str) -> bool:
        sink = DiagnosticSink()
        module = parse_text(source, sink)
        if sink.has_errors:
            return False
        check_module(module, sink)
        return not sink.has_errors

    def _try(self, candidate: ast.Module) -> Optional[str]:
        """Render, validate, and oracle-test one candidate; returns its
        source when the candidate is valid and still failing."""
        try:
            source = unparse_module(candidate)
        except ValueError:
            return None
        if not self._valid(source):
            return None
        if self._still_fails(source):
            self.steps += 1
            return source
        return None

    # -- entry point --------------------------------------------------

    def reduce(self, source: str) -> ReductionResult:
        """Shrink ``source`` while it keeps failing the oracle."""
        report = self.oracle.check(source, inputs=self.inputs, seed=self.seed)
        self.oracle_runs += 1
        if report.ok:
            raise ValueError("cannot reduce: the module passes the oracle")
        if self.match_kinds is None:
            self.match_kinds = set(report.kinds())

        best = self._parse(source)
        # Re-render even the unreduced module so later passes compare
        # like with like (the renderer fully parenthesizes).
        rendered = unparse_module(best)
        if self._valid(rendered) and self._still_fails(rendered):
            best_source = rendered
        else:
            best_source = source
            best = self._parse(source)

        try:
            changed = True
            while changed:
                changed = False
                for reducer_pass in (
                    self._pass_drop_functions,
                    self._pass_drop_statements,
                    self._pass_simplify,
                ):
                    new = reducer_pass(best)
                    if new is not None:
                        best, best_source = new
                        changed = True
        except _Budget:
            pass

        return ReductionResult(
            source=best_source,
            original_source=source,
            kinds=sorted(self.match_kinds),
            steps=self.steps,
            oracle_runs=self.oracle_runs,
            function_count=best.function_count(),
            statement_count=sum(
                _count_statements(fn.body)
                for _, fn in best.all_functions()
            ),
        )

    @staticmethod
    def _parse(source: str) -> ast.Module:
        sink = DiagnosticSink()
        module = parse_text(source, sink)
        if sink.has_errors:
            raise ValueError(f"unparsable input:\n{sink.render()}")
        return module

    # -- pass 1: drop functions ---------------------------------------

    def _pass_drop_functions(self, module: ast.Module):
        """One greedy backward sweep: try removing each function once."""
        result = None
        s_index = len(module.sections) - 1
        while s_index >= 0:
            f_index = len(module.sections[s_index].functions) - 1
            while f_index >= 0:
                candidate = copy.deepcopy(module)
                del candidate.sections[s_index].functions[f_index]
                if not candidate.sections[s_index].functions:
                    del candidate.sections[s_index]
                if candidate.sections:
                    source = self._try(candidate)
                    if source is not None:
                        module = self._parse(source)
                        result = (module, source)
                        if s_index >= len(module.sections):
                            break
                f_index -= 1
            s_index -= 1
        return result

    # -- pass 2: drop statements (greedy backward, recursing inward) --

    def _pass_drop_statements(self, module: ast.Module):
        """Sweep every body backward, deleting statements greedily.

        Backward order keeps earlier indices stable after a deletion; a
        kept compound statement is recursed into.  One sweep is linear
        in the statement count; the caller loops passes to fixpoint.
        """
        self._result = None
        for s_index in range(len(module.sections) - 1, -1, -1):
            for f_index in range(
                len(module.sections[s_index].functions) - 1, -1, -1
            ):
                module = self._sweep_body(
                    module, (s_index, f_index)
                )
        return self._result

    def _sweep_body(self, module: ast.Module, path: tuple) -> ast.Module:
        index = len(_resolve_body(module, path)) - 1
        while index >= 0:
            candidate = copy.deepcopy(module)
            del _resolve_body(candidate, path)[index]
            source = self._try(candidate)
            if source is not None:
                module = self._parse(source)
                self._result = (module, source)
            else:
                kept = _resolve_body(module, path)[index]
                for attr in ("then_body", "else_body", "body"):
                    if isinstance(getattr(kept, attr, None), list):
                        module = self._sweep_body(
                            module, path + ((index, attr),)
                        )
            index -= 1
        return module

    # -- pass 3: simplify expressions and hoist bodies ----------------

    def _pass_simplify(self, module: ast.Module):
        """One sweep over the edit sites; greedy, no restart on success
        (shifted indices are caught by the caller's fixpoint loop)."""
        result = None
        index = 0
        while index < _count_edits(module):
            candidate = copy.deepcopy(module)
            if _apply_edit(candidate, index):
                source = self._try(candidate)
                if source is not None:
                    module = self._parse(source)
                    result = (module, source)
                    continue  # same index: new edits shifted into place
            index += 1
        return result


# ---------------------------------------------------------------------------
# AST surgery helpers
# ---------------------------------------------------------------------------


def _body_paths(module: ast.Module) -> Iterator[tuple]:
    """Paths addressing every statement list in the module.

    A path is ``(s_index, f_index, steps...)`` where each step is
    ``(stmt_index, attr)`` descending into a nested body.
    """
    for s_index, section in enumerate(module.sections):
        for f_index, fn in enumerate(section.functions):
            yield from _body_paths_in(fn.body, (s_index, f_index))


def _body_paths_in(body: List[ast.Stmt], prefix: tuple) -> Iterator[tuple]:
    yield prefix
    for index, stmt in enumerate(body):
        for attr in ("then_body", "else_body", "body"):
            nested = getattr(stmt, attr, None)
            if isinstance(nested, list):
                yield from _body_paths_in(
                    nested, prefix + ((index, attr),)
                )


def _resolve_body(module: ast.Module, path: tuple) -> List[ast.Stmt]:
    s_index, f_index = path[0], path[1]
    body = module.sections[s_index].functions[f_index].body
    for stmt_index, attr in path[2:]:
        body = getattr(body[stmt_index], attr)
    return body


def _count_statements(body: List[ast.Stmt]) -> int:
    total = 0
    for stmt in body:
        total += 1
        for attr in ("then_body", "else_body", "body"):
            nested = getattr(stmt, attr, None)
            if isinstance(nested, list):
                total += _count_statements(nested)
    return total


def _edit_sites(module: ast.Module) -> Iterator[Tuple[object, str, object]]:
    """Yield ``(owner, attr, node)`` for every simplifiable slot."""
    def walk_expr(owner, attr, expr):
        if expr is None:
            return
        yield (owner, attr, expr)
        if isinstance(expr, ast.BinaryExpr):
            yield from walk_expr(expr, "left", expr.left)
            yield from walk_expr(expr, "right", expr.right)
        elif isinstance(expr, ast.UnaryExpr):
            yield from walk_expr(expr, "operand", expr.operand)
        elif isinstance(expr, ast.IndexExpr):
            yield from walk_expr(expr, "index", expr.index)
        elif isinstance(expr, ast.CallExpr):
            for i, arg in enumerate(expr.args):
                yield from walk_expr(expr.args, i, arg)

    def walk_stmt(container, index, stmt):
        yield (container, index, stmt)
        if isinstance(stmt, ast.AssignStmt):
            yield from walk_expr(stmt, "value", stmt.value)
        elif isinstance(stmt, ast.IfStmt):
            yield from walk_expr(stmt, "condition", stmt.condition)
            yield from walk_body(stmt.then_body)
            yield from walk_body(stmt.else_body)
        elif isinstance(stmt, ast.ForStmt):
            yield from walk_expr(stmt, "low", stmt.low)
            yield from walk_expr(stmt, "high", stmt.high)
            yield from walk_body(stmt.body)
        elif isinstance(stmt, ast.WhileStmt):
            yield from walk_expr(stmt, "condition", stmt.condition)
            yield from walk_body(stmt.body)
        elif isinstance(stmt, (ast.ReturnStmt, ast.SendStmt)):
            yield from walk_expr(stmt, "value", stmt.value)
        elif isinstance(stmt, ast.CallStmt):
            yield from walk_expr(stmt, "call", stmt.call)

    def walk_body(body):
        for index, stmt in enumerate(body):
            yield from walk_stmt(body, index, stmt)

    for section in module.sections:
        for fn in section.functions:
            yield from walk_body(fn.body)


def _replacements(node) -> List[object]:
    """Candidate simpler nodes for one AST node, most aggressive first."""
    if isinstance(node, ast.BinaryExpr):
        out = [node.left, node.right]
        if node.op in ("+", "-", "*", "/"):
            out.append(ast.FloatLiteral(span=node.span, value=0.0))
        return out
    if isinstance(node, ast.UnaryExpr):
        return [node.operand]
    if isinstance(node, ast.CallExpr):
        return list(node.args[:1]) + [
            ast.FloatLiteral(span=node.span, value=1.0)
        ]
    if isinstance(node, ast.IndexExpr):
        return [ast.FloatLiteral(span=node.span, value=0.0)]
    if isinstance(node, ast.FloatLiteral) and node.value not in (0.0, 1.0):
        return [ast.FloatLiteral(span=node.span, value=0.0)]
    if isinstance(node, ast.IntLiteral) and node.value not in (0, 1):
        return [ast.IntLiteral(span=node.span, value=0)]
    return []


def _stmt_replacements(stmt) -> List[List[ast.Stmt]]:
    """Statement-level hoists: a compound statement becomes its body."""
    if isinstance(stmt, ast.IfStmt):
        return [list(stmt.then_body), list(stmt.else_body)]
    if isinstance(stmt, (ast.ForStmt, ast.WhileStmt)):
        return [list(stmt.body)]
    return []


def _enumerate_edits(module: ast.Module):
    """All (apply_fn) edits, indexable deterministically."""
    for owner, attr, node in _edit_sites(module):
        if isinstance(node, ast.Stmt):
            for replacement in _stmt_replacements(node):
                yield ("stmt", owner, attr, replacement)
        elif isinstance(node, ast.Expr):
            for replacement in _replacements(node):
                if replacement is None:
                    continue
                yield ("expr", owner, attr, replacement)


def _count_edits(module: ast.Module) -> int:
    return sum(1 for _ in _enumerate_edits(module))


def _apply_edit(module: ast.Module, index: int) -> bool:
    for current, edit in enumerate(_enumerate_edits(module)):
        if current != index:
            continue
        kind, owner, attr, replacement = edit
        if kind == "stmt":
            # owner is the containing body list, attr its index.
            owner[attr:attr + 1] = copy.deepcopy(replacement)
        elif isinstance(attr, int):
            owner[attr] = copy.deepcopy(replacement)
        else:
            setattr(owner, attr, copy.deepcopy(replacement))
        return True
    return False


# ---------------------------------------------------------------------------
# Corpus entries
# ---------------------------------------------------------------------------


def corpus_entry_id(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()[:12]


def write_corpus_entry(
    corpus_dir,
    *,
    source: str,
    seed: int,
    size_class: str,
    kinds: Sequence[str],
    pipelines: Sequence[str],
    inputs: Sequence[float],
    notes: str = "",
) -> Path:
    """Persist one reproducer as ``<corpus_dir>/fuzz_<kind>_<id>.json``.

    The entry is self-contained: ``tests/test_corpus.py`` replays the
    embedded source through the named pipelines with the embedded
    inputs, and ``scripts/fuzz_triage.py`` reruns + reclassifies it.
    """
    corpus_dir = Path(corpus_dir)
    corpus_dir.mkdir(parents=True, exist_ok=True)
    entry_id = corpus_entry_id(source)
    kind = kinds[0] if kinds else "unknown"
    path = corpus_dir / f"fuzz_{kind}_{entry_id}.json"
    payload = {
        "schema": CORPUS_SCHEMA,
        "id": entry_id,
        "seed": seed,
        "size_class": size_class,
        "kinds": list(kinds),
        "pipelines": list(pipelines),
        "inputs": list(inputs),
        "source": source,
        "notes": notes,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path


def load_corpus_entry(path) -> dict:
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    for required in ("source", "inputs", "pipelines"):
        if required not in payload:
            raise ValueError(f"corpus entry {path} lacks {required!r}")
    return payload
