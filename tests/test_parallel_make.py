"""Parallel make: scheduling, dependencies, cycles."""

import pytest

from repro.cluster.cluster import ClusterSimulation
from repro.parallel.parallel_make import (
    MakeCycleError,
    MakeTarget,
    simulate_parallel_make,
)

from test_cluster import make_profile


def targets(count, work=200000, deps=None):
    deps = deps or {}
    return [
        MakeTarget(
            name=f"m{i}",
            profile=make_profile([work]),
            dependencies=deps.get(f"m{i}", []),
        )
        for i in range(count)
    ]


class TestScheduling:
    def test_independent_targets_run_concurrently(self):
        sim = ClusterSimulation()
        result = simulate_parallel_make(targets(4), machines=4, sim=sim)
        single = simulate_parallel_make(targets(1), machines=1, sim=sim)
        # Four modules on four machines take about as long as one module.
        assert result.elapsed < 1.2 * single.elapsed

    def test_fewer_machines_serialize(self):
        sim = ClusterSimulation()
        wide = simulate_parallel_make(targets(4), machines=4, sim=sim)
        narrow = simulate_parallel_make(targets(4), machines=1, sim=sim)
        assert narrow.elapsed > 3.5 * wide.elapsed

    def test_schedule_entries_complete(self):
        result = simulate_parallel_make(targets(5), machines=2)
        assert len(result.schedule) == 5
        entry = result.entry_for("m3")
        assert entry.end > entry.start
        with pytest.raises(KeyError):
            result.entry_for("nope")

    def test_machines_never_overlap(self):
        result = simulate_parallel_make(targets(6), machines=2)
        by_machine = {}
        for entry in result.schedule:
            by_machine.setdefault(entry.machine, []).append(entry)
        for entries in by_machine.values():
            entries.sort(key=lambda e: e.start)
            for a, b in zip(entries, entries[1:]):
                assert b.start >= a.end


class TestDependencies:
    def test_dependency_orders_execution(self):
        deps = {"m1": ["m0"], "m2": ["m1"]}
        result = simulate_parallel_make(
            targets(3, deps=deps), machines=3
        )
        m0 = result.entry_for("m0")
        m1 = result.entry_for("m1")
        m2 = result.entry_for("m2")
        assert m1.start >= m0.end
        assert m2.start >= m1.end

    def test_diamond_dependencies(self):
        deps = {"m1": ["m0"], "m2": ["m0"], "m3": ["m1", "m2"]}
        result = simulate_parallel_make(
            targets(4, deps=deps), machines=4
        )
        m3 = result.entry_for("m3")
        assert m3.start >= result.entry_for("m1").end
        assert m3.start >= result.entry_for("m2").end
        # m1 and m2 overlap (both only need m0).
        m1, m2 = result.entry_for("m1"), result.entry_for("m2")
        assert m1.start < m2.end and m2.start < m1.end

    def test_unknown_dependency_rejected(self):
        with pytest.raises(KeyError, match="unknown"):
            simulate_parallel_make(
                targets(1, deps={"m0": ["ghost"]}), machines=1
            )

    def test_cycle_detected(self):
        deps = {"m0": ["m1"], "m1": ["m0"]}
        with pytest.raises(MakeCycleError):
            simulate_parallel_make(targets(2, deps=deps), machines=2)

    def test_zero_machines_rejected(self):
        with pytest.raises(ValueError):
            simulate_parallel_make(targets(1), machines=0)


class TestCoexistence:
    def test_parallel_modules_use_parallel_compiler(self):
        sim = ClusterSimulation()
        plain = simulate_parallel_make(
            targets(2, work=2_000_000), machines=2, sim=sim
        )
        combined = simulate_parallel_make(
            targets(2, work=2_000_000),
            machines=2,
            sim=sim,
            parallel_modules=True,
        )
        # With one function per module the parallel compiler only adds
        # overhead per module; with this profile (single function) it is
        # close but not faster — the point is both paths work.
        assert combined.elapsed > 0
        assert len(combined.schedule) == 2
