"""The supervision layer: deadlines, hedging, quarantine, poison isolation.

The §5.2 reliability problem, solved for real this time: a hung worker
is abandoned at its deadline, stragglers are hedged with duplicate
attempts (first result wins, duplicates deduped), unhealthy workers are
quarantined with exponential backoff, a fully-quarantined farm degrades
to in-process compilation, and a task that fails everywhere is isolated,
compiled in-process for its true traceback, and surfaced as a diagnostic
while the rest of the module still compiles.
"""

import os
import time

import pytest

from repro.driver.function_master import run_compile_task
from repro.driver.master import ParallelCompiler
from repro.driver.sequential import SequentialCompiler
from repro.parallel.fault_tolerance import ChaosBackend
from repro.parallel.local import SerialBackend
from repro.parallel.supervisor import (
    FARM,
    SupervisedBackend,
    WorkerHealthTracker,
)
from repro.parallel.warm_pool import WarmPoolBackend

from helpers import wrap_function

SOURCE = wrap_function(
    "\n".join(
        f"function f{i}(x: float) : float begin return x + {float(i)}; end"
        for i in range(6)
    )
)

TWO_SECTIONS = """
module supmod
section a (cells 0..0)
  function a1(x: float) : float begin return x + 1.0; end
  function a2(x: float) : float begin return x * 2.0; end
  function a3(x: float) : float begin return x - 3.0; end
end
section b (cells 1..1)
  function b1(x: float) : float begin return x / 4.0; end
  function b2(x: float) : float begin return x + 5.0; end
end
end
"""


def chaos(workers=4, seed=0, **kwargs) -> ChaosBackend:
    return ChaosBackend(SerialBackend(), workers=workers, seed=seed, **kwargs)


def supervised(inner=None, **kwargs) -> SupervisedBackend:
    return SupervisedBackend(
        inner if inner is not None else SerialBackend(), **kwargs
    )


class SlowOnce:
    """Serial backend whose *first* attempt at ``slow_name`` sleeps —
    a single wedged workstation, deterministic and per-test."""

    worker_count = 1
    effective_worker_count = 1

    def __init__(self, slow_name: str, delay: float):
        self.slow_name = slow_name
        self.delay = delay
        self.attempts = {}

    def run_tasks(self, tasks):
        return list(self.run_tasks_streaming(tasks))

    def run_tasks_streaming(self, tasks):
        for task in tasks:
            seen = self.attempts.get(task.function_name, 0)
            self.attempts[task.function_name] = seen + 1
            if task.function_name == self.slow_name and seen == 0:
                time.sleep(self.delay)
            yield from run_compile_task(task)


class TestTransparency:
    def test_no_fault_supervised_is_bit_identical(self):
        backend = supervised()
        par = ParallelCompiler(backend=backend).compile(SOURCE)
        seq = SequentialCompiler().compile(SOURCE)
        assert par.digest == seq.digest
        assert par.profile.supervised is True
        assert par.profile.supervisor_timeouts == 0
        assert par.profile.supervisor_poisoned_tasks == 0
        assert par.profile.supervisor_degradations == 0
        assert par.profile.supervisor_corrupt_payloads == 0

    def test_unsupervised_profile_not_marked(self):
        par = ParallelCompiler(backend=SerialBackend()).compile(SOURCE)
        assert par.profile.supervised is False
        assert "supervision:" not in "\n".join(par.report_lines())

    def test_report_line_carries_counters(self):
        backend = supervised()
        par = ParallelCompiler(backend=backend).compile(SOURCE)
        supervision_lines = [
            line for line in par.report_lines() if line.startswith("supervision:")
        ]
        assert len(supervision_lines) == 1
        assert "timeout(s)" in supervision_lines[0]
        assert "poisoned task(s)" in supervision_lines[0]

    def test_delegates_inner_attributes(self):
        inner = WarmPoolBackend(max_workers=1)
        wrapped = supervised(inner)
        assert wrapped.is_warm is False
        assert wrapped.dispatches == 0
        wrapped.shutdown()
        with pytest.raises(AttributeError):
            wrapped.definitely_not_an_attribute

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            supervised(max_attempts=0)
        with pytest.raises(ValueError):
            supervised(poison_threshold=0)
        with pytest.raises(ValueError):
            supervised(hedge_after=1.5)

    def test_timeout_derivation(self):
        from repro.driver.function_master import FunctionTask

        task = FunctionTask("", "<t>", "s", "f", cost_hint=1000.0)
        assert supervised(task_timeout=2.5).timeout_for(task) == 2.5
        assert supervised(task_timeout=0).timeout_for(task) is None
        derived = supervised(
            timeout_floor=1.0, timeout_multiplier=0.01
        ).timeout_for(task)
        assert derived == pytest.approx(10.0)
        floored = supervised(
            timeout_floor=60.0, timeout_multiplier=0.01
        ).timeout_for(task)
        assert floored == pytest.approx(60.0)


class TestDeadlines:
    def test_hung_task_is_abandoned_and_rerun_without_duplicates(self):
        # f5's first attempt sleeps 1s; its 0.2s deadline expires, the
        # retry compiles instantly.  The combiner raises on duplicate
        # section entries, so a clean compile proves dedup worked.
        inner = SlowOnce("f5", delay=1.0)
        backend = supervised(
            inner, task_timeout=0.2, hedge_after=None, max_attempts=3
        )
        start = time.monotonic()
        par = ParallelCompiler(backend=backend).compile(SOURCE)
        wall = time.monotonic() - start
        seq = SequentialCompiler().compile(SOURCE)
        assert par.digest == seq.digest
        assert backend.supervision.timeouts >= 1
        assert inner.attempts["f5"] == 2
        assert wall < 10.0

    def test_hang_injected_by_chaos_is_absorbed(self):
        inner = chaos(seed=1, hang_rate=1.0, hang_delay=0.8)
        backend = supervised(
            inner, task_timeout=0.15, hedge_after=None, max_attempts=4
        )
        par = ParallelCompiler(backend=backend).compile(SOURCE)
        seq = SequentialCompiler().compile(SOURCE)
        assert par.digest == seq.digest
        assert backend.supervision.timeouts >= 1
        assert inner.injected_hangs >= 1


class TestHedging:
    def test_straggler_gets_hedged_and_first_result_wins(self):
        inner = SlowOnce("f5", delay=0.8)
        backend = supervised(
            inner,
            task_timeout=0,  # deadlines off: hedging alone must save us
            hedge_after=0.5,
            hedge_min_age=0.0,
            max_attempts=3,
        )
        start = time.monotonic()
        par = ParallelCompiler(backend=backend).compile(SOURCE)
        wall = time.monotonic() - start
        seq = SequentialCompiler().compile(SOURCE)
        assert par.digest == seq.digest
        assert backend.supervision.hedges_launched >= 1
        assert backend.supervision.hedges_won >= 1
        # the hedge resolved f5 well before the original woke up
        assert wall < 0.8 + 5.0
        # the late original result was deduped, not double-combined
        assert inner.attempts["f5"] == 2

    def test_hedging_disabled_waits_for_the_straggler(self):
        inner = SlowOnce("f5", delay=0.4)
        backend = supervised(inner, task_timeout=0, hedge_after=None)
        par = ParallelCompiler(backend=backend).compile(SOURCE)
        assert par.digest == SequentialCompiler().compile(SOURCE).digest
        assert backend.supervision.hedges_launched == 0
        assert inner.attempts["f5"] == 1


class TestHealthTracker:
    def test_quarantine_after_consecutive_failures(self):
        tracker = WorkerHealthTracker(quarantine_after=2, backoff_base=10.0)
        assert tracker.record_failure("w0", now=0.0) is False
        assert tracker.record_failure("w0", now=1.0) is True
        assert tracker.quarantined(now=5.0) == {"w0"}
        assert tracker.quarantined(now=20.0) == frozenset()

    def test_success_resets_consecutive_count(self):
        tracker = WorkerHealthTracker(quarantine_after=2)
        tracker.record_failure("w0", now=0.0)
        tracker.record_success("w0")
        assert tracker.record_failure("w0", now=1.0) is False

    def test_backoff_doubles_per_spell_and_caps(self):
        tracker = WorkerHealthTracker(
            quarantine_after=1, backoff_base=1.0, backoff_cap=3.0
        )
        assert tracker.record_failure("w0", now=0.0) is True
        assert tracker.quarantined(now=0.5) == {"w0"}
        # re-admitted at t=1; second spell lasts 2s
        assert tracker.record_failure("w0", now=1.5) is True
        assert tracker.quarantined(now=3.0) == {"w0"}
        # third spell would be 4s but caps at 3
        assert tracker.record_failure("w0", now=4.0) is True
        assert tracker.quarantined(now=6.5) == {"w0"}
        assert tracker.quarantined(now=7.5) == frozenset()

    def test_all_quarantined_by_capacity_or_farm(self):
        tracker = WorkerHealthTracker(quarantine_after=1, backoff_base=10.0)
        tracker.record_failure("w0", now=0.0)
        assert tracker.all_quarantined(now=1.0, capacity=2) is False
        tracker.record_failure("w1", now=0.0)
        assert tracker.all_quarantined(now=1.0, capacity=2) is True
        farm_only = WorkerHealthTracker(quarantine_after=1, backoff_base=10.0)
        farm_only.record_failure(FARM, now=0.0)
        assert farm_only.all_quarantined(now=1.0, capacity=99) is True


class TestQuarantineAndDegradation:
    def test_dead_farm_degrades_to_serial_bit_identical(self):
        # Every simulated worker is dead: both get quarantined and the
        # build must fall back to in-process compilation — and still be
        # bit-identical to the sequential compiler (the degradation
        # ladder's bottom rung is a correct compiler, not an error).
        inner = chaos(workers=2, seed=0, dead_workers=("w0", "w1"))
        backend = supervised(
            inner,
            quarantine_after=1,
            quarantine_backoff=30.0,
            max_attempts=4,
            poison_threshold=5,
            hedge_after=None,
        )
        par = ParallelCompiler(backend=backend).compile(SOURCE)
        seq = SequentialCompiler().compile(SOURCE)
        assert par.digest == seq.digest
        assert backend.supervision.quarantines >= 2
        assert backend.supervision.degradations >= 1
        assert par.profile.supervisor_degradations >= 1

    def test_quarantined_workers_are_excluded_from_dispatch(self):
        inner = chaos(workers=3, seed=0, dead_workers=("w1",))
        backend = supervised(
            inner,
            quarantine_after=1,
            quarantine_backoff=30.0,
            max_attempts=4,
            hedge_after=None,
        )
        par = ParallelCompiler(backend=backend).compile(SOURCE)
        assert par.digest == SequentialCompiler().compile(SOURCE).digest
        # once w1 got quarantined the supervisor told the backend
        assert "w1" in inner._excluded


class TestPoisonIsolation:
    def test_poison_task_isolated_in_process_and_module_still_identical(self):
        # The task crashes on every farm worker but compiles fine
        # in-process: the function is flagged poisoned, its *real*
        # object code is used, and the module matches the sequential
        # compiler bit for bit.
        inner = chaos(workers=4, seed=0, poison=(("s", "f2"),))
        backend = supervised(
            inner, max_attempts=5, poison_threshold=3, hedge_after=None
        )
        par = ParallelCompiler(backend=backend).compile(SOURCE)
        seq = SequentialCompiler().compile(SOURCE)
        assert par.digest == seq.digest
        assert [f.name for f in par.profile.poisoned_functions()] == ["f2"]
        assert par.profile.failed_functions() == []
        assert backend.supervision.poisoned_tasks == 1
        assert "[poisoned: isolated in-process]" in "\n".join(
            par.report_lines()
        )
        assert "isolated after" in par.diagnostics_text

    def test_poison_task_that_fails_in_process_becomes_a_stub(self):
        def isolation(task):
            if task.function_name == "f2":
                raise RuntimeError("genuinely broken function")
            return run_compile_task(task)

        inner = chaos(workers=4, seed=0, poison=(("s", "f2"),))
        backend = supervised(
            inner,
            max_attempts=5,
            poison_threshold=3,
            hedge_after=None,
            isolation_runner=isolation,
        )
        par = ParallelCompiler(backend=backend).compile(SOURCE)
        seq = SequentialCompiler().compile(SOURCE)
        # the build completes: healthy functions are bit-identical
        seq_objects = {o.name: o.digest_text() for o in seq.objects}
        for obj in par.objects:
            if obj.name != "f2":
                assert obj.digest_text() == seq_objects[obj.name]
        assert [f.name for f in par.profile.failed_functions()] == ["f2"]
        assert "[POISONED: no object code]" in "\n".join(par.report_lines())
        # the in-process traceback is surfaced as a diagnostic
        assert "genuinely broken function" in par.diagnostics_text
        assert "RuntimeError" in par.diagnostics_text

    def test_distinct_worker_threshold_triggers_isolation(self):
        inner = chaos(workers=4, seed=0, poison=(("s", "f1"),))
        backend = supervised(
            inner, max_attempts=10, poison_threshold=2, hedge_after=None
        )
        ParallelCompiler(backend=backend).compile(SOURCE)
        # two distinct workers sufficed; no need to burn all 10 attempts
        assert backend.supervision.poisoned_tasks == 1
        assert backend.supervision.retries <= 2


class TestResultValidation:
    def test_corrupt_payload_is_detected_and_rerun(self):
        inner = chaos(seed=2, corrupt_rate=1.0, max_corruptions_per_task=1)
        backend = supervised(inner, max_attempts=3, hedge_after=None)
        par = ParallelCompiler(backend=backend).compile(SOURCE)
        seq = SequentialCompiler().compile(SOURCE)
        assert par.digest == seq.digest
        assert inner.injected_corruptions == 6
        assert backend.supervision.corrupt_payloads == 6
        assert par.profile.supervisor_corrupt_payloads == 6

    def test_corrupt_assembled_payload_is_detected_and_rerun(self):
        """A scribbled AssembledFunction must be re-run, never linked:
        the payload digest covers the pre-assembled half too, so the
        supervisor rejects the result even though the ObjectFunction
        beside it is pristine."""
        inner = chaos(
            seed=2, corrupt_assembly_rate=1.0, max_corruptions_per_task=1
        )
        backend = supervised(inner, max_attempts=3, hedge_after=None)
        compiler = ParallelCompiler(backend=backend, phase4_jobs=2)
        par = compiler.compile(SOURCE)
        seq = SequentialCompiler().compile(SOURCE)
        assert par.digest == seq.digest
        assert inner.injected_assembly_corruptions == 6
        assert backend.supervision.corrupt_payloads == 6
        assert par.profile.supervisor_corrupt_payloads == 6
        # The retried results linked on the parallel back end, not a
        # fallback: every section was clean by the time it combined.
        assert compiler.last_phase4_stats.mode == "parallel"

    def test_payload_digest_travels_with_results(self):
        from repro.driver.function_master import (
            FunctionTask,
            result_payload_digest,
        )

        results = run_compile_task(FunctionTask(SOURCE, "<t>", "s", "f0"))
        assert results[0].payload_digest == result_payload_digest(results[0])
        assert results[0].assembled is not None


class TestSectionGranularity:
    def test_supervised_section_tasks_resolve_and_match(self):
        inner = chaos(seed=4, crash_rate=0.4)
        backend = supervised(inner, max_attempts=6, hedge_after=None)
        par = ParallelCompiler(
            backend=backend, granularity="section"
        ).compile(TWO_SECTIONS)
        seq = SequentialCompiler().compile(TWO_SECTIONS)
        assert par.digest == seq.digest


class TestSeededChaosEndToEnd:
    """The acceptance scenario: crashes + hangs + corruption + one poison
    function, all seeded.  Healthy functions stay bit-identical to the
    sequential compiler; the poison function surfaces as a diagnostic
    stub; the run stays bounded.  CI sweeps WARPCC_CHAOS_SEED and
    WARPCC_CHAOS_FAULT over a crash/hang/corrupt matrix."""

    @staticmethod
    def _config():
        seed = int(os.environ.get("WARPCC_CHAOS_SEED", "0"))
        fault = os.environ.get("WARPCC_CHAOS_FAULT", "mixed")
        rates = {
            "crash_rate": 0.0,
            "hang_rate": 0.0,
            "corrupt_rate": 0.0,
            "corrupt_assembly_rate": 0.0,
        }
        if fault in ("crash", "mixed"):
            rates["crash_rate"] = 0.3
        if fault in ("hang", "mixed"):
            rates["hang_rate"] = 0.3
        if fault in ("corrupt", "mixed"):
            rates["corrupt_rate"] = 0.25
        # Its own matrix leg, deliberately not part of "mixed": the
        # extra per-attempt fault draw would change which seeds push a
        # second task over the poison threshold.
        if fault == "corrupt-assembly":
            rates["corrupt_assembly_rate"] = 0.25
        return seed, rates

    def test_chaos_run_completes_with_poison_diagnostic(self):
        seed, rates = self._config()

        def isolation(task):
            if task.function_name == "a3":
                raise RuntimeError("poison function is genuinely broken")
            return run_compile_task(task)

        inner = chaos(
            workers=4,
            seed=seed,
            hang_delay=0.15,
            poison=(("a", "a3"),),
            **rates,
        )
        backend = supervised(
            inner,
            task_timeout=1.0,
            max_attempts=4,
            poison_threshold=3,
            isolation_runner=isolation,
        )
        start = time.monotonic()
        par = ParallelCompiler(backend=backend).compile(TWO_SECTIONS)
        wall = time.monotonic() - start
        seq = SequentialCompiler().compile(TWO_SECTIONS)

        # no task may block longer than task-timeout x max-attempts;
        # give the whole 5-task run a generous multiple of that bound
        assert wall < 1.0 * 4 * 5

        seq_objects = {o.name: o.digest_text() for o in seq.objects}
        for obj in par.objects:
            if obj.name != "a3":
                assert obj.digest_text() == seq_objects[obj.name]
        assert [f.name for f in par.profile.failed_functions()] == ["a3"]
        assert backend.supervision.poisoned_tasks == 1
        assert "poison function is genuinely broken" in par.diagnostics_text
        supervision_line = [
            line for line in par.report_lines() if line.startswith("supervision:")
        ]
        assert supervision_line and "1 poisoned task(s)" in supervision_line[0]

    def test_chaos_injection_is_deterministic_under_a_seed(self):
        seed, rates = self._config()

        def run_once():
            inner = chaos(workers=4, seed=seed, hang_delay=0.05, **rates)
            backend = supervised(
                inner,
                task_timeout=2.0,
                max_attempts=6,
                hedge_after=None,  # hedging varies attempts with timing
            )
            result = ParallelCompiler(backend=backend).compile(TWO_SECTIONS)
            return (
                result.digest,
                inner.injected_crashes,
                inner.injected_corruptions,
            )

        first = run_once()
        second = run_once()
        assert first == second
        assert first[0] == SequentialCompiler().compile(TWO_SECTIONS).digest


class TestChaosCli:
    def test_chaos_poison_partial_failure_exit_code(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "mod.w"
        path.write_text(TWO_SECTIONS)
        # a3 is poison AND broken in-process: source-level breakage is
        # not simulable from the CLI, so poison a healthy function and
        # expect a *successful* isolation (exit 0, poisoned mark).
        code = main(
            [
                "compile",
                str(path),
                "--parallel",
                "--jobs",
                "1",
                "--no-cache",
                "--chaos",
                "5",
                "--chaos-poison",
                "a.a3",
                "--task-timeout",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "[poisoned: isolated in-process]" in out
        assert "supervision:" in out

    def test_supervised_flag_prints_counters(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "mod.w"
        path.write_text(TWO_SECTIONS)
        code = main(
            [
                "compile",
                str(path),
                "--parallel",
                "--jobs",
                "1",
                "--no-cache",
                "--supervised",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "supervision: 0 timeout(s)" in out
