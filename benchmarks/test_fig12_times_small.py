"""Figure 12 (appendix): execution times for f_small.

Paper: "The measurements for f_small and f_medium show continually better
results for parallel compilation" (than f_tiny).
"""

from figures_common import times_figure, write_figure
from repro.metrics.experiments import measure_pair
from repro.workloads.sizes import FUNCTION_COUNTS


def test_fig12_times_small(benchmark, results_dir):
    fig = benchmark(times_figure, "small", "Figure 12")
    write_figure(results_dir, fig)

    seq = fig.series_named("elapsed seq")
    par = fig.series_named("elapsed par")
    # Better than f_tiny at every n; wins outright from n=2.
    for n in (2, 4, 8):
        assert par.points[n] < seq.points[n]
        assert (
            seq.points[n] / par.points[n]
            > measure_pair("tiny", n).speedup
        )
    # Sequential grows linearly with n.
    assert seq.points[8] > 6.5 * seq.points[1]
