"""Local execution backends: serial (in-process) and multiprocessing.

The multiprocessing backend is the real thing: each function master is an
OS process, compilation proceeds concurrently, and on a multi-core host
the parallel compiler genuinely finishes sooner — the modern analogue of
farming function masters out to idle workstations.
"""

from __future__ import annotations

import concurrent.futures
import os
from typing import List, Optional

from ..driver.function_master import (
    FunctionTask,
    FunctionTaskResult,
    run_compile_task,
)


class SerialBackend:
    """Runs every task in-process, in order (tests and debugging)."""

    def __init__(self):
        self._worker_count = 1

    @property
    def worker_count(self) -> int:
        return self._worker_count

    def run_tasks(self, tasks: List[FunctionTask]) -> List[FunctionTaskResult]:
        results: List[FunctionTaskResult] = []
        for task in tasks:
            results.extend(run_compile_task(task))
        return results


class ProcessPoolBackend:
    """One OS process per concurrent function master."""

    def __init__(self, max_workers: Optional[int] = None):
        if max_workers is None:
            max_workers = max(1, (os.cpu_count() or 2) - 1)
        if max_workers < 1:
            raise ValueError(f"need at least one worker, got {max_workers}")
        self._max_workers = max_workers

    @property
    def worker_count(self) -> int:
        return self._max_workers

    def run_tasks(self, tasks: List[FunctionTask]) -> List[FunctionTaskResult]:
        if not tasks:
            return []
        workers = min(self._max_workers, len(tasks))
        with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
            batches = pool.map(run_compile_task, tasks)
            return [result for batch in batches for result in batch]
