"""The warm-worker compile farm: persistence, recovery, batching.

The backend must satisfy the ExecutionBackend protocol, keep its
executor alive across compilations, survive worker crashes, and — the
paper's correctness requirement — produce bit-identical download modules
to the sequential compiler.
"""

import os

import pytest

from repro.driver.function_master import FunctionTask, clear_phase1_cache
from repro.driver.master import ParallelCompiler
from repro.driver.sequential import SequentialCompiler
from repro.parallel.local import ProcessPoolBackend, SerialBackend
from repro.parallel.schedule import ast_cost_hint, batch_tasks_by_cost
from repro.parallel.warm_pool import WarmPoolBackend
from repro.workloads.synthetic import synthetic_program
from repro.workloads.user_program import user_program

SMALL = """
module farm
section a (cells 0..0)
  function a1(x: float) : float begin return x + 1.0; end
  function a2(x: float) : float begin return x * 2.0; end
end
section b (cells 1..1)
  function b1(x: float) : float begin return x - 3.0; end
end
end
"""


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_phase1_cache()
    yield
    clear_phase1_cache()


class TestBitIdenticalOutput:
    def test_small_program(self):
        sequential = SequentialCompiler().compile(SMALL)
        with WarmPoolBackend(max_workers=2) as backend:
            parallel = ParallelCompiler(backend=backend).compile(SMALL)
        assert parallel.digest == sequential.digest
        assert parallel.diagnostics_text == sequential.diagnostics_text

    def test_s4_medium(self):
        source = synthetic_program("medium", 4)
        sequential = SequentialCompiler().compile(source)
        with WarmPoolBackend(max_workers=2) as backend:
            parallel = ParallelCompiler(backend=backend).compile(source)
        assert parallel.digest == sequential.digest

    def test_mech_eng_user_program(self):
        source = user_program()
        sequential = SequentialCompiler().compile(source)
        with WarmPoolBackend(max_workers=2) as backend:
            parallel = ParallelCompiler(backend=backend).compile(source)
        assert parallel.digest == sequential.digest


class TestPoolPersistence:
    def test_lazy_start(self):
        backend = WarmPoolBackend(max_workers=1)
        assert not backend.is_warm
        backend.run_tasks([])
        assert not backend.is_warm  # empty batch never spins up the farm
        backend.shutdown()

    def test_pool_survives_across_run_tasks(self):
        with WarmPoolBackend(max_workers=1) as backend:
            compiler = ParallelCompiler(backend=backend)
            compiler.compile(SMALL)
            first_pool = backend._pool
            assert first_pool is not None
            compiler.compile(SMALL)
            assert backend._pool is first_pool
            assert backend.dispatches == 2

    def test_second_compile_is_served_from_worker_caches(self):
        with WarmPoolBackend(max_workers=1) as backend:
            compiler = ParallelCompiler(backend=backend)
            compiler.compile(SMALL)
            second = compiler.compile(SMALL)
        assert second.profile.phase1_cache_hits() == 3
        assert second.profile.phase1_cache_misses() == 0

    def test_restart_after_shutdown(self):
        backend = WarmPoolBackend(max_workers=1)
        compiler = ParallelCompiler(backend=backend)
        first = compiler.compile(SMALL)
        backend.shutdown()
        assert not backend.is_warm
        second = compiler.compile(SMALL)  # lazily restarts the farm
        backend.shutdown()
        assert second.digest == first.digest

    def test_recovers_after_worker_crash(self):
        with WarmPoolBackend(max_workers=1, crash_retries=1) as backend:
            compiler = ParallelCompiler(backend=backend)
            compiler.compile(SMALL)
            # Kill the worker out from under the backend.
            poison = backend._pool.submit(os._exit, 0)
            with pytest.raises(Exception):
                poison.result()
            result = compiler.compile(SMALL)
            assert backend.crash_recoveries >= 1
        sequential = SequentialCompiler().compile(SMALL)
        assert result.digest == sequential.digest

    def test_task_errors_propagate_without_retry(self):
        with WarmPoolBackend(max_workers=1, crash_retries=1) as backend:
            task = FunctionTask(SMALL, "<t>", "nope", None)
            with pytest.raises(KeyError):
                backend.run_tasks([task])
            assert backend.crash_recoveries == 0

    def test_rejects_bad_configuration(self):
        with pytest.raises(ValueError):
            WarmPoolBackend(max_workers=0)
        with pytest.raises(ValueError):
            WarmPoolBackend(batches_per_worker=0)
        with pytest.raises(ValueError):
            WarmPoolBackend(crash_retries=-1)


class TestEffectiveWorkerCount:
    def test_pool_backend_records_cap_at_task_count(self):
        backend = ProcessPoolBackend(max_workers=8)
        result = ParallelCompiler(backend=backend).compile(SMALL)
        assert backend.effective_worker_count == 3
        assert result.profile.workers_used == 3

    def test_warm_backend_records_batch_cap(self):
        with WarmPoolBackend(max_workers=8) as backend:
            result = ParallelCompiler(backend=backend).compile(SMALL)
            assert backend.effective_worker_count <= 3
            assert result.profile.workers_used == backend.effective_worker_count

    def test_serial_backend_is_one(self):
        backend = SerialBackend()
        result = ParallelCompiler(backend=backend).compile(SMALL)
        assert backend.effective_worker_count == 1
        assert result.profile.workers_used == 1

    def test_sequential_profile_defaults_to_one_worker(self):
        result = SequentialCompiler().compile(SMALL)
        assert result.profile.workers_used == 1


class TestBatchedDispatch:
    def test_partition_covers_every_task_exactly_once(self):
        costs = [5.0, 1.0, 9.0, 2.0, 2.0, 7.0]
        chunks = batch_tasks_by_cost(costs, 3)
        flat = sorted(i for chunk in chunks for i in chunk)
        assert flat == list(range(len(costs)))
        assert len(chunks) <= 3

    def test_chunks_keep_source_order(self):
        chunks = batch_tasks_by_cost([1.0] * 7, 2)
        for chunk in chunks:
            assert chunk == sorted(chunk)

    def test_balances_cost_not_count(self):
        # One huge task must not share its chunk with everything else.
        chunks = batch_tasks_by_cost([100.0, 1.0, 1.0, 1.0], 2)
        heavy = next(chunk for chunk in chunks if 0 in chunk)
        assert heavy == [0]

    def test_empty_and_invalid(self):
        assert batch_tasks_by_cost([], 4) == []
        with pytest.raises(ValueError):
            batch_tasks_by_cost([1.0], 0)

    def test_ast_cost_hint_tracks_size(self):
        from repro.driver.phases import phase1_parse_and_check

        small = phase1_parse_and_check(synthetic_program("tiny", 1))
        large = phase1_parse_and_check(synthetic_program("large", 1))
        small_fn = small.module.sections[0].functions[0]
        large_fn = large.module.sections[0].functions[0]
        assert ast_cost_hint(large_fn) > ast_cost_hint(small_fn)
