"""Live-variable analysis over virtual registers.

Backward problem: a register is live at a point if some path from that
point reads it before any write.  Used by dead-code elimination and by the
register allocator's live-interval construction.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Tuple

from ..ir.cfg import BasicBlock, FunctionIR
from ..ir.instructions import Instr
from ..ir.values import VReg
from .dataflow import BlockFacts, solve_backward_masks, unpack_solution


def block_use_def(block: BasicBlock) -> Tuple[FrozenSet[VReg], FrozenSet[VReg]]:
    """(use, def) sets for a block: use = read before any write within it."""
    uses = set()
    defs = set()
    for instr in block.instructions:
        for reg in instr.uses():
            if reg not in defs:
                uses.add(reg)
        if instr.dest is not None:
            defs.add(instr.dest)
    return frozenset(uses), frozenset(defs)


def live_variables(function: FunctionIR) -> BlockFacts:
    """Solve liveness; ``entry``/``exit`` give live-in/live-out per block.

    Registers are numbered once for the whole function and the gen/kill
    sets are built directly as bitsets, so neither the construction nor
    the worklist solve allocates per-block frozensets.
    """
    index: Dict[VReg, int] = {}
    gen: Dict[str, int] = {}
    kill: Dict[str, int] = {}
    for block in function.blocks:
        # Collect use/def with small per-block sets first; only the final
        # per-block conversion touches the (wide) bitset ints.
        uses = set()
        defs = set()
        for instr in block.instructions:
            for reg in instr.uses():
                if reg not in defs:
                    uses.add(reg)
            if instr.dest is not None:
                defs.add(instr.dest)
        use_mask = 0
        for reg in uses:
            bit = index.get(reg)
            if bit is None:
                bit = index[reg] = len(index)
            use_mask |= 1 << bit
        def_mask = 0
        for reg in defs:
            bit = index.get(reg)
            if bit is None:
                bit = index[reg] = len(index)
            def_mask |= 1 << bit
        gen[block.name] = use_mask
        kill[block.name] = def_mask
    entry_m, exit_m = solve_backward_masks(function, gen, kill)
    return unpack_solution(entry_m, exit_m, list(index))


def iterate_live_out(
    block: BasicBlock, live_out: FrozenSet[VReg]
) -> Iterator[Tuple[Instr, FrozenSet[VReg]]]:
    """Yield ``(instr, live-after-instr)`` in *reverse* block order.

    Callers walking backwards (e.g. DCE) get, for each instruction, the set
    of registers live immediately after it.
    """
    live = set(live_out)
    for instr in reversed(block.instructions):
        yield instr, frozenset(live)
        if instr.dest is not None:
            live.discard(instr.dest)
        live.update(instr.uses())
