"""Compiler drivers: sequential and parallel (master hierarchy)."""

from .function_master import (
    FunctionTask,
    FunctionTaskResult,
    run_compile_task,
    run_function_master,
)
from .master import ParallelCompiler
from .phases import (
    ParsedProgram,
    compile_one_function,
    phase1_parse_and_check,
    phase4_link_and_download,
)
from .results import CompilationResult, FunctionReport, WorkProfile
from .section_master import (
    CombinedSection,
    SectionCombineError,
    StreamingSectionCombiner,
    combine_section_results,
)
from .sequential import SequentialCompiler

__all__ = [
    "CombinedSection",
    "CompilationResult",
    "FunctionReport",
    "FunctionTask",
    "FunctionTaskResult",
    "ParallelCompiler",
    "ParsedProgram",
    "SectionCombineError",
    "SequentialCompiler",
    "StreamingSectionCombiner",
    "WorkProfile",
    "combine_section_results",
    "compile_one_function",
    "phase1_parse_and_check",
    "phase4_link_and_download",
    "run_compile_task",
    "run_function_master",
]
