"""The in-process compile service: concurrency, admission, lifecycle."""

import threading

import pytest

from repro.cache import ArtifactCache
from repro.driver.sequential import SequentialCompiler
from repro.parallel.backend import stream_task_results
from repro.parallel.local import SerialBackend
from repro.parallel.supervisor import SupervisedBackend
from repro.service import AdmissionError, CompileService
from repro.workloads.synthetic import synthetic_program


def _module(name, body="send(v * 2.0);"):
    return (
        f"module {name}\n"
        "section s (cells 0..0)\n"
        "  function main()\n"
        "  var v: float; k: int;\n"
        "  begin\n"
        f"    for k := 1 to 3 do receive(v); {body} end;\n"
        "  end\n"
        "end\n"
        "end\n"
    )


class GateBackend:
    """Serial backend whose dispatch blocks until the gate opens —
    lets tests hold jobs in 'running' while probing admission."""

    def __init__(self):
        self.inner = SerialBackend()
        self.gate = threading.Event()
        self.worker_count = 1

    def run_tasks(self, tasks):
        return list(self.run_tasks_streaming(tasks))

    def run_tasks_streaming(self, tasks):
        self.gate.wait(timeout=30.0)
        yield from stream_task_results(self.inner, tasks)


class ShutdownProbe(SerialBackend):
    def __init__(self):
        super().__init__()
        self.shutdowns = 0

    def shutdown(self):
        self.shutdowns += 1


def _wait_for(predicate, timeout=10.0):
    done = threading.Event()

    def poll():
        import time

        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if predicate():
                done.set()
                return
            time.sleep(0.01)

    thread = threading.Thread(target=poll, daemon=True)
    thread.start()
    assert done.wait(timeout), "condition never became true"


class TestConcurrentJobs:
    def test_four_jobs_two_tenants_bit_identical(self):
        """The acceptance bar: N concurrent jobs through the shared
        pool produce digests identical to solo sequential compiles."""
        sources = {
            f"mt_{size}_{i}": synthetic_program(
                size, 3, module_name=f"mt_{size}_{i}"
            )
            for i, size in enumerate(["tiny", "small", "tiny", "small"])
        }
        expected = {
            name: SequentialCompiler().compile(source).digest
            for name, source in sources.items()
        }
        with CompileService(SerialBackend(), max_running=4) as service:
            jobs = {}
            for index, (name, source) in enumerate(sources.items()):
                jobs[name] = service.submit(
                    source,
                    tenant="alice" if index % 2 == 0 else "bob",
                    filename=f"{name}.w2",
                )
            for name, job_id in jobs.items():
                job = service.wait(job_id, timeout=60.0)
                assert job.state == "done", job.error
                assert job.result.digest == expected[name]

    def test_work_profiles_are_isolated_per_job(self):
        """Concurrent jobs must not bleed counters or function reports
        into each other's profiles."""
        a = synthetic_program("tiny", 4, module_name="iso_a")
        b = synthetic_program("small", 2, module_name="iso_b")
        with CompileService(SerialBackend(), max_running=2) as service:
            ja = service.submit(a, tenant="alice", filename="iso_a.w2")
            jb = service.submit(b, tenant="bob", filename="iso_b.w2")
            ra = service.wait(ja, timeout=60.0).result
            rb = service.wait(jb, timeout=60.0).result
        assert ra.module_name == "iso_a" and rb.module_name == "iso_b"
        assert len(ra.profile.functions) == 4
        assert len(rb.profile.functions) == 2
        a_names = {f.name for f in ra.profile.functions}
        b_names = {f.name for f in rb.profile.functions}
        assert not (a_names & b_names & {"<crossed>"})
        assert a_names.isdisjoint(b_names) or a_names != b_names

    def test_shared_cache_serves_repeat_submission(self, tmp_path):
        cache = ArtifactCache(str(tmp_path / "cache"))
        source = _module("cached_mod")
        with CompileService(SerialBackend(), cache) as service:
            first = service.wait(
                service.submit(source, tenant="alice"), timeout=60.0
            )
            second = service.wait(
                service.submit(source, tenant="bob"), timeout=60.0
            )
        assert first.state == "done" and second.state == "done"
        assert second.result.digest == first.result.digest
        assert second.cache_served >= 1

    def test_supervised_backend_composes_unchanged(self):
        source = _module("supervised_mod")
        expected = SequentialCompiler().compile(source).digest
        backend = SupervisedBackend(SerialBackend())
        with CompileService(backend) as service:
            job = service.wait(service.submit(source), timeout=60.0)
        assert job.state == "done"
        assert job.result.digest == expected


class TestAdmission:
    def test_backpressure_rejects_when_queue_full(self):
        backend = GateBackend()
        service = CompileService(backend, max_queued=1, max_running=1)
        try:
            running = service.submit(_module("bp_run"), tenant="a")
            _wait_for(lambda: service.job(running).state == "running")
            service.submit(_module("bp_q1"), tenant="a")
            with pytest.raises(AdmissionError) as excinfo:
                service.submit(_module("bp_q2"), tenant="a")
            assert excinfo.value.reason == "backpressure"
            assert service.stats["rejected"] == 1
        finally:
            backend.gate.set()
            service.close()

    def test_per_tenant_inflight_cap(self):
        backend = GateBackend()
        service = CompileService(
            backend, max_queued=8, max_running=1, per_tenant_inflight=1
        )
        try:
            service.submit(_module("cap_a1"), tenant="alice")
            with pytest.raises(AdmissionError) as excinfo:
                service.submit(_module("cap_a2"), tenant="alice")
            assert excinfo.value.reason == "tenant-cap"
            # other tenants are unaffected by alice's cap
            service.submit(_module("cap_b1"), tenant="bob")
        finally:
            backend.gate.set()
            service.close()

    def test_submit_after_close_is_rejected(self):
        service = CompileService(SerialBackend())
        service.close()
        with pytest.raises(AdmissionError) as excinfo:
            service.submit(_module("late"))
        assert excinfo.value.reason == "closed"


class TestLifecycle:
    def test_cancel_queued_job(self):
        backend = GateBackend()
        service = CompileService(backend, max_running=1)
        try:
            running = service.submit(_module("cq_run"))
            _wait_for(lambda: service.job(running).state == "running")
            queued = service.submit(_module("cq_wait"))
            assert service.cancel(queued) is True
            assert service.job(queued).state == "cancelled"
        finally:
            backend.gate.set()
            service.close()
        assert service.wait(running).state == "done"

    def test_cancel_running_job(self):
        backend = GateBackend()
        service = CompileService(backend, max_running=1)
        try:
            job_id = service.submit(_module("cr_run"))
            _wait_for(lambda: service.job(job_id).state == "running")
            assert service.cancel(job_id) is True
            backend.gate.set()
            job = service.wait(job_id, timeout=30.0)
            assert job.state == "cancelled"
        finally:
            backend.gate.set()
            service.close()

    def test_cancel_terminal_job_is_noop(self):
        with CompileService(SerialBackend()) as service:
            job_id = service.submit(_module("ct_done"))
            service.wait(job_id, timeout=60.0)
            assert service.cancel(job_id) is False

    def test_compile_error_fails_only_that_job(self):
        bad = (
            "module broken\nsection s (cells 0..0)\n"
            "function main() begin undeclared := 1; end\nend\nend\n"
        )
        with CompileService(SerialBackend(), max_running=2) as service:
            bad_id = service.submit(bad, tenant="alice")
            good_id = service.submit(_module("still_fine"), tenant="bob")
            bad_job = service.wait(bad_id, timeout=60.0)
            good_job = service.wait(good_id, timeout=60.0)
        assert bad_job.state == "failed"
        assert "undeclared" in bad_job.error
        assert good_job.state == "done"

    def test_close_drains_queued_work(self):
        service = CompileService(SerialBackend(), max_running=2)
        ids = [
            service.submit(_module(f"drain_{i}"), tenant=f"t{i % 2}")
            for i in range(4)
        ]
        service.close(drain=True)
        for job_id in ids:
            assert service.job(job_id).state == "done"

    def test_borrowed_backend_is_never_shut_down(self):
        backend = ShutdownProbe()
        service = CompileService(backend)
        service.wait(service.submit(_module("borrowed")), timeout=60.0)
        service.close()
        assert service.owns_backend is False
        assert backend.shutdowns == 0

    def test_events_trace_job_lifecycle(self):
        with CompileService(SerialBackend()) as service:
            job_id = service.submit(_module("ev_mod"))
            service.wait(job_id, timeout=60.0)
            events, terminal = service.events_since(job_id, 0, timeout=0)
        assert terminal is True
        names = [event["event"] for event in events]
        assert names[0] == "queued"
        assert names[-1] == "done"
        assert "started" in names and "function_done" in names

    def test_gantt_attributes_slots_to_jobs(self):
        with CompileService(SerialBackend(), max_running=2) as service:
            ja = service.submit(
                synthetic_program("tiny", 3, module_name="g_a"),
                tenant="alice",
            )
            jb = service.submit(
                synthetic_program("tiny", 3, module_name="g_b"),
                tenant="bob",
            )
            service.wait(ja, timeout=60.0)
            service.wait(jb, timeout=60.0)
            chart = service.gantt()
            utilization = service.pool_utilization()
        assert "slot 0" in chart
        assert ja in chart and jb in chart
        assert 0.0 <= utilization <= 1.0
