"""Global dead-code elimination driven by liveness.

An instruction is dead if it has no side effects and its destination is
not live immediately after it.  Runs to a fixpoint (removing one layer of
dead code exposes the next).
"""

from __future__ import annotations

from ..ir.cfg import FunctionIR
from .liveness import iterate_live_out, live_variables


def eliminate_dead_code(function: FunctionIR) -> int:
    """Remove dead instructions; returns total removed across all rounds."""
    total = 0
    while True:
        removed = _one_round(function)
        total += removed
        if removed == 0:
            return total


def _one_round(function: FunctionIR) -> int:
    facts = live_variables(function)
    removed = 0
    for block in function.blocks:
        keep = []
        for instr, live_after in iterate_live_out(block, facts.exit[block.name]):
            is_dead = (
                instr.dest is not None
                and instr.dest not in live_after
                and not instr.has_side_effects()
                and not instr.is_terminator()
            )
            if is_dead:
                removed += 1
            else:
                keep.append(instr)
        keep.reverse()
        block.instructions = keep
    return removed
