"""Shared experiment runner for the figure benchmarks.

Compiling a synthetic program is deterministic, so its work profile is
computed once per (size class, function count) and cached for the whole
test session.  Timing measurements then come from the cluster simulator,
which is itself deterministic — every benchmark run regenerates exactly
the same figures.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Optional

from ..cluster.cluster import ClusterSimulation, TimingReport
from ..cluster.costs import CostModel
from ..driver.results import WorkProfile
from ..driver.sequential import SequentialCompiler
from ..parallel.schedule import (
    Assignment,
    CostEstimator,
    fcfs_assignment,
    grouped_lpt_assignment,
    lines_and_nesting_cost,
    one_function_per_processor,
)
from ..workloads.synthetic import synthetic_program
from ..workloads.user_program import user_program


@functools.lru_cache(maxsize=None)
def profile_for(size_class: str, n_functions: int) -> WorkProfile:
    """Real compilation of S_n; cached per session."""
    source = synthetic_program(size_class, n_functions)
    result = SequentialCompiler().compile(source)
    return result.profile


@functools.lru_cache(maxsize=None)
def user_program_profile() -> WorkProfile:
    result = SequentialCompiler().compile(user_program())
    return result.profile


@dataclass
class MeasuredPair:
    """Sequential and parallel timings for one workload configuration."""

    size_class: str
    n_functions: int
    sequential: TimingReport
    parallel: TimingReport
    workers: int

    @property
    def speedup(self) -> float:
        return self.sequential.elapsed / self.parallel.elapsed


def measure_pair(
    size_class: str,
    n_functions: int,
    costs: Optional[CostModel] = None,
    processors: Optional[int] = None,
) -> MeasuredPair:
    """Measure S_n sequentially and in parallel.

    With ``processors`` unset, the paper's default applies: one
    workstation per function.
    """
    profile = profile_for(size_class, n_functions)
    sim = ClusterSimulation(costs)
    sequential = sim.run_sequential(profile)
    if processors is None:
        assignment = one_function_per_processor(profile.functions)
    else:
        assignment = fcfs_assignment(profile.functions, processors)
    parallel = sim.run_parallel(profile, assignment)
    workers = min(len(profile.functions), assignment.processors)
    return MeasuredPair(
        size_class=size_class,
        n_functions=n_functions,
        sequential=sequential,
        parallel=parallel,
        workers=workers,
    )


def measure_user_program(
    processors: int,
    costs: Optional[CostModel] = None,
    strategy: str = "grouped",
    estimator: CostEstimator = lines_and_nesting_cost,
) -> MeasuredPair:
    """The §4.3 experiment: the user program on p processors."""
    profile = user_program_profile()
    sim = ClusterSimulation(costs)
    sequential = sim.run_sequential(profile)
    if strategy == "grouped":
        assignment = grouped_lpt_assignment(
            profile.functions, processors, estimator
        )
    elif strategy == "fcfs":
        assignment = fcfs_assignment(profile.functions, processors, estimator)
    elif strategy == "one-per-processor":
        assignment = one_function_per_processor(profile.functions)
    else:
        raise ValueError(f"unknown strategy {strategy!r}")
    parallel = sim.run_parallel(profile, assignment)
    workers = min(len(profile.functions), assignment.processors)
    return MeasuredPair(
        size_class="user",
        n_functions=len(profile.functions),
        sequential=sequential,
        parallel=parallel,
        workers=workers,
    )
