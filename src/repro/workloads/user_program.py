"""The representative user program (§4.3).

"A mechanical engineering application implemented on Warp.  The program
consists of three section programs with three functions each, i.e. a
total of nine functions ... The sequential compilation times of three
functions ranged between 19 and 22 minutes (about 300 lines of code
each), the compilation times for the other six functions are in the 2 to
6 minutes range (between 5 and 45 lines of code)."
"""

from __future__ import annotations

from typing import List

from .kernels import synthetic_function

#: (function name, lines) per section: one ~300-line solver plus two
#: small helpers (5-45 lines), mirroring the paper's mix.
_SECTION_SHAPES = [
    [("solve_mesh", 300), ("relax_edge", 42), ("clamp_node", 45)],
    [("integrate_loads", 295), ("apply_bc", 40), ("scale_forces", 44)],
    [("assemble_stiffness", 305), ("renumber", 41), ("residual", 43)],
]


def user_program(module_name: str = "mech_eng") -> str:
    """Source text of the nine-function mechanical-engineering module."""
    sections: List[str] = []
    first_cell = 0
    for index, shape in enumerate(_SECTION_SHAPES):
        cells = f"cells {first_cell}..{first_cell + 2}"
        first_cell += 3
        functions = "\n".join(
            synthetic_function(name, lines) for name, lines in shape
        )
        sections.append(
            f"section stage{index + 1} ({cells})\n{functions}\nend"
        )
    body = "\n".join(sections)
    return f"module {module_name}\n{body}\nend\n"


def user_program_function_count() -> int:
    return sum(len(shape) for shape in _SECTION_SHAPES)
