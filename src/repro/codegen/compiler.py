"""Per-function code generation: the work a *function master* performs.

``compile_function`` is compiler phases 2+3 for one function: local
optimization, register allocation, instruction selection, software
pipelining of eligible loops, and list scheduling of everything else.  It
is deliberately self-contained — it needs the function's IR and the cell
model, nothing else — because this is the unit the parallel compiler
ships to another workstation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from ..asmlink.objformat import (
    Bundle,
    CodegenInfo,
    MachineOp,
    ObjectFunction,
    ScheduledBlock,
)
from ..ir.cfg import FunctionIR
from ..ir.instructions import Opcode
from ..ir.loops import Loop, find_loops, is_pipelinable
from ..ir.values import Const, VReg
from ..machine.resources import FUClass, PhysReg
from ..machine.warp_cell import WarpCellModel
from ..opt.dependence import build_dependence_graph, find_induction_register
from ..opt.pass_manager import PassManager
from ..opt.unroll import unroll_constant_loops
from .modulo import (
    PipelineFailure,
    PipelinedLoop,
    emit_pipelined_loop,
    find_modulo_schedule,
    machine_schedule_edges,
)
from .regalloc import allocate_registers
from .schedule import schedule_block
from .select import SelectedBlock, select_function

#: How many integer registers are held back from the allocator for the
#: pipeliner's trip counter and loop countdown.
RESERVED_INT_REGS = 2


def compile_function(
    function: FunctionIR,
    cell: WarpCellModel,
    opt_level: int = 2,
    unroll_budget: int = 0,
    ii_budget: int = 0,
) -> ObjectFunction:
    """Optimize, allocate, pipeline, and schedule one function.

    ``unroll_budget``/``ii_budget`` are the variant-search knobs: a
    positive unroll budget fully unrolls constant-trip loops up to that
    trip count before the optimization pipeline, and a positive II
    budget caps the modulo scheduler's initiation-interval search (an II
    budget of 1 disables pipelining outright, since the feasible floor
    is 2).  Both default to 0 — the standard pipeline, bit-identical to
    what every compile before the search layer produced.
    """
    info = CodegenInfo()

    if unroll_budget > 0:
        # Before the pass pipeline: the unroller matches the exact CFG
        # shape lowering emits, which the optimizer may rewrite.
        unroll_constant_loops(function, max_trip=unroll_budget)

    pass_manager = PassManager(opt_level=opt_level)
    pass_stats = pass_manager.run(function)
    info.work_units += pass_stats.work_units

    alloc_cell = replace_int_registers(cell, cell.int_registers - RESERVED_INT_REGS)
    allocation = allocate_registers(function, alloc_cell)
    info.work_units += allocation.work_units
    info.spill_slots = allocation.spill_slots

    selected = select_function(function, allocation, cell)

    pipelined: Dict[str, PipelinedLoop] = {}
    if opt_level >= 2:
        pipelined = _pipeline_loops(
            function, selected, allocation, cell, info, ii_budget
        )

    blocks = _schedule_and_splice(function, selected, pipelined, info)

    return_bank = function.return_type
    return ObjectFunction(
        name=function.name,
        section_name=function.section_name,
        blocks=blocks,
        param_regs=[allocation.reg_for(r) for r in function.param_regs],
        return_bank=return_bank,
        frame_words=function.frame_words(),
        info=info,
    )


def replace_int_registers(cell: WarpCellModel, count: int) -> WarpCellModel:
    """A copy of ``cell`` with a different integer-bank size."""
    return WarpCellModel(
        int_registers=count,
        float_registers=cell.float_registers,
        data_memory_words=cell.data_memory_words,
        queue_capacity=cell.queue_capacity,
        specs=cell.specs,
    )


# ---------------------------------------------------------------------------
# Pipelining orchestration
# ---------------------------------------------------------------------------


def _pipeline_loops(
    function: FunctionIR,
    selected: List[SelectedBlock],
    allocation,
    cell: WarpCellModel,
    info: CodegenInfo,
    ii_budget: int = 0,
) -> Dict[str, PipelinedLoop]:
    """Try to pipeline each eligible loop; returns {header label: loop}."""
    by_label = {block.label: block for block in selected}
    results: Dict[str, PipelinedLoop] = {}
    nest = find_loops(function)
    for loop in nest.innermost_loops():
        if not is_pipelinable(function, loop):
            continue
        result = _pipeline_one(
            function, loop, by_label, allocation, cell, info, ii_budget
        )
        if result is not None:
            results[loop.header] = result
    return results


def _pipeline_one(
    function: FunctionIR,
    loop: Loop,
    by_label: Dict[str, SelectedBlock],
    allocation,
    cell: WarpCellModel,
    info: CodegenInfo,
    ii_budget: int = 0,
) -> Optional[PipelinedLoop]:
    header_ir = function.block_named(loop.header)
    # The pipelined path bypasses the header entirely, so the header must
    # contain nothing but the trip test.
    if len(header_ir.body) != 1:
        return None
    induction_info = find_induction_register(function, loop)
    if induction_info is None:
        return None
    var_vreg, step = induction_info
    compare = header_ir.body[0]
    bound_value = compare.operands[1]
    if isinstance(bound_value, VReg):
        bound_operand = allocation.reg_for(bound_value)
    elif isinstance(bound_value, Const):
        bound_operand = bound_value.value
    else:
        return None

    body_label = next(iter(loop.blocks - {loop.header}))
    body_block = by_label[body_label]
    ops = body_block.ops[:-1]  # drop the back-edge jump
    if not ops:
        return None

    ir_graph = build_dependence_graph(function, loop)
    if ir_graph is None:
        return None
    edges = machine_schedule_edges(ops, ir_graph)

    # Pipelining must beat the list-scheduled body to be worth the guard.
    baseline = schedule_block(body_block)
    info.work_units += baseline.work_units
    max_ii = baseline.block.cycle_count - 1
    if ii_budget > 0:
        # Variant-search knob: cap the II search.  A budget below the
        # feasible floor (2) leaves the loop list-scheduled — sometimes
        # the measured win for short-trip loops, where prologue/epilogue
        # overhead outweighs the steady-state gain.
        max_ii = min(max_ii, ii_budget)

    labels = _pipeline_labels(loop.header, header_ir)
    induction = (allocation.reg_for(var_vreg), bound_operand, step)
    scratch = _scratch_registers(cell)

    floor = 2
    while floor <= max_ii:
        schedule = _search_schedule(ops, edges, floor, max_ii)
        if schedule is None:
            return None
        info.work_units += schedule.work_units
        try:
            result = emit_pipelined_loop(
                ops, schedule, labels, induction, scratch, cell
            )
        except PipelineFailure:
            # Kernel overhead (countdown/branch) did not fit; a larger II
            # has more slack, so search again above this one.
            floor = schedule.ii + 1
            continue
        info.pipelined_loops += 1
        info.initiation_intervals.append(result.ii)
        return result
    return None


def _search_schedule(ops, edges, floor, max_ii):
    from .modulo import ModuloSchedule, resource_mii, try_modulo_schedule

    work = 0
    for ii in range(max(floor, resource_mii(ops), 2), max_ii + 1):
        attempt = try_modulo_schedule(ops, edges, ii)
        if attempt is None:
            work += len(ops) * ii
            continue
        times, attempt_work = attempt
        stages = max(t // ii for t in times) + 1 if times else 1
        return ModuloSchedule(
            ii=ii, times=times, stages=stages, work_units=work + attempt_work
        )
    return None


def _pipeline_labels(header: str, header_ir) -> Dict[str, str]:
    term = header_ir.terminator
    # BR labels: (taken -> body, not taken -> exit) per lowering.
    _body_label, exit_label = term.labels
    return {
        "guard": f"{header}.pl.guard",
        "prologue": f"{header}.pl.prologue",
        "kernel": f"{header}.pl.kernel",
        "epilogue": f"{header}.pl.epilogue",
        "fallback": header,
        "exit": exit_label,
    }


def _scratch_registers(cell: WarpCellModel) -> Tuple[PhysReg, PhysReg]:
    return (
        PhysReg("i", cell.int_registers - 2),
        PhysReg("i", cell.int_registers - 1),
    )


# ---------------------------------------------------------------------------
# Final layout
# ---------------------------------------------------------------------------


def _schedule_and_splice(
    function: FunctionIR,
    selected: List[SelectedBlock],
    pipelined: Dict[str, PipelinedLoop],
    info: CodegenInfo,
) -> List[ScheduledBlock]:
    """List-schedule ordinary blocks and weave pipelined regions in."""
    # Map: header label -> name of its loop's body block (skipped preds).
    body_of_header: Dict[str, str] = {}
    nest = find_loops(function)
    for loop in nest.all_loops():
        if loop.header in pipelined:
            body_of_header[loop.header] = next(
                iter(loop.blocks - {loop.header})
            )

    redirect = {header: f"{header}.pl.guard" for header in pipelined}

    blocks: List[ScheduledBlock] = []
    for sel in selected:
        result = schedule_block(sel)
        info.work_units += result.work_units
        scheduled = result.block
        # Entry edges into a pipelined loop go through its guard; the
        # fallback back edge (from the loop's own body) stays.
        is_back_edge_source = sel.label in body_of_header.values()
        if redirect and not is_back_edge_source:
            _retarget(scheduled, redirect)

        header_here = sel.label in pipelined
        if header_here:
            blocks.append(pipelined[sel.label].guard)
        blocks.append(scheduled)
        for header, body_label in body_of_header.items():
            if sel.label == body_label:
                region = pipelined[header]
                # The epilogue's exit may itself be a pipelined header.
                _retarget(region.epilogue, redirect)
                if region.prologue is not None:
                    blocks.append(region.prologue)
                blocks.append(region.kernel)
                blocks.append(region.epilogue)

    total = sum(len(b.bundles) for b in blocks)
    info.schedule_cycles = total
    return blocks


def _retarget(block: ScheduledBlock, mapping: Dict[str, str]) -> None:
    """Rewrite branch labels in a scheduled block per ``mapping``."""
    for bundle in block.bundles:
        seq = bundle.ops.get(FUClass.SEQ)
        if seq is None or not seq.labels:
            continue
        new_labels = tuple(mapping.get(label, label) for label in seq.labels)
        if new_labels != seq.labels:
            bundle.ops[FUClass.SEQ] = MachineOp(
                op=seq.op,
                fu=seq.fu,
                latency=seq.latency,
                dest=seq.dest,
                operands=seq.operands,
                array_offset=seq.array_offset,
                array_name=seq.array_name,
                labels=new_labels,
                callee=seq.callee,
            )
