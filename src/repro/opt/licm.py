"""Loop-invariant code motion.

Pulls pure computations whose operands do not change inside a loop out to
the loop's preheader.  This is one of the "more sophisticated
optimization algorithms" the paper argues parallel compilation buys time
for (§5.1) — and it directly helps the software pipeliner, which only
sees the loop body that remains.

Correctness conditions in this non-SSA IR (checked conservatively):

- the instruction is pure and non-trapping (no DIV/MOD — hoisting may
  execute them on iterations-zero trips, and the cell traps on divide by
  zero);
- every operand is a constant or a register with no definition anywhere
  in the loop;
- the destination register is defined exactly once in the whole function
  and used only inside the loop (the compiler's expression temporaries
  all satisfy this);
- the loop has a unique preheader: a single outside predecessor ending in
  an unconditional jump to the header.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..ir.cfg import BasicBlock, FunctionIR
from ..ir.instructions import Instr, Opcode
from ..ir.loops import Loop, find_loops
from ..ir.values import Const, VReg

#: Pure AND non-trapping: safe to execute speculatively in the preheader.
_HOISTABLE = {
    Opcode.ADD,
    Opcode.SUB,
    Opcode.MUL,
    Opcode.NEG,
    Opcode.ABS,
    Opcode.MIN,
    Opcode.MAX,
    Opcode.NOT,
    Opcode.AND,
    Opcode.OR,
    Opcode.CEQ,
    Opcode.CNE,
    Opcode.CLT,
    Opcode.CLE,
    Opcode.CGT,
    Opcode.CGE,
    Opcode.MOV,
    Opcode.LI,
    Opcode.ITOF,
    Opcode.FTOI,
}


def hoist_loop_invariants(function: FunctionIR) -> int:
    """Hoist invariant computations out of every loop; returns count."""
    total = 0
    # Re-detect loops after each changed loop: hoisting into an outer
    # loop's body can expose more motion for the outer loop.
    for _ in range(10):
        moved = _one_round(function)
        if moved == 0:
            break
        total += moved
    return total


def _one_round(function: FunctionIR) -> int:
    nest = find_loops(function)
    defs_count = _definition_counts(function)
    uses_outside: Dict[VReg, Set[str]] = _use_blocks(function)
    moved = 0
    # Innermost first: their invariants may bubble outward next round.
    loops = sorted(nest.all_loops(), key=lambda l: -l.depth)
    for loop in loops:
        preheader = _preheader_of(function, loop)
        if preheader is None:
            continue
        moved += _hoist_from_loop(
            function, loop, preheader, defs_count, uses_outside
        )
    return moved


def _definition_counts(function: FunctionIR) -> Dict[VReg, int]:
    counts: Dict[VReg, int] = {}
    for instr in function.all_instructions():
        if instr.dest is not None:
            counts[instr.dest] = counts.get(instr.dest, 0) + 1
    return counts


def _use_blocks(function: FunctionIR) -> Dict[VReg, Set[str]]:
    uses: Dict[VReg, Set[str]] = {}
    for block in function.blocks:
        for instr in block.instructions:
            for reg in instr.uses():
                uses.setdefault(reg, set()).add(block.name)
    return uses


def _preheader_of(function: FunctionIR, loop: Loop) -> Optional[BasicBlock]:
    preds = function.predecessors()[loop.header]
    outside = [p for p in preds if p not in loop.blocks]
    if len(outside) != 1:
        return None
    preheader = function.block_named(outside[0])
    term = preheader.terminator
    if term is None or term.op is not Opcode.JMP:
        return None
    return preheader


def _hoist_from_loop(
    function: FunctionIR,
    loop: Loop,
    preheader: BasicBlock,
    defs_count: Dict[VReg, int],
    uses_outside: Dict[VReg, Set[str]],
) -> int:
    loop_blocks = [function.block_named(name) for name in sorted(loop.blocks)]
    defined_in_loop: Set[VReg] = set()
    for block in loop_blocks:
        for instr in block.instructions:
            if instr.dest is not None:
                defined_in_loop.add(instr.dest)

    hoisted: Set[VReg] = set()
    moved = 0
    changed = True
    while changed:
        changed = False
        for block in loop_blocks:
            for index, instr in enumerate(block.instructions):
                if not _can_hoist(
                    instr, loop, defined_in_loop, hoisted, defs_count,
                    uses_outside,
                ):
                    continue
                del block.instructions[index]
                preheader.instructions.insert(
                    len(preheader.instructions) - 1, instr
                )
                hoisted.add(instr.dest)
                defined_in_loop.discard(instr.dest)
                moved += 1
                changed = True
                break  # indices shifted; rescan this block
    return moved


def _can_hoist(
    instr: Instr,
    loop: Loop,
    defined_in_loop: Set[VReg],
    hoisted: Set[VReg],
    defs_count: Dict[VReg, int],
    uses_outside: Dict[VReg, Set[str]],
) -> bool:
    if instr.op not in _HOISTABLE or instr.dest is None:
        return False
    if defs_count.get(instr.dest, 0) != 1:
        return False
    # All uses must stay within the loop (the hoisted def still
    # dominates them via the preheader).
    use_blocks = uses_outside.get(instr.dest, set())
    if any(name not in loop.blocks for name in use_blocks):
        return False
    for operand in instr.operands:
        if isinstance(operand, Const):
            continue
        if operand in hoisted:
            continue
        if operand in defined_in_loop:
            return False
    return True
