#!/usr/bin/env python
"""CI smoke test for the distributed compile fabric, end to end.

Starts an in-process :class:`FabricHub`, leases it two real ``warpcc
worker`` subprocesses, and compiles a batch of modules through the
remote fabric.  Every digest is checked against a direct in-process
sequential compile — distribution changes *where* work runs, never
*what* it produces.  A second pass SIGKILLs one worker mid-compile and
requires the batch to finish anyway, with the same digests, proving the
lease/re-queue path against a real process death (not a simulated one).

Exits non-zero (with a diagnostic) on any mismatch, lost task, or
timeout.  Usage::

    PYTHONPATH=src python scripts/fabric_smoke.py [--modules N]
"""

import argparse
import os
import pathlib
import signal
import subprocess
import sys
import threading
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.driver.master import ParallelCompiler  # noqa: E402
from repro.driver.sequential import SequentialCompiler  # noqa: E402
from repro.fabric import FabricHub, RemoteBackend  # noqa: E402
from repro.workloads.synthetic import synthetic_program  # noqa: E402


def start_worker(address: str, node_id: str) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "worker",
            "--connect", address, "--serial", "--node-id", node_id,
        ],
        cwd=REPO,
        env={**os.environ, "PYTHONPATH": str(REPO / "src")},
        stdout=subprocess.DEVNULL,
        stderr=subprocess.STDOUT,
    )


def check(label: str, got: str, want: str) -> None:
    if got != want:
        print(f"FAIL {label}: digest {got} != expected {want}")
        sys.exit(1)
    print(f"  ok {label}: {got[:16]}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--modules", type=int, default=4)
    parser.add_argument("--timeout", type=float, default=300.0)
    args = parser.parse_args()

    modules = [
        (f"smoke_{i}", synthetic_program(
            "small" if i % 2 else "tiny", 2 + i, module_name=f"smoke_{i}"
        ))
        for i in range(args.modules)
    ]
    expected = {
        name: SequentialCompiler().compile(source).digest
        for name, source in modules
    }

    with FabricHub(lease_ttl=4.0, heartbeat_interval=1.0) as hub:
        workers = [
            start_worker(hub.address, f"smoke-node-{i}") for i in range(2)
        ]
        try:
            if not hub.wait_for_nodes(2, timeout=60.0):
                print("FAIL: workers never registered")
                return 1
            print(f"fabric up: nodes {hub.node_ids()} on {hub.address}")
            backend = RemoteBackend(hub)

            print("pass 1: healthy 2-node fleet")
            for name, source in modules:
                result = ParallelCompiler(backend=backend).compile(source)
                check(name, result.digest, expected[name])
            if hub.stats.degraded_waves:
                print("FAIL: healthy pass ran degraded")
                return 1

            print("pass 2: SIGKILL one worker mid-compile")
            victim = workers[0]
            killer = threading.Timer(0.15, victim.send_signal, [signal.SIGKILL])
            killer.start()
            deadline = time.monotonic() + args.timeout
            for name, source in modules:
                result = ParallelCompiler(backend=backend).compile(source)
                check(f"{name}@kill", result.digest, expected[name])
                if time.monotonic() > deadline:
                    print("FAIL: timed out")
                    return 1
            killer.join()
            if victim.poll() is None:
                print("FAIL: victim survived SIGKILL?")
                return 1
            stats = hub.stats
            print(
                f"hub stats: lost={stats.nodes_lost} "
                f"requeued={stats.tasks_requeued} "
                f"deduped={stats.results_deduped} "
                f"local-fallback={stats.tasks_local_fallback}"
            )
            if stats.nodes_lost < 1:
                print("FAIL: the killed worker was never declared lost")
                return 1
        finally:
            for worker in workers:
                if worker.poll() is None:
                    worker.terminate()
            for worker in workers:
                try:
                    worker.wait(timeout=10.0)
                except subprocess.TimeoutExpired:
                    worker.kill()

    print("fabric smoke: all digests identical across fleet shapes")
    return 0


if __name__ == "__main__":
    sys.exit(main())
