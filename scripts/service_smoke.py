#!/usr/bin/env python
"""CI smoke test for the compile service's full network stack.

Starts ``warpcc serve`` as a real subprocess, submits three modules
concurrently from two tenants over the JSON-lines socket, and checks
every digest against a direct in-process compile of the same source —
the service's whole value proposition is that multiplexing many tenants
over one shared pool changes *when* work runs, never *what* it
produces.

Exits non-zero (with a diagnostic) on any mismatch, failed job, or
timeout.  Usage::

    PYTHONPATH=src python scripts/service_smoke.py [--workers N]
"""

import argparse
import pathlib
import re
import subprocess
import sys
import threading

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.driver.sequential import SequentialCompiler  # noqa: E402
from repro.service import ServiceClient  # noqa: E402
from repro.workloads.synthetic import synthetic_program  # noqa: E402

BANNER = re.compile(r"warpcc service on (\S+:\d+)")

MODULES = [
    ("alice", "smoke_a", synthetic_program("tiny", 3, module_name="smoke_a")),
    ("bob", "smoke_b", synthetic_program("small", 2, module_name="smoke_b")),
    ("alice", "smoke_c", synthetic_program("tiny", 4, module_name="smoke_c")),
]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--timeout", type=float, default=120.0)
    args = parser.parse_args()

    expected = {
        name: SequentialCompiler().compile(source).digest
        for _, name, source in MODULES
    }

    server = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--workers", str(args.workers), "--no-cache",
        ],
        cwd=REPO,
        env={**__import__("os").environ, "PYTHONPATH": str(REPO / "src")},
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        banner = server.stdout.readline()
        match = BANNER.search(banner)
        if not match:
            print(f"no service banner, got: {banner!r}", file=sys.stderr)
            return 1
        address = match.group(1)
        print(f"service up at {address}")

        results, errors = {}, []

        def submit(tenant, name, source):
            try:
                job = ServiceClient(address, timeout=args.timeout).submit_and_wait(
                    source,
                    tenant=tenant,
                    filename=f"{name}.w2",
                    timeout=args.timeout,
                )
                results[name] = job
            except Exception as error:  # noqa: BLE001 - smoke harness
                errors.append(f"{name}: {error!r}")

        threads = [
            threading.Thread(target=submit, args=module)
            for module in MODULES
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=args.timeout)

        if errors:
            print("submission errors:", *errors, sep="\n  ", file=sys.stderr)
            return 1
        failures = 0
        for _, name, _ in MODULES:
            job = results.get(name)
            if job is None:
                print(f"{name}: no result", file=sys.stderr)
                failures += 1
            elif job["state"] != "done":
                print(f"{name}: state {job['state']}: {job.get('error')}",
                      file=sys.stderr)
                failures += 1
            elif job["digest"] != expected[name]:
                print(f"{name}: DIGEST MISMATCH vs direct compile",
                      file=sys.stderr)
                failures += 1
            else:
                print(f"{name}: done, digest identical "
                      f"({job['tasks_done']} task(s), "
                      f"tenant {job['tenant']})")

        overview = ServiceClient(address).status(gantt=True)
        print(overview["gantt"])
        stats = overview["stats"]
        print(f"stats: {stats['done']} done / {stats['submitted']} "
              f"submitted, {stats['tasks_dispatched']} task(s) in "
              f"{stats['waves']} wave(s)")
        ServiceClient(address).shutdown(drain=True)
        server.wait(timeout=args.timeout)
        if failures:
            return 1
        print("service smoke: OK")
        return 0
    finally:
        if server.poll() is None:
            server.terminate()
            server.wait(timeout=10)


if __name__ == "__main__":
    sys.exit(main())
