"""Assembler, linker, I/O driver, download module, parallel assembler."""

import pytest

from repro.asmlink.assembler import AssemblyError, assemble_function, assembly_work_units
from repro.asmlink.download import build_download_module, module_digest, module_size_words
from repro.asmlink.iodriver import build_io_driver
from repro.asmlink.linker import LinkError, link_section
from repro.asmlink.objformat import (
    Bundle,
    MachineOp,
    ObjectFunction,
    ScheduledBlock,
)
from repro.asmlink.parallel_assembler import assemble_parallel
from repro.codegen.compiler import compile_function
from repro.ir.instructions import Opcode
from repro.machine.resources import FUClass
from repro.machine.warp_cell import WarpCellModel

from helpers import lower_ok, single_function_ir, wrap_function


def object_for(src: str) -> ObjectFunction:
    return compile_function(single_function_ir(src), WarpCellModel())


def section_objects(src: str):
    ir = lower_ok(src)
    cell = WarpCellModel()
    return {
        name: [compile_function(fn, cell) for fn in fns]
        for name, fns in ir.functions.items()
    }


SIMPLE = wrap_function(
    "function f(x: float) : float begin return x * 2.0; end"
)

TWO_FUNCTIONS = wrap_function(
    "function helper(x: float) : float begin return x + 1.0; end\n"
    "function main()\nvar v: float;\n"
    "begin receive(v); send(helper(v)); end"
)


class TestAssembler:
    def test_labels_resolved_to_bundle_indices(self):
        obj = object_for(
            wrap_function(
                "function f(n: int) : int\nbegin\n"
                "while n > 0 do n := n - 1; end;\nreturn n;\nend"
            )
        )
        assembled = assemble_function(obj)
        for bundle in assembled.bundles:
            for op in bundle.all_ops():
                for label in op.labels:
                    assert isinstance(label, int)
                    assert 0 <= label < len(assembled.bundles)

    def test_bundle_count_preserved(self):
        obj = object_for(SIMPLE)
        assembled = assemble_function(obj)
        assert len(assembled.bundles) == obj.bundle_count()

    def test_duplicate_label_rejected(self):
        obj = ObjectFunction(name="f", section_name="s")
        block = ScheduledBlock("dup", [Bundle()])
        block.bundles[0].add(
            MachineOp(op=Opcode.RET, fu=FUClass.SEQ, latency=1)
        )
        obj.blocks = [block, ScheduledBlock("dup", [Bundle()])]
        with pytest.raises(AssemblyError):
            assemble_function(obj)

    def test_unresolved_label_rejected(self):
        block = ScheduledBlock("entry", [Bundle()])
        block.bundles[0].add(
            MachineOp(
                op=Opcode.JMP, fu=FUClass.SEQ, latency=1, labels=("nowhere",)
            )
        )
        obj = ObjectFunction(name="f", section_name="s", blocks=[block])
        with pytest.raises(AssemblyError):
            assemble_function(obj)

    def test_work_units_positive(self):
        assert assembly_work_units(object_for(SIMPLE)) > 0


class TestLinker:
    def test_links_section_with_frames(self):
        objects = section_objects(
            wrap_function(
                "function f(x: float) : float\n"
                "var a: array[10] of float;\n"
                "begin a[0] := x; return a[0]; end\n"
                "function g(x: float) : float\n"
                "var b: array[6] of float;\n"
                "begin b[0] := x; return b[0]; end"
            )
        )
        program = link_section("s", objects["s"], WarpCellModel())
        assert program.frame_bases["f"] == 0
        assert program.frame_bases["g"] == 10
        assert program.data_words == 16

    def test_entry_is_main_when_present(self):
        objects = section_objects(TWO_FUNCTIONS)
        program = link_section("s", objects["s"], WarpCellModel())
        assert program.entry == "main"

    def test_entry_defaults_to_first_function(self):
        objects = section_objects(SIMPLE)
        program = link_section("s", objects["s"], WarpCellModel())
        assert program.entry == "f"

    def test_memory_limit_enforced(self):
        objects = section_objects(
            wrap_function(
                "function f()\nvar a: array[100] of float;\nbegin a[0] := 1.0; end"
            )
        )
        tiny_cell = WarpCellModel(data_memory_words=50)
        with pytest.raises(LinkError, match="data words"):
            link_section("s", objects["s"], tiny_cell)

    def test_wrong_section_rejected(self):
        objects = section_objects(SIMPLE)
        with pytest.raises(LinkError):
            link_section("other", objects["s"], WarpCellModel())

    def test_call_targets_checked(self):
        objects = section_objects(TWO_FUNCTIONS)
        # Drop the callee: the call from main cannot resolve.
        only_main = [o for o in objects["s"] if o.name == "main"]
        with pytest.raises(LinkError, match="cannot be resolved"):
            link_section("s", only_main, WarpCellModel())


class TestDownloadModule:
    def _module(self):
        objects = section_objects(TWO_FUNCTIONS)
        program = link_section("s", objects["s"], WarpCellModel())
        return build_download_module("m", {"s": (0, 2)}, {"s": program})

    def test_section_replicated_on_cells(self):
        module = self._module()
        assert sorted(module.cell_programs) == [0, 1, 2]
        assert module.cells_used == 3
        # All three cells share the same linked program object.
        assert (
            module.cell_programs[0]
            is module.cell_programs[1]
            is module.cell_programs[2]
        )

    def test_digest_deterministic(self):
        assert module_digest(self._module()) == module_digest(self._module())

    def test_size_words_positive(self):
        assert module_size_words(self._module()) > 0

    def test_io_driver_profiles(self):
        module = self._module()
        driver = build_io_driver(module.cell_programs)
        assert driver.input_cell == 0
        assert driver.output_cell == 2
        profile = driver.profiles[0]
        assert profile.static_receives >= 1
        assert profile.static_sends >= 1
        assert "cell 0" in driver.describe()


class TestParallelAssembler:
    def _objects(self, count: int):
        src = wrap_function(
            "\n".join(
                f"function f{i}(x: float) : float begin return x + {float(i)}; end"
                for i in range(count)
            )
        )
        return section_objects(src)["s"]

    def test_output_matches_sequential_assembly(self):
        objects = self._objects(4)
        parallel = assemble_parallel(objects, workers=3)
        for obj in objects:
            sequential = assemble_function(obj)
            assert (
                len(parallel.functions[obj.name].bundles)
                == len(sequential.bundles)
            )

    def test_work_split_across_workers(self):
        objects = self._objects(6)
        result = assemble_parallel(objects, workers=3)
        busy = [w for w in result.worker_work if w > 0]
        assert len(busy) == 3

    def test_critical_path_below_sequential(self):
        objects = self._objects(8)
        result = assemble_parallel(objects, workers=4)
        assert result.critical_path_work < result.sequential_work

    def test_single_worker_equals_sequential_work(self):
        objects = self._objects(3)
        result = assemble_parallel(objects, workers=1)
        assert result.critical_path_work == result.sequential_work

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            assemble_parallel([], workers=0)
