"""Predictive compilation: a learned cost model plus watch-mode speculation.

Two halves, both feeding the compile service:

- :mod:`repro.predict.observe` — a persistent per-fingerprint store of
  observed compile times (a fifth :class:`~repro.cache.store.PickleStore`
  tier) and :class:`CostModel`, an EWMA/percentile estimator that plugs
  into every seam that previously consumed the static §4.3
  ``ast_cost_hint`` (fair-share queue, supervision deadlines, LPT batch
  packing) and falls back to the static hint for unseen fingerprints.
- :mod:`repro.predict.watch` — watch-mode speculation: clients stream
  edited sources, the server fingerprints the module, diffs it against
  the previous snapshot, and precompiles the changed functions as
  ``batch``-priority jobs under a dedicated speculation tenant so the
  eventual interactive submit is mostly cache hits.

Neither half can change compile *results*: learned costs only reorder
dispatch (results are routed by (section, function) key), and
speculation only warms the ordinary content-addressed caches.
"""

from .observe import (
    CostModel,
    CostObservation,
    ObservationStore,
    task_fingerprint,
)
from .watch import SPECULATION_TENANT, SpeculationManager

__all__ = [
    "CostModel",
    "CostObservation",
    "ObservationStore",
    "SPECULATION_TENANT",
    "SpeculationManager",
    "task_fingerprint",
]
