"""Look inside phase 3: software pipelining of a loop kernel.

Compiles the same function at -O1 (list scheduling only) and -O2
(iterative modulo scheduling + pipelined loop emission), prints the
schedules, and runs both on the array simulator to show identical results
at very different cycle counts.

Run:  python examples/pipeline_explorer.py
"""

from repro import SequentialCompiler, run_module
from repro.machine import WarpArrayModel

SOURCE = """
module explorer
section s (cells 0..0)
  function main()
  var i, k: int; v, acc: float; a: array[32] of float;
  begin
    for k := 1 to 4 do
      receive(v);
      for i := 0 to 31 do
        a[i] := v * 0.5 + i;
      end;
      acc := 0.0;
      for i := 0 to 31 do
        acc := acc + a[i] * 1.5;
      end;
      send(acc);
    end;
  end
end
end
"""

INPUTS = [1.0, 2.0, 3.0, 4.0]


def compile_at(opt_level: int):
    compiler = SequentialCompiler(
        array=WarpArrayModel(cell_count=1), opt_level=opt_level
    )
    return compiler.compile(SOURCE)


def main() -> None:
    plain = compile_at(1)
    pipelined = compile_at(2)

    info = pipelined.objects[0].info
    print(f"-O2 pipelined {info.pipelined_loops} loop(s); "
          f"initiation intervals: {info.initiation_intervals}")
    print(f"-O1 code size: {plain.objects[0].bundle_count()} bundles")
    print(f"-O2 code size: {pipelined.objects[0].bundle_count()} bundles "
          "(prologue/kernel/epilogue + fallback)\n")

    # Show one pipelined kernel: II bundles, multiple iterations in flight.
    for block in pipelined.objects[0].blocks:
        if block.label.endswith(".pl.kernel"):
            print(f"kernel {block.label} (II = {len(block.bundles)}):")
            for index, bundle in enumerate(block.bundles):
                print(f"  cycle {index}: {bundle}")
            print()
            break

    plain_run = run_module(plain.download, list(INPUTS))
    pipe_run = run_module(pipelined.download, list(INPUTS))
    assert plain_run.outputs == pipe_run.outputs
    print("outputs (identical):", pipe_run.output_floats())
    print(f"-O1 cycles: {plain_run.cycles}")
    print(f"-O2 cycles: {pipe_run.cycles}  "
          f"({plain_run.cycles / pipe_run.cycles:.2f}x faster)")


if __name__ == "__main__":
    main()
