"""The paper's synthetic test programs S_n (§4.1).

"Our test data consisted of a set of Warp programs: S_1 containing one
f_tiny function, S_2 containing two f_tiny functions and so on" — one
program per (size class, function count) pair, each program one section
whose functions are identical copies of the size-class kernel, so the
parallel tasks are "of equal size, because this allows optimal processor
utilization".
"""

from __future__ import annotations

from typing import List

from .kernels import synthetic_function
from .sizes import FUNCTION_COUNTS, SIZE_CLASSES, lines_for


def synthetic_program(
    size_class: str, n_functions: int, module_name: str = None
) -> str:
    """Source text of S_n for the given size class."""
    if n_functions < 1:
        raise ValueError(f"need at least one function, got {n_functions}")
    lines = lines_for(size_class)
    if module_name is None:
        module_name = f"s{n_functions}_{size_class}"
    functions = [
        synthetic_function(f"f{index + 1}", lines)
        for index in range(n_functions)
    ]
    body = "\n".join(functions)
    return (
        f"module {module_name}\n"
        f"section sec1 (cells 0..0)\n"
        f"{body}\n"
        f"end\n"
        f"end\n"
    )


def all_synthetic_programs() -> List[tuple]:
    """Every (size class, n, source) combination the paper measured."""
    programs = []
    for size_class in SIZE_CLASSES:
        for n in FUNCTION_COUNTS:
            programs.append(
                (size_class, n, synthetic_program(size_class, n))
            )
    return programs
