"""Figure 15 (appendix): absolute overhead for f_medium and f_large."""

from figures_common import absolute_overhead_figure, write_figure
from repro.workloads.sizes import FUNCTION_COUNTS


def test_fig15_abs_overhead_medium_large(benchmark, results_dir):
    fig = benchmark(
        absolute_overhead_figure, ["medium", "large"], "Figure 15"
    )
    write_figure(results_dir, fig)

    medium = fig.series_named("total overhead f_medium")
    # Medium's overhead increases monotonically with the number of
    # functions; large's stays small throughout (it can dip where the
    # sequential compiler's own memory pressure offsets it).
    medium_values = [medium.points[n] for n in FUNCTION_COUNTS]
    assert medium_values == sorted(medium_values)
    large = fig.series_named("total overhead f_large")
    for n in FUNCTION_COUNTS:
        assert abs(large.points[n]) < medium.points[8] + 60.0
    # ...while remaining small relative to the compile times themselves
    # (f_large's total elapsed is ~30x its absolute overhead at n=8).
    from repro.metrics.experiments import measure_pair

    pair = measure_pair("large", 8)
    large = fig.series_named("total overhead f_large")
    assert large.points[8] < 0.3 * pair.parallel.elapsed
