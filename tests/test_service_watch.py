"""The watch protocol verbs over the wire: ``watch`` and ``watch-status``.

A thin layer over ``tests/test_predict.py`` (which exercises the
SpeculationManager in-process): here we prove the JSON-lines framing,
the client helpers, and the disabled/bad-request edges behave across a
real socket.
"""

import threading

import pytest

from repro.cache import ArtifactCache
from repro.parallel.local import SerialBackend
from repro.predict import CostModel, ObservationStore
from repro.service import (
    CompileService,
    ServiceClient,
    ServiceError,
    ServiceSocketServer,
)
from repro.workloads.synthetic import synthetic_program


@pytest.fixture
def endpoint(tmp_path):
    cache = ArtifactCache(str(tmp_path / "cache"))
    model = CostModel(ObservationStore(str(tmp_path / "obs")))
    service = CompileService(
        SerialBackend(),
        cache,
        max_running=2,
        cost_model=model,
        speculation=True,
    )
    server = ServiceSocketServer(service)
    thread = threading.Thread(
        target=server.serve_until_shutdown, daemon=True
    )
    thread.start()
    try:
        yield server.address, service
    finally:
        if thread.is_alive():
            server.request_shutdown(drain=False)
            thread.join(timeout=30.0)


@pytest.fixture
def plain_endpoint():
    service = CompileService(SerialBackend())
    server = ServiceSocketServer(service)
    thread = threading.Thread(
        target=server.serve_until_shutdown, daemon=True
    )
    thread.start()
    try:
        yield server.address, service
    finally:
        if thread.is_alive():
            server.request_shutdown(drain=False)
            thread.join(timeout=30.0)


class TestWatchProtocol:
    def test_watch_then_submit_is_cache_served(self, endpoint):
        address, _ = endpoint
        client = ServiceClient(address)
        source = synthetic_program("tiny", 3, module_name="wire_watch")
        outcome = client.watch_update(source, watch="editor")
        assert outcome["ok"] is True
        assert outcome["reason"] == "speculating"
        assert outcome["dirty"] == 3
        spec = client.wait(outcome["job"], timeout=60.0)
        assert spec["state"] == "done"
        job = client.submit_and_wait(
            source, priority="interactive", timeout=60.0
        )
        assert job["state"] == "done"
        assert job["cache_served"] == 3
        assert job["digest"] == spec["digest"]

    def test_repeat_update_is_clean(self, endpoint):
        address, _ = endpoint
        client = ServiceClient(address)
        source = synthetic_program("tiny", 2, module_name="wire_clean")
        first = client.watch_update(source, watch="editor")
        client.wait(first["job"], timeout=60.0)
        second = client.watch_update(source, watch="editor")
        assert second["reason"] == "clean"
        assert second["job"] is None

    def test_watch_status_reports_counters(self, endpoint):
        address, _ = endpoint
        client = ServiceClient(address)
        source = synthetic_program("tiny", 2, module_name="wire_stats")
        outcome = client.watch_update(source, watch="editor")
        client.wait(outcome["job"], timeout=60.0)
        status = client.watch_status()
        assert status["enabled"] is True
        assert status["stats"]["updates"] == 1
        assert status["stats"]["launched"] == 1
        assert status["stats"]["watches"] == 1

    def test_missing_source_is_bad_request(self, endpoint):
        address, _ = endpoint
        client = ServiceClient(address)
        with pytest.raises(ServiceError) as excinfo:
            client._request({"op": "watch"})
        assert excinfo.value.reason == "bad-request"

    def test_speculation_disabled_service(self, plain_endpoint):
        address, _ = plain_endpoint
        client = ServiceClient(address)
        outcome = client.watch_update(
            synthetic_program("tiny", 1, module_name="wire_off")
        )
        assert outcome["speculation"] is False
        assert outcome["reason"] == "speculation-disabled"
        status = client.watch_status()
        assert status["enabled"] is False
        assert status["stats"] == {}

    def test_service_stats_carry_speculation_and_model(self, endpoint):
        address, service = endpoint
        client = ServiceClient(address)
        source = synthetic_program("tiny", 2, module_name="wire_svc")
        outcome = client.watch_update(source, watch="editor")
        client.wait(outcome["job"], timeout=60.0)
        stats = service.service_stats()
        assert stats["speculation"]["launched"] == 1
        assert stats["cost_model"]["recorded"] == 2
