"""Local copy and constant propagation.

Within each basic block, tracks which registers currently hold a copy of
another register or a constant (from ``mov``/``li``) and rewrites later
uses to the original value.  Redefinition of either side of a copy
invalidates it.  This pass is what exposes constants to the folder and
shared subexpressions to CSE.
"""

from __future__ import annotations

from typing import Dict

from ..ir.cfg import FunctionIR
from ..ir.instructions import Instr, Opcode
from ..ir.values import Const, VReg, Value


def propagate_copies(function: FunctionIR) -> int:
    """Rewrite operands through local copies; returns number of changes."""
    changes = 0
    for block in function.blocks:
        changes += _propagate_block(block.instructions)
        changes += _remove_self_moves(block)
    return changes


def _remove_self_moves(block) -> int:
    """Delete ``mov x, x`` no-ops (left behind by propagation and CSE)."""
    before = len(block.instructions)
    block.instructions = [
        instr
        for instr in block.instructions
        if not (
            instr.op is Opcode.MOV
            and isinstance(instr.operands[0], VReg)
            and instr.operands[0] == instr.dest
        )
    ]
    return before - len(block.instructions)


def _propagate_block(instructions) -> int:
    #: register -> the value it currently equals (Const or VReg)
    copies: Dict[VReg, Value] = {}
    changes = 0
    for index, instr in enumerate(instructions):
        # Rewrite uses first (the instruction reads old values).
        if instr.operands:
            new_operands = tuple(
                copies.get(v, v) if isinstance(v, VReg) else v
                for v in instr.operands
            )
            if new_operands != instr.operands:
                instr = instr.with_operands(new_operands)
                instructions[index] = instr
                changes += 1
        # Then update the copy map for the definition.
        dest = instr.dest
        if dest is not None:
            _invalidate(copies, dest)
            if instr.op is Opcode.MOV:
                source = instr.operands[0]
                if source != dest:
                    copies[dest] = source
            elif instr.op is Opcode.LI:
                copies[dest] = instr.operands[0]
    return changes


def _invalidate(copies: Dict[VReg, Value], reg: VReg) -> None:
    """Remove facts about ``reg`` and facts that mention it as a source."""
    copies.pop(reg, None)
    stale = [dest for dest, value in copies.items() if value == reg]
    for dest in stale:
        del copies[dest]
