"""Parser unit tests."""

import pytest

from repro.lang import ast_nodes as ast
from repro.lang.diagnostics import DiagnosticSink
from repro.lang.parser import parse_text
from repro.lang.types import ArrayType, FLOAT, INT, VOID

from helpers import wrap_function


def parse(source: str):
    sink = DiagnosticSink()
    module = parse_text(source, sink)
    return module, sink


def parse_clean(source: str) -> ast.Module:
    module, sink = parse(source)
    assert not sink.has_errors, sink.render()
    return module


MINIMAL = """
module m
section s (cells 0..1)
  function f() begin end
end
end
"""


class TestStructure:
    def test_minimal_module(self):
        module = parse_clean(MINIMAL)
        assert module.name == "m"
        assert len(module.sections) == 1
        section = module.sections[0]
        assert section.name == "s"
        assert (section.first_cell, section.last_cell) == (0, 1)
        assert section.cell_count == 2
        assert [f.name for f in section.functions] == ["f"]

    def test_multiple_sections_and_functions(self):
        module = parse_clean(
            "module m\n"
            "section a (cells 0..0) function f() begin end "
            "function g() begin end end\n"
            "section b (cells 1..3) function h() begin end end\n"
            "end\n"
        )
        assert [s.name for s in module.sections] == ["a", "b"]
        assert module.function_count() == 3
        assert module.section_named("b").cell_count == 3

    def test_function_signature(self):
        module = parse_clean(
            wrap_function(
                "function f(x: float, n: int) : float begin return x; end"
            )
        )
        fn = module.sections[0].functions[0]
        assert [p.name for p in fn.params] == ["x", "n"]
        assert fn.params[0].type == FLOAT
        assert fn.params[1].type == INT
        assert fn.return_type == FLOAT

    def test_void_function(self):
        module = parse_clean(wrap_function("function f() begin end"))
        assert module.sections[0].functions[0].return_type == VOID

    def test_var_declarations(self):
        module = parse_clean(
            wrap_function(
                "function f()\n"
                "var a, b: int; c: array[10] of float;\n"
                "begin end"
            )
        )
        decls = module.sections[0].functions[0].locals
        assert [d.name for d in decls] == ["a", "b", "c"]
        assert decls[0].type == INT
        assert decls[2].type == ArrayType(FLOAT, 10)

    def test_line_count_matches_span(self):
        module = parse_clean(MINIMAL)
        fn = module.sections[0].functions[0]
        assert fn.line_count() == 1  # single-line function


class TestStatements:
    def _body(self, stmts: str):
        module = parse_clean(
            wrap_function(f"function f()\nvar i: int; x: float;\nbegin\n{stmts}\nend")
        )
        return module.sections[0].functions[0].body

    def test_assignment(self):
        body = self._body("i := 3;")
        assert isinstance(body[0], ast.AssignStmt)
        assert isinstance(body[0].target, ast.VarRef)
        assert isinstance(body[0].value, ast.IntLiteral)

    def test_array_assignment(self):
        module = parse_clean(
            wrap_function(
                "function f()\nvar a: array[4] of int;\nbegin a[2] := 1; end"
            )
        )
        stmt = module.sections[0].functions[0].body[0]
        assert isinstance(stmt.target, ast.IndexExpr)

    def test_if_then_else(self):
        body = self._body("if i < 3 then i := 1; else i := 2; end;")
        stmt = body[0]
        assert isinstance(stmt, ast.IfStmt)
        assert len(stmt.then_body) == 1
        assert len(stmt.else_body) == 1

    def test_if_without_else(self):
        stmt = self._body("if i = 0 then i := 1; end;")[0]
        assert stmt.else_body == []

    def test_for_loop_defaults(self):
        stmt = self._body("for i := 0 to 9 do i := i; end;")[0]
        assert isinstance(stmt, ast.ForStmt)
        assert stmt.var == "i"
        assert stmt.step is None

    def test_for_loop_with_step(self):
        stmt = self._body("for i := 10 to 0 by -2 do x := x; end;")[0]
        assert stmt.step is not None

    def test_while_loop(self):
        stmt = self._body("while i < 10 do i := i + 1; end;")[0]
        assert isinstance(stmt, ast.WhileStmt)
        assert len(stmt.body) == 1

    def test_return_with_and_without_value(self):
        assert self._body("return;")[0].value is None
        assert self._body("return 4;")[0].value is not None

    def test_send_receive(self):
        body = self._body("send(x); receive(x);")
        assert isinstance(body[0], ast.SendStmt)
        assert isinstance(body[1], ast.ReceiveStmt)

    def test_call_statement(self):
        module = parse_clean(
            wrap_function(
                "function g() begin end\n"
                "function f() begin g(); end"
            )
        )
        stmt = module.sections[0].functions[1].body[0]
        assert isinstance(stmt, ast.CallStmt)
        assert stmt.call.callee == "g"


class TestExpressions:
    def _expr(self, text: str) -> ast.Expr:
        module = parse_clean(
            wrap_function(
                f"function f()\nvar i, j: int; x: float; "
                f"a: array[8] of int;\nbegin i := {text}; end"
            )
        )
        return module.sections[0].functions[0].body[0].value

    def test_precedence_mul_over_add(self):
        expr = self._expr("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_left_associativity(self):
        expr = self._expr("1 - 2 - 3")
        assert expr.op == "-"
        assert expr.left.op == "-"

    def test_parentheses_override(self):
        expr = self._expr("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_comparison_below_and(self):
        expr = self._expr("i < 2 and j > 1")
        assert expr.op == "and"
        assert expr.left.op == "<"
        assert expr.right.op == ">"

    def test_or_lowest(self):
        expr = self._expr("i and j or j")
        assert expr.op == "or"
        assert expr.left.op == "and"

    def test_not_unary(self):
        expr = self._expr("not i")
        assert isinstance(expr, ast.UnaryExpr)
        assert expr.op == "not"

    def test_unary_minus_binds_tighter_than_mul(self):
        expr = self._expr("-i * j")
        assert expr.op == "*"
        assert isinstance(expr.left, ast.UnaryExpr)

    def test_indexing(self):
        expr = self._expr("a[i + 1]")
        assert isinstance(expr, ast.IndexExpr)
        assert expr.index.op == "+"

    def test_nested_call_args(self):
        module = parse_clean(
            wrap_function(
                "function g(n: int) : int begin return n; end\n"
                "function f()\nvar i: int;\nbegin i := g(g(i) + 1); end"
            )
        )
        expr = module.sections[0].functions[1].body[0].value
        assert isinstance(expr, ast.CallExpr)
        assert isinstance(expr.args[0].left, ast.CallExpr)


class TestParseErrors:
    def test_missing_semicolon_reports_error(self):
        _, sink = parse(wrap_function("function f()\nvar i: int;\nbegin i := 1 end"))
        assert sink.has_errors

    def test_recovers_and_reports_multiple_errors(self):
        _, sink = parse(
            wrap_function(
                "function f()\nvar i: int;\nbegin i := ; i = 2; end"
            )
        )
        assert sink.error_count >= 2

    def test_bad_section_header(self):
        _, sink = parse("module m\nsection s (cell 0..1)\nend\nend")
        assert sink.has_errors

    def test_trailing_garbage(self):
        _, sink = parse(MINIMAL + "\nextra")
        assert sink.has_errors

    def test_multidimensional_array_rejected(self):
        _, sink = parse(
            wrap_function(
                "function f()\nvar a: array[2] of array[2] of int;\nbegin end"
            )
        )
        assert sink.has_errors

    def test_error_mentions_position(self):
        _, sink = parse("module m\nsection s (cells 0..0)\nfunction 42() begin end\nend\nend")
        rendered = sink.render()
        assert "3:" in rendered
