"""Dynamic FCFS dispatch and heterogeneous machine speeds."""

import pytest

from repro.cluster.cluster import ClusterSimulation
from repro.parallel.schedule import fcfs_assignment, one_function_per_processor

from test_cluster import make_profile


class TestDynamicDispatch:
    def test_requires_assignment_or_processors(self):
        sim = ClusterSimulation()
        with pytest.raises(ValueError):
            sim.run_parallel(make_profile([100]))

    def test_all_functions_compiled(self):
        sim = ClusterSimulation()
        profile = make_profile([50000] * 7)
        report = sim.run_parallel(profile, processors=3)
        assert len(report.spans) == 7

    def test_dynamic_matches_static_for_equal_tasks(self):
        sim = ClusterSimulation()
        profile = make_profile([80000] * 6)
        static = sim.run_parallel(profile, fcfs_assignment(profile.functions, 3))
        dynamic = sim.run_parallel(profile, processors=3)
        assert dynamic.elapsed == pytest.approx(static.elapsed, rel=0.05)

    def test_dynamic_beats_static_on_mixed_sizes(self):
        """With unequal tasks, taking the next task when free beats any
        order-preserving static split of the same source order."""
        sim = ClusterSimulation()
        profile = make_profile([400000, 5000, 400000, 5000, 5000, 5000])
        # Static FCFS estimates with a deliberately bad (uniform) cost
        # estimator: both big functions land on one machine.
        static = sim.run_parallel(
            profile,
            fcfs_assignment(profile.functions, 2, estimator=lambda r: 1.0),
        )
        dynamic = sim.run_parallel(profile, processors=2)
        assert dynamic.elapsed < static.elapsed

    def test_no_machine_left_idle_while_tasks_pend(self):
        sim = ClusterSimulation()
        profile = make_profile([90000] * 8)
        report = sim.run_parallel(profile, processors=4)
        by_machine = {}
        for span in report.spans:
            by_machine.setdefault(span.machine, 0)
            by_machine[span.machine] += 1
        assert len(by_machine) == 4
        assert all(count == 2 for count in by_machine.values())


class TestFullNetworkScale:
    def test_forty_workstation_cluster(self):
        """§3.3's full network: 40 diskless SUNs, 40 function masters."""
        sim = ClusterSimulation()
        profile = make_profile([150000] * 40)
        report = sim.run_parallel(profile, processors=40)
        assert len(report.spans) == 40
        machines = {span.machine for span in report.spans}
        assert len(machines) == 40
        # Startup contention on the shared server is severe at 40-way,
        # but the run still beats 40 sequential compiles comfortably.
        sequential = sim.run_sequential(profile)
        assert report.elapsed < sequential.elapsed / 4


class TestMachineSpeeds:
    def test_speed_scales_wall_clock(self):
        sim = ClusterSimulation()
        profile = make_profile([500000])
        fast = sim.run_parallel(profile, processors=1, machine_speeds=[1.0])
        slow = sim.run_parallel(profile, processors=1, machine_speeds=[0.5])
        assert slow.elapsed > 1.5 * fast.elapsed

    def test_speed_count_must_match(self):
        sim = ClusterSimulation()
        profile = make_profile([100])
        with pytest.raises(ValueError, match="speed factors"):
            sim.run_parallel(profile, processors=2, machine_speeds=[1.0])

    def test_zero_speed_rejected(self):
        sim = ClusterSimulation()
        profile = make_profile([100])
        with pytest.raises(ValueError):
            sim.run_parallel(profile, processors=1, machine_speeds=[0.0])

    def test_dynamic_fcfs_self_balances_on_loaded_machines(self):
        """§3.3: FCFS 'works well in practice' — it routes work away from
        machines slowed by their owners, unlike a static round-robin."""
        sim = ClusterSimulation()
        profile = make_profile([120000] * 8)
        speeds = [1.0, 1.0, 1.0, 0.25]  # one machine busy with its owner
        static = sim.run_parallel(
            profile,
            fcfs_assignment(profile.functions, 4),
            machine_speeds=None,  # static ignores load entirely...
        )
        static_loaded = sim.run_parallel(
            profile,
            fcfs_assignment(profile.functions, 4),
            machine_speeds=speeds,
        )
        dynamic_loaded = sim.run_parallel(
            profile, processors=4, machine_speeds=speeds
        )
        # Static on a loaded network degrades badly; dynamic degrades less.
        assert static_loaded.elapsed > static.elapsed
        assert dynamic_loaded.elapsed < static_loaded.elapsed
