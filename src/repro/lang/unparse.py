"""AST-to-source rendering (the parser's inverse).

The delta-debugging reducer (:mod:`repro.fuzz.reduce`) shrinks failing
programs by editing the AST — dropping functions, deleting statements,
simplifying expressions — and every candidate must go back through the
*real* front end, because the oracle's pipelines all start from source
text.  Rendering is deliberately conservative: every compound expression
is fully parenthesized, so operator precedence can never change the tree
a candidate re-parses to.  ``parse(unparse(ast))`` is structurally
identical to ``ast`` up to spans.
"""

from __future__ import annotations

from typing import List, Optional

from . import ast_nodes as ast
from .types import ArrayType, FLOAT, INT, Type, VOID

_INDENT = "  "


def unparse_type(type_: Type) -> str:
    if type_ == INT:
        return "int"
    if type_ == FLOAT:
        return "float"
    if isinstance(type_, ArrayType):
        return f"array[{type_.length}] of {unparse_type(type_.element)}"
    raise ValueError(f"cannot render type {type_!r}")


def unparse_expr(expr: Optional[ast.Expr]) -> str:
    if expr is None:
        return ""
    if isinstance(expr, ast.IntLiteral):
        return str(expr.value)
    if isinstance(expr, ast.FloatLiteral):
        # repr() round-trips doubles exactly, but the lexer has no
        # exponent-free guarantee for e.g. 1e-07 — normalize those.
        text = repr(expr.value)
        if "e" in text or "E" in text:
            text = f"{expr.value:.17f}".rstrip("0")
            if text.endswith("."):
                text += "0"
        return text
    if isinstance(expr, ast.VarRef):
        return expr.name
    if isinstance(expr, ast.IndexExpr):
        return f"{unparse_expr(expr.base)}[{unparse_expr(expr.index)}]"
    if isinstance(expr, ast.UnaryExpr):
        if expr.op == "not":
            return f"(not {unparse_expr(expr.operand)})"
        return f"({expr.op}{unparse_expr(expr.operand)})"
    if isinstance(expr, ast.BinaryExpr):
        return (
            f"({unparse_expr(expr.left)} {expr.op} "
            f"{unparse_expr(expr.right)})"
        )
    if isinstance(expr, ast.CallExpr):
        args = ", ".join(unparse_expr(arg) for arg in expr.args)
        return f"{expr.callee}({args})"
    raise ValueError(f"cannot render expression {type(expr).__name__}")


def _unparse_stmt(stmt: ast.Stmt, indent: str, out: List[str]) -> None:
    if isinstance(stmt, ast.AssignStmt):
        out.append(
            f"{indent}{unparse_expr(stmt.target)} := "
            f"{unparse_expr(stmt.value)};"
        )
    elif isinstance(stmt, ast.IfStmt):
        out.append(f"{indent}if {unparse_expr(stmt.condition)} then")
        _unparse_body(stmt.then_body, indent + _INDENT, out)
        if stmt.else_body:
            out.append(f"{indent}else")
            _unparse_body(stmt.else_body, indent + _INDENT, out)
        out.append(f"{indent}end;")
    elif isinstance(stmt, ast.ForStmt):
        header = (
            f"{indent}for {stmt.var} := {unparse_expr(stmt.low)} "
            f"to {unparse_expr(stmt.high)}"
        )
        if stmt.step is not None:
            header += f" by {unparse_expr(stmt.step)}"
        out.append(header + " do")
        _unparse_body(stmt.body, indent + _INDENT, out)
        out.append(f"{indent}end;")
    elif isinstance(stmt, ast.WhileStmt):
        out.append(f"{indent}while {unparse_expr(stmt.condition)} do")
        _unparse_body(stmt.body, indent + _INDENT, out)
        out.append(f"{indent}end;")
    elif isinstance(stmt, ast.ReturnStmt):
        if stmt.value is None:
            out.append(f"{indent}return;")
        else:
            out.append(f"{indent}return {unparse_expr(stmt.value)};")
    elif isinstance(stmt, ast.SendStmt):
        out.append(f"{indent}send({unparse_expr(stmt.value)});")
    elif isinstance(stmt, ast.ReceiveStmt):
        out.append(f"{indent}receive({unparse_expr(stmt.target)});")
    elif isinstance(stmt, ast.CallStmt):
        out.append(f"{indent}{unparse_expr(stmt.call)};")
    else:
        raise ValueError(f"cannot render statement {type(stmt).__name__}")


def _unparse_body(stmts: List[ast.Stmt], indent: str, out: List[str]) -> None:
    for stmt in stmts:
        _unparse_stmt(stmt, indent, out)


def unparse_function(fn: ast.Function, indent: str = _INDENT) -> str:
    out: List[str] = []
    params = ", ".join(
        f"{param.name}: {unparse_type(param.type)}" for param in fn.params
    )
    header = f"{indent}function {fn.name}({params})"
    if fn.return_type != VOID:
        header += f" : {unparse_type(fn.return_type)}"
    out.append(header)
    if fn.locals:
        out.append(f"{indent}var")
        for decl in fn.locals:
            out.append(
                f"{indent}{_INDENT}{decl.name}: {unparse_type(decl.type)};"
            )
    out.append(f"{indent}begin")
    _unparse_body(fn.body, indent + _INDENT, out)
    out.append(f"{indent}end")
    return "\n".join(out)


def unparse_module(module: ast.Module) -> str:
    """Render a module back to parsable source text."""
    out: List[str] = [f"module {module.name}"]
    for section in module.sections:
        out.append(
            f"section {section.name} "
            f"(cells {section.first_cell}..{section.last_cell})"
        )
        for fn in section.functions:
            out.append(unparse_function(fn))
        out.append("end")
    out.append("end")
    return "\n".join(out) + "\n"
