"""Two-tier network artifact cache: read-through, write-behind, degradation."""

import pickle
import socket

import pytest

from repro.cache.store import ArtifactCache
from repro.driver.function_master import (
    FunctionTask,
    result_payload_digest,
    run_compile_task,
)
from repro.fabric import (
    CacheChaos,
    CacheServiceServer,
    NetworkCacheClient,
    TieredCache,
)
from repro.fabric.netcache import pack_blob_raw

SOURCE = """
module net_mod
section s (cells 0..0)
  function main()
  var v: float; k: int;
  begin
    for k := 1 to 3 do receive(v); send(v * 2.0); end;
  end
end
end
"""


def _artifact():
    task = FunctionTask(
        source_text=SOURCE,
        filename="net_mod.w2",
        section_name="s",
        function_name="main",
    )
    result = run_compile_task(task)[0]
    # Keys are opaque content hashes to the cache tier; any hex string of
    # the right shape exercises the same paths the real fingerprints do.
    return "f" * 64, result


@pytest.fixture
def server(tmp_path):
    with CacheServiceServer(tmp_path / "server") as srv:
        yield srv


@pytest.fixture
def client(server):
    c = NetworkCacheClient(server.address, timeout=5.0)
    yield c
    c.close()


class TestClientServer:
    def test_roundtrip(self, client):
        fp, result = _artifact()
        assert client.get(fp) is None
        assert client.remote_misses == 1
        assert client.put(fp, result)
        fetched = client.get(fp)
        assert fetched is not None
        assert fetched.payload_digest == result.payload_digest
        assert fetched.obj.digest_text() == result.obj.digest_text()
        assert client.remote_hits == 1

    def test_many_requests_share_one_connection(self, client):
        fp, result = _artifact()
        client.put(fp, result)
        for _ in range(5):
            assert client.get(fp) is not None
        assert client.remote_hits == 5
        assert client.remote_errors == 0

    def test_digest_mismatched_put_is_refused(self, server, client):
        fp, result = _artifact()
        blob = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        payload = {"op": "cache-put", "key": fp}
        payload.update(pack_blob_raw(blob))
        payload["sha256"] = "0" * 64
        reply = client._request(payload)
        assert reply is not None and not reply.get("ok")
        assert reply.get("reason") == "corrupt-payload"
        # Nothing was stored; the server-side store is still empty.
        assert server.store.entry_count() == 0

    def test_request_without_key_drops_connection_not_server(self, server, client):
        reply = client._request({"op": "cache-get"})
        assert reply is not None and not reply.get("ok")
        assert reply.get("reason") == "bad-request"
        # The server dropped that connection; a fresh client still works.
        fresh = NetworkCacheClient(server.address)
        fp, result = _artifact()
        assert fresh.put(fp, result)
        fresh.close()

    def test_raw_garbage_line_does_not_kill_the_server(self, server):
        sock = socket.create_connection(
            tuple(server.address.rsplit(":", 1)[0:1])
            + (int(server.address.rsplit(":", 1)[1]),),
            timeout=5.0,
        )
        sock.sendall(b"this is not json at all\n")
        rfile = sock.makefile("rb")
        line = rfile.readline()
        assert b"bad-json" in line
        sock.close()
        # Server survived and serves the next client.
        probe = NetworkCacheClient(server.address)
        assert probe._request({"op": "ping"}).get("ok")
        probe.close()


class TestDegradation:
    def test_dead_endpoint_disables_tier_never_raises(self):
        client = NetworkCacheClient("127.0.0.1:1", timeout=0.2, fail_threshold=3)
        fp, result = _artifact()
        for _ in range(5):
            assert client.get(fp) is None
        assert client.disabled
        # Disabled tier short-circuits: no more timeouts paid.
        assert client.remote_errors == 3
        assert client.put(fp, result) is False

    def test_server_vanishing_mid_session_degrades(self, tmp_path):
        server = CacheServiceServer(tmp_path / "s")
        client = NetworkCacheClient(server.address, timeout=1.0, fail_threshold=2)
        fp, result = _artifact()
        assert client.put(fp, result)
        server.close()
        # Drop the live connection so the next request has to reconnect
        # to the now-dead endpoint (shutdown only stops the acceptor).
        client.close()
        for _ in range(4):
            client.get(fp)
        assert client.disabled
        client.close()

    def test_corrupt_response_is_a_counted_miss(self, tmp_path):
        chaos = CacheChaos(seed=1, corrupt_rate=1.0, max_corruptions_per_key=100)
        with CacheServiceServer(tmp_path / "s", chaos=chaos) as server:
            client = NetworkCacheClient(server.address)
            fp, result = _artifact()
            assert client.put(fp, result)
            assert client.get(fp) is None  # corrupt → miss, not an artifact
            assert client.corrupt_responses == 1
            assert client.remote_hits == 0
            client.close()

    def test_chaos_unavailable_replies_are_soft_errors(self, tmp_path):
        chaos = CacheChaos(seed=2, fail_rate=1.0)
        with CacheServiceServer(tmp_path / "s", chaos=chaos) as server:
            client = NetworkCacheClient(server.address, fail_threshold=3)
            fp, result = _artifact()
            assert client.put(fp, result) is False
            assert client.get(fp) is None
            # Soft failures (the server answered) never disable the tier.
            assert not client.disabled
            client.close()


class TestTieredCache:
    def test_read_through_populates_local(self, server, tmp_path):
        fp, result = _artifact()
        # Machine 1 publishes.
        seeder = NetworkCacheClient(server.address)
        assert seeder.put(fp, result)
        seeder.close()

        # Machine 2 is cold locally, warm remotely.
        local = ArtifactCache(cache_dir=tmp_path / "m2")
        client = NetworkCacheClient(server.address)
        tiered = TieredCache(local, client)
        try:
            first = tiered.get(fp)
            assert first is not None
            assert client.remote_hits == 1
            # Read-through landed it locally: second get never leaves.
            assert local.get(fp) is not None
            tiered.get(fp)
            assert client.remote_hits == 1
        finally:
            tiered.close()

    def test_write_behind_reaches_the_network_tier(self, server, tmp_path):
        fp, result = _artifact()
        tiered = TieredCache(
            ArtifactCache(cache_dir=tmp_path / "m1"),
            NetworkCacheClient(server.address),
        )
        try:
            tiered.put(fp, result)
            tiered.flush()
        finally:
            tiered.close()
        probe = NetworkCacheClient(server.address)
        assert probe.get(fp) is not None
        probe.close()

    def test_synchronous_writes_when_write_behind_off(self, server, tmp_path):
        fp, result = _artifact()
        tiered = TieredCache(
            ArtifactCache(cache_dir=tmp_path / "m1"),
            NetworkCacheClient(server.address),
            write_behind=False,
        )
        try:
            tiered.put(fp, result)
        finally:
            tiered.close()
        assert server.store.entry_count() == 1

    def test_local_tier_is_authoritative_for_stats(self, server, tmp_path):
        local = ArtifactCache(cache_dir=tmp_path / "m1")
        tiered = TieredCache(local, NetworkCacheClient(server.address))
        try:
            assert tiered.stats is local.stats
            assert tiered.cache_dir == local.cache_dir
            assert tiered.max_bytes == local.max_bytes
            fp, result = _artifact()
            tiered.put(fp, result)
            assert tiered.entry_count() == 1
            assert tiered.size_bytes() > 0
        finally:
            tiered.close()

    def test_dead_tier_still_serves_local_artifacts(self, tmp_path):
        fp, result = _artifact()
        client = NetworkCacheClient("127.0.0.1:1", timeout=0.2)
        tiered = TieredCache(ArtifactCache(cache_dir=tmp_path / "m1"), client)
        try:
            tiered.put(fp, result)
            fetched = tiered.get(fp)
            assert fetched is not None
            assert result_payload_digest(fetched) == result.payload_digest
        finally:
            tiered.close()


class TestHostileEntries:
    """Cache trouble must never fail a compile — including entries that
    unpickle cleanly but are internally mangled, and (with a shared
    secret) entries from peers that don't hold it."""

    def test_entry_with_mangled_internals_degrades_to_miss(self, client):
        fp, result = _artifact()
        result.obj = None  # payload-digest derivation would raise on this
        assert result.payload_digest is not None
        assert client.put(fp, result)
        assert client.get(fp) is None  # degraded to a recompile, no error
        assert client.corrupt_responses == 1
        # The tier stays usable afterwards.
        _, good = _artifact()
        assert client.put("a" * 64, good)
        assert client.get("a" * 64) is not None

    def test_shared_secret_round_trips(self, tmp_path, monkeypatch):
        from repro.fabric.wire import FABRIC_SECRET_ENV

        monkeypatch.setenv(FABRIC_SECRET_ENV, "cache-secret")
        with CacheServiceServer(tmp_path / "srv") as server:
            client = NetworkCacheClient(server.address)
            fp, result = _artifact()
            assert client.put(fp, result)
            fetched = client.get(fp)
            assert fetched is not None
            assert fetched.payload_digest == result.payload_digest
            client.close()

    def test_unauthenticated_put_is_refused_when_secret_set(
        self, tmp_path, monkeypatch
    ):
        import base64
        import hashlib

        from repro.fabric.wire import FABRIC_SECRET_ENV

        fp, result = _artifact()
        blob = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        payload = {
            "op": "cache-put",
            "key": fp,
            "blob": base64.b64encode(blob).decode("ascii"),
            "sha256": hashlib.sha256(blob).hexdigest(),
            # no hmac: a writer without the secret
        }
        monkeypatch.setenv(FABRIC_SECRET_ENV, "cache-secret")
        with CacheServiceServer(tmp_path / "srv") as server:
            client = NetworkCacheClient(server.address)
            reply = client._request(payload)
            assert reply is not None and not reply.get("ok")
            assert reply.get("reason") == "unauthenticated"
            assert server.store.entry_count() == 0
            client.close()
