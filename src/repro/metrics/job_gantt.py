"""Per-job Gantt charts over a *shared* pool's slots.

:mod:`repro.metrics.gantt` draws the paper's Figure 2 — one machine per
row, one compilation.  When the compile service multiplexes many jobs
over one warm pool, the interesting picture is inverted: rows are the
pool's slots and the glyphs say *which job* occupied each slot over
time, so fair-share interleaving (and any monopolization bug) is
visible at a glance.

The service records one :class:`JobSpan` per completed function task
(wave start → result arrival).  Real worker attribution never crosses
the process boundary, so spans are laid onto slots greedily — each span
takes the first slot free at its start time, which reconstructs a
feasible slot assignment for the overlap structure the pool actually
produced.
"""

from __future__ import annotations

import string
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

#: Glyph alphabet for job rows (cycled when there are more jobs).
_GLYPHS = string.ascii_uppercase + string.ascii_lowercase + string.digits

IDLE = "."


@dataclass(frozen=True)
class JobSpan:
    """One task's occupancy of one pool slot, in service-relative
    seconds."""

    job_id: str
    label: str  # "section.function"
    start: float
    end: float

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)


def assign_slots(
    spans: Sequence[JobSpan], slots: Optional[int] = None
) -> List[List[JobSpan]]:
    """Greedy interval-to-slot assignment, deterministic.

    Spans are placed in (start, end, job, label) order onto the first
    slot whose previous span has ended.  With ``slots`` given, the lane
    count is capped: when every lane is busy the span goes to the lane
    that frees up earliest (batched dispatch can make raw spans overlap
    more than the true worker count; capping keeps the chart honest
    about the pool's actual width).
    """
    lanes: List[List[JobSpan]] = []
    lane_free: List[float] = []
    epsilon = 1e-9
    ordered = sorted(
        spans, key=lambda s: (s.start, s.end, s.job_id, s.label)
    )
    for span in ordered:
        placed = False
        for index, free_at in enumerate(lane_free):
            if free_at <= span.start + epsilon:
                lanes[index].append(span)
                lane_free[index] = max(free_at, span.end)
                placed = True
                break
        if placed:
            continue
        if slots is None or len(lanes) < slots:
            lanes.append([span])
            lane_free.append(span.end)
        else:
            index = min(
                range(len(lane_free)), key=lambda i: (lane_free[i], i)
            )
            lanes[index].append(span)
            lane_free[index] = max(lane_free[index], span.end)
    return lanes


def job_glyphs(spans: Sequence[JobSpan]) -> Dict[str, str]:
    """Stable job → glyph mapping, in order of first appearance."""
    glyphs: Dict[str, str] = {}
    for span in sorted(spans, key=lambda s: (s.start, s.job_id)):
        if span.job_id not in glyphs:
            glyphs[span.job_id] = _GLYPHS[len(glyphs) % len(_GLYPHS)]
    return glyphs


def render_job_gantt(
    spans: Sequence[JobSpan],
    width: int = 72,
    slots: Optional[int] = None,
) -> str:
    """Render shared-pool occupancy: one row per slot, one glyph per
    job, ``.`` for idle."""
    if width < 10:
        raise ValueError(f"width must be >= 10, got {width}")
    if not spans:
        return "no task spans recorded"
    t0 = min(span.start for span in spans)
    t1 = max(span.end for span in spans)
    elapsed = t1 - t0
    if elapsed <= 0:
        elapsed = 1e-9
    scale = width / elapsed
    glyphs = job_glyphs(spans)
    lanes = assign_slots(spans, slots=slots)

    lines = [
        f"pool timeline: {elapsed:.3f}s over {len(lanes)} slot(s) "
        f"({IDLE} idle)"
    ]
    label_width = len(f"slot {len(lanes) - 1}")
    for index, lane in enumerate(lanes):
        row = [IDLE] * width
        for span in lane:
            start = min(width - 1, int((span.start - t0) * scale))
            end = min(width, max(start + 1, int((span.end - t0) * scale)))
            for cell in range(start, end):
                row[cell] = glyphs[span.job_id]
        lines.append(f"{f'slot {index}'.rjust(label_width)} |{''.join(row)}|")
    per_job: Dict[str, int] = {}
    for span in spans:
        per_job[span.job_id] = per_job.get(span.job_id, 0) + 1
    legend = ", ".join(
        f"{glyph}={job_id} ({per_job[job_id]} task(s))"
        for job_id, glyph in glyphs.items()
    )
    lines.append(f"jobs: {legend}")
    return "\n".join(lines)


def slot_utilization(
    spans: Sequence[JobSpan], slots: Optional[int] = None
) -> float:
    """Busy time over capacity for the rendered slot assignment.

    Capacity is ``lanes * (last end - first start)``; busy time is the
    per-lane union of span intervals, so overlapping spans squeezed
    into one lane (batched dispatch) are not double-counted.
    """
    if not spans:
        return 0.0
    t0 = min(span.start for span in spans)
    t1 = max(span.end for span in spans)
    if t1 <= t0:
        return 0.0
    lanes = assign_slots(spans, slots=slots)
    busy = 0.0
    for lane in lanes:
        cursor = t0
        for span in sorted(lane, key=lambda s: (s.start, s.end)):
            start = max(span.start, cursor)
            if span.end > start:
                busy += span.end - start
                cursor = span.end
    return busy / (len(lanes) * (t1 - t0))
