"""Surviving an unreliable network of workstations (§5.2).

The paper's authors complain that on a network of autonomous UNIX nodes
"it is hard to make a parallel program reliable ... the application code
becomes unwieldy as it tries to account for all possible failures in the
child processes and their host processors."

This example injects deterministic crashes into one compilation in three
and shows the retrying backend absorbing them: the final download module
is still bit-identical to the sequential compiler's.

Run:  python examples/unreliable_network.py
"""

from repro import ParallelCompiler, SequentialCompiler
from repro.parallel import FlakyBackend, RetryingBackend, SerialBackend
from repro.workloads.synthetic import synthetic_program

SOURCE = synthetic_program("small", 6, module_name="flaky_build")


def main() -> None:
    sequential = SequentialCompiler().compile(SOURCE)

    # A backend where roughly every third function master "crashes"
    # (a rebooted workstation, a killed Lisp process), but any single
    # task fails at most twice.
    flaky = FlakyBackend(
        SerialBackend(), failure_rate=0.5, seed=11,
        max_failures_per_task=2,
    )
    backend = RetryingBackend(flaky, max_attempts=3)

    result = ParallelCompiler(backend=backend).compile(SOURCE)

    print(f"function masters launched : 6 tasks")
    print(f"injected crashes          : {flaky.injected_failures}")
    print(f"retries performed         : {backend.retries_performed}")
    print(f"output identical to the sequential compiler:",
          result.digest == sequential.digest)
    for line in result.report_lines()[:3]:
        print(" ", line)


if __name__ == "__main__":
    main()
