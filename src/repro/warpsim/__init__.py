"""Functional simulator for the Warp array."""

from .array_runner import ArrayRunner, RunResult, run_module
from .cell_state import CellState, CellStats, SimulationError
from .executor import step_cell
from .queues import CellQueue
from .scoring import (
    DEFAULT_SCORE_MAX_CYCLES,
    SCORING_SCHEMA_VERSION,
    ModuleScore,
    input_set_digest,
    score_module,
    seeded_input_sets,
)

__all__ = [
    "ArrayRunner",
    "CellQueue",
    "CellState",
    "CellStats",
    "DEFAULT_SCORE_MAX_CYCLES",
    "ModuleScore",
    "RunResult",
    "SCORING_SCHEMA_VERSION",
    "SimulationError",
    "input_set_digest",
    "run_module",
    "score_module",
    "seeded_input_sets",
    "step_cell",
]
