"""On-disk pickle stores: content-addressed, concurrent-safe, bounded.

Layout: ``<cache_dir>/<subdir>/<fp[:2]>/<fp>.pkl``, one pickled payload
per entry.  Writes go through a temporary file in the same directory
followed by ``os.replace``, which is atomic on POSIX and Windows — two
compilers sharing a cache directory can race freely: readers see either
the old bytes or the new bytes, never a torn write.  A reader that
*does* find garbage (a corrupt or truncated entry, e.g. from a crashed
writer on a non-atomic filesystem) deletes it, counts it, and reports a
miss — corruption can cost a recompile, never a wrong artifact.

Eviction is LRU by file mtime (every hit re-touches its entry), bounded
by total bytes; a store never evicts the entry it just wrote.

Two tiers share this machinery: :class:`ArtifactCache` (phase-2/3
object code, ``objects/``) and :class:`~repro.cache.parse_store.ParseCache`
(phase-1 per-function parse+sema results, ``parse/``).  They live in
separate subdirectories of the same cache dir and keep independent
bounds and stats.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple

from ..driver.function_master import FunctionTaskResult

#: Default size bound: plenty for thousands of functions, small enough
#: that a developer cache dir never becomes a surprise.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024


def default_cache_dir() -> Path:
    """``$WARPCC_CACHE_DIR`` > ``$XDG_CACHE_HOME/warpcc`` > ``~/.cache/warpcc``."""
    override = os.environ.get("WARPCC_CACHE_DIR")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    if xdg:
        return Path(xdg) / "warpcc"
    return Path.home() / ".cache" / "warpcc"


@dataclass
class CacheStats:
    """Counters for one store instance's lifetime."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    corrupt: int = 0

    def copy(self) -> "CacheStats":
        return CacheStats(self.hits, self.misses, self.evictions, self.corrupt)


class PickleStore:
    """Generic sharded pickle store; subclasses pin the payload type.

    Class attributes:

    - ``SUBDIR`` — subdirectory of the cache dir holding this tier's
      entries (tiers sharing a cache dir must not collide);
    - ``PAYLOAD_TYPE`` — entries that unpickle to anything else are
      treated as corrupt (type confusion between tiers or schema
      versions costs a recompute, never a wrong result).
    """

    SUBDIR = "objects"
    PAYLOAD_TYPE: type = object

    def __init__(
        self,
        cache_dir: Optional[os.PathLike] = None,
        max_bytes: int = DEFAULT_MAX_BYTES,
    ):
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.cache_dir = Path(cache_dir) if cache_dir else default_cache_dir()
        self.max_bytes = max_bytes
        self.stats = CacheStats()
        self._objects = self.cache_dir / self.SUBDIR

    # -- lookup --------------------------------------------------------

    def _entry_path(self, fingerprint: str) -> Path:
        return self._objects / fingerprint[:2] / f"{fingerprint}.pkl"

    def get(self, fingerprint: str):
        """The cached payload, or None (miss).  Corrupt entries are
        deleted, counted, and reported as misses."""
        path = self._entry_path(fingerprint)
        try:
            data = path.read_bytes()
        except OSError:
            self.stats.misses += 1
            return None
        try:
            result = pickle.loads(data)
            if not isinstance(result, self.PAYLOAD_TYPE):
                raise TypeError(f"cache entry holds {type(result).__name__}")
        except Exception:
            self.stats.corrupt += 1
            self.stats.misses += 1
            self._remove(path)
            return None
        try:
            os.utime(path)  # LRU touch
        except OSError:  # pragma: no cover - entry raced away; still a hit
            pass
        self.stats.hits += 1
        return result

    # -- insertion -----------------------------------------------------

    def put(self, fingerprint: str, result) -> None:
        """Store ``result`` atomically, then enforce the size bound."""
        path = self._entry_path(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=".tmp-", suffix=".pkl"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            self._remove(Path(tmp_name))
            raise
        self._evict(keep=path)

    # -- eviction ------------------------------------------------------

    def _entries(self) -> List[Tuple[float, int, Path]]:
        """(mtime, size, path) for every entry currently on disk."""
        entries: List[Tuple[float, int, Path]] = []
        if not self._objects.is_dir():
            return entries
        for shard in self._objects.iterdir():
            if not shard.is_dir():
                continue
            for path in shard.glob("*.pkl"):
                if path.name.startswith(".tmp-"):
                    continue
                try:
                    stat = path.stat()
                except OSError:  # raced with another process's eviction
                    continue
                entries.append((stat.st_mtime, stat.st_size, path))
        return entries

    def size_bytes(self) -> int:
        """Total bytes currently held by cache entries."""
        return sum(size for _, size, _ in self._entries())

    def entry_count(self) -> int:
        return len(self._entries())

    def _evict(self, keep: Optional[Path] = None) -> None:
        entries = sorted(self._entries())
        total = sum(size for _, size, _ in entries)
        for _, size, path in entries:
            if total <= self.max_bytes:
                break
            if keep is not None and path == keep:
                continue
            if self._remove(path):
                self.stats.evictions += 1
                total -= size

    def _remove(self, path: Path) -> bool:
        try:
            path.unlink()
            return True
        except OSError:
            return False

    # -- maintenance ---------------------------------------------------

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for _, _, path in self._entries():
            if self._remove(path):
                removed += 1
        return removed


class ArtifactCache(PickleStore):
    """Persistent store of compiled function artifacts (phases 2-3)."""

    SUBDIR = "objects"
    PAYLOAD_TYPE = FunctionTaskResult

    def get(self, fingerprint: str) -> Optional[FunctionTaskResult]:
        """The cached artifact, or None (miss)."""
        return super().get(fingerprint)
