"""Seeded load generation against the compile service."""

import pytest

from repro.parallel.local import SerialBackend
from repro.service import CompileService, LoadSpec, plan_load, run_load


class TestPlan:
    def test_same_seed_same_plan(self):
        spec = LoadSpec(seed=7, jobs=10)
        assert plan_load(spec) == plan_load(spec)

    def test_different_seed_different_plan(self):
        assert plan_load(LoadSpec(seed=1)) != plan_load(LoadSpec(seed=2))

    def test_arrivals_are_monotonic(self):
        plan = plan_load(LoadSpec(seed=3, jobs=20))
        times = [job.at for job in plan]
        assert times == sorted(times)
        assert all(t > 0 for t in times)

    def test_plan_respects_mixes(self):
        spec = LoadSpec(
            seed=0, jobs=30,
            tenants={"only": 1.0},
            size_mix={"tiny": 1.0},
            priority_mix={"batch": 1.0},
        )
        plan = plan_load(spec)
        assert {j.tenant for j in plan} == {"only"}
        assert {j.size_class for j in plan} == {"tiny"}
        assert {j.priority for j in plan} == {"batch"}

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_load(LoadSpec(jobs=0))
        with pytest.raises(ValueError):
            plan_load(LoadSpec(arrival_rate=0))
        with pytest.raises(KeyError):
            plan_load(LoadSpec(size_mix={"gigantic": 1.0}))


class TestRun:
    def test_small_run_produces_a_sane_report(self):
        spec = LoadSpec(
            seed=11, jobs=6, arrival_rate=50.0,
            size_mix={"tiny": 1.0},
            functions_by_size={"tiny": 2},
        )
        with CompileService(SerialBackend(), max_running=2) as service:
            report = run_load(service, spec, time_scale=0.1)
        assert report.jobs_completed == 6
        assert report.jobs_failed == 0 and report.jobs_rejected == 0
        assert report.latency_p95 >= report.latency_p50 > 0
        assert report.queue_wait_p95 >= 0
        assert 0.0 <= report.pool_utilization <= 1.0
        assert sum(report.per_tenant_completed.values()) == 6
        document = report.to_dict()
        assert document["jobs_completed"] == 6
        assert document["latency_p50_s"] > 0
