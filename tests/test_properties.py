"""Property-based tests (hypothesis).

The headline property is differential: random programs compiled at every
optimization level and run on the Warp simulator must match the reference
AST interpreter bit-for-bit.  Supporting properties cover the lexer, the
processor-sharing resource, and scheduling invariants.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cluster.events import Simulator
from repro.cluster.network import SharedResource
from repro.driver.sequential import SequentialCompiler
from repro.lang.diagnostics import DiagnosticSink
from repro.lang.lexer import tokenize
from repro.lang.source import SourceFile
from repro.lang.tokens import TokenKind
from repro.warpsim.array_runner import run_module

from helpers import parse_ok
from reference_interp import interpret_module


# ---------------------------------------------------------------------------
# Random program generation
# ---------------------------------------------------------------------------

_FLOAT_VARS = ["x", "y", "t", "u"]
_INT_VARS = ["n", "m"]


@st.composite
def float_expr(draw, depth: int, in_loop: bool):
    choice = draw(st.integers(0, 7 if depth > 0 else 2))
    if choice == 0:
        value = draw(
            st.floats(
                min_value=-4.0, max_value=4.0, allow_nan=False, width=32
            )
        )
        literal = abs(round(value, 3))
        text = f"{literal}"
        return f"-{text}" if value < 0 else text
    if choice == 1:
        return draw(st.sampled_from(_FLOAT_VARS))
    if choice == 2:
        index = "i" if in_loop else str(draw(st.integers(0, 7)))
        return f"a[{index}]"
    if choice == 6:
        inner = draw(float_expr(depth - 1, in_loop))
        # sqrt over abs keeps the argument in the unit's domain.
        fn = draw(st.sampled_from(["abs", "sqrt(abs", ""]))
        if fn == "abs":
            return f"abs({inner})"
        if fn:
            return f"sqrt(abs({inner}))"
        return inner
    if choice == 7:
        left = draw(float_expr(depth - 1, in_loop))
        right = draw(float_expr(depth - 1, in_loop))
        fn = draw(st.sampled_from(["min", "max"]))
        return f"{fn}({left}, {right})"
    left = draw(float_expr(depth - 1, in_loop))
    right = draw(float_expr(depth - 1, in_loop))
    op = draw(st.sampled_from(["+", "-", "*"]))
    return f"({left} {op} {right})"


@st.composite
def condition(draw, in_loop: bool):
    left = draw(float_expr(1, in_loop))
    right = draw(float_expr(1, in_loop))
    op = draw(st.sampled_from(["<", "<=", ">", ">=", "=", "<>"]))
    return f"{left} {op} {right}"


@st.composite
def statements(draw, depth: int, in_loop: bool, indent: str):
    count = draw(st.integers(1, 3))
    lines = []
    for _ in range(count):
        kind = draw(st.integers(0, 5 if depth > 0 else 3))
        if kind in (0, 1):
            var = draw(st.sampled_from(_FLOAT_VARS))
            expr = draw(float_expr(2, in_loop))
            lines.append(f"{indent}{var} := {expr};")
        elif kind == 2:
            index = "i" if in_loop else str(draw(st.integers(0, 7)))
            expr = draw(float_expr(2, in_loop))
            lines.append(f"{indent}a[{index}] := {expr};")
        elif kind == 3:
            expr = draw(float_expr(1, in_loop))
            lines.append(f"{indent}send({expr});")
        elif kind == 4 and not in_loop:
            high = draw(st.integers(0, 7))
            body = draw(statements(depth - 1, True, indent + "  "))
            lines.append(f"{indent}for i := 0 to {high} do")
            lines.append(body)
            lines.append(f"{indent}end;")
        else:
            cond = draw(condition(in_loop))
            then_body = draw(statements(depth - 1, in_loop, indent + "  "))
            lines.append(f"{indent}if {cond} then")
            lines.append(then_body)
            lines.append(f"{indent}end;")
    return "\n".join(lines)


@st.composite
def random_program(draw):
    body = draw(statements(2, False, "    "))
    return (
        "module p\n"
        "section s (cells 0..0)\n"
        "  function main()\n"
        "  var x, y, t, u: float; n, m, i: int; a: array[8] of float;\n"
        "  begin\n"
        "    receive(x);\n"
        "    receive(y);\n"
        f"{body}\n"
        "    send(t);\n"
        "    send(u);\n"
        "  end\n"
        "end\n"
        "end\n"
    )


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    source=random_program(),
    inputs=st.lists(
        st.floats(min_value=-8.0, max_value=8.0, allow_nan=False, width=32),
        min_size=2,
        max_size=2,
    ),
)
def test_compiled_output_matches_reference_interpreter(source, inputs):
    """Differential oracle across all optimization levels."""
    module, _sema = parse_ok(source)
    expected = interpret_module(module, list(inputs))
    for opt_level in (0, 1, 2):
        compiler = SequentialCompiler(opt_level=opt_level)
        result = compiler.compile(source)
        outputs = run_module(result.download, list(inputs)).outputs
        assert outputs == expected, (
            f"mismatch at -O{opt_level}: {outputs} != {expected}"
        )


@settings(max_examples=20, deadline=None)
@given(
    source=random_program(),
    inputs=st.lists(
        st.floats(min_value=-8.0, max_value=8.0, allow_nan=False, width=32),
        min_size=2,
        max_size=2,
    ),
)
def test_unrolled_output_matches_reference_interpreter(source, inputs):
    """Loop unrolling is a pure transformation: unrolled programs still
    match the reference interpreter exactly."""
    from helpers import compile_with_ir_transform
    from repro.opt.unroll import unroll_constant_loops

    module, _sema = parse_ok(source)
    expected = interpret_module(module, list(inputs))

    def unroll_everything(module_ir):
        for fn in module_ir.all_functions():
            unroll_constant_loops(fn, max_trip=8)

    download = compile_with_ir_transform(source, unroll_everything)
    outputs = run_module(download, list(inputs)).outputs
    assert outputs == expected


@settings(max_examples=30, deadline=None)
@given(source=random_program())
def test_parallel_digest_equals_sequential_digest(source):
    from repro.driver.master import ParallelCompiler
    from repro.parallel.local import SerialBackend

    seq = SequentialCompiler().compile(source)
    par = ParallelCompiler(backend=SerialBackend()).compile(source)
    assert par.digest == seq.digest


# ---------------------------------------------------------------------------
# Lexer properties
# ---------------------------------------------------------------------------

_token_text = st.one_of(
    st.from_regex(r"[a-z_][a-z0-9_]{0,6}", fullmatch=True),
    st.integers(0, 10 ** 6).map(str),
    st.sampled_from(
        [":=", "..", "<=", ">=", "<>", "+", "-", "*", "/", "%",
         "(", ")", "[", "]", ",", ";", ":", "=", "<", ">"]
    ),
)


@settings(max_examples=200, deadline=None)
@given(st.lists(_token_text, max_size=30))
def test_lexer_roundtrip(parts):
    """Tokens separated by spaces re-lex to the same kinds and texts."""
    text = " ".join(parts)
    sink = DiagnosticSink()
    tokens = tokenize(SourceFile("<p>", text), sink)
    assert not sink.has_errors
    rebuilt = " ".join(t.text for t in tokens[:-1])
    sink2 = DiagnosticSink()
    tokens2 = tokenize(SourceFile("<p>", rebuilt), sink2)
    assert [
        (t.kind, t.text) for t in tokens
    ] == [(t.kind, t.text) for t in tokens2]


@settings(max_examples=200, deadline=None)
@given(st.text(alphabet="abc123 .:=<>+-*/()[];,\n\t%", max_size=80))
def test_lexer_never_crashes_and_always_ends_with_eof(text):
    sink = DiagnosticSink()
    tokens = tokenize(SourceFile("<p>", text), sink)
    assert tokens[-1].kind is TokenKind.EOF
    assert [t for t in tokens if t.kind is TokenKind.EOF] == [tokens[-1]]


# ---------------------------------------------------------------------------
# Processor-sharing resource properties
# ---------------------------------------------------------------------------


@settings(max_examples=100, deadline=None)
@given(
    demands=st.lists(
        st.floats(min_value=0.5, max_value=500.0, allow_nan=False),
        min_size=1,
        max_size=12,
    ),
    rate=st.floats(min_value=0.5, max_value=100.0),
)
def test_shared_resource_serves_all_tasks(demands, rate):
    sim = Simulator()
    resource = SharedResource(sim, "r", rate)
    finished = []
    for demand in demands:
        resource.submit(demand, lambda: finished.append(sim.now))
    end = sim.run()
    assert len(finished) == len(demands)
    total = sum(demands)
    # All work served: end time >= total/rate (conservation) and
    # <= total/rate + epsilon (single PS resource is work-conserving).
    assert end >= total / rate - 1e-6
    assert end <= total / rate + 1e-3 * len(demands) + 1e-6


@settings(max_examples=100, deadline=None)
@given(
    demands=st.lists(
        st.floats(min_value=1.0, max_value=100.0),
        min_size=2,
        max_size=8,
    )
)
def test_shared_resource_equal_demands_finish_together(demands):
    sim = Simulator()
    resource = SharedResource(sim, "r", 10.0)
    finish = []
    demand = demands[0]
    for _ in demands:
        resource.submit(demand, lambda: finish.append(sim.now))
    sim.run()
    assert max(finish) - min(finish) < 1e-6


# ---------------------------------------------------------------------------
# Scheduling invariants on compiled workloads
# ---------------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(source=random_program())
def test_schedule_resource_and_drain_invariants(source):
    """Every generated program's schedule obeys the bundle rules."""
    result = SequentialCompiler().compile(source)
    for obj in result.objects:
        for block in obj.blocks:
            end = len(block.bundles)
            for cycle, bundle in enumerate(block.bundles):
                fus = [op.fu for op in bundle.all_ops()]
                assert len(fus) == len(set(fus)), "FU oversubscribed"
                if not _is_pipelined_label(block.label):
                    for op in bundle.all_ops():
                        if op.dest is not None:
                            assert cycle + op.latency <= end, "no drain"


def _is_pipelined_label(label: str) -> bool:
    return ".pl." in label


# ---------------------------------------------------------------------------
# The seeded fuzz generator: every output is a valid module
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("block", range(4))
def test_fuzz_generator_emits_valid_modules(block):
    """200 consecutive seeds (50 per block, across size classes) all
    parse and pass semantic checks — the generator's validity contract
    for the differential oracle."""
    from repro.fuzz import config_for_size_class, generate_program
    from repro.lang.parser import parse_text
    from repro.lang.sema import check_module

    size_class = ("tiny", "small", "medium", "small")[block]
    config = config_for_size_class(size_class)
    for seed in range(block * 50, block * 50 + 50):
        program = generate_program(seed, config)
        sink = DiagnosticSink()
        module = parse_text(program.source, sink)
        assert not sink.has_errors, (
            f"{size_class} seed {seed} failed to parse:\n{sink.render()}"
        )
        check_module(module, sink)
        assert not sink.has_errors, (
            f"{size_class} seed {seed} failed sema:\n{sink.render()}"
        )
        assert len(program.inputs()) == program.stream_arity


def test_fuzz_generator_inputs_match_receive_count():
    """The generated input vector always satisfies main's receives, so
    the reference interpreter never starves."""
    from repro.fuzz import generate_program

    for seed in range(20):
        program = generate_program(seed)
        module, _ = parse_ok(program.source)
        interpret_module(module, program.inputs())  # must not trap
