"""Seeded, deterministic fault injection for the fabric's transport.

Same discipline as :class:`repro.parallel.fault_tolerance.ChaosBackend`:
every fault decision is a pure function of ``(seed, kind, key, attempt)``
hashed through sha256, so a given seed produces the same kills, drops,
and corruptions no matter how threads interleave — a failing seed from
CI replays locally, exactly.

:class:`FabricChaos` is the persistent *plan*: it owns the per-task
attempt counters and per-fault budgets, and wraps each (re)connection a
:class:`~repro.fabric.node.WorkerNodeAgent` makes in a
:class:`ChaosTransport`.  Budgets persist across reconnects — a task
whose result send killed the connection once is allowed through on the
retry, so seeded kills exercise the re-queue path without livelocking
the fleet.

:class:`CacheChaos` does the same for the network cache tier: corrupt
response blobs and transport failures, which the client must convert to
counted misses — never a failed compile.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import defaultdict
from typing import Dict, Optional

from .wire import Connection, encode_frame


def _roll(seed: int, kind: str, key: str, attempt: int) -> float:
    """Deterministic uniform [0, 1) draw for one fault decision."""
    material = f"{seed}:{kind}:{key}:{attempt}".encode("utf-8")
    digest = hashlib.sha256(material).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


class FabricChaos:
    """A seeded fault plan shared by every connection an agent makes."""

    def __init__(
        self,
        seed: int = 0,
        *,
        kill_rate: float = 0.0,
        heartbeat_drop_rate: float = 0.0,
        delay_rate: float = 0.0,
        delay_s: float = 0.05,
        duplicate_rate: float = 0.0,
        truncate_rate: float = 0.0,
        max_kills_per_task: int = 1,
        max_truncations_per_task: int = 1,
    ):
        self.seed = seed
        self.kill_rate = kill_rate
        self.heartbeat_drop_rate = heartbeat_drop_rate
        self.delay_rate = delay_rate
        self.delay_s = delay_s
        self.duplicate_rate = duplicate_rate
        self.truncate_rate = truncate_rate
        self.max_kills_per_task = max_kills_per_task
        self.max_truncations_per_task = max_truncations_per_task
        self._lock = threading.Lock()
        self._attempts: Dict[str, int] = defaultdict(int)
        self._kills_used: Dict[str, int] = defaultdict(int)
        self._truncations_used: Dict[str, int] = defaultdict(int)
        self._heartbeats_seen = 0
        self.kills_injected = 0
        self.heartbeats_dropped = 0
        self.frames_delayed = 0
        self.frames_duplicated = 0
        self.frames_truncated = 0

    def wrap(self, conn: Connection) -> "ChaosTransport":
        return ChaosTransport(conn, self)

    # -- decisions (called by the transport under the plan lock) -------

    def _next_attempt(self, key: str) -> int:
        attempt = self._attempts[key]
        self._attempts[key] = attempt + 1
        return attempt

    def _next_heartbeat(self) -> int:
        n = self._heartbeats_seen
        self._heartbeats_seen = n + 1
        return n


class ChaosTransport:
    """A :class:`Connection` whose sends misbehave on schedule.

    Faults fire on the *sending* side — exactly where a flaky NIC,
    a kernel OOM-kill, or a mid-write power loss would land — so the
    receiving hub exercises its real EOF / truncated-frame / duplicate
    handling rather than a simulation of it.
    """

    def __init__(self, conn: Connection, plan: FabricChaos):
        self._conn = conn
        self._plan = plan

    # Reads and everything else delegate untouched.
    def recv(self) -> Optional[dict]:
        return self._conn.recv()

    def close(self) -> None:
        self._conn.close()

    @property
    def peername(self) -> str:
        return self._conn.peername

    @property
    def max_frame_bytes(self) -> int:
        return self._conn.max_frame_bytes

    def send(self, frame: dict) -> None:
        plan = self._plan
        op = frame.get("op")
        if op == "heartbeat":
            with plan._lock:
                n = plan._next_heartbeat()
                drop = (
                    _roll(plan.seed, "heartbeat-drop", "hb", n)
                    < plan.heartbeat_drop_rate
                )
                if drop:
                    plan.heartbeats_dropped += 1
            if drop:
                return  # silently lost; the lease must expire
            self._conn.send(frame)
            return
        if op != "result":
            self._conn.send(frame)
            return

        key = str(frame.get("id", "?"))
        with plan._lock:
            attempt = plan._next_attempt(key)
            kill = (
                _roll(plan.seed, "kill", key, attempt) < plan.kill_rate
                and plan._kills_used[key] < plan.max_kills_per_task
            )
            if kill:
                plan._kills_used[key] += 1
                plan.kills_injected += 1
            truncate = (
                not kill
                and _roll(plan.seed, "truncate", key, attempt)
                < plan.truncate_rate
                and plan._truncations_used[key] < plan.max_truncations_per_task
            )
            if truncate:
                plan._truncations_used[key] += 1
                plan.frames_truncated += 1
            delay = (
                _roll(plan.seed, "delay", key, attempt) < plan.delay_rate
            )
            duplicate = (
                _roll(plan.seed, "duplicate", key, attempt)
                < plan.duplicate_rate
            )

        if kill:
            # Node dies before the result is acknowledged: drop the
            # connection without sending.  The hub re-queues the task.
            self._conn.close()
            raise ConnectionResetError(f"chaos: node killed before {key}")
        if truncate:
            # Half a frame then a dead socket: the hub's reader must
            # reject the partial line, never parse it.
            data = encode_frame(frame)
            try:
                self._conn.send_raw(data[: max(1, len(data) // 2)])
            except OSError:
                pass
            self._conn.close()
            raise ConnectionResetError(f"chaos: frame truncated for {key}")
        if delay:
            with plan._lock:
                plan.frames_delayed += 1
            time.sleep(plan.delay_s)
        self._conn.send(frame)
        if duplicate:
            with plan._lock:
                plan.frames_duplicated += 1
            self._conn.send(frame)


class CacheChaos:
    """Seeded corruption/failure plan for the network cache tier."""

    def __init__(
        self,
        seed: int = 0,
        *,
        corrupt_rate: float = 0.0,
        fail_rate: float = 0.0,
        max_corruptions_per_key: int = 1,
    ):
        self.seed = seed
        self.corrupt_rate = corrupt_rate
        self.fail_rate = fail_rate
        self.max_corruptions_per_key = max_corruptions_per_key
        self._lock = threading.Lock()
        self._corruptions_used: Dict[str, int] = defaultdict(int)
        self.responses_corrupted = 0
        self.requests_failed = 0

    def should_fail(self, key: str) -> bool:
        with self._lock:
            if _roll(self.seed, "cache-fail", key, 0) < self.fail_rate:
                self.requests_failed += 1
                return True
        return False

    def maybe_corrupt(self, key: str, blob: bytes) -> bytes:
        """Deterministically scribble on a response blob (bounded per key,
        so the retry after the client rejects it can succeed)."""
        with self._lock:
            used = self._corruptions_used[key]
            corrupt = (
                blob
                and _roll(self.seed, "cache-corrupt", key, used)
                < self.corrupt_rate
                and used < self.max_corruptions_per_key
            )
            if corrupt:
                self._corruptions_used[key] = used + 1
                self.responses_corrupted += 1
        if not corrupt:
            return blob
        scribbled = bytearray(blob)
        scribbled[len(scribbled) // 2] ^= 0xFF
        return bytes(scribbled)
