"""Discrete-event simulation of the workstation network host."""

from .cluster import HOME, ClusterSimulation, CompileSpan, TimingReport
from .costs import CostModel, default_cost_model
from .events import Simulator
from .fileserver import FileServer
from .network import SharedResource, ethernet_efficiency
from .workstation import MachinePool, Workstation

__all__ = [
    "HOME",
    "ClusterSimulation",
    "CompileSpan",
    "CostModel",
    "FileServer",
    "MachinePool",
    "SharedResource",
    "Simulator",
    "TimingReport",
    "Workstation",
    "default_cost_model",
    "ethernet_efficiency",
]
