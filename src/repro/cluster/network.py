"""Processor-sharing resources: the Ethernet and everything like it.

A :class:`SharedResource` serves any number of concurrent tasks; capacity
is divided equally among active tasks, optionally scaled by an efficiency
curve — Ethernet loses goodput as concurrent senders collide ("multiple
processors attempt to access the network, increasing the chance of a
collision", §3.3).  Completion events are recomputed whenever the active
set changes, the textbook PS-queue construction.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from .events import Simulator


@dataclass
class _Task:
    task_id: int
    remaining: float
    done: Callable[[], None]


def ethernet_efficiency(alpha: float) -> Callable[[int], float]:
    """CSMA/CD-flavored degradation: eff(n) = 1 / (1 + alpha*(n-1))."""

    def efficiency(active: int) -> float:
        return 1.0 / (1.0 + alpha * max(0, active - 1))

    return efficiency


class SharedResource:
    """A capacity shared equally among its active tasks."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        rate: float,
        efficiency: Optional[Callable[[int], float]] = None,
    ):
        if rate <= 0:
            raise ValueError(f"resource {name!r} needs a positive rate")
        self.sim = sim
        self.name = name
        self.rate = rate
        self.efficiency = efficiency or (lambda active: 1.0)
        self._tasks: Dict[int, _Task] = {}
        self._ids = itertools.count()
        self._last_update = 0.0
        self._epoch = 0  # invalidates stale completion events
        self.busy_time = 0.0  # integral of (resource busy) over time
        self.total_demand_served = 0.0

    # -- public API -----------------------------------------------------------

    def submit(self, demand: float, done: Callable[[], None]) -> None:
        """Add a task needing ``demand`` units; ``done`` fires on finish."""
        if demand <= 0:
            # Zero-cost step: complete immediately (still asynchronously).
            self.sim.schedule(0.0, done)
            return
        self._settle()
        task = _Task(next(self._ids), demand, done)
        self._tasks[task.task_id] = task
        self.total_demand_served += demand
        self._reschedule()

    @property
    def active_tasks(self) -> int:
        return len(self._tasks)

    def per_task_rate(self) -> float:
        active = len(self._tasks)
        if active == 0:
            return 0.0
        return self.rate * self.efficiency(active) / active

    # -- internals ---------------------------------------------------------------

    def _settle(self) -> None:
        """Account for progress since the last membership change."""
        now = self.sim.now
        elapsed = now - self._last_update
        self._last_update = now
        if elapsed <= 0 or not self._tasks:
            return
        rate = self.per_task_rate()
        self.busy_time += elapsed
        for task in self._tasks.values():
            task.remaining -= rate * elapsed

    def _reschedule(self) -> None:
        """Arrange a wake-up at the next task completion."""
        self._epoch += 1
        if not self._tasks:
            return
        rate = self.per_task_rate()
        next_remaining = min(t.remaining for t in self._tasks.values())
        delay = max(0.0, next_remaining / rate)
        epoch = self._epoch

        def wake():
            if epoch != self._epoch:
                return  # superseded by a later membership change
            self._complete_due()

        self.sim.schedule(delay, wake)

    def _complete_due(self) -> None:
        self._settle()
        tolerance = 1e-7 * self.rate + 1e-9
        finished = [
            t for t in self._tasks.values() if t.remaining <= tolerance
        ]
        if not finished and self._tasks:
            # Floating-point settling left the due task marginally short;
            # it *was* scheduled to finish now, so finish it (guarantees
            # progress and keeps the queue livelock-free).
            least = min(self._tasks.values(), key=lambda t: t.remaining)
            finished = [least]
        for task in finished:
            del self._tasks[task.task_id]
        self._reschedule()
        for task in finished:
            task.done()
