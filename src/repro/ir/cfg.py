"""Basic blocks and the control-flowgraph (compiler phase 2 substrate).

A :class:`FunctionIR` owns an ordered list of named basic blocks; the CFG
edges are implied by each block's terminator labels.  Block order is
meaningful: it is the layout order used for code emission.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from .instructions import Instr, Opcode
from .values import FrameArray, IR_FLOAT, IR_INT, VReg


@dataclass
class BasicBlock:
    """A straight-line sequence of instructions ending in a terminator."""

    name: str
    instructions: List[Instr] = field(default_factory=list)

    @property
    def terminator(self) -> Optional[Instr]:
        if self.instructions and self.instructions[-1].is_terminator():
            return self.instructions[-1]
        return None

    @property
    def body(self) -> List[Instr]:
        """Instructions excluding the terminator."""
        if self.terminator is not None:
            return self.instructions[:-1]
        return list(self.instructions)

    def successors(self) -> Tuple[str, ...]:
        term = self.terminator
        if term is None:
            return ()
        return term.labels

    def __str__(self) -> str:
        lines = [f"{self.name}:"]
        lines.extend(f"  {instr}" for instr in self.instructions)
        return "\n".join(lines)


@dataclass
class FunctionIR:
    """The IR of one source function: the unit of parallel compilation."""

    name: str
    section_name: str
    param_regs: List[VReg] = field(default_factory=list)
    return_type: Optional[str] = None  # IR type or None for void
    blocks: List[BasicBlock] = field(default_factory=list)
    arrays: List[FrameArray] = field(default_factory=list)
    next_vreg_id: int = 0
    source_lines: int = 0

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"function {self.name!r} has no blocks")
        return self.blocks[0]

    def block_named(self, name: str) -> BasicBlock:
        for block in self.blocks:
            if block.name == name:
                return block
        raise KeyError(f"no block named {name!r} in function {self.name!r}")

    def block_map(self) -> Dict[str, BasicBlock]:
        return {block.name: block for block in self.blocks}

    def new_vreg(self, ir_type: str) -> VReg:
        reg = VReg(self.next_vreg_id, ir_type)
        self.next_vreg_id += 1
        return reg

    def predecessors(self) -> Dict[str, List[str]]:
        """Map from block name to the names of its CFG predecessors."""
        preds: Dict[str, List[str]] = {block.name: [] for block in self.blocks}
        for block in self.blocks:
            for succ in block.successors():
                preds[succ].append(block.name)
        return preds

    def all_instructions(self) -> Iterator[Instr]:
        for block in self.blocks:
            yield from block.instructions

    def instruction_count(self) -> int:
        return sum(len(block.instructions) for block in self.blocks)

    def frame_words(self) -> int:
        """Data-memory words needed for this function's arrays."""
        return sum(array.length for array in self.arrays)

    def remove_unreachable_blocks(self) -> int:
        """Drop blocks not reachable from entry; returns how many were cut."""
        if not self.blocks:
            return 0
        block_map = self.block_map()
        reachable = set()
        worklist = [self.blocks[0].name]
        while worklist:
            name = worklist.pop()
            if name in reachable:
                continue
            reachable.add(name)
            worklist.extend(block_map[name].successors())
        before = len(self.blocks)
        self.blocks = [b for b in self.blocks if b.name in reachable]
        return before - len(self.blocks)

    def validate(self) -> None:
        """Structural invariants; raises ValueError on violation."""
        if not self.blocks:
            raise ValueError(f"function {self.name!r} has no blocks")
        names = [b.name for b in self.blocks]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate block names in {self.name!r}")
        block_map = self.block_map()
        for block in self.blocks:
            term = block.terminator
            if term is None:
                raise ValueError(
                    f"block {block.name!r} of {self.name!r} lacks a terminator"
                )
            for instr in block.instructions[:-1]:
                if instr.is_terminator():
                    raise ValueError(
                        f"terminator {instr} in the middle of block {block.name!r}"
                    )
            for label in term.labels:
                if label not in block_map:
                    raise ValueError(
                        f"block {block.name!r} jumps to unknown block {label!r}"
                    )
            if term.op is Opcode.BR and len(term.labels) != 2:
                raise ValueError(f"br needs two labels: {term}")
            if term.op is Opcode.JMP and len(term.labels) != 1:
                raise ValueError(f"jmp needs one label: {term}")


@dataclass
class ModuleIR:
    """IR for a whole module, grouped by section (mirrors the source)."""

    name: str
    #: section name -> (first_cell, last_cell)
    section_cells: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    #: section name -> list of FunctionIR in source order
    functions: Dict[str, List[FunctionIR]] = field(default_factory=dict)

    def all_functions(self) -> Iterator[FunctionIR]:
        for fns in self.functions.values():
            yield from fns

    def function_named(self, section: str, name: str) -> FunctionIR:
        for fn in self.functions.get(section, []):
            if fn.name == name:
                return fn
        raise KeyError(f"no function {name!r} in section {section!r}")
