"""Loop unrolling for constant-trip-count innermost loops.

The paper's introduction names unrolling among the optimizations that
"increase the size of the program to be compiled and thereby make a bad
situation even worse" — i.e. it is both a code-quality lever and a
compile-time amplifier.  We implement full unrolling of innermost loops
with a single-block body and compile-time-constant bounds, and use it in
the ablation benchmarks to show how fatter functions shift the parallel
compiler's sweet spot.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir.cfg import BasicBlock, FunctionIR
from ..ir.instructions import Instr, Opcode
from ..ir.loops import find_loops, is_pipelinable
from ..ir.values import Const, VReg

#: Refuse to unroll loops with more iterations than this.
DEFAULT_MAX_TRIP = 64


def unroll_constant_loops(
    function: FunctionIR, max_trip: int = DEFAULT_MAX_TRIP
) -> int:
    """Fully unroll eligible loops; returns the number of loops unrolled.

    Unrolls one loop per round and re-runs loop detection, because
    unrolling an inner loop can make its parent innermost.
    """
    unrolled = 0
    for _ in range(50):
        if not _unroll_one(function, max_trip):
            break
        function.validate()
        unrolled += 1
    return unrolled


def _unroll_one(function: FunctionIR, max_trip: int) -> bool:
    nest = find_loops(function)
    for loop in nest.innermost_loops():
        if not is_pipelinable(function, loop):
            continue
        plan = _plan(function, loop, max_trip)
        if plan is not None:
            _apply(function, loop, *plan)
            return True
    return False


def _plan(function: FunctionIR, loop, max_trip: int) -> Optional[tuple]:
    """Find (var, low, high, step, trip, body) for a constant-bound loop.

    Matches exactly the shape lowering emits:

        preheader:  mov var, #low ; mov bound, #high ; jmp header
        header:     cond = cle/cge var, bound ; br cond -> body, exit
        body:       ... ; t = add var, #step ; mov var, t ; jmp header
    """
    header = function.block_named(loop.header)
    term = header.terminator
    if term is None or term.op is not Opcode.BR:
        return None
    header_body = header.body
    if len(header_body) != 1:
        return None
    compare = header_body[0]
    if compare.op not in (Opcode.CLE, Opcode.CGE) or compare.dest != term.operands[0]:
        return None
    var, bound = compare.operands
    if not isinstance(var, VReg) or not isinstance(bound, VReg):
        return None

    preds = function.predecessors()[loop.header]
    body_name = next(iter(loop.blocks - {loop.header}))
    outside = [p for p in preds if p not in loop.blocks]
    if len(outside) != 1 or set(preds) != {outside[0], body_name}:
        return None
    preheader = function.block_named(outside[0])
    low = _last_const_assignment(preheader, var)
    high = _last_const_assignment(preheader, bound)
    if low is None or high is None:
        return None

    body = function.block_named(body_name)
    instrs = body.body
    if len(instrs) < 2:
        return None
    add_instr, mov_instr = instrs[-2], instrs[-1]
    step = _match_step(add_instr, mov_instr, var)
    if step is None:
        return None
    if compare.op is Opcode.CLE and step <= 0:
        return None
    if compare.op is Opcode.CGE and step >= 0:
        return None
    # var and bound must not be redefined by the real body.
    payload = instrs[:-2]
    if any(i.dest in (var, bound) for i in payload):
        return None
    if step > 0:
        trip = max(0, (high - low) // step + 1) if high >= low else 0
    else:
        trip = max(0, (low - high) // (-step) + 1) if low >= high else 0
    if trip > max_trip:
        return None
    return var, low, step, trip, payload, body_name


def _last_const_assignment(block: BasicBlock, reg: VReg) -> Optional[int]:
    value: Optional[int] = None
    for instr in block.instructions:
        if instr.dest == reg:
            if instr.op in (Opcode.MOV, Opcode.LI) and isinstance(
                instr.operands[0], Const
            ):
                value = int(instr.operands[0].value)
            else:
                value = None
    return value


def _match_step(add_instr: Instr, mov_instr: Instr, var: VReg) -> Optional[int]:
    if (
        add_instr.op is Opcode.ADD
        and add_instr.operands[0] == var
        and isinstance(add_instr.operands[1], Const)
        and mov_instr.op is Opcode.MOV
        and mov_instr.dest == var
        and mov_instr.operands[0] == add_instr.dest
    ):
        return int(add_instr.operands[1].value)
    return None


def _apply(
    function: FunctionIR,
    loop,
    var: VReg,
    low: int,
    step: int,
    trip: int,
    payload: List[Instr],
    body_name: str,
) -> None:
    """Replace the loop with ``trip`` copies of the payload.

    The header becomes the unrolled straight-line block, jumping to the
    loop exit; each copy is prefixed with ``mov var, #value`` so uses of
    the induction variable see the right constant (the folder then
    propagates them).  Registers are *not* renamed: copies execute
    sequentially, so reuse is safe.
    """
    header = function.block_named(loop.header)
    exit_label = next(
        label for label in header.terminator.labels if label != body_name
    )
    unrolled: List[Instr] = []
    value = low
    for _ in range(trip):
        unrolled.append(
            Instr(Opcode.MOV, dest=var, operands=(Const(value, var.type),))
        )
        unrolled.extend(_copy(instr) for instr in payload)
        value += step
    # After a Pascal 'for', the variable holds the first out-of-range value.
    unrolled.append(Instr(Opcode.MOV, dest=var, operands=(Const(value, var.type),)))
    unrolled.append(Instr(Opcode.JMP, labels=(exit_label,)))
    header.instructions = unrolled
    function.blocks = [b for b in function.blocks if b.name != body_name]


def _copy(instr: Instr) -> Instr:
    return Instr(
        instr.op,
        dest=instr.dest,
        operands=instr.operands,
        array=instr.array,
        labels=instr.labels,
        callee=instr.callee,
    )
