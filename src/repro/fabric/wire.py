"""Framing and codecs for the fabric's JSON-lines wire protocol.

One frame per line, UTF-8 JSON objects, newline terminated — the same
shape as the compile service's protocol, shared here so both sides use
one hardened reader.  The reader enforces a frame-size bound (a peer
cannot make us buffer an unbounded line), distinguishes a clean EOF from
a connection that died mid-line, and turns malformed JSON into a typed
:class:`ProtocolError` carrying a machine-readable ``reason`` instead of
whatever exception ``json`` felt like raising.

Tasks and results are pickled, base64'd, and wrapped in a frame that
carries the blob's sha256.  Decoding re-hashes the blob before
unpickling, and results are additionally re-validated against their
sealed ``payload_digest`` (:func:`result_payload_digest`) — so a frame
that was truncated, duplicated-and-spliced, or corrupted anywhere along
the path is rejected at the crossing, never linked.

The sha256 only catches *accidental* corruption — a peer computes it
over its own blob, so it proves nothing about who sent the frame.  Two
mechanisms defend the unpickling boundary against a hostile peer:

- every blob is decoded by a **restricted unpickler** whose global
  table is a closed allowlist of the task/result dataclasses and their
  constituents (:data:`ALLOWED_PICKLE_GLOBALS`); a blob referencing any
  other callable — ``os.system``, ``subprocess.Popen``, anything — is
  rejected before it can construct, so a pickle can never be turned
  into code execution;
- when a shared secret is configured (``WARPCC_FABRIC_SECRET``, read by
  :func:`fabric_secret`), every blob additionally carries an HMAC-SHA256
  tag keyed on that secret, compared in constant time *before*
  unpickling, and hub registration requires a challenge–response proof
  of the secret before a lease (and therefore any task payload) is
  granted.

Without a secret the fabric is unauthenticated and its ports must only
be exposed on trusted networks (the defaults bind 127.0.0.1); see
INTERNALS.md §Distributed fabric.
"""

from __future__ import annotations

import base64
import hashlib
import hmac
import io
import json
import os
import pickle
import random
import socket
import threading
from typing import Dict, Iterator, Optional, Tuple

from ..asmlink.objformat import (
    AssembledFunction,
    Bundle,
    CodegenInfo,
    MachineOp,
    ObjectFunction,
    ScheduledBlock,
)
from ..driver.function_master import (
    FunctionTask,
    FunctionTaskResult,
    result_payload_digest,
)
from ..driver.results import FunctionReport
from ..ir.instructions import Opcode
from ..machine.resources import FUClass, PhysReg

#: Protocol revision; bumped on incompatible frame changes.
PROTOCOL_VERSION = 1

#: Hard bound on one frame.  Object code for a function is a few KB;
#: whole-module sources top out far below this.  Anything larger is a
#: bug or an attack, and either way we refuse to buffer it.
DEFAULT_MAX_FRAME_BYTES = 32 * 1024 * 1024


class ProtocolError(Exception):
    """A peer violated the framing contract.

    ``reason`` is the machine-readable code sent back on the wire before
    the connection is dropped: ``oversized-frame``, ``truncated-frame``,
    ``bad-json``, ``bad-request``, or ``corrupt-payload``.
    """

    def __init__(self, message: str, reason: str = "protocol-error"):
        super().__init__(message)
        self.reason = reason


class WireCorruption(ProtocolError):
    """A frame's content failed digest validation."""

    def __init__(self, message: str):
        super().__init__(message, reason="corrupt-payload")


class AuthenticationError(WireCorruption):
    """A frame failed shared-secret authentication.

    Subclasses :class:`WireCorruption` so every handler that already
    treats corruption as "drop the frame, retry elsewhere" covers the
    unauthenticated case too — an attacker's frame must never be more
    disruptive than a flipped bit.
    """

    def __init__(self, message: str):
        ProtocolError.__init__(self, message, reason="unauthenticated")


#: Environment variable holding the fleet's shared secret.  When set,
#: every blob crossing the wire must carry a matching HMAC and hub
#: registration requires a challenge-response proof of the secret.
FABRIC_SECRET_ENV = "WARPCC_FABRIC_SECRET"


def fabric_secret() -> Optional[bytes]:
    """The shared fleet secret, or None when running unauthenticated."""
    value = os.environ.get(FABRIC_SECRET_ENV, "")
    return value.encode("utf-8") if value else None


def hmac_tag(data: bytes, key: bytes) -> str:
    return hmac.new(key, data, hashlib.sha256).hexdigest()


#: Sentinel: "resolve the secret from the environment at call time".
_ENV_SECRET = object()


def read_frame_line(rfile, max_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> Optional[bytes]:
    """One newline-terminated line from a binary file object.

    Returns ``None`` on clean EOF.  Raises :class:`ProtocolError` when
    the line exceeds ``max_bytes`` (``oversized-frame``) or the stream
    ended mid-line (``truncated-frame``) — a partial read must never be
    parsed as if it were a whole frame.
    """
    line = rfile.readline(max_bytes + 1)
    if not line:
        return None
    if len(line) > max_bytes:
        raise ProtocolError(
            f"frame exceeds {max_bytes} bytes", reason="oversized-frame"
        )
    if not line.endswith(b"\n"):
        raise ProtocolError(
            "connection closed mid-frame", reason="truncated-frame"
        )
    return line


def decode_frame(line: bytes) -> dict:
    """Parse one frame line into a dict, or raise :class:`ProtocolError`."""
    try:
        frame = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed JSON frame: {exc}", reason="bad-json")
    if not isinstance(frame, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(frame).__name__}",
            reason="bad-request",
        )
    return frame


def encode_frame(frame: dict) -> bytes:
    return (json.dumps(frame, sort_keys=True) + "\n").encode("utf-8")


# ---------------------------------------------------------------------------
# Blob codec: pickle + base64 + sha256 (+ HMAC when a secret is set),
# decoded through a closed-allowlist unpickler on every crossing.
# ---------------------------------------------------------------------------

#: The only globals a fabric blob may reference: the task/result
#: dataclasses, their constituent types, and the handful of builtin
#: containers pickle resolves by name.  Everything else — any function,
#: any other class — is rejected before the unpickler can construct it,
#: which is what makes a hostile blob inert rather than remote code
#: execution.
ALLOWED_PICKLE_GLOBALS: Dict[Tuple[str, str], type] = {
    (cls.__module__, cls.__qualname__): cls
    for cls in (
        FunctionTask,
        FunctionTaskResult,
        FunctionReport,
        ObjectFunction,
        AssembledFunction,
        ScheduledBlock,
        Bundle,
        MachineOp,
        CodegenInfo,
        Opcode,
        FUClass,
        PhysReg,
        set,
        frozenset,
        complex,
        bytearray,
        range,
        slice,
    )
}


class _RestrictedUnpickler(pickle.Unpickler):
    def find_class(self, module: str, name: str):
        cls = ALLOWED_PICKLE_GLOBALS.get((module, name))
        if cls is None:
            raise WireCorruption(
                f"blob references disallowed global {module}.{name}"
            )
        return cls


def restricted_loads(blob: bytes):
    """``pickle.loads`` through the fabric's closed global allowlist."""
    return _RestrictedUnpickler(io.BytesIO(blob)).load()


def _blob_digest(blob: bytes) -> str:
    return hashlib.sha256(blob).hexdigest()


def pack_blob(payload, secret=_ENV_SECRET) -> dict:
    """Fields carrying an arbitrary picklable payload plus its digest.

    With a shared secret configured the fields also carry an HMAC tag
    keyed on it, proving the blob was produced by a secret holder."""
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    key = fabric_secret() if secret is _ENV_SECRET else secret
    fields = {
        "blob": base64.b64encode(blob).decode("ascii"),
        "sha256": _blob_digest(blob),
    }
    if key is not None:
        fields["hmac"] = hmac_tag(blob, key)
    return fields


def unpack_blob(frame: dict, expected_type: type, secret=_ENV_SECRET):
    """Decode, authenticate, digest-check, and type-check a packed blob.

    When a shared secret is configured the frame's HMAC is compared in
    constant time *before* the blob is unpickled — a peer that does not
    hold the secret cannot reach the deserializer at all.  Unpickling
    itself goes through :func:`restricted_loads`.
    """
    try:
        blob = base64.b64decode(frame["blob"].encode("ascii"), validate=True)
    except Exception as exc:  # noqa: BLE001 - anything here is corruption
        raise WireCorruption(f"undecodable blob: {exc}")
    key = fabric_secret() if secret is _ENV_SECRET else secret
    if key is not None:
        tag = frame.get("hmac")
        if not isinstance(tag, str) or not hmac.compare_digest(
            tag, hmac_tag(blob, key)
        ):
            raise AuthenticationError(
                "blob HMAC missing or wrong (peer lacks the fabric secret?)"
            )
    digest = _blob_digest(blob)
    if digest != frame.get("sha256"):
        raise WireCorruption(
            f"blob digest mismatch: frame says {frame.get('sha256')!r}, "
            f"content hashes to {digest!r}"
        )
    try:
        payload = restricted_loads(blob)
    except WireCorruption:
        raise
    except Exception as exc:  # noqa: BLE001
        raise WireCorruption(f"blob does not unpickle: {exc}")
    if not isinstance(payload, expected_type):
        raise WireCorruption(
            f"blob holds {type(payload).__name__}, "
            f"expected {expected_type.__name__}"
        )
    return payload


def encode_task(task: FunctionTask, task_id: str) -> dict:
    frame = {"op": "task", "id": task_id}
    frame.update(pack_blob(task))
    return frame


def decode_task(frame: dict) -> FunctionTask:
    return unpack_blob(frame, FunctionTask)


def encode_result(result: FunctionTaskResult, task_id: str) -> dict:
    frame = {"op": "result", "id": task_id}
    frame.update(pack_blob(result))
    return frame


def decode_result(frame: dict) -> FunctionTaskResult:
    """Decode a result frame and validate its sealed payload digest.

    The blob digest catches transport corruption; re-deriving the
    payload digest additionally catches a worker that pickled garbage —
    the same check the supervisor applies, enforced at the wire so a
    corrupt result never even enters the scheduler.
    """
    result = unpack_blob(frame, FunctionTaskResult)
    sealed = getattr(result, "payload_digest", None)
    if sealed is not None and result_payload_digest(result) != sealed:
        raise WireCorruption(
            f"result {result.section_name}.{result.function_name} fails "
            "payload-digest validation"
        )
    return result


# ---------------------------------------------------------------------------
# Connection: a socket speaking framed JSON, with thread-safe sends.
# ---------------------------------------------------------------------------


class Connection:
    """One fabric peer connection.

    ``send`` is locked (the hub's scheduler and monitor threads both
    write to node connections); ``recv`` is only ever called from the
    connection's single reader thread.
    """

    def __init__(self, sock: socket.socket, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES):
        self._sock = sock
        self._rfile = sock.makefile("rb")
        self._send_lock = threading.Lock()
        self.max_frame_bytes = max_frame_bytes

    def send(self, frame: dict) -> None:
        data = encode_frame(frame)
        if len(data) > self.max_frame_bytes:
            raise ProtocolError(
                f"refusing to send {len(data)}-byte frame",
                reason="oversized-frame",
            )
        with self._send_lock:
            self._sock.sendall(data)

    def send_raw(self, data: bytes) -> None:
        """Raw bytes on the wire; exists for fault injection only."""
        with self._send_lock:
            self._sock.sendall(data)

    def recv(self) -> Optional[dict]:
        try:
            line = read_frame_line(self._rfile, self.max_frame_bytes)
        except ValueError:
            # The file object was closed under us (shutdown, or chaos
            # killing the link mid-read): same as a clean EOF.
            return None
        if line is None:
            return None
        return decode_frame(line)

    def close(self) -> None:
        # Shut the socket down BEFORE closing the buffered reader: a
        # thread blocked in readline() holds the buffer's lock, and
        # closing the file object would wait on that lock forever.
        # shutdown() unblocks the reader at the OS level first.
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._rfile.close()
        except (OSError, ValueError):
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    @property
    def peername(self) -> str:
        try:
            host, port = self._sock.getpeername()[:2]
            return f"{host}:{port}"
        except OSError:
            return "<closed>"


# ---------------------------------------------------------------------------
# Backoff: capped exponential with jitter, shared by every reconnect loop.
# ---------------------------------------------------------------------------


def backoff_delays(
    attempts: int,
    base: float = 0.05,
    cap: float = 2.0,
    jitter: float = 0.5,
    rng: Optional[random.Random] = None,
) -> Iterator[float]:
    """Yield up to ``attempts`` sleep durations: ``base * 2**i`` capped
    at ``cap``, each scattered by ``±jitter`` (fraction) so a fleet of
    reconnecting nodes does not stampede the hub in lockstep."""
    if rng is None:
        rng = random.Random()
    for i in range(attempts):
        delay = min(cap, base * (2.0 ** i))
        spread = delay * jitter
        yield max(0.0, delay - spread + 2.0 * spread * rng.random())


def connect_with_backoff(
    host: str,
    port: int,
    *,
    attempts: int = 8,
    base: float = 0.05,
    cap: float = 2.0,
    timeout: Optional[float] = None,
    rng: Optional[random.Random] = None,
) -> socket.socket:
    """``create_connection`` retried through :func:`backoff_delays`.

    Only connection-refused/reset races are retried — those are the
    "the server is still binding its socket" window.  Anything else
    (unknown host, permission) fails fast.
    """
    import time

    last: Optional[Exception] = None
    delays = [0.0]
    delays.extend(backoff_delays(attempts - 1, base=base, cap=cap, rng=rng))
    for delay in delays:
        if delay:
            time.sleep(delay)
        try:
            return socket.create_connection((host, port), timeout=timeout)
        except (ConnectionRefusedError, ConnectionResetError) as exc:
            last = exc
    assert last is not None
    raise last
