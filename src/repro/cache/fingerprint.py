"""Per-function compilation fingerprints.

The unit of caching is one function's phase-2/3 output, so the
fingerprint must cover *exactly* the inputs those phases read — no more
(or an edit to one function would invalidate its neighbours), no less
(or a stale artifact could be served).  Phases 2-3 of one function see:

- the function's own checked AST (:func:`_feed_function` hashes a
  normalized serialization that ignores absolute source positions, so
  editing function A does not shift-invalidate every function below it;
  the function's own *line count* is included because it lands in the
  :class:`~repro.driver.results.FunctionReport`);
- the *signatures* of every function in its section — lowering resolves
  calls against them (``FunctionLowerer._callees``) — but not their
  bodies: the compiler "performs only minimal inter-procedural
  optimizations" (§3.1), which is the very fact that makes per-function
  caching sound;
- the section's identity and cell range, the optimization level, the
  target array's cell count, and the task granularity;
- a compiler-version salt, so upgrading the compiler never serves
  artifacts produced by old code.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional, Tuple

from ..lang import ast_nodes as ast

#: Bump whenever the artifact format or the meaning of a fingerprint
#: changes; old entries become unreachable rather than wrong.
#: 2: FunctionTaskResult grew the pre-assembled payload (distributed
#: assembly) — entries pickled under schema 1 would revive without it.
#: 3: fingerprints grew the variant-search codegen knobs (unroll budget,
#: modulo-scheduling II budget) — a variant artifact must never be
#: served where a default compile is expected, and vice versa.
CACHE_SCHEMA_VERSION = 3

_SEP = b"\x1f"  # field separator: cannot appear in the encoded text


def compiler_salt() -> str:
    """Version salt mixed into every fingerprint."""
    from .. import __version__

    return f"{__version__}+schema{CACHE_SCHEMA_VERSION}"


class _Hasher:
    """Feeds length-unambiguous tokens into a sha256."""

    def __init__(self) -> None:
        self._h = hashlib.sha256()

    def feed(self, *tokens: object) -> None:
        for token in tokens:
            self._h.update(str(token).encode("utf-8"))
            self._h.update(_SEP)

    def hexdigest(self) -> str:
        return self._h.hexdigest()


def _feed_expr(h: _Hasher, expr: Optional[ast.Expr]) -> None:
    if expr is None:
        h.feed("none")
        return
    h.feed(type(expr).__name__)
    if isinstance(expr, ast.IntLiteral):
        h.feed(expr.value)
    elif isinstance(expr, ast.FloatLiteral):
        # repr() round-trips floats exactly; str() would too on py3 but
        # repr makes the intent explicit.
        h.feed(repr(expr.value))
    elif isinstance(expr, ast.VarRef):
        h.feed(expr.name)
    elif isinstance(expr, ast.IndexExpr):
        _feed_expr(h, expr.base)
        _feed_expr(h, expr.index)
    elif isinstance(expr, ast.UnaryExpr):
        h.feed(expr.op)
        _feed_expr(h, expr.operand)
    elif isinstance(expr, ast.BinaryExpr):
        h.feed(expr.op)
        _feed_expr(h, expr.left)
        _feed_expr(h, expr.right)
    elif isinstance(expr, ast.CallExpr):
        h.feed(expr.callee, len(expr.args))
        for arg in expr.args:
            _feed_expr(h, arg)
    else:  # pragma: no cover - exhaustive over AST expressions
        raise TypeError(f"unhandled expression {type(expr).__name__}")


def _feed_stmt(h: _Hasher, stmt: ast.Stmt) -> None:
    h.feed(type(stmt).__name__)
    if isinstance(stmt, ast.AssignStmt):
        _feed_expr(h, stmt.target)
        _feed_expr(h, stmt.value)
    elif isinstance(stmt, ast.IfStmt):
        _feed_expr(h, stmt.condition)
        _feed_body(h, stmt.then_body)
        _feed_body(h, stmt.else_body)
    elif isinstance(stmt, ast.ForStmt):
        h.feed(stmt.var)
        _feed_expr(h, stmt.low)
        _feed_expr(h, stmt.high)
        _feed_expr(h, stmt.step)
        _feed_body(h, stmt.body)
    elif isinstance(stmt, ast.WhileStmt):
        _feed_expr(h, stmt.condition)
        _feed_body(h, stmt.body)
    elif isinstance(stmt, (ast.ReturnStmt, ast.SendStmt)):
        _feed_expr(h, stmt.value)
    elif isinstance(stmt, ast.ReceiveStmt):
        _feed_expr(h, stmt.target)
    elif isinstance(stmt, ast.CallStmt):
        _feed_expr(h, stmt.call)
    else:  # pragma: no cover - exhaustive over AST statements
        raise TypeError(f"unhandled statement {type(stmt).__name__}")


def _feed_body(h: _Hasher, stmts) -> None:
    h.feed(len(stmts))
    for stmt in stmts:
        _feed_stmt(h, stmt)


def _feed_signature(h: _Hasher, fn: ast.Function) -> None:
    """Name, parameter types, return type: what callers' lowering sees."""
    h.feed(fn.name, len(fn.params))
    for param in fn.params:
        h.feed(str(param.type))
    h.feed(str(fn.return_type))


def _feed_function(h: _Hasher, fn: ast.Function) -> None:
    h.feed(fn.name, fn.line_count(), str(fn.return_type))
    h.feed(len(fn.params))
    for param in fn.params:
        h.feed(param.name, str(param.type))
    h.feed(len(fn.locals))
    for decl in fn.locals:
        h.feed(decl.name, str(decl.type))
    _feed_body(h, fn.body)


def function_fingerprint(
    section: ast.Section,
    function: ast.Function,
    *,
    opt_level: int,
    cell_count: int,
    granularity: str = "function",
    salt: Optional[str] = None,
    unroll_budget: int = 0,
    ii_budget: int = 0,
) -> str:
    """Content fingerprint for one function's phase-2/3 artifact.

    ``unroll_budget``/``ii_budget`` are the variant-search codegen knobs
    (:mod:`repro.search.space`); the defaults (0, 0) are the standard
    pipeline, so ordinary compiles and variant compiles can never serve
    each other's artifacts.
    """
    h = _Hasher()
    h.feed(
        salt if salt is not None else compiler_salt(),
        opt_level,
        unroll_budget,
        ii_budget,
        cell_count,
        granularity,
        section.name,
        section.first_cell,
        section.last_cell,
    )
    # Sibling signatures, in source order (order is part of the section's
    # identity; lowering's callee table is name-keyed but a reordering
    # also reorders spans, which we deliberately do not hash).
    h.feed(len(section.functions))
    for sibling in section.functions:
        _feed_signature(h, sibling)
    _feed_function(h, function)
    return h.hexdigest()


def module_fingerprints(
    module: ast.Module,
    *,
    opt_level: int,
    cell_count: int,
    granularity: str = "function",
    salt: Optional[str] = None,
    unroll_budget: int = 0,
    ii_budget: int = 0,
) -> Dict[Tuple[str, str], str]:
    """``(section name, function name) -> fingerprint`` for a module."""
    fingerprints: Dict[Tuple[str, str], str] = {}
    for section in module.sections:
        for function in section.functions:
            fingerprints[(section.name, function.name)] = function_fingerprint(
                section,
                function,
                opt_level=opt_level,
                cell_count=cell_count,
                granularity=granularity,
                salt=salt,
                unroll_budget=unroll_budget,
                ii_budget=ii_budget,
            )
    return fingerprints
