"""Task scheduling strategies for the parallel compiler.

The paper "adopt[s] a simple first-come-first-served strategy that
distributes the tasks over the available processors" (§3.3) and later
improves it for the user program with a cost heuristic: "a combination of
lines of code and loop nesting can serve as approximation of the
compilation time that is the basis for the scheduler to perform load
balancing, and since the master process parses the program to determine
the partitioning, this information is readily available" (§4.3).

Both strategies are implemented here, as pure functions from function
reports to an :class:`Assignment`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Sequence

from ..driver.results import FunctionReport
from ..lang import ast_nodes as ast

#: Estimates the relative compile cost of a function before compiling it.
CostEstimator = Callable[[FunctionReport], float]


@dataclass
class Assignment:
    """Which machine compiles which functions, in what order.

    ``per_machine[m]`` is the ordered list of indices into the profile's
    function list that machine ``m`` compiles back-to-back.
    """

    per_machine: List[List[int]] = field(default_factory=list)

    @property
    def processors(self) -> int:
        return len(self.per_machine)

    def machine_of(self, function_index: int) -> int:
        for machine, tasks in enumerate(self.per_machine):
            if function_index in tasks:
                return machine
        raise KeyError(f"function {function_index} not assigned")

    def nonempty_machines(self) -> int:
        return sum(1 for tasks in self.per_machine if tasks)


def lines_and_nesting_cost(report: FunctionReport) -> float:
    """The paper's §4.3 heuristic: lines of code combined with loop
    nesting.  ``loop_weight`` is instruction count scaled by 4**depth, so
    blending it with raw lines captures both size and nest depth."""
    return report.source_lines + 0.05 * report.loop_weight


def work_units_cost(report: FunctionReport) -> float:
    """An oracle estimator (exact measured work); used in ablations to
    bound how much better a perfect estimator could do."""
    return float(report.work_units)


def _ast_loop_weight(stmts: List[ast.Stmt], depth: int = 0) -> int:
    """Statement count scaled by 4**nesting-depth, from the AST alone."""
    total = 0
    for stmt in stmts:
        total += 4 ** depth
        if isinstance(stmt, (ast.ForStmt, ast.WhileStmt)):
            total += _ast_loop_weight(stmt.body, depth + 1)
        elif isinstance(stmt, ast.IfStmt):
            total += _ast_loop_weight(stmt.then_body, depth)
            total += _ast_loop_weight(stmt.else_body, depth)
    return total


def ast_cost_hint(function: ast.Function) -> float:
    """The §4.3 estimate computed *before* compilation.

    The master has only the parse when it dispatches tasks — "since the
    master process parses the program to determine the partitioning, this
    information is readily available" — so this mirrors
    :func:`lines_and_nesting_cost` using AST-level lines and nesting.
    """
    return function.line_count() + 0.05 * _ast_loop_weight(function.body)


def provided_task_costs(tasks: Sequence, provider) -> List[float]:
    """Per-task costs from a pluggable cost provider.

    ``provider`` is any ``Callable[[FunctionTask], float]`` (e.g. a
    learned :class:`~repro.predict.observe.CostModel`); ``None`` — and
    any provider error — yields the task's static §4.3 ``cost_hint``,
    so a broken model can only cost scheduling quality, never a build.
    """
    if provider is None:
        return [float(task.cost_hint) for task in tasks]
    costs: List[float] = []
    for task in tasks:
        try:
            costs.append(float(provider(task)))
        except Exception:
            costs.append(float(task.cost_hint))
    return costs


def batch_tasks_by_cost(
    costs: Sequence[float], batches: int
) -> List[List[int]]:
    """Group task indices into at most ``batches`` cost-balanced chunks.

    Reuses the §4.3 LPT grouping: heaviest estimate first onto the
    lightest chunk, each chunk kept in source order, empty chunks
    dropped.  Backends submit each chunk as one worker round-trip, so
    tiny functions stop paying one IPC hop apiece.
    """
    if batches < 1:
        raise ValueError(f"need at least one batch, got {batches}")
    if not costs:
        return []
    assignment = grouped_lpt_assignment(
        list(costs), batches, estimator=float
    )
    return [chunk for chunk in assignment.per_machine if chunk]


def one_function_per_processor(reports: List[FunctionReport]) -> Assignment:
    """The paper's default: as many processors as functions."""
    return Assignment(per_machine=[[i] for i in range(len(reports))])


def fcfs_assignment(
    reports: List[FunctionReport],
    processors: int,
    estimator: CostEstimator = lines_and_nesting_cost,
) -> Assignment:
    """First-come-first-served onto ``processors`` machines.

    Tasks are dispatched in source order; each goes to the machine that
    frees up earliest (per the estimator) — which is what a FCFS queue of
    ready workstations converges to.
    """
    if processors < 1:
        raise ValueError(f"need at least one processor, got {processors}")
    loads = [0.0] * processors
    assignment = Assignment(per_machine=[[] for _ in range(processors)])
    for index, report in enumerate(reports):
        target = min(range(processors), key=lambda m: (loads[m], m))
        assignment.per_machine[target].append(index)
        loads[target] += estimator(report)
    return assignment


def grouped_lpt_assignment(
    reports: List[FunctionReport],
    processors: int,
    estimator: CostEstimator = lines_and_nesting_cost,
) -> Assignment:
    """Load-balanced grouping (§4.3): longest-processing-time-first.

    Small functions are grouped onto shared processors so that "the same
    speedup can be observed using fewer processors".
    """
    if processors < 1:
        raise ValueError(f"need at least one processor, got {processors}")
    order = sorted(
        range(len(reports)),
        key=lambda i: (-estimator(reports[i]), i),
    )
    loads = [0.0] * processors
    assignment = Assignment(per_machine=[[] for _ in range(processors)])
    for index in order:
        target = min(range(processors), key=lambda m: (loads[m], m))
        assignment.per_machine[target].append(index)
        loads[target] += estimator(reports[index])
    # Keep each machine's queue in source order (deterministic artifacts).
    for tasks in assignment.per_machine:
        tasks.sort()
    return assignment
