"""Figure 3: execution times for f_tiny.

Paper: "The parallel elapsed time is considerably larger than the
sequential elapsed time.  This indicates that for small functions,
parallel compilation is of no use."
"""

from figures_common import times_figure, write_figure
from repro.metrics.experiments import measure_pair
from repro.workloads.sizes import FUNCTION_COUNTS


def test_fig03_times_tiny(benchmark, results_dir):
    fig = benchmark(times_figure, "tiny", "Figure 3")
    write_figure(results_dir, fig)

    seq = fig.series_named("elapsed seq")
    par = fig.series_named("elapsed par")
    for n in FUNCTION_COUNTS:
        # Parallel compilation of tiny functions always loses.
        assert par.points[n] > seq.points[n]
    # The loss grows with the number of functions.
    ratios = [par.points[n] / seq.points[n] for n in FUNCTION_COUNTS]
    assert ratios[-1] > ratios[0]
    # CPU time (per processor) stays below elapsed time.
    cpu = fig.series_named("cpu par")
    for n in FUNCTION_COUNTS:
        assert cpu.points[n] <= par.points[n]
