"""Local execution backends: serial (in-process) and multiprocessing.

The multiprocessing backend is the real thing: each function master is an
OS process, compilation proceeds concurrently, and on a multi-core host
the parallel compiler genuinely finishes sooner — the modern analogue of
farming function masters out to idle workstations.

Tasks are dispatched in size-aware batches (§4.3 cost estimates, see
:func:`repro.parallel.schedule.batch_tasks_by_cost`) rather than one IPC
round-trip per task, and both backends benefit from the per-worker
phase-1 cache in :mod:`repro.driver.function_master`.  For a pool that
stays warm *across* compilations, see
:class:`repro.parallel.warm_pool.WarmPoolBackend`.
"""

from __future__ import annotations

import concurrent.futures
import os
from typing import Iterator, List, Optional

from ..driver.function_master import (
    FunctionTask,
    FunctionTaskResult,
    run_compile_batch,
    run_compile_task,
)
from .schedule import batch_tasks_by_cost, provided_task_costs


class SerialBackend:
    """Runs every task in-process, in order (tests and debugging)."""

    def __init__(self):
        self._worker_count = 1

    @property
    def worker_count(self) -> int:
        return self._worker_count

    @property
    def effective_worker_count(self) -> int:
        return self._worker_count

    def run_tasks(self, tasks: List[FunctionTask]) -> List[FunctionTaskResult]:
        return list(self.run_tasks_streaming(tasks))

    def run_tasks_streaming(
        self, tasks: List[FunctionTask]
    ) -> Iterator[FunctionTaskResult]:
        for task in tasks:
            yield from run_compile_task(task)


class ProcessPoolBackend:
    """One OS process per concurrent function master.

    The executor is created per ``run_tasks`` call (cold start every
    compilation, like the paper's fresh Lisp processes); tasks are
    submitted as cost-balanced batches of ``batches_per_worker`` chunks
    per worker so tiny functions share IPC round-trips.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        batches_per_worker: int = 4,
    ):
        if max_workers is None:
            max_workers = max(1, (os.cpu_count() or 2) - 1)
        if max_workers < 1:
            raise ValueError(f"need at least one worker, got {max_workers}")
        if batches_per_worker < 1:
            raise ValueError(
                f"need at least one batch per worker, got {batches_per_worker}"
            )
        self._max_workers = max_workers
        self._batches_per_worker = batches_per_worker
        self._last_effective_workers: Optional[int] = None
        #: pluggable LPT cost seam; None packs batches by the static
        #: §4.3 hint (see schedule.provided_task_costs)
        self.cost_provider = None

    @property
    def worker_count(self) -> int:
        return self._max_workers

    @property
    def effective_worker_count(self) -> int:
        """Workers the last ``run_tasks`` actually used.

        ``max_workers`` silently caps at the task count; reporting the
        capped value keeps speedup denominators honest."""
        if self._last_effective_workers is None:
            return self._max_workers
        return self._last_effective_workers

    def run_tasks(self, tasks: List[FunctionTask]) -> List[FunctionTaskResult]:
        return list(self.run_tasks_streaming(tasks))

    def run_tasks_streaming(
        self, tasks: List[FunctionTask]
    ) -> Iterator[FunctionTaskResult]:
        """Yield results batch-by-batch as workers complete them."""
        if not tasks:
            return
        workers = min(self._max_workers, len(tasks))
        self._last_effective_workers = workers
        chunks = batch_tasks_by_cost(
            provided_task_costs(tasks, self.cost_provider),
            workers * self._batches_per_worker,
        )
        batches = [[tasks[i] for i in chunk] for chunk in chunks]
        with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(run_compile_batch, batch) for batch in batches
            ]
            for future in concurrent.futures.as_completed(futures):
                yield from future.result()
