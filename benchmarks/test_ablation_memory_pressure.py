"""Ablation: sequential-compiler memory pressure on/off.

The paper's explanation for negative system overhead (§4.2.3) and
superlinear user-program speedup (§4.3) is the sequential compiler's
memory appetite: "the sequential compiler processes a program that does
not fit into the local memory and system space of a single workstation.
Extensive garbage collection and swapping are the result."

This ablation turns the mechanism off (no retention, no GC/paging) and
up (heavy retention) and shows both paper phenomena appear and disappear
with it.
"""

import dataclasses

from figures_common import write_figure
from repro.cluster.cluster import ClusterSimulation
from repro.cluster.costs import CostModel
from repro.metrics.experiments import (
    measure_pair,
    measure_user_program,
    profile_for,
    user_program_profile,
)
from repro.metrics.overhead import compute_overhead
from repro.metrics.series import Figure


def no_pressure() -> CostModel:
    return CostModel(
        retained_fraction=0.0,
        held_object_memory_per_bundle=0.0,
        gc_coeff=0.0,
        paging_cpu_coeff=0.0,
        paging_words_per_excess_second=0.0,
    )


def heavy_pressure() -> CostModel:
    return CostModel(
        retained_fraction=1.0,
        held_object_memory_per_bundle=1.5,
        retained_cap=1e9,
        gc_coeff=0.6,
        gc_onset=0.45,
    )


def build_figure() -> Figure:
    fig = Figure(
        "Ablation: memory pressure",
        "Sequential memory pressure vs overhead decomposition",
        "configuration",
        "value",
        xs=["off", "default", "heavy"],
    )
    sys_overhead = fig.new_series("f_medium x2 system overhead (s)")
    user_p2 = fig.new_series("user program speedup @2")
    for label, costs in (
        ("off", no_pressure()),
        ("default", None),
        ("heavy", heavy_pressure()),
    ):
        pair = measure_pair("medium", 2, costs=costs)
        ovh = compute_overhead(pair.sequential, pair.parallel, pair.workers)
        sys_overhead.add(label, ovh.system_overhead)
        user_p2.add(
            label, measure_user_program(2, costs=costs).speedup
        )
    return fig


def test_memory_pressure_drives_negative_system_overhead(
    benchmark, results_dir
):
    fig = benchmark(build_figure)
    write_figure(results_dir, fig)

    sys_overhead = fig.series_named("f_medium x2 system overhead (s)")
    user_p2 = fig.series_named("user program speedup @2")

    # With the mechanism off, system overhead is strictly positive and
    # the 2-processor user-program speedup is sublinear.
    assert sys_overhead.points["off"] > 0
    assert user_p2.points["off"] < 2.0

    # More pressure -> lower system overhead, higher 2-way speedup.
    assert (
        sys_overhead.points["heavy"]
        < sys_overhead.points["default"]
        < sys_overhead.points["off"]
    )
    assert (
        user_p2.points["heavy"]
        > user_p2.points["default"]
        > user_p2.points["off"]
    )

    # Under heavy pressure the paper's phenomena appear outright:
    # negative system overhead and superlinear 2-processor speedup.
    assert sys_overhead.points["heavy"] < 0
    assert user_p2.points["heavy"] > 2.0
