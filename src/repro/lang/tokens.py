"""Token definitions for the W2-like Warp source language.

The language mirrors the structure described in the paper (§3.1): a *module*
contains *section programs*, each section program contains one or more
*functions*.  Within functions the language is a small Pascal-like loop
language — the workloads the Warp compiler was built for are deeply nested
loop kernels.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union

from .source import Span


class TokenKind(enum.Enum):
    # Literals and identifiers
    IDENT = "identifier"
    INT_LIT = "integer literal"
    FLOAT_LIT = "float literal"

    # Keywords
    MODULE = "module"
    SECTION = "section"
    CELLS = "cells"
    FUNCTION = "function"
    VAR = "var"
    BEGIN = "begin"
    END = "end"
    IF = "if"
    THEN = "then"
    ELSE = "else"
    FOR = "for"
    TO = "to"
    BY = "by"
    DO = "do"
    WHILE = "while"
    RETURN = "return"
    SEND = "send"
    RECEIVE = "receive"
    INT = "int"
    FLOAT = "float"
    ARRAY = "array"
    OF = "of"
    AND = "and"
    OR = "or"
    NOT = "not"

    # Punctuation and operators
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    COMMA = ","
    SEMICOLON = ";"
    COLON = ":"
    ASSIGN = ":="
    DOTDOT = ".."
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    # End of file
    EOF = "end of file"


KEYWORDS = {
    "module": TokenKind.MODULE,
    "section": TokenKind.SECTION,
    "cells": TokenKind.CELLS,
    "function": TokenKind.FUNCTION,
    "var": TokenKind.VAR,
    "begin": TokenKind.BEGIN,
    "end": TokenKind.END,
    "if": TokenKind.IF,
    "then": TokenKind.THEN,
    "else": TokenKind.ELSE,
    "for": TokenKind.FOR,
    "to": TokenKind.TO,
    "by": TokenKind.BY,
    "do": TokenKind.DO,
    "while": TokenKind.WHILE,
    "return": TokenKind.RETURN,
    "send": TokenKind.SEND,
    "receive": TokenKind.RECEIVE,
    "int": TokenKind.INT,
    "float": TokenKind.FLOAT,
    "array": TokenKind.ARRAY,
    "of": TokenKind.OF,
    "and": TokenKind.AND,
    "or": TokenKind.OR,
    "not": TokenKind.NOT,
}

#: Multi-character operators, longest first so the lexer can try them in order.
MULTI_CHAR_OPERATORS = [
    (":=", TokenKind.ASSIGN),
    ("..", TokenKind.DOTDOT),
    ("<=", TokenKind.LE),
    (">=", TokenKind.GE),
    ("<>", TokenKind.NE),
]

SINGLE_CHAR_OPERATORS = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    ",": TokenKind.COMMA,
    ";": TokenKind.SEMICOLON,
    ":": TokenKind.COLON,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "%": TokenKind.PERCENT,
    "=": TokenKind.EQ,
    "<": TokenKind.LT,
    ">": TokenKind.GT,
}


@dataclass(frozen=True)
class Token:
    """One lexeme with its kind, source text, decoded value, and span."""

    kind: TokenKind
    text: str
    span: Span
    value: Union[int, float, str, None] = None

    def __str__(self) -> str:
        return f"{self.kind.name}({self.text!r})"
