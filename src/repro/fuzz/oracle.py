"""Differential oracle: one module, every pipeline, one verdict.

The sequential compiler is ground truth (the paper's own validation
strategy — recombined parallel output must be bit-identical to it, §3.2;
Jangda's parallel-parsing work and ComPar's multi-configuration harness
validate the same way).  The oracle compiles a module through every
registered pipeline variant and classifies any disagreement:

- ``digest``      — a pipeline's download module is not bit-identical;
- ``diagnostic``  — a pipeline reports different diagnostics;
- ``semantic``    — the compiled module, executed on the Warp simulator,
  disagrees with the reference AST interpreter;
- ``crash``       — a pipeline raised instead of compiling.

Pipeline variants (the matrix):

========================  ==================================================
``sequential``            :class:`~repro.driver.sequential.SequentialCompiler`
``parallel``              master/section/function hierarchy, in-process
``parallel-barrier``      same, forced through the barrier (non-streaming) API
``section``               section-granularity dispatch (§3.1's original plan)
``warm-pool``             persistent multiprocess warm-worker farm
``fabric``                distributed fabric: a loopback hub plus two
                          in-process worker-node agents behind
                          :class:`~repro.fabric.hub.RemoteBackend`
``cache``                 cache-cold then cache-warm compile, shared store
``phase1``                parallel+incremental front end (boundary scan,
                          concurrent per-function parse+sema, parse cache),
                          cold then warm
``supervised``            deadline/hedge/quarantine supervision, no faults
``chaos``                 supervision over seeded crash/hang/corrupt faults
``search``                optimization-variant search: cold + warm runs must
                          agree, the winner module must be reproducible by
                          direct compilation at the winning configs, and the
                          shipped module must match the baseline's simulated
                          outputs at no more cycles
``predict``               watch-mode speculation: a compile service with the
                          learned cost model speculatively precompiles the
                          module, then a compile sharing its artifact cache
                          must be served from cache and still match the
                          sequential digest bit-for-bit
========================  ==================================================

The ``cache`` variant additionally asserts version isolation: after the
warm run it re-fingerprints the module under a bumped compiler salt and
verifies the cache serves *zero* cross-version entries.

The oracle also carries an explicit **test-only miscompile hook**
(``inject_miscompile="pipeline:function"``): when the named pipeline
compiles a module containing the named function, the observed digest is
perturbed.  It exists so the catch → minimize → corpus workflow itself
is testable end to end; nothing sets it outside tests and the CLI's
``--inject-miscompile`` testing flag.
"""

from __future__ import annotations

import importlib.util
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..cache import ArtifactCache, compiler_salt, module_fingerprints
from ..driver.master import ParallelCompiler
from ..driver.sequential import SequentialCompiler
from ..lang.diagnostics import CompileError, DiagnosticSink
from ..lang.parser import parse_text
from ..lang.sema import check_module
from ..machine.warp_array import WarpArrayModel
from ..parallel.local import SerialBackend
from ..warpsim.array_runner import run_module
from .generator import GeneratedProgram, config_for_size_class, generate_program

#: All pipeline variants, in the order they are checked.
ALL_PIPELINES: Tuple[str, ...] = (
    "sequential",
    "parallel",
    "parallel-barrier",
    "section",
    "warm-pool",
    "fabric",
    "cache",
    "phase1",
    "phase4",
    "supervised",
    "chaos",
    "search",
    "predict",
)

#: The in-process subset — safe anywhere: no worker processes spawned,
#: no sockets opened (``fabric`` runs loopback TCP; ``warm-pool`` forks).
#: ``search`` is also excluded: it compiles the module once per variant
#: config plus one simulation per candidate — the dedicated CI search
#: job and ``--pipelines all`` cover it.  ``predict`` spins up a full
#: compile service (threads, watch speculation) per check — the
#: dedicated CI predict job runs it.
DEFAULT_PIPELINES: Tuple[str, ...] = tuple(
    name
    for name in ALL_PIPELINES
    if name not in ("warm-pool", "fabric", "search", "predict")
)

MISMATCH_KINDS = ("digest", "diagnostic", "semantic", "crash")


class _BarrierOnly:
    """Hide a backend's streaming surface: forces the barrier API."""

    def __init__(self, inner):
        self._inner = inner

    @property
    def worker_count(self) -> int:
        return self._inner.worker_count

    @property
    def effective_worker_count(self) -> int:
        return getattr(
            self._inner, "effective_worker_count", self._inner.worker_count
        )

    def run_tasks(self, tasks):
        return self._inner.run_tasks(tasks)


@dataclass
class Mismatch:
    """One classified disagreement between pipelines."""

    kind: str  # one of MISMATCH_KINDS
    pipeline: str
    detail: str

    def describe(self) -> str:
        return f"[{self.kind}] {self.pipeline}: {self.detail}"


@dataclass
class PipelineOutcome:
    pipeline: str
    digest: Optional[str] = None
    diagnostics: Optional[str] = None
    error: Optional[str] = None


@dataclass
class OracleReport:
    """Everything the oracle observed for one module."""

    source: str
    inputs: List[float]
    outcomes: List[PipelineOutcome] = field(default_factory=list)
    mismatches: List[Mismatch] = field(default_factory=list)
    reference_outputs: Optional[List[float]] = None
    executed_outputs: Optional[List[float]] = None
    semantic_checked: bool = False

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def kinds(self) -> List[str]:
        return sorted({m.kind for m in self.mismatches})

    def describe(self) -> List[str]:
        if self.ok:
            return ["all pipelines agree"]
        return [m.describe() for m in self.mismatches]


@dataclass
class OracleConfig:
    pipelines: Sequence[str] = DEFAULT_PIPELINES
    opt_level: int = 2
    cell_count: int = 10
    #: semantic check: execute on warpsim vs the reference interpreter
    #: (tests/reference_interp.py); silently skipped if unavailable.
    check_semantics: bool = True
    max_cycles: int = 2_000_000
    #: fuel for the reference interpreter — reduced candidates can loop
    #: forever; the trap is classified as "outside the defined corner"
    reference_max_steps: int = 200_000
    #: chaos variant: fault seed mixed with the program seed
    chaos_seed: int = 0
    #: TEST-ONLY: "pipeline:function" — perturb the named pipeline's
    #: digest when the module defines the named function.
    inject_miscompile: Optional[str] = None


def _load_reference_interpreter() -> Optional[Callable]:
    """``interpret_module`` from tests/reference_interp.py, if present.

    The reference interpreter deliberately lives with the tests (it is
    the oracle's *independent* semantics, not part of the compiler); in
    an installed-package context without the tests tree the semantic leg
    of the oracle is skipped.
    """
    try:  # running under pytest: the tests dir is on sys.path
        from reference_interp import interpret_module  # type: ignore

        return interpret_module
    except ImportError:
        pass
    candidate = (
        Path(__file__).resolve().parents[3] / "tests" / "reference_interp.py"
    )
    if not candidate.exists():
        return None
    spec = importlib.util.spec_from_file_location(
        "_warpcc_reference_interp", candidate
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.interpret_module


class DifferentialOracle:
    """Compiles one module through every pipeline variant and compares.

    Holds the expensive resources (warm worker pool, reference
    interpreter) across :meth:`check` calls so a campaign amortizes
    them; call :meth:`shutdown` (or use as a context manager) when done.
    """

    def __init__(self, config: Optional[OracleConfig] = None):
        self.config = config or OracleConfig()
        unknown = set(self.config.pipelines) - set(ALL_PIPELINES)
        if unknown:
            raise ValueError(
                f"unknown pipelines {sorted(unknown)}; "
                f"choose from {list(ALL_PIPELINES)}"
            )
        self._warm_pool = None
        self._fabric = None
        self._reference = (
            _load_reference_interpreter()
            if self.config.check_semantics
            else None
        )

    # -- lifecycle ----------------------------------------------------

    def __enter__(self) -> "DifferentialOracle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def shutdown(self) -> None:
        if self._warm_pool is not None:
            self._warm_pool.shutdown()
            self._warm_pool = None
        if self._fabric is not None:
            hub, agents, _ = self._fabric
            for agent in agents:
                agent.stop()
            hub.close()
            self._fabric = None

    def _warm_backend(self):
        if self._warm_pool is None:
            from ..parallel.warm_pool import WarmPoolBackend

            self._warm_pool = WarmPoolBackend(max_workers=2)
        return self._warm_pool

    def _fabric_backend(self):
        """A loopback fabric — hub plus two serial-backend node agents —
        shared across checks so a campaign amortizes the TCP setup."""
        if self._fabric is None:
            from ..fabric import FabricHub, RemoteBackend, WorkerNodeAgent

            hub = FabricHub(lease_ttl=5.0, heartbeat_interval=0.5)
            agents = [
                WorkerNodeAgent(
                    hub.address,
                    SerialBackend(),
                    node_id=f"oracle-node-{i}",
                ).start()
                for i in range(2)
            ]
            if not hub.wait_for_nodes(2, timeout=10.0):
                raise OracleInvariantError(
                    "fabric nodes failed to register with the hub"
                )
            self._fabric = (hub, agents, RemoteBackend(hub))
        return self._fabric[2]

    # -- compilation legs ---------------------------------------------

    def _array(self) -> WarpArrayModel:
        return WarpArrayModel(cell_count=self.config.cell_count)

    def _compile_sequential(self, source: str):
        return SequentialCompiler(
            array=self._array(), opt_level=self.config.opt_level
        ).compile(source)

    def _compile_variant(self, name: str, source: str, seed: int):
        """One ParallelCompiler run for pipeline ``name``; returns the
        CompilationResult (the ``cache`` variant returns the warm run)."""
        kwargs = dict(array=self._array(), opt_level=self.config.opt_level)
        if name == "parallel":
            return ParallelCompiler(backend=SerialBackend(), **kwargs).compile(
                source
            )
        if name == "parallel-barrier":
            return ParallelCompiler(
                backend=_BarrierOnly(SerialBackend()), **kwargs
            ).compile(source)
        if name == "section":
            return ParallelCompiler(
                backend=SerialBackend(), granularity="section", **kwargs
            ).compile(source)
        if name == "warm-pool":
            return ParallelCompiler(
                backend=self._warm_backend(), **kwargs
            ).compile(source)
        if name == "fabric":
            return ParallelCompiler(
                backend=self._fabric_backend(), **kwargs
            ).compile(source)
        if name == "cache":
            return self._compile_cache_variant(source, **kwargs)
        if name == "search":
            return self._compile_search_variant(source, seed, **kwargs)
        if name == "predict":
            return self._compile_predict_variant(source, **kwargs)
        if name == "phase1":
            return self._compile_phase1_variant(source, **kwargs)
        if name == "phase4":
            return self._compile_phase4_variant(source, **kwargs)
        if name == "supervised":
            from ..parallel.supervisor import SupervisedBackend

            backend = SupervisedBackend(SerialBackend(), hedge_after=None)
            return ParallelCompiler(backend=backend, **kwargs).compile(source)
        if name == "chaos":
            from ..parallel.fault_tolerance import ChaosBackend
            from ..parallel.supervisor import SupervisedBackend

            chaos = ChaosBackend(
                SerialBackend(),
                workers=3,
                seed=self.config.chaos_seed ^ seed,
                crash_rate=0.25,
                hang_rate=0.15,
                hang_delay=0.005,
                corrupt_rate=0.15,
                max_failures_per_task=2,
            )
            # Deadlines off: under CI load a wall-clock deadline expiry
            # would add retries, making the fault replay timing-dependent.
            backend = SupervisedBackend(
                chaos,
                task_timeout=0,
                hedge_after=None,
                max_attempts=6,
                poison_threshold=6,
            )
            return ParallelCompiler(backend=backend, **kwargs).compile(source)
        raise ValueError(f"unknown pipeline {name!r}")

    def _compile_cache_variant(self, source: str, *, array, opt_level):
        """Cold compile, warm recompile, digest from the warm run; plus
        the cross-version salt isolation assertion."""
        with tempfile.TemporaryDirectory(prefix="warpcc-fuzz-cache-") as tmp:
            cache = ArtifactCache(tmp)
            compiler = ParallelCompiler(
                backend=SerialBackend(),
                array=array,
                opt_level=opt_level,
                cache=cache,
            )
            cold = compiler.compile(source)
            warm = compiler.compile(source)
            if cold.digest != warm.digest:
                raise OracleInvariantError(
                    "cache-warm digest diverged from cache-cold: "
                    f"{warm.digest} != {cold.digest}"
                )
            if cache.stats.hits == 0:
                raise OracleInvariantError(
                    "warm recompile served no artifact-cache hits"
                )
            self._assert_salt_isolation(source, cache, array, opt_level)
            return warm

    def _compile_search_variant(self, source: str, seed: int, *, array, opt_level):
        """The variant-search leg, checked four ways:

        1. **determinism** — a cold search and a warm search (shared
           variant store) must pick the same winners and the same
           module digest, and the warm run must serve cached scores
           whenever the cold run simulated anything;
        2. **reproducibility** — recompiling every function directly at
           its winning config and relinking must reproduce the search's
           module bit-for-bit (the winner is a real compile, not an
           artifact of the search machinery);
        3. **semantics** — the shipped module, simulated on the scoring
           inputs, must produce exactly the baseline's outputs;
        4. **speed** — at no more simulated cycles than the baseline.

        Returns the reference-config compile so the caller's generic
        digest check still pins search's baseline == sequential.
        """
        from ..asmlink.download import module_digest
        from ..cache.variant_store import VariantStore
        from ..driver.function_master import phase1_cached
        from ..driver.phases import (
            compile_one_function,
            phase4_link_and_download,
        )
        from ..search import VariantConfig, search_module
        from ..warpsim.scoring import score_module, seeded_input_sets

        input_sets = seeded_input_sets(seed & 0xFFFF)
        with tempfile.TemporaryDirectory(prefix="warpcc-fuzz-search-") as tmp:
            store = VariantStore(tmp)
            common = dict(
                input_sets=input_sets,
                array=array,
                variant_store=store,
                max_cycles=self.config.max_cycles,
            )
            cold = search_module(source, **common)
            warm = search_module(source, **common)
        if cold.result.digest != warm.result.digest:
            raise OracleInvariantError(
                "warm search digest diverged from cold search"
            )
        if cold.winners != warm.winners:
            raise OracleInvariantError(
                f"warm search winners {warm.winners} != "
                f"cold {cold.winners}"
            )
        if cold.simulated and not warm.cached:
            raise OracleInvariantError(
                "warm search served no cached variant scores"
            )

        outcome = warm
        if outcome.abstained is None:
            parsed, _ = phase1_cached(source)
            reference_key = outcome.space_keys[0]
            rebuilt_objects = {}
            for section in parsed.module.sections:
                objs = []
                for fn in section.functions:
                    key = outcome.winners.get(
                        (section.name, fn.name), reference_key
                    )
                    config = VariantConfig.from_key(key)
                    obj, _ = compile_one_function(
                        parsed,
                        section.name,
                        fn.name,
                        array,
                        config.opt_level,
                        unroll_budget=config.unroll_budget,
                        ii_budget=config.ii_budget,
                    )
                    objs.append(obj)
                rebuilt_objects[section.name] = objs
            rebuilt, _, _ = phase4_link_and_download(
                parsed, rebuilt_objects, array,
                outcome.result.diagnostics_text,
            )
            if module_digest(rebuilt) != outcome.result.digest:
                raise OracleInvariantError(
                    "search module is not reproducible by direct "
                    "compilation at the winning configs"
                )
            base_score = score_module(
                outcome.baseline.download, input_sets, array,
                self.config.max_cycles,
            )
            if base_score.ok:
                shipped = score_module(
                    outcome.result.download, input_sets, array,
                    self.config.max_cycles,
                )
                if not shipped.ok or shipped.outputs != base_score.outputs:
                    raise OracleInvariantError(
                        "search shipped a module that diverges "
                        "semantically from the reference-config baseline"
                    )
                if shipped.cycles > base_score.cycles:
                    raise OracleInvariantError(
                        f"search shipped a slower module "
                        f"({shipped.cycles} > {base_score.cycles} cycles)"
                    )
        return outcome.baseline

    def _compile_predict_variant(self, source: str, *, array, opt_level):
        """Watch-mode speculation leg: a predict-enabled compile service
        speculatively compiles the module off a watch update, then an
        in-process compile *sharing its artifact cache* must be served
        from cache and (via the caller's generic check) still match the
        sequential digest.  Compile errors propagate from the in-process
        compile so reject-parity is checked like any pipeline."""
        from ..predict import CostModel, ObservationStore
        from ..service import CompileService

        with tempfile.TemporaryDirectory(prefix="warpcc-fuzz-predict-") as tmp:
            cache = ArtifactCache(tmp)
            model = CostModel(ObservationStore(tmp))
            speculated = False
            with CompileService(
                SerialBackend(),
                cache,
                cost_model=model,
                speculation=True,
            ) as service:
                outcome = service.watch_update(
                    source, watch="oracle", opt_level=opt_level,
                    cells=array.cell_count,
                )
                if outcome["job"] is not None:
                    job = service.wait(outcome["job"], timeout=120.0)
                    speculated = job.state == "done"
            hits_before = cache.stats.hits
            result = ParallelCompiler(
                backend=SerialBackend(),
                array=array,
                opt_level=opt_level,
                cache=cache,
            ).compile(source)
            if speculated and cache.stats.hits == hits_before:
                raise OracleInvariantError(
                    "compile after speculation served no cache hits"
                )
            return result

    def _compile_phase1_variant(self, source: str, *, array, opt_level):
        """Parse-cache-cold compile, then a warm recompile of the same
        source; both through the parallel front end (2 parse threads).
        Digest must match across the cold/warm pair (a rebased cache
        entry must be indistinguishable from a fresh parse) and, when
        the fast path ran, the warm run must actually hit the cache."""
        from ..driver.function_master import clear_phase1_cache

        with tempfile.TemporaryDirectory(prefix="warpcc-fuzz-parse-") as tmp:
            from ..cache import ParseCache

            parse_cache = ParseCache(tmp)
            compiler = ParallelCompiler(
                backend=SerialBackend(),
                array=array,
                opt_level=opt_level,
                phase1_jobs=2,
                parse_cache=parse_cache,
            )
            # Drop the whole-module memo before each compile (earlier
            # legs of this check parsed the same source): both runs must
            # exercise the span-hash tier, not short-circuit above it.
            clear_phase1_cache()
            cold = compiler.compile(source)
            clear_phase1_cache()
            warm = compiler.compile(source)
            if cold.digest != warm.digest:
                raise OracleInvariantError(
                    "parse-cache-warm digest diverged from cold: "
                    f"{warm.digest} != {cold.digest}"
                )
            stats = compiler.last_phase1_stats
            if (
                stats is not None
                and stats.mode == "parallel"
                and stats.cache_hits == 0
            ):
                raise OracleInvariantError(
                    "warm recompile served no parse-cache hits"
                )
            return warm

    def _compile_phase4_variant(self, source: str, *, array, opt_level):
        """Link-cache-cold parallel phase 4, then a fully-warm recompile.

        The cold run links every section concurrently (2 link threads)
        over pre-assembled payloads; the warm run serves phases 2/3 from
        the artifact cache and must skip phase 4 via the whole-module
        tier.  Digests must match across the pair, and — combined with
        the generic digest check against the sequential baseline — that
        pins sequential == parallel == cached phase-4 output."""
        with tempfile.TemporaryDirectory(prefix="warpcc-fuzz-link-") as tmp:
            from ..cache import LinkCache

            compiler = ParallelCompiler(
                backend=SerialBackend(),
                array=array,
                opt_level=opt_level,
                cache=ArtifactCache(tmp),
                phase4_jobs=2,
                link_cache=LinkCache(tmp),
            )
            cold = compiler.compile(source)
            cold_stats = compiler.last_phase4_stats
            warm = compiler.compile(source)
            warm_stats = compiler.last_phase4_stats
            if cold.digest != warm.digest:
                raise OracleInvariantError(
                    "link-cache-warm digest diverged from cold: "
                    f"{warm.digest} != {cold.digest}"
                )
            if (
                cold_stats is not None
                and cold_stats.mode == "parallel"
                and warm_stats is not None
                and warm_stats.mode != "cached"
            ):
                raise OracleInvariantError(
                    "fully-warm recompile did not hit the module cache "
                    f"(mode {warm_stats.mode!r})"
                )
            return warm

    def _assert_salt_isolation(self, source, cache, array, opt_level) -> None:
        """A salted cache must never serve cross-version entries: the
        same module fingerprinted under a bumped compiler salt must miss
        on every function."""
        sink = DiagnosticSink()
        module = parse_text(source, sink)
        if sink.has_errors:
            return
        bumped = module_fingerprints(
            module,
            opt_level=opt_level,
            cell_count=array.cell_count,
            granularity="function",
            salt=compiler_salt() + "+next-version",
        )
        for key, fingerprint in bumped.items():
            if cache.get(fingerprint) is not None:
                raise OracleInvariantError(
                    f"cache served a cross-version entry for {key} — "
                    "the compiler salt is not isolating versions"
                )

    # -- the check ----------------------------------------------------

    def check(
        self, source: str, inputs: Optional[List[float]] = None, seed: int = 0
    ) -> OracleReport:
        """Compile ``source`` through every configured pipeline and
        classify disagreements against the sequential ground truth."""
        report = OracleReport(source=source, inputs=list(inputs or []))

        baseline = None
        baseline_error: Optional[str] = None
        try:
            baseline = self._compile_sequential(source)
            report.outcomes.append(
                PipelineOutcome(
                    "sequential",
                    digest=self._observed_digest("sequential", baseline),
                    diagnostics=baseline.diagnostics_text,
                )
            )
        except CompileError as error:
            baseline_error = "\n".join(d.render() for d in error.diagnostics)
            report.outcomes.append(
                PipelineOutcome("sequential", error=baseline_error)
            )
        except Exception as error:  # noqa: BLE001 - classified, not hidden
            report.outcomes.append(
                PipelineOutcome("sequential", error=repr(error))
            )
            report.mismatches.append(
                Mismatch("crash", "sequential", repr(error))
            )
            return report

        for name in self.config.pipelines:
            if name == "sequential":
                continue
            self._check_pipeline(
                name, source, seed, baseline, baseline_error, report
            )

        if baseline is not None and self._reference is not None:
            self._check_semantics(source, report, baseline)
        return report

    def _observed_digest(self, pipeline: str, result) -> str:
        digest = result.digest
        spec = self.config.inject_miscompile
        if spec:
            target_pipeline, _, target_fn = spec.partition(":")
            if pipeline == target_pipeline and any(
                report.name == target_fn
                for report in result.profile.functions
            ):
                digest = "miscompiled+" + digest
        return digest

    def _check_pipeline(
        self,
        name: str,
        source: str,
        seed: int,
        baseline,
        baseline_error: Optional[str],
        report: OracleReport,
    ) -> None:
        try:
            result = self._compile_variant(name, source, seed)
        except CompileError as error:
            rendered = "\n".join(d.render() for d in error.diagnostics)
            report.outcomes.append(PipelineOutcome(name, error=rendered))
            if baseline is not None:
                report.mismatches.append(
                    Mismatch(
                        "diagnostic",
                        name,
                        "pipeline rejected a module the sequential "
                        f"compiler accepted: {rendered}",
                    )
                )
            elif rendered != baseline_error:
                # Both rejected, but not identically: an aborting
                # compile must report the same errors on every pipeline.
                report.mismatches.append(
                    Mismatch(
                        "diagnostic",
                        name,
                        f"rejection diagnostics {rendered!r} != "
                        f"sequential {baseline_error!r}",
                    )
                )
            return
        except OracleInvariantError as error:
            report.outcomes.append(PipelineOutcome(name, error=str(error)))
            report.mismatches.append(Mismatch("digest", name, str(error)))
            return
        except Exception as error:  # noqa: BLE001 - classified, not hidden
            report.outcomes.append(PipelineOutcome(name, error=repr(error)))
            report.mismatches.append(Mismatch("crash", name, repr(error)))
            return

        digest = self._observed_digest(name, result)
        report.outcomes.append(
            PipelineOutcome(
                name, digest=digest, diagnostics=result.diagnostics_text
            )
        )
        if baseline is None:
            report.mismatches.append(
                Mismatch(
                    "diagnostic",
                    name,
                    "pipeline accepted a module the sequential compiler "
                    "rejected",
                )
            )
            return
        expected = self._observed_digest("sequential", baseline)
        if digest != expected:
            report.mismatches.append(
                Mismatch(
                    "digest",
                    name,
                    f"download digest {digest[:16]}… != "
                    f"sequential {expected[:16]}…",
                )
            )
        if result.diagnostics_text != baseline.diagnostics_text:
            report.mismatches.append(
                Mismatch(
                    "diagnostic",
                    name,
                    f"diagnostics {result.diagnostics_text!r} != "
                    f"{baseline.diagnostics_text!r}",
                )
            )

    def _check_semantics(self, source, report: OracleReport, baseline) -> None:
        sink = DiagnosticSink()
        module = parse_text(source, sink)
        if not sink.has_errors:
            check_module(module, sink)
        if sink.has_errors:
            return
        try:
            expected = self._reference(
                module,
                list(report.inputs),
                self.config.reference_max_steps,
            )
        except Exception as error:  # reference trap: outside the defined
            report.outcomes.append(  # corner of the language — skip.
                PipelineOutcome("reference", error=repr(error))
            )
            return
        report.reference_outputs = expected
        report.semantic_checked = True
        try:
            outcome = run_module(
                baseline.download,
                list(report.inputs),
                array=self._array(),
                max_cycles=self.config.max_cycles,
            )
        except Exception as error:  # noqa: BLE001 - classified, not hidden
            report.mismatches.append(
                Mismatch("crash", "warpsim", repr(error))
            )
            return
        report.executed_outputs = list(outcome.outputs)
        if list(outcome.outputs) != list(expected):
            report.mismatches.append(
                Mismatch(
                    "semantic",
                    "warpsim",
                    f"executed outputs {outcome.outputs} != "
                    f"reference {expected}",
                )
            )


class OracleInvariantError(AssertionError):
    """An oracle-internal invariant (cache warmth, salt isolation) broke."""


def narrowed_config(
    config: OracleConfig, report: OracleReport
) -> OracleConfig:
    """A cheaper config that still reproduces ``report``'s mismatches:
    sequential plus only the pipelines that actually disagreed, with the
    semantic leg kept only when a semantic mismatch is present.  Used by
    the minimizer, where every candidate pays one oracle run."""
    failing = {m.pipeline for m in report.mismatches}
    pipelines = tuple(
        name
        for name in config.pipelines
        if name == "sequential" or name in failing
    ) or config.pipelines
    if "sequential" not in pipelines:
        pipelines = ("sequential",) + pipelines
    semantic = any(
        m.kind in ("semantic", "crash") and m.pipeline == "warpsim"
        for m in report.mismatches
    )
    return OracleConfig(
        pipelines=pipelines,
        opt_level=config.opt_level,
        cell_count=config.cell_count,
        check_semantics=config.check_semantics and semantic,
        max_cycles=min(config.max_cycles, 200_000),
        reference_max_steps=min(config.reference_max_steps, 50_000),
        chaos_seed=config.chaos_seed,
        inject_miscompile=config.inject_miscompile,
    )


# ---------------------------------------------------------------------------
# Campaign driver (shared by the CLI and the CI fuzz job)
# ---------------------------------------------------------------------------


@dataclass
class CampaignFailure:
    seed: int
    program: GeneratedProgram
    report: OracleReport


@dataclass
class CampaignResult:
    iterations_run: int = 0
    elapsed: float = 0.0
    failures: List[CampaignFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def kind_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for failure in self.failures:
            for kind in failure.report.kinds():
                counts[kind] = counts.get(kind, 0) + 1
        return counts


def run_fuzz_campaign(
    seed: int,
    iterations: int,
    size_class: str = "small",
    oracle: Optional[DifferentialOracle] = None,
    time_budget: Optional[float] = None,
    on_iteration: Optional[Callable[[int, OracleReport], None]] = None,
    stop_on_failure: bool = True,
) -> CampaignResult:
    """Generate-and-check ``iterations`` programs starting at ``seed``.

    ``time_budget`` (seconds) bounds wall-clock for CI time-boxed runs;
    the campaign stops cleanly after the iteration that exceeds it.
    """
    generator_config = config_for_size_class(size_class)
    owned = oracle is None
    oracle = oracle or DifferentialOracle()
    result = CampaignResult()
    start = time.perf_counter()
    try:
        for index in range(iterations):
            program_seed = seed + index
            program = generate_program(program_seed, generator_config)
            report = oracle.check(
                program.source, inputs=program.inputs(), seed=program_seed
            )
            result.iterations_run += 1
            if on_iteration is not None:
                on_iteration(program_seed, report)
            if not report.ok:
                result.failures.append(
                    CampaignFailure(program_seed, program, report)
                )
                if stop_on_failure:
                    break
            if (
                time_budget is not None
                and time.perf_counter() - start > time_budget
            ):
                break
    finally:
        result.elapsed = time.perf_counter() - start
        if owned:
            oracle.shutdown()
    return result
