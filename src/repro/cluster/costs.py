"""The cost model: pricing compiler work onto 1988 workstation hardware.

Every deterministic work count from the compiler (parse tokens, optimizer
instruction visits, scheduler placements, bundle counts) is converted to
virtual seconds here.  The constants are calibrated so the *shape* of the
paper's measurements reproduces: a ~280-line function costs on the order
of twenty minutes sequentially (§4.3), tiny functions are dominated by
process startup, and a Lisp image that outgrows a diskless SUN's memory
pays for garbage collection and paging.

Mechanisms (each one named in the paper, §4.2.3):

- *Lisp startup*: "portion of large core image must be downloaded, and
  each lisp process has to interpret initializing information" — a core
  download through the shared file server and Ethernet plus an
  initialization delay;
- *network load*: concurrent downloads collide (Ethernet efficiency
  curve) and share the file server;
- *garbage collection / swapping*: a heap beyond the workstation's
  comfortable size slows all CPU work; the sequential compiler's heap
  grows as it compiles function after function, while each function
  master starts fresh — this is what makes system overhead *negative*
  for medium functions (§4.2.3) and speedup superlinear at 2 processors
  for the user program (§4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..driver.results import FunctionReport, WorkProfile


@dataclass
class CostModel:
    """All tunable constants of the cluster simulation."""

    # -- CPU rates (work units per virtual second) --------------------------
    compile_rate: float = 4500.0  # phases 2+3 work units / sec
    #: fixed cost per function (Lisp bookkeeping, file handling)
    per_function_compile_sec: float = 3.0
    #: fixed cost per software-pipelined loop: the II search dominates the
    #: Warp compiler's time, and even a small function with one loop nest
    #: pays minutes for it — which is how the paper's 5-line user-program
    #: functions took 2-6 minutes while the loop-free f_tiny took seconds.
    pipeline_sec_per_loop: float = 40.0
    parse_rate: float = 900.0  # phase 1 work units / sec
    assembly_rate: float = 4000.0  # phase 4 work units / sec
    combine_rate: float = 2000.0  # section-master merge units / sec

    # -- process management ---------------------------------------------------
    c_process_start_sec: float = 0.4  # fork+exec of a C master process
    master_schedule_sec_per_task: float = 0.15
    section_start_sec: float = 0.5
    lisp_init_sec: float = 12.0  # interpreting initialization info

    # -- network and file server ----------------------------------------------
    lisp_core_words: float = 500_000.0  # downloaded core image portion
    network_rate: float = 120_000.0  # words / sec on an idle Ethernet
    ethernet_alpha: float = 0.08  # collision degradation per extra sender
    server_rate: float = 200_000.0  # file-server words / sec
    object_words_per_bundle: float = 24.0  # shipped result size

    # -- memory model (abstract units) -------------------------------------------
    workstation_memory: float = 60_000.0
    lisp_base_memory: float = 20_000.0
    parse_memory_per_line: float = 3.0
    compile_memory_per_ir: float = 27.0  # heap per IR instruction compiled
    retained_fraction: float = 0.12  # garbage kept between functions
    held_object_memory_per_bundle: float = 0.25  # objects kept for phase 4
    #: the Lisp collector eventually reclaims old garbage: accumulated
    #: retention saturates at this many memory units
    retained_cap: float = 9_000.0
    gc_onset: float = 0.55  # heap ratio where GC cost starts
    gc_exponent: float = 1.2
    gc_coeff: float = 0.25
    paging_cpu_coeff: float = 0.6  # CPU-side cost of page-fault handling
    max_extra_slowdown: float = 1.2  # thrash ceiling: s(r) <= 1 + this
    #: paging I/O volume: words swapped per (excess memory ratio x CPU
    #: second).  A diskless workstation pages over the Ethernet against
    #: the shared file server, so this traffic contends with everything
    #: else — the dominant parallel-only cost for functions that do not
    #: fit a workstation ("multiple processes swap off the same file
    #: server", §4.2.3).
    paging_words_per_excess_second: float = 19_000.0

    # -- derived helpers -----------------------------------------------------------

    def slowdown(self, heap: float) -> float:
        """CPU multiplier for a Lisp process with ``heap`` memory in use.

        GC pressure rises once the heap passes ``gc_onset`` of memory;
        page-fault handling adds a linear CPU term past capacity.  The
        combined extra cost saturates at ``max_extra_slowdown`` — a
        thrashing UNIX box is slow, not infinitely slow.  (The *I/O* side
        of paging is priced separately through the shared file server,
        see :meth:`paging_words`.)
        """
        ratio = heap / self.workstation_memory
        gc = self.gc_coeff * max(0.0, ratio - self.gc_onset) ** self.gc_exponent
        paging = self.paging_cpu_coeff * max(0.0, ratio - 1.0)
        return 1.0 + min(self.max_extra_slowdown, gc + paging)

    def paging_words(self, heap: float, cpu_seconds: float) -> float:
        """Swap traffic (words) a compile generates on a diskless node.

        Zero while the working set fits; past capacity it scales with the
        excess ratio and the compile's CPU time.  This traffic moves over
        the network and through the shared file server, so concurrent
        function masters make it mutually slower.
        """
        excess = max(0.0, heap / self.workstation_memory - 1.0)
        return self.paging_words_per_excess_second * excess * cpu_seconds

    def parse_heap(self, profile: WorkProfile) -> float:
        return self.parse_memory_per_line * profile.source_lines

    def compile_heap(self, report: FunctionReport) -> float:
        return self.compile_memory_per_ir * report.ir_instructions

    def function_master_heap(
        self, profile: WorkProfile, report: FunctionReport
    ) -> float:
        """Fresh Lisp image: base + whole-program parse + one function."""
        return (
            self.lisp_base_memory
            + self.parse_heap(profile)
            + self.compile_heap(report)
        )

    def sequential_heap(
        self, profile: WorkProfile, index: int
    ) -> float:
        """The sequential compiler's heap while compiling function
        ``index``: earlier functions leave retained garbage behind, and
        their finished object code stays resident until phase 4."""
        previous = profile.functions[:index]
        retained = sum(
            self.retained_fraction * self.compile_heap(r) for r in previous
        )
        held_objects = sum(
            self.held_object_memory_per_bundle * r.bundles for r in previous
        )
        return (
            self.lisp_base_memory
            + self.parse_heap(profile)
            + self.compile_heap(profile.functions[index])
            + min(self.retained_cap, retained + held_objects)
        )

    def parse_seconds(self, profile: WorkProfile) -> float:
        return (profile.parse_work + profile.sema_work) / self.parse_rate

    def compile_seconds(self, report: FunctionReport) -> float:
        """Raw (unslowed) phases-2+3 CPU seconds for one function."""
        return (
            self.per_function_compile_sec
            + self.pipeline_sec_per_loop * report.pipelined_loops
            + report.work_units / self.compile_rate
        )

    def assembly_seconds(self, profile: WorkProfile) -> float:
        return (profile.assembly_work + profile.link_work) / self.assembly_rate

    def object_words(self, report: FunctionReport) -> float:
        return self.object_words_per_bundle * report.bundles


def default_cost_model() -> CostModel:
    return CostModel()
