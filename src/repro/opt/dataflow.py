"""Generic iterative dataflow framework over basic blocks.

Solves forward and backward set problems with gen/kill transfer functions
using a worklist.  Facts are numbered once per function and per-block
sets are packed into Python ints used as bitsets: a union is ``|``, a
difference is ``& ~``, and the convergence test is one int comparison —
the inner loop moves a machine word at a time instead of hashing
frozenset elements.  The public API is unchanged: callers still pass
frozensets of hashable facts (virtual registers for liveness,
(register, definition-site) pairs for reaching definitions) and receive
a :class:`BlockFacts` of frozensets.

Analyses that already number their own facts (liveness, reaching
definitions) skip the packing step and call the mask kernels
(:func:`solve_forward_masks` / :func:`solve_backward_masks`) directly.
The original frozenset solvers are kept as :func:`solve_forward_sets` /
:func:`solve_backward_sets` for differential testing and benchmarking.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, List, Tuple

from ..ir.cfg import FunctionIR

Fact = Hashable
FactSet = FrozenSet[Fact]

#: entry/exit bitsets per block name, as returned by the mask kernels
MaskFacts = Dict[str, int]


@dataclass
class BlockFacts:
    """Solution at block granularity: facts on entry and on exit."""

    entry: Dict[str, FactSet]
    exit: Dict[str, FactSet]


def mask_of(facts: Iterable[Fact], index: Dict[Fact, int]) -> int:
    """Pack ``facts`` into a bitset, assigning fresh bit indices on first
    use — ``index`` is the (mutable) fact numbering shared by one solve."""
    mask = 0
    for fact in facts:
        bit = index.get(fact)
        if bit is None:
            bit = index[fact] = len(index)
        mask |= 1 << bit
    return mask


def facts_of(mask: int, universe: List[Fact]) -> FactSet:
    """Unpack a bitset back to a frozenset; ``universe`` lists facts in
    bit-index order (i.e. ``list(index)``).

    Walks the mask a 64-bit word at a time so the per-bit arithmetic
    happens on machine-word ints, not on the full arbitrary-precision
    mask.
    """
    out = []
    base = 0
    while mask:
        word = mask & 0xFFFFFFFFFFFFFFFF
        while word:
            low = word & -word
            out.append(universe[base + low.bit_length() - 1])
            word ^= low
        mask >>= 64
        base += 64
    return frozenset(out)


def solve_forward_masks(
    function: FunctionIR,
    gen: MaskFacts,
    kill: MaskFacts,
    boundary: int = 0,
) -> Tuple[MaskFacts, MaskFacts]:
    """Forward may-analysis over int bitsets (the hot kernel):
    out = gen | (in & ~kill), in = OR of predecessors' out."""
    preds = function.predecessors()
    names = [b.name for b in function.blocks]
    succs = {b.name: b.successors() for b in function.blocks}
    entry: MaskFacts = {n: 0 for n in names}
    exit_: MaskFacts = {n: 0 for n in names}
    entry_name = function.entry.name
    entry[entry_name] = boundary

    worklist = deque(names)
    queued = set(names)
    while worklist:
        name = worklist.popleft()
        queued.discard(name)
        if name != entry_name:
            merged = 0
            for pred in preds[name]:
                merged |= exit_[pred]
            entry[name] = merged
        new_exit = gen[name] | (entry[name] & ~kill[name])
        if new_exit != exit_[name]:
            exit_[name] = new_exit
            for succ in succs[name]:
                if succ not in queued:
                    worklist.append(succ)
                    queued.add(succ)
    return entry, exit_


def solve_backward_masks(
    function: FunctionIR,
    gen: MaskFacts,
    kill: MaskFacts,
    boundary: int = 0,
) -> Tuple[MaskFacts, MaskFacts]:
    """Backward may-analysis over int bitsets:
    in = gen | (out & ~kill), out = OR of successors' in.

    ``boundary`` seeds the out-set of every exit block (blocks with no
    successors).
    """
    names = [b.name for b in function.blocks]
    block_map = function.block_map()
    preds = function.predecessors()
    succs = {n: block_map[n].successors() for n in names}
    entry: MaskFacts = {n: 0 for n in names}
    exit_: MaskFacts = {n: 0 for n in names}
    for name in names:
        if not succs[name]:
            exit_[name] = boundary

    worklist = deque(reversed(names))
    queued = set(names)
    while worklist:
        name = worklist.popleft()
        queued.discard(name)
        if succs[name]:
            merged = 0
            for succ in succs[name]:
                merged |= entry[succ]
            exit_[name] = merged
        new_entry = gen[name] | (exit_[name] & ~kill[name])
        if new_entry != entry[name]:
            entry[name] = new_entry
            for pred in preds[name]:
                if pred not in queued:
                    worklist.append(pred)
                    queued.add(pred)
    return entry, exit_


def unpack_solution(
    entry_m: MaskFacts, exit_m: MaskFacts, universe: List[Fact]
) -> BlockFacts:
    """Unpack a mask solution to :class:`BlockFacts`, memoizing by mask
    value — adjacent blocks in straight-line code share entry/exit sets,
    so most unpacks are dictionary hits."""
    cache: Dict[int, FactSet] = {}

    def unpack(mask: int) -> FactSet:
        got = cache.get(mask)
        if got is None:
            got = cache[mask] = facts_of(mask, universe)
        return got

    return BlockFacts(
        entry={n: unpack(m) for n, m in entry_m.items()},
        exit={n: unpack(m) for n, m in exit_m.items()},
    )


def _solve_packed(function, gen, kill, boundary, kernel) -> BlockFacts:
    """Number facts, run the mask kernel, unpack back to frozensets."""
    index: Dict[Fact, int] = {}
    names = [b.name for b in function.blocks]
    gen_m = {n: mask_of(gen[n], index) for n in names}
    kill_m = {n: mask_of(kill[n], index) for n in names}
    boundary_m = mask_of(boundary, index)
    entry_m, exit_m = kernel(function, gen_m, kill_m, boundary_m)
    return unpack_solution(entry_m, exit_m, list(index))


def solve_forward(
    function: FunctionIR,
    gen: Dict[str, FactSet],
    kill: Dict[str, FactSet],
    boundary: FactSet = frozenset(),
) -> BlockFacts:
    """Forward may-analysis: out = gen ∪ (in − kill), in = ∪ preds' out."""
    return _solve_packed(function, gen, kill, boundary, solve_forward_masks)


def solve_backward(
    function: FunctionIR,
    gen: Dict[str, FactSet],
    kill: Dict[str, FactSet],
    boundary: FactSet = frozenset(),
) -> BlockFacts:
    """Backward may-analysis: in = gen ∪ (out − kill), out = ∪ succs' in.

    ``boundary`` seeds the out-set of every exit block (blocks with no
    successors) — e.g. registers observable after return (none, normally).
    """
    return _solve_packed(function, gen, kill, boundary, solve_backward_masks)


# ---------------------------------------------------------------------------
# Reference frozenset solvers.  Kept verbatim for differential tests
# (bitset solution == set solution on every CFG) and for the benchmark
# that documents the bitset kernels' speedup; not used on the hot path.
# ---------------------------------------------------------------------------


def solve_forward_sets(
    function: FunctionIR,
    gen: Dict[str, FactSet],
    kill: Dict[str, FactSet],
    boundary: FactSet = frozenset(),
) -> BlockFacts:
    """Reference forward solver over frozensets (see module docstring)."""
    preds = function.predecessors()
    names = [b.name for b in function.blocks]
    entry: Dict[str, FactSet] = {n: frozenset() for n in names}
    exit_: Dict[str, FactSet] = {n: frozenset() for n in names}
    entry[function.entry.name] = boundary

    worklist: List[str] = list(names)
    in_worklist = set(worklist)
    while worklist:
        name = worklist.pop(0)
        in_worklist.discard(name)
        if name != function.entry.name:
            merged: FactSet = frozenset().union(
                *(exit_[p] for p in preds[name])
            ) if preds[name] else frozenset()
            entry[name] = merged
        new_exit = gen[name] | (entry[name] - kill[name])
        if new_exit != exit_[name]:
            exit_[name] = new_exit
            for block in function.blocks:
                if block.name == name:
                    for succ in block.successors():
                        if succ not in in_worklist:
                            worklist.append(succ)
                            in_worklist.add(succ)
    return BlockFacts(entry=entry, exit=exit_)


def solve_backward_sets(
    function: FunctionIR,
    gen: Dict[str, FactSet],
    kill: Dict[str, FactSet],
    boundary: FactSet = frozenset(),
) -> BlockFacts:
    """Reference backward solver over frozensets (see module docstring)."""
    names = [b.name for b in function.blocks]
    block_map = function.block_map()
    preds = function.predecessors()
    entry: Dict[str, FactSet] = {n: frozenset() for n in names}
    exit_: Dict[str, FactSet] = {n: frozenset() for n in names}
    for name in names:
        if not block_map[name].successors():
            exit_[name] = boundary

    worklist: List[str] = list(reversed(names))
    in_worklist = set(worklist)
    while worklist:
        name = worklist.pop(0)
        in_worklist.discard(name)
        succs = block_map[name].successors()
        if succs:
            exit_[name] = frozenset().union(*(entry[s] for s in succs))
        new_entry = gen[name] | (exit_[name] - kill[name])
        if new_entry != entry[name]:
            entry[name] = new_entry
            for pred in preds[name]:
                if pred not in in_worklist:
                    worklist.append(pred)
                    in_worklist.add(pred)
    return BlockFacts(entry=entry, exit=exit_)
