"""The Warp cell model: functional units, latencies, registers, memory.

Latencies follow the flavor of the original hardware — single-cycle
integer ALU, deeply pipelined floating-point units, a two-cycle memory
port — without claiming cycle fidelity to the CMU/GE hardware.  Every
number here is a constructor parameter, so experiments can explore other
cell designs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..ir.instructions import Opcode
from ..ir.values import IR_FLOAT, IR_INT
from .resources import FUClass, OpSpec

#: (opcode, ir type) -> OpSpec for the default cell.  The IR type is the
#: destination type for computes, the element type for memory ops, and
#: IR_INT for control flow (which has no data type).
_DEFAULT_SPECS: Dict[Tuple[Opcode, str], OpSpec] = {
    # Integer ALU
    (Opcode.ADD, IR_INT): OpSpec(FUClass.IALU, 1),
    (Opcode.SUB, IR_INT): OpSpec(FUClass.IALU, 1),
    (Opcode.MUL, IR_INT): OpSpec(FUClass.IALU, 2),
    (Opcode.DIV, IR_INT): OpSpec(FUClass.IALU, 8),
    (Opcode.MOD, IR_INT): OpSpec(FUClass.IALU, 8),
    (Opcode.NEG, IR_INT): OpSpec(FUClass.IALU, 1),
    (Opcode.NOT, IR_INT): OpSpec(FUClass.IALU, 1),
    (Opcode.AND, IR_INT): OpSpec(FUClass.IALU, 1),
    (Opcode.OR, IR_INT): OpSpec(FUClass.IALU, 1),
    (Opcode.MOV, IR_INT): OpSpec(FUClass.IALU, 1),
    (Opcode.LI, IR_INT): OpSpec(FUClass.IALU, 1),
    (Opcode.CEQ, IR_INT): OpSpec(FUClass.IALU, 1),
    (Opcode.CNE, IR_INT): OpSpec(FUClass.IALU, 1),
    (Opcode.CLT, IR_INT): OpSpec(FUClass.IALU, 1),
    (Opcode.CLE, IR_INT): OpSpec(FUClass.IALU, 1),
    (Opcode.CGT, IR_INT): OpSpec(FUClass.IALU, 1),
    (Opcode.CGE, IR_INT): OpSpec(FUClass.IALU, 1),
    (Opcode.FTOI, IR_INT): OpSpec(FUClass.FALU, 3),
    (Opcode.ABS, IR_INT): OpSpec(FUClass.IALU, 1),
    (Opcode.MIN, IR_INT): OpSpec(FUClass.IALU, 1),
    (Opcode.MAX, IR_INT): OpSpec(FUClass.IALU, 1),
    # Floating adder (and converter); comparisons on floats produce ints
    # but issue on the float adder.
    (Opcode.ADD, IR_FLOAT): OpSpec(FUClass.FALU, 5),
    (Opcode.SUB, IR_FLOAT): OpSpec(FUClass.FALU, 5),
    (Opcode.NEG, IR_FLOAT): OpSpec(FUClass.FALU, 2),
    (Opcode.MOV, IR_FLOAT): OpSpec(FUClass.FALU, 1),
    (Opcode.LI, IR_FLOAT): OpSpec(FUClass.FALU, 1),
    (Opcode.ITOF, IR_FLOAT): OpSpec(FUClass.FALU, 3),
    (Opcode.ABS, IR_FLOAT): OpSpec(FUClass.FALU, 2),
    (Opcode.MIN, IR_FLOAT): OpSpec(FUClass.FALU, 2),
    (Opcode.MAX, IR_FLOAT): OpSpec(FUClass.FALU, 2),
    # Floating multiplier / divider
    (Opcode.MUL, IR_FLOAT): OpSpec(FUClass.FMUL, 5),
    (Opcode.DIV, IR_FLOAT): OpSpec(FUClass.FMUL, 12),
    # The square-root unit sits beside the multiplier.
    (Opcode.SQRT, IR_FLOAT): OpSpec(FUClass.FMUL, 14),
    # Memory port
    (Opcode.LOAD, IR_INT): OpSpec(FUClass.MEM, 2),
    (Opcode.LOAD, IR_FLOAT): OpSpec(FUClass.MEM, 2),
    (Opcode.STORE, IR_INT): OpSpec(FUClass.MEM, 1),
    (Opcode.STORE, IR_FLOAT): OpSpec(FUClass.MEM, 1),
    # Inter-cell queues
    (Opcode.SEND, IR_INT): OpSpec(FUClass.IO, 1),
    (Opcode.SEND, IR_FLOAT): OpSpec(FUClass.IO, 1),
    (Opcode.RECV, IR_INT): OpSpec(FUClass.IO, 2),
    (Opcode.RECV, IR_FLOAT): OpSpec(FUClass.IO, 2),
    # Sequencer
    (Opcode.JMP, IR_INT): OpSpec(FUClass.SEQ, 1),
    (Opcode.BR, IR_INT): OpSpec(FUClass.SEQ, 1),
    (Opcode.RET, IR_INT): OpSpec(FUClass.SEQ, 1),
    (Opcode.CALL, IR_INT): OpSpec(FUClass.SEQ, 4),
}

#: Float comparisons issue on the FALU with a longer latency.
_FLOAT_COMPARE_SPEC = OpSpec(FUClass.FALU, 2)
_FLOAT_COMPARES = {
    Opcode.CEQ,
    Opcode.CNE,
    Opcode.CLT,
    Opcode.CLE,
    Opcode.CGT,
    Opcode.CGE,
}


@dataclass
class WarpCellModel:
    """Parameters of one processing element."""

    int_registers: int = 64
    float_registers: int = 64
    data_memory_words: int = 32 * 1024
    queue_capacity: int = 512
    specs: Dict[Tuple[Opcode, str], OpSpec] = field(
        default_factory=lambda: dict(_DEFAULT_SPECS)
    )

    def spec_for(self, op: Opcode, ir_type: str, operand_type: str = None) -> OpSpec:
        """The issue slot and latency for an operation.

        ``ir_type`` is the result type; ``operand_type`` lets float
        comparisons (int result, float inputs) route to the float adder.
        """
        if op in _FLOAT_COMPARES and operand_type == IR_FLOAT:
            return _FLOAT_COMPARE_SPEC
        key = (op, ir_type)
        if key in self.specs:
            return self.specs[key]
        fallback = (op, IR_INT)
        if fallback in self.specs:
            return self.specs[fallback]
        raise KeyError(f"no functional-unit spec for {op} ({ir_type})")

    def registers_in_bank(self, bank: str) -> int:
        if bank == "i":
            return self.int_registers
        if bank == "f":
            return self.float_registers
        raise ValueError(f"unknown register bank {bank!r}")

    def issue_slots(self):
        return list(FUClass)
