"""Live sanity check: the multiprocessing backend on the real machine.

The cluster simulator reproduces the 1989 numbers; this bench checks the
claim that matters today — with one OS process per function master, the
parallel compiler genuinely finishes sooner on a multi-core host.
"""

import os
import time

import pytest

from repro.driver.master import ParallelCompiler
from repro.driver.sequential import SequentialCompiler
from repro.parallel.local import ProcessPoolBackend
from repro.workloads.synthetic import synthetic_program

SOURCE = synthetic_program("medium", 6)


def compile_parallel():
    backend = ProcessPoolBackend(max_workers=min(6, os.cpu_count() or 1))
    return ParallelCompiler(backend=backend).compile(SOURCE)


def test_live_multiprocessing_speedup(benchmark, results_dir):
    start = time.perf_counter()
    sequential = SequentialCompiler().compile(SOURCE)
    sequential_wall = time.perf_counter() - start

    parallel = benchmark.pedantic(compile_parallel, rounds=3, iterations=1)
    parallel_wall = benchmark.stats.stats.min

    assert parallel.digest == sequential.digest  # correctness first
    ratio = sequential_wall / parallel_wall
    (results_dir / "live_multiprocessing.txt").write_text(
        f"sequential wall: {sequential_wall:.3f}s\n"
        f"parallel wall (best of 3): {parallel_wall:.3f}s\n"
        f"real speedup: {ratio:.2f}x on {os.cpu_count()} cores\n"
    )
    print(f"\nreal speedup: {ratio:.2f}x on {os.cpu_count()} cores")

    if (os.cpu_count() or 1) >= 4:
        # On a multicore host the parallel compiler must genuinely win.
        assert ratio > 1.2
    else:  # pragma: no cover - tiny CI boxes
        pytest.skip("not enough cores for a meaningful live comparison")
