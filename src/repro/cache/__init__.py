"""Persistent function-level artifact cache (incremental compilation).

The paper's correctness argument — "function masters are pure: the same
task always produces the same object code" — makes phase-2/3 results
cacheable not just within a run (the warm farm's phase-1 LRU) but
*across* runs.  This package keys each function's compiled artifact by a
content fingerprint of everything that can influence phases 2 and 3
(:mod:`repro.cache.fingerprint`) and stores the pickled result in an
on-disk, concurrency-safe, size-bounded store
(:mod:`repro.cache.store`).  The driver consults it before dispatching
tasks to a backend, so editing one function of a module re-runs phases
2-3 for exactly that function.

A second tier (:mod:`repro.cache.parse_store`) does the same for phase
1: per-function parse+sema results keyed by span hash, start column,
and sibling signatures, so editing one function re-*parses* exactly
that function too.

A third tier (:mod:`repro.cache.link_store`) does the same for phase
4: per-section linked cell programs keyed by the ordered payload
digests of their object functions, plus whole download modules keyed
by the module fingerprint, so editing one function re-*links* exactly
one section and a fully-warm recompile skips phase 4 entirely.

A fourth tier (:mod:`repro.cache.variant_store`) memoizes the variant
search's simulated scores: per-(function, config, input set) cycle
counts and outputs, salted with the warpsim scoring schema so a timing
model change invalidates scores instead of flipping winners.

A fifth tier (:mod:`repro.predict.observe`) reuses the same store
machinery for *cost observations*: per-fingerprint wall-clock samples
that feed the learned cost model.  Unlike the other tiers it never
affects compile results — only scheduling order and timeouts.
"""

from .fingerprint import (
    CACHE_SCHEMA_VERSION,
    compiler_salt,
    function_fingerprint,
    module_fingerprints,
)
from .link_store import (
    LINK_SCHEMA_VERSION,
    LinkCache,
    ModuleStore,
    SectionLinkStore,
    link_salt,
    module_link_key,
    section_link_key,
)
from .parse_store import (
    PARSE_SCHEMA_VERSION,
    ParseCache,
    ParseEntry,
    parse_salt,
    signature_table_hash,
    window_key,
)
from .store import ArtifactCache, CacheStats, default_cache_dir
from .variant_store import (
    VariantScore,
    VariantStore,
    variant_key,
    variant_salt,
)

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "CACHE_SCHEMA_VERSION",
    "LINK_SCHEMA_VERSION",
    "LinkCache",
    "ModuleStore",
    "PARSE_SCHEMA_VERSION",
    "ParseCache",
    "ParseEntry",
    "SectionLinkStore",
    "VariantScore",
    "VariantStore",
    "compiler_salt",
    "default_cache_dir",
    "function_fingerprint",
    "link_salt",
    "module_fingerprints",
    "module_link_key",
    "parse_salt",
    "section_link_key",
    "variant_key",
    "variant_salt",
    "signature_table_hash",
    "window_key",
]
