"""Lowering tests: AST -> three-address IR."""

import pytest

from repro.ir.cfg import FunctionIR
from repro.ir.instructions import Opcode
from repro.ir.values import Const, IR_FLOAT, IR_INT, VReg

from helpers import lower_ok, single_function_ir, wrap_function


def ops_of(fn: FunctionIR):
    return [instr.op for instr in fn.all_instructions()]


class TestStorageBinding:
    def test_params_become_registers(self):
        fn = single_function_ir(
            wrap_function("function f(x: float, n: int) begin end")
        )
        assert len(fn.param_regs) == 2
        assert fn.param_regs[0].type == IR_FLOAT
        assert fn.param_regs[1].type == IR_INT

    def test_arrays_get_frame_offsets(self):
        fn = single_function_ir(
            wrap_function(
                "function f()\nvar a: array[10] of int; "
                "b: array[6] of float;\nbegin end"
            )
        )
        assert [(a.name, a.offset, a.length) for a in fn.arrays] == [
            ("a", 0, 10),
            ("b", 10, 6),
        ]
        assert fn.frame_words() == 16

    def test_scalar_locals_zero_initialized(self):
        fn = single_function_ir(
            wrap_function("function f()\nvar i: int; x: float;\nbegin end")
        )
        movs = [
            i for i in fn.entry.instructions if i.op is Opcode.MOV
        ]
        assert len(movs) == 2
        assert movs[0].operands[0] == Const(0, IR_INT)
        assert movs[1].operands[0] == Const(0.0, IR_FLOAT)


class TestControlFlow:
    def test_if_produces_branch_and_join(self):
        fn = single_function_ir(
            wrap_function(
                "function f(n: int)\nbegin\n"
                "if n > 0 then n := 1; else n := 2; end;\nend"
            )
        )
        names = [b.name for b in fn.blocks]
        assert "if.then" in names
        assert "if.else" in names
        assert "if.join" in names

    def test_for_loop_structure(self):
        fn = single_function_ir(
            wrap_function(
                "function f()\nvar i: int;\n"
                "begin for i := 0 to 9 do i := i; end; end"
            )
        )
        names = [b.name for b in fn.blocks]
        assert {"for.header", "for.body", "for.exit"} <= set(names)
        header = fn.block_named("for.header")
        assert header.terminator.op is Opcode.BR
        compare = header.body[0]
        assert compare.op is Opcode.CLE

    def test_downward_loop_uses_cge(self):
        fn = single_function_ir(
            wrap_function(
                "function f()\nvar i: int;\n"
                "begin for i := 9 to 0 by -3 do i := i; end; end"
            )
        )
        header = fn.block_named("for.header")
        assert header.body[0].op is Opcode.CGE

    def test_while_loop(self):
        fn = single_function_ir(
            wrap_function(
                "function f(n: int)\nbegin while n > 0 do n := n - 1; end; end"
            )
        )
        names = [b.name for b in fn.blocks]
        assert {"while.header", "while.body", "while.exit"} <= set(names)

    def test_every_block_has_terminator(self):
        fn = single_function_ir(
            wrap_function(
                "function f(n: int) : int\nbegin\n"
                "if n > 2 then return 1; end;\n"
                "while n > 0 do n := n - 1; end;\n"
                "return n;\nend"
            )
        )
        fn.validate()  # raises if any block lacks a terminator

    def test_code_after_return_removed_as_unreachable(self):
        fn = single_function_ir(
            wrap_function(
                "function f() : int begin return 1; return 2; end"
            )
        )
        rets = [i for i in fn.all_instructions() if i.op is Opcode.RET]
        assert len(rets) == 1

    def test_fall_off_end_returns_zero_for_typed_function(self):
        fn = single_function_ir(
            wrap_function(
                "function f(n: int) : int\nbegin\n"
                "if n > 0 then return 1; end;\nend"
            )
        )
        rets = [i for i in fn.all_instructions() if i.op is Opcode.RET]
        assert any(
            r.operands and isinstance(r.operands[0], Const) for r in rets
        )


class TestExpressions:
    def test_mixed_arithmetic_inserts_itof(self):
        fn = single_function_ir(
            wrap_function(
                "function f(x: float, n: int) : float\n"
                "begin return x + n; end"
            )
        )
        assert Opcode.ITOF in ops_of(fn)

    def test_const_int_to_float_folds_at_lowering(self):
        fn = single_function_ir(
            wrap_function("function f(x: float) : float begin return x + 1; end")
        )
        adds = [i for i in fn.all_instructions() if i.op is Opcode.ADD]
        assert adds[0].operands[1] == Const(1.0, IR_FLOAT)

    def test_modulo_stays_integer(self):
        fn = single_function_ir(
            wrap_function("function f(n: int) : int begin return n % 3; end")
        )
        mods = [i for i in fn.all_instructions() if i.op is Opcode.MOD]
        assert mods[0].dest.type == IR_INT

    def test_call_lowering_passes_coerced_args(self):
        ir = lower_ok(
            wrap_function(
                "function g(x: float) : float begin return x; end\n"
                "function f() : float begin return g(2); end"
            )
        )
        f = ir.function_named("s", "f")
        calls = [i for i in f.all_instructions() if i.op is Opcode.CALL]
        assert len(calls) == 1
        assert calls[0].operands[0] == Const(2.0, IR_FLOAT)
        assert calls[0].dest is not None

    def test_void_call_has_no_dest(self):
        ir = lower_ok(
            wrap_function(
                "function g() begin end\n"
                "function f() begin g(); end"
            )
        )
        f = ir.function_named("s", "f")
        calls = [i for i in f.all_instructions() if i.op is Opcode.CALL]
        assert calls[0].dest is None

    def test_send_receive_lowering(self):
        fn = single_function_ir(
            wrap_function(
                "function f()\nvar x: float;\nbegin receive(x); send(x * 2.0); end"
            )
        )
        ops = ops_of(fn)
        assert Opcode.RECV in ops
        assert Opcode.SEND in ops

    def test_receive_into_array_element(self):
        fn = single_function_ir(
            wrap_function(
                "function f()\nvar a: array[4] of float;\n"
                "begin receive(a[1]); end"
            )
        )
        ops = ops_of(fn)
        assert Opcode.RECV in ops
        assert Opcode.STORE in ops

    def test_loop_bound_hoisted_into_dedicated_register(self):
        """Pascal 'to' semantics: the bound is evaluated once."""
        fn = single_function_ir(
            wrap_function(
                "function f(n: int)\nvar i: int;\n"
                "begin for i := 0 to n do n := n - 1; end; end"
            )
        )
        header = fn.block_named("for.header")
        compare = header.body[0]
        bound_reg = compare.operands[1]
        assert isinstance(bound_reg, VReg)
        # The body must not write the hoisted bound register.
        body = fn.block_named("for.body")
        assert all(i.dest != bound_reg for i in body.instructions)


class TestDeterminism:
    def test_lowering_is_deterministic(self):
        from repro.ir.printer import print_function

        src = wrap_function(
            "function f(x: float) : float\nvar a: array[8] of float; i: int;\n"
            "begin for i := 0 to 7 do a[i] := x; end; return a[0]; end"
        )
        first = print_function(single_function_ir(src))
        second = print_function(single_function_ir(src))
        assert first == second
