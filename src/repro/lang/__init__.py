"""Front end for the W2-like Warp source language.

Public surface:

- :func:`parse_text` / :func:`parse_source` — lex + parse into an AST module
- :func:`check_module` — semantic analysis (phase 1's second half)
- :class:`DiagnosticSink` / :class:`CompileError` — error reporting
- AST node classes in :mod:`repro.lang.ast_nodes`
- the type system in :mod:`repro.lang.types`
"""

from .ast_nodes import Function, Module, Section
from .diagnostics import CompileError, Diagnostic, DiagnosticSink, Severity
from .lexer import Lexer, tokenize
from .parser import Parser, parse_source, parse_text
from .sema import SemaResult, check_module
from .source import Position, SourceFile, Span
from .types import ArrayType, FLOAT, INT, VOID, FloatType, IntType, Type, VoidType

__all__ = [
    "ArrayType",
    "CompileError",
    "Diagnostic",
    "DiagnosticSink",
    "FLOAT",
    "FloatType",
    "Function",
    "INT",
    "IntType",
    "Lexer",
    "Module",
    "Parser",
    "Position",
    "Section",
    "SemaResult",
    "Severity",
    "SourceFile",
    "Span",
    "Type",
    "VOID",
    "VoidType",
    "check_module",
    "parse_source",
    "parse_text",
    "tokenize",
]
