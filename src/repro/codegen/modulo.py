"""Software pipelining: iterative modulo scheduling of innermost loops.

This is phase 3's expensive centerpiece ("software pipelining and code
generation") and the reason Warp compilations took so long: for each
candidate loop the scheduler searches initiation intervals, maintains a
modulo reservation table, and — when it wins — rebuilds the loop as
guard + prologue + kernel + epilogue machine code.

Correctness without register renaming
-------------------------------------
We deliberately schedule *after* register allocation and encode every
register hazard (including loop-carried anti and output dependences on
physical registers) as edges the schedule must satisfy:

    t(sink) + II * distance >= t(source) + delay(edge)

A schedule satisfying all edges is executable with overlapped iterations
and *no* modulo variable expansion: a value is never overwritten before
its last read, because that very constraint is one of the edges.  The
price is a larger II for loops with long-lived values — the classic
trade-off this compiler makes in favor of simplicity, exactly the sort of
engineering choice the paper alludes to when it notes the compiler "was
never tuned for compilation speed".

The emitted structure (for a loop with S stages and T = trip - (S-1)):

    guard:     trip = (bound - var) / step + 1; br trip >= S ?
    prologue:  iterations 0 .. S-2 warm up ((S-1) * II bundles)
    kernel:    II bundles, executed T times (counter in a reserved reg)
    epilogue:  iterations trip-S+1 .. trip-1 drain, padded so every
               in-flight result lands before the loop exit runs
    fallback:  the original (list-scheduled) loop, taken when trip < S
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..asmlink.objformat import Bundle, MachineOp, ScheduledBlock
from ..ir.cfg import FunctionIR
from ..ir.instructions import Opcode
from ..ir.loops import Loop, find_loops, is_pipelinable
from ..machine.resources import FUClass, PhysReg
from ..machine.warp_cell import WarpCellModel
from ..opt.dependence import (
    DependenceGraph,
    MEMORY,
    IO,
    build_dependence_graph,
    find_induction_register,
)
from .select import SelectedBlock

#: Edge of the machine-level scheduling graph.
@dataclass(frozen=True)
class SchedEdge:
    source: int
    sink: int
    delay: int
    distance: int


@dataclass
class ModuloSchedule:
    """A feasible modulo schedule for one loop body."""

    ii: int
    times: List[int]  # issue time per body op
    stages: int
    work_units: int

    @property
    def span(self) -> int:
        return max(self.times) + 1 if self.times else 0


@dataclass
class PipelinedLoop:
    """Replacement machine code for one pipelined loop."""

    guard: ScheduledBlock
    prologue: Optional[ScheduledBlock]
    kernel: ScheduledBlock
    epilogue: ScheduledBlock
    ii: int
    stages: int
    work_units: int


class PipelineFailure(Exception):
    """Internal: this loop cannot profitably be pipelined."""


def machine_schedule_edges(
    ops: List[MachineOp], ir_graph: DependenceGraph
) -> List[SchedEdge]:
    """Scheduling edges: physical-register hazards recomputed here, plus
    the memory and I/O edges of the IR dependence graph (index-aligned —
    instruction selection is one-to-one)."""
    edges: List[SchedEdge] = []
    seen = set()

    def add(source: int, sink: int, delay: int, distance: int) -> None:
        key = (source, sink, delay, distance)
        if key not in seen:
            seen.add(key)
            edges.append(SchedEdge(source, sink, delay, distance))

    # Physical-register dependences with iteration distances.
    defs_of: Dict[PhysReg, List[int]] = {}
    uses_of: Dict[PhysReg, List[int]] = {}
    for i, op in enumerate(ops):
        if op.dest is not None:
            defs_of.setdefault(op.dest, []).append(i)
        for operand in op.operands:
            if isinstance(operand, PhysReg):
                uses_of.setdefault(operand, []).append(i)

    for reg, def_sites in defs_of.items():
        use_sites = uses_of.get(reg, [])
        last_def = def_sites[-1]
        first_def = def_sites[0]
        for use in use_sites:
            earlier = [d for d in def_sites if d < use]
            if earlier:
                add(earlier[-1], use, ops[earlier[-1]].latency, 0)
            else:
                add(last_def, use, ops[last_def].latency, 1)
            later = [d for d in def_sites if d >= use]
            if later:
                if later[0] != use:
                    add(use, later[0], 0, 0)  # anti, same iteration
            else:
                add(use, first_def, 0, 1)  # anti, next iteration
        for a, b in zip(def_sites, def_sites[1:]):
            add(a, b, ops[a].latency - ops[b].latency + 1, 0)
        add(
            last_def,
            first_def,
            ops[last_def].latency - ops[first_def].latency + 1,
            1,
        )

    # Memory and I/O edges from the IR-level analysis.
    for edge in ir_graph.edges:
        if edge.kind == MEMORY:
            src_op = ops[edge.source]
            delay = src_op.latency if src_op.op is Opcode.STORE else 0
            add(edge.source, edge.sink, delay, edge.distance)
        elif edge.kind == IO:
            add(edge.source, edge.sink, 1, edge.distance)
    return edges


def resource_mii(ops: List[MachineOp]) -> int:
    """Lower bound on II from functional-unit usage."""
    counts: Dict[FUClass, int] = {}
    for op in ops:
        counts[op.fu] = counts.get(op.fu, 0) + 1
    return max(counts.values(), default=1)


def try_modulo_schedule(
    ops: List[MachineOp],
    edges: List[SchedEdge],
    ii: int,
) -> Optional[Tuple[List[int], int]]:
    """Greedy placement in zero-distance topological order, then a full
    verification of every edge; returns (times, work) or None."""
    n = len(ops)
    zero_succs: List[List[SchedEdge]] = [[] for _ in range(n)]
    indegree = [0] * n
    for edge in edges:
        if edge.distance == 0:
            zero_succs[edge.source].append(edge)
            indegree[edge.sink] += 1

    # Topological order over the acyclic distance-0 subgraph.
    order: List[int] = [i for i in range(n) if indegree[i] == 0]
    head = 0
    while head < len(order):
        node = order[head]
        head += 1
        for edge in zero_succs[node]:
            indegree[edge.sink] -= 1
            if indegree[edge.sink] == 0:
                order.append(edge.sink)
    if len(order) != n:
        return None  # distance-0 cycle: malformed graph

    preds: List[List[SchedEdge]] = [[] for _ in range(n)]
    for edge in edges:
        preds[edge.sink].append(edge)

    times: List[Optional[int]] = [None] * n
    reservation: Dict[Tuple[FUClass, int], int] = {}
    work = len(edges)

    for node in order:
        earliest = 0
        for edge in preds[node]:
            src_time = times[edge.source]
            if src_time is not None:
                earliest = max(
                    earliest, src_time + edge.delay - ii * edge.distance
                )
        placed = False
        for t in range(earliest, earliest + ii):
            work += 1
            slot = (ops[node].fu, t % ii)
            if slot not in reservation:
                reservation[slot] = node
                times[node] = t
                placed = True
                break
        if not placed:
            return None

    final_times = [t for t in times]  # all placed
    # Verify every edge, including loop-carried ones whose source was
    # placed after the sink in topological order.
    for edge in edges:
        if final_times[edge.sink] + ii * edge.distance < (
            final_times[edge.source] + edge.delay
        ):
            return None
    return final_times, work


def find_modulo_schedule(
    ops: List[MachineOp],
    edges: List[SchedEdge],
    max_ii: int,
) -> Optional[ModuloSchedule]:
    """Search II upward from ResMII; None if no II below ``max_ii`` works."""
    total_work = 0
    start = max(2, resource_mii(ops))  # II >= 2: the kernel needs its
    # countdown to land before the kernel branch reads it.
    for ii in range(start, max_ii + 1):
        result = try_modulo_schedule(ops, edges, ii)
        if result is None:
            total_work += len(ops) * ii  # failed attempts are paid for too
            continue
        times, work = result
        total_work += work
        stages = max(t // ii for t in times) + 1 if times else 1
        return ModuloSchedule(
            ii=ii, times=times, stages=stages, work_units=total_work
        )
    return None


# ---------------------------------------------------------------------------
# Code emission
# ---------------------------------------------------------------------------


def _bundle_rows(count: int) -> List[Bundle]:
    return [Bundle() for _ in range(count)]


def emit_pipelined_loop(
    ops: List[MachineOp],
    schedule: ModuloSchedule,
    labels: Dict[str, str],
    induction: Tuple[PhysReg, PhysReg, int],
    scratch: Tuple[PhysReg, PhysReg],
    cell: WarpCellModel,
) -> PipelinedLoop:
    """Build guard/prologue/kernel/epilogue blocks.

    ``labels`` must provide: 'guard', 'prologue', 'kernel', 'epilogue',
    'fallback' (the original header) and 'exit'.
    ``induction`` is (var reg, bound reg, step).
    ``scratch`` is two reserved integer registers (trip, counter).
    """
    ii, times, stages = schedule.ii, schedule.times, schedule.stages
    var, bound, step = induction
    trip_reg, counter_reg = scratch

    prologue = _emit_prologue(ops, times, ii, stages, labels)
    guard_labels = dict(labels)
    if prologue is None:
        guard_labels["prologue"] = None
    guard = _emit_guard(
        guard_labels, var, bound, step, stages, trip_reg, counter_reg, cell
    )
    kernel = _emit_kernel(ops, times, ii, labels, counter_reg, cell)
    epilogue = _emit_epilogue(ops, times, ii, stages, labels)
    return PipelinedLoop(
        guard=guard,
        prologue=prologue,
        kernel=kernel,
        epilogue=epilogue,
        ii=ii,
        stages=stages,
        work_units=schedule.work_units,
    )


def _seq_op(cell: WarpCellModel, op: Opcode, **kwargs) -> MachineOp:
    spec = cell.spec_for(op, "i")
    return MachineOp(op=op, fu=spec.fu, latency=spec.latency, **kwargs)


def _ialu(cell: WarpCellModel, op: Opcode, dest, operands) -> MachineOp:
    spec = cell.spec_for(op, "i")
    return MachineOp(
        op=op, fu=spec.fu, latency=spec.latency, dest=dest, operands=operands
    )


def _emit_guard(
    labels: Dict[str, str],
    var: PhysReg,
    bound: PhysReg,
    step: int,
    stages: int,
    trip_reg: PhysReg,
    counter_reg: PhysReg,
    cell: WarpCellModel,
) -> ScheduledBlock:
    """trip = (bound - var) / step + 1;  counter = trip - (stages - 1);
    br (trip >= stages) -> prologue (or kernel), fallback."""
    if step > 0:
        diff = _ialu(cell, Opcode.SUB, trip_reg, (bound, var))
    else:
        diff = _ialu(cell, Opcode.SUB, trip_reg, (var, bound))
    div = _ialu(cell, Opcode.DIV, trip_reg, (trip_reg, abs(step)))
    inc = _ialu(cell, Opcode.ADD, trip_reg, (trip_reg, 1))
    counter = _ialu(cell, Opcode.SUB, counter_reg, (trip_reg, stages - 1))
    compare = _ialu(cell, Opcode.CGE, trip_reg, (trip_reg, stages))
    first = labels["prologue"] if labels.get("prologue") else labels["kernel"]
    branch = _seq_op(
        cell,
        Opcode.BR,
        operands=(trip_reg,),
        labels=(first, labels["fallback"]),
    )
    # Sequential placement honoring latencies (executed once; keep simple).
    sequence = [diff, div, inc, counter, compare, branch]
    bundles: List[Bundle] = []
    ready = 0
    for op in sequence:
        start = max(ready, len(bundles))
        while len(bundles) < start + 1:
            bundles.append(Bundle())
        bundles[start].add(op)
        ready = start + op.latency
    # Pad so the branch is in the final bundle and all results landed.
    while len(bundles) < ready:
        bundles.append(Bundle())
    # The branch must be the last bundle: move it there.
    branch_bundle = next(b for b in bundles if b.occupied(FUClass.SEQ))
    if branch_bundle is not bundles[-1]:
        del branch_bundle.ops[FUClass.SEQ]
        bundles[-1].add(branch)
    return ScheduledBlock(labels["guard"], bundles)


def _emit_prologue(
    ops: List[MachineOp],
    times: List[int],
    ii: int,
    stages: int,
    labels: Dict[str, str],
) -> Optional[ScheduledBlock]:
    length = (stages - 1) * ii
    if length == 0:
        return None
    bundles = _bundle_rows(length)
    for iteration in range(stages - 1):
        for index, op in enumerate(ops):
            t = iteration * ii + times[index]
            if t < length:
                bundles[t].add(op)
    bundles[-1].ops.setdefault(
        FUClass.SEQ,
        MachineOp(
            op=Opcode.JMP, fu=FUClass.SEQ, latency=1, labels=(labels["kernel"],)
        ),
    )
    return ScheduledBlock(labels["prologue"], bundles)


def _emit_kernel(
    ops: List[MachineOp],
    times: List[int],
    ii: int,
    labels: Dict[str, str],
    counter_reg: PhysReg,
    cell: WarpCellModel,
) -> ScheduledBlock:
    bundles = _bundle_rows(ii)
    for index, op in enumerate(ops):
        bundles[times[index] % ii].add(op)
    # Countdown: placed in the first kernel cycle with a free integer slot
    # that lands (latency 1) before the branch reads it in cycle II-1.
    dec = _ialu(cell, Opcode.SUB, counter_reg, (counter_reg, 1))
    placed = False
    for cycle in range(ii - 1):
        if not bundles[cycle].occupied(FUClass.IALU):
            bundles[cycle].add(dec)
            placed = True
            break
    if not placed:
        raise PipelineFailure("no integer slot for the kernel countdown")
    if bundles[ii - 1].occupied(FUClass.SEQ):
        raise PipelineFailure("kernel branch slot occupied")
    bundles[ii - 1].add(
        _seq_op(
            cell,
            Opcode.BR,
            operands=(counter_reg,),
            labels=(labels["kernel"], labels["epilogue"]),
        )
    )
    return ScheduledBlock(labels["kernel"], bundles)


def _emit_epilogue(
    ops: List[MachineOp],
    times: List[int],
    ii: int,
    stages: int,
    labels: Dict[str, str],
) -> ScheduledBlock:
    """Drain iterations trip-(S-1) .. trip-1 and pad until every in-flight
    write has landed, so the loop exit sees a clean machine."""
    entries: List[Tuple[int, MachineOp]] = []
    for m in range(1, stages):  # m = trip - k
        for index, op in enumerate(ops):
            rel = times[index] - m * ii
            if rel >= 0:
                entries.append((rel, op))
    # Pad until every in-flight write has landed.  The final instance of a
    # stage-0 op issues in the last *kernel* round at kernel cycle t_i, so
    # its result lands (t_i + latency - II) cycles into the epilogue; later
    # instances (m >= 1) land at rel + latency.  Both are covered by
    # max(t_i + latency) - II.
    drain = max(
        [1] + [times[i] + op.latency - ii for i, op in enumerate(ops)]
    )
    bundles = _bundle_rows(drain)
    for rel, op in entries:
        bundles[rel].add(op)
    bundles[-1].ops.setdefault(
        FUClass.SEQ,
        MachineOp(
            op=Opcode.JMP, fu=FUClass.SEQ, latency=1, labels=(labels["exit"],)
        ),
    )
    return ScheduledBlock(labels["epilogue"], bundles)
