"""Assembler: resolve block labels into bundle indices (phase 4 work).

Assembly is cheap relative to optimization and code generation — the
paper keeps it sequential for exactly that reason (§3.4: "the time spent
in the assembly stage is short compared to the time spent on code
generation") — but it must be deterministic: the section masters feed the
assembler "the same input ... as the sequential compiler".
"""

from __future__ import annotations

from typing import Dict, List

from ..ir.instructions import Opcode
from ..machine.resources import FUClass
from .objformat import (
    AssembledFunction,
    Bundle,
    MachineOp,
    ObjectFunction,
    ScheduledBlock,
)


class AssemblyError(Exception):
    """A label could not be resolved or the layout is malformed."""


def assemble_function(obj: ObjectFunction) -> AssembledFunction:
    """Flatten blocks into one bundle list and resolve branch targets."""
    label_to_index: Dict[str, int] = {}
    index = 0
    for block in obj.blocks:
        if block.label in label_to_index:
            raise AssemblyError(
                f"duplicate label {block.label!r} in {obj.name!r}"
            )
        if not block.bundles:
            raise AssemblyError(
                f"empty block {block.label!r} in {obj.name!r}"
            )
        label_to_index[block.label] = index
        index += len(block.bundles)

    bundles: List[Bundle] = []
    for block in obj.blocks:
        for bundle in block.bundles:
            bundles.append(_resolve_bundle(bundle, label_to_index, obj.name))

    return AssembledFunction(
        name=obj.name,
        section_name=obj.section_name,
        bundles=bundles,
        param_regs=list(obj.param_regs),
        return_bank=obj.return_bank,
        frame_words=obj.frame_words,
        info=obj.info,
    )


def _resolve_bundle(
    bundle: Bundle, label_to_index: Dict[str, int], function_name: str
) -> Bundle:
    resolved = Bundle()
    for op in bundle.all_ops():
        if op.labels:
            try:
                targets = tuple(
                    label_to_index[label] if isinstance(label, str) else label
                    for label in op.labels
                )
            except KeyError as missing:
                raise AssemblyError(
                    f"unresolved label {missing.args[0]!r} in {function_name!r}"
                ) from None
            op = MachineOp(
                op=op.op,
                fu=op.fu,
                latency=op.latency,
                dest=op.dest,
                operands=op.operands,
                array_offset=op.array_offset,
                array_name=op.array_name,
                labels=targets,
                callee=op.callee,
            )
        resolved.add(op)
    return resolved


def assembly_work_units(obj: ObjectFunction) -> int:
    """Cost proxy for assembling one function: ops touched."""
    return sum(len(b.ops) + 1 for block in obj.blocks for b in block.bundles)
