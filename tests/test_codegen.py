"""Code generation: register allocation, list scheduling, selection."""

import pytest

from repro.asmlink.objformat import Bundle
from repro.codegen.compiler import compile_function, replace_int_registers
from repro.codegen.regalloc import (
    RegisterPressureError,
    allocate_registers,
)
from repro.codegen.schedule import schedule_block
from repro.codegen.select import select_function
from repro.ir.instructions import Opcode
from repro.machine.resources import FUClass, PhysReg
from repro.machine.warp_cell import WarpCellModel

from helpers import single_function_ir, wrap_function


SIMPLE = wrap_function(
    "function f(x: float, y: float) : float\n"
    "var a, b: float;\n"
    "begin a := x * y; b := x + y; return a - b; end"
)


def compiled(src: str, cell=None, opt_level: int = 2):
    fn = single_function_ir(src)
    return compile_function(fn, cell or WarpCellModel(), opt_level=opt_level)


class TestRegisterAllocation:
    def test_distinct_live_values_get_distinct_registers(self):
        fn = single_function_ir(SIMPLE)
        allocation = allocate_registers(fn, WarpCellModel())
        a_regs = set()
        for instr in fn.all_instructions():
            if instr.dest is not None:
                a_regs.add(allocation.reg_for(instr.dest))
        # a and b are simultaneously live -> different registers.
        assert len(a_regs) >= 2

    def test_banks_respected(self):
        fn = single_function_ir(SIMPLE)
        allocation = allocate_registers(fn, WarpCellModel())
        for vreg, preg in allocation.assignment.items():
            assert vreg.type == preg.bank

    def test_register_indices_within_bank(self):
        cell = WarpCellModel(int_registers=8, float_registers=8)
        fn = single_function_ir(SIMPLE)
        allocation = allocate_registers(fn, cell)
        for preg in allocation.assignment.values():
            assert 0 <= preg.index < 8

    def test_spilling_under_pressure(self):
        # 12 simultaneously live floats in a 6-register bank forces spills.
        decls = ", ".join(f"v{i}" for i in range(12))
        assigns = "\n".join(f"v{i} := x + {float(i)};" for i in range(12))
        total = " + ".join(f"v{i}" for i in range(12))
        src = wrap_function(
            f"function f(x: float) : float\nvar {decls}: float;\n"
            f"begin\n{assigns}\nreturn {total};\nend"
        )
        cell = WarpCellModel(int_registers=8, float_registers=6)
        fn = single_function_ir(src)
        allocation = allocate_registers(fn, cell)
        assert allocation.spill_slots > 0
        # Spilled code references the scratch frame arrays.
        assert any(a.name.startswith("<spill.") for a in fn.arrays)

    def test_impossible_pressure_raises(self):
        decls = ", ".join(f"v{i}" for i in range(8))
        assigns = "\n".join(f"v{i} := x + {float(i)};" for i in range(8))
        total = " + ".join(f"v{i}" for i in range(8))
        src = wrap_function(
            f"function f(x: float) : float\nvar {decls}: float;\n"
            f"begin\n{assigns}\nreturn {total};\nend"
        )
        cell = WarpCellModel(int_registers=4, float_registers=1)
        fn = single_function_ir(src)
        with pytest.raises(RegisterPressureError):
            allocate_registers(fn, cell, max_rounds=3)


class TestSelection:
    def test_one_machine_op_per_ir_instruction(self):
        fn = single_function_ir(SIMPLE)
        allocation = allocate_registers(fn, WarpCellModel())
        selected = select_function(fn, allocation, WarpCellModel())
        for sel, block in zip(selected, fn.blocks):
            assert len(sel.ops) == len(block.instructions)

    def test_functional_units_assigned_by_type(self):
        fn = single_function_ir(SIMPLE)
        allocation = allocate_registers(fn, WarpCellModel())
        selected = select_function(fn, allocation, WarpCellModel())
        ops = {op.op: op for sel in selected for op in sel.ops}
        assert ops[Opcode.MUL].fu is FUClass.FMUL
        assert ops[Opcode.ADD].fu is FUClass.FALU
        assert ops[Opcode.RET].fu is FUClass.SEQ

    def test_float_compare_routes_to_falu(self):
        src = wrap_function(
            "function f(x: float) : int begin return x < 2.0; end"
        )
        fn = single_function_ir(src)
        allocation = allocate_registers(fn, WarpCellModel())
        selected = select_function(fn, allocation, WarpCellModel())
        compares = [
            op for sel in selected for op in sel.ops if op.op is Opcode.CLT
        ]
        assert compares[0].fu is FUClass.FALU

    def test_int_compare_routes_to_ialu(self):
        src = wrap_function(
            "function f(n: int) : int begin return n < 2; end"
        )
        fn = single_function_ir(src)
        allocation = allocate_registers(fn, WarpCellModel())
        selected = select_function(fn, allocation, WarpCellModel())
        compares = [
            op for sel in selected for op in sel.ops if op.op is Opcode.CLT
        ]
        assert compares[0].fu is FUClass.IALU


class TestListScheduling:
    def _schedule(self, src: str):
        fn = single_function_ir(src)
        allocation = allocate_registers(fn, WarpCellModel())
        selected = select_function(fn, allocation, WarpCellModel())
        return [schedule_block(sel) for sel in selected]

    def test_every_op_scheduled_exactly_once(self):
        fn = single_function_ir(SIMPLE)
        allocation = allocate_registers(fn, WarpCellModel())
        selected = select_function(fn, allocation, WarpCellModel())
        for sel in selected:
            result = schedule_block(sel)
            scheduled = [
                op for bundle in result.block.bundles for op in bundle.all_ops()
            ]
            assert len(scheduled) == len(sel.ops)

    def test_one_op_per_fu_per_cycle(self):
        for result in self._schedule(SIMPLE):
            for bundle in result.block.bundles:
                fus = [op.fu for op in bundle.all_ops()]
                assert len(fus) == len(set(fus))

    def test_independent_ops_packed_together(self):
        # x*y (FMUL) and x+y (FALU) are independent: same cycle.
        results = self._schedule(SIMPLE)
        block = results[0].block
        first = block.bundles[0]
        assert first.occupied(FUClass.FMUL)
        assert first.occupied(FUClass.FALU)

    def test_raw_latency_respected(self):
        src = wrap_function(
            "function f(x: float) : float\nvar a: float;\n"
            "begin a := x + 1.0; return a * 2.0; end"
        )
        results = self._schedule(src)
        block = results[0].block
        add_cycle = mul_cycle = None
        for cycle, bundle in enumerate(block.bundles):
            for op in bundle.all_ops():
                if op.op is Opcode.ADD:
                    add_cycle = cycle
                if op.op is Opcode.MUL:
                    mul_cycle = cycle
        falu_latency = WarpCellModel().spec_for(Opcode.ADD, "f").latency
        assert mul_cycle - add_cycle >= falu_latency

    def test_terminator_in_last_bundle(self):
        for result in self._schedule(SIMPLE):
            last = result.block.bundles[-1]
            assert any(
                op.op in (Opcode.RET, Opcode.JMP, Opcode.BR)
                for op in last.all_ops()
            )

    def test_drain_before_terminator(self):
        """Every result lands no later than the terminator bundle ends."""
        for result in self._schedule(SIMPLE):
            bundles = result.block.bundles
            end = len(bundles)  # terminator in bundle end-1
            for cycle, bundle in enumerate(bundles):
                for op in bundle.all_ops():
                    if op.dest is not None:
                        assert cycle + op.latency <= end

    def test_io_program_order_preserved(self):
        src = wrap_function(
            "function f()\nvar x: float;\n"
            "begin receive(x); send(x); receive(x); send(x); end"
        )
        results = self._schedule(src)
        io_ops = []
        for result in results:
            for cycle, bundle in enumerate(result.block.bundles):
                for op in bundle.all_ops():
                    if op.op in (Opcode.SEND, Opcode.RECV):
                        io_ops.append(op.op)
        assert io_ops == [Opcode.RECV, Opcode.SEND, Opcode.RECV, Opcode.SEND]


class TestCompileFunction:
    def test_produces_object_function(self):
        obj = compiled(SIMPLE)
        assert obj.name == "f"
        assert obj.section_name == "s"
        assert obj.return_bank == "f"
        assert len(obj.param_regs) == 2
        assert obj.bundle_count() > 0

    def test_reserved_scratch_registers_untouched(self):
        cell = WarpCellModel()
        obj = compiled(SIMPLE, cell)
        reserved = {
            PhysReg("i", cell.int_registers - 1),
            PhysReg("i", cell.int_registers - 2),
        }
        for block in obj.blocks:
            for bundle in block.bundles:
                for op in bundle.all_ops():
                    # Only pipeliner-emitted blocks may touch scratch.
                    if not block.label.endswith((".pl.guard", ".pl.kernel")):
                        assert op.dest not in reserved

    def test_opt_level_zero_compiles(self):
        obj = compiled(SIMPLE, opt_level=0)
        assert obj.bundle_count() > 0

    def test_higher_opt_not_larger(self):
        o0 = compiled(SIMPLE, opt_level=0)
        o2 = compiled(SIMPLE, opt_level=2)
        assert o2.bundle_count() <= o0.bundle_count()

    def test_work_units_accounted(self):
        obj = compiled(SIMPLE)
        assert obj.info.work_units > 0
        assert obj.info.schedule_cycles == obj.bundle_count()

    def test_replace_int_registers(self):
        cell = WarpCellModel()
        smaller = replace_int_registers(cell, 10)
        assert smaller.int_registers == 10
        assert smaller.float_registers == cell.float_registers
