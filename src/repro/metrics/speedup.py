"""Speedup: the paper's metric of success (§2.2).

"The metric of success that we wish to employ is the speedup achieved:
how much faster does a program compile when using the parallel compiler,
compared to the sequential version that is commonly in use."
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.cluster import TimingReport


@dataclass(frozen=True)
class Speedup:
    sequential_elapsed: float
    parallel_elapsed: float

    @property
    def value(self) -> float:
        if self.parallel_elapsed <= 0:
            raise ValueError("parallel elapsed time must be positive")
        return self.sequential_elapsed / self.parallel_elapsed


def speedup_of(sequential: TimingReport, parallel: TimingReport) -> float:
    return Speedup(sequential.elapsed, parallel.elapsed).value


def efficiency(sequential: TimingReport, parallel: TimingReport, processors: int) -> float:
    """Speedup divided by processors: utilization of the parallel host."""
    if processors < 1:
        raise ValueError(f"need at least one processor, got {processors}")
    return speedup_of(sequential, parallel) / processors
