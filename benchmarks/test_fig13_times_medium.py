"""Figure 13 (appendix): execution times for f_medium."""

from figures_common import times_figure, write_figure
from repro.metrics.experiments import measure_pair
from repro.workloads.sizes import FUNCTION_COUNTS


def test_fig13_times_medium(benchmark, results_dir):
    fig = benchmark(times_figure, "medium", "Figure 13")
    write_figure(results_dir, fig)

    seq = fig.series_named("elapsed seq")
    par = fig.series_named("elapsed par")
    for n in (2, 4, 8):
        assert par.points[n] < seq.points[n]
        # Medium beats small at equal n (bigger grains amortize startup).
        assert (
            seq.points[n] / par.points[n]
            > measure_pair("small", n).speedup
        )
    # Parallel elapsed grows slowly compared to sequential.
    assert (par.points[8] / par.points[1]) < 0.3 * (
        seq.points[8] / seq.points[1]
    )
