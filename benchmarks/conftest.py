"""Shared fixtures for the figure benchmarks."""

import pathlib
import sys

# Benchmarks import their common helpers as a plain module.
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import pytest


@pytest.fixture(scope="session")
def results_dir():
    """Directory where rendered figures are written."""
    out = pathlib.Path(__file__).resolve().parent / "out"
    out.mkdir(exist_ok=True)
    return out
