"""Synthetic Monte-Carlo-style compute kernels of controlled size.

The paper derived its benchmark functions "from one of our largest
application programs, a Monte Carlo style simulation"; each consists "of a
loop nest (with deeply nested loop bodies in the case of the larger
programs) that is representative with regard to compilation speed of a
computation kernel for the Warp array" (§4.1).

The generator is deterministic: the same (name, lines) always yields the
same text, so work profiles are reproducible bit-for-bit.
"""

from __future__ import annotations

from typing import List

#: Statement templates cycled through inner loop bodies.  Each is one
#: source line; variables rotate so CSE cannot collapse everything.
_STATEMENTS = [
    "t := a[i] * b[j] + t * 0.9987;",
    "u := u + a[j] * 0.5 - b[i] * 0.25;",
    "acc := acc + t * u;",
    "a[i] := a[i] + t * 0.001;",
    "t := t + x * 1.01 - y * 0.99;",
    "b[j] := b[j] * 0.9999 + u;",
    "u := u * 0.75 + a[i] / 16.0;",
    "acc := acc + b[j] - t / 64.0;",
]


def _loop_depth_for(lines: int) -> int:
    """Deeper nests for bigger kernels, as the paper describes."""
    if lines < 20:
        return 1
    if lines < 60:
        return 2
    return 3


def synthetic_function(name: str, lines: int, indent: str = "  ") -> str:
    """Source text of one function spanning approximately ``lines`` lines.

    Very small targets produce a straight-line function; anything larger
    gets the standard preamble (array initialization) plus as many loop
    nests as needed to hit the target.
    """
    if lines < 8:
        return _tiny_function(name, lines, indent)
    return _loop_nest_function(name, lines, indent)


def _tiny_function(name: str, lines: int, indent: str) -> str:
    """'ftiny' flavor: a handful of straight-line statements."""
    out: List[str] = [f"{indent}function {name}(x: float, y: float) : float"]
    out.append(f"{indent}begin")
    for k in range(max(1, lines - 3)):
        if k == 0:
            out.append(f"{indent}  x := x * 2.0 + y;")
        else:
            out.append(f"{indent}  y := y + x * 0.5;")
    out.append(f"{indent}  return x + y;")
    out.append(f"{indent}end")
    return "\n".join(out)


def _loop_nest_function(name: str, lines: int, indent: str) -> str:
    depth = _loop_depth_for(lines)
    out: List[str] = [f"{indent}function {name}(x: float, y: float) : float"]
    out.append(f"{indent}var")
    out.append(f"{indent}  a: array[64] of float;")
    out.append(f"{indent}  b: array[64] of float;")
    out.append(f"{indent}  i, j, k: int;")
    out.append(f"{indent}  acc, t, u: float;")
    out.append(f"{indent}begin")
    out.append(f"{indent}  acc := 0.0;")
    out.append(f"{indent}  t := x;")
    out.append(f"{indent}  u := y;")
    out.append(f"{indent}  for i := 0 to 63 do")
    out.append(f"{indent}    a[i] := x * 0.5 + i;")
    out.append(f"{indent}    b[i] := y + i * 0.25;")
    out.append(f"{indent}  end;")
    # Two trailing lines (return + end) close the function.
    budget = lines - len(out) - 2
    statement_index = 0
    block_counter = 0
    while budget > 0:
        block_lines, block_text, statement_index = _loop_block(
            depth, budget, indent + "  ", statement_index, block_counter
        )
        out.extend(block_text)
        budget -= block_lines
        block_counter += 1
    out.append(f"{indent}  return acc + t - u;")
    out.append(f"{indent}end")
    return "\n".join(out)


def _loop_block(
    depth: int,
    budget: int,
    indent: str,
    statement_index: int,
    block_counter: int,
):
    """One loop nest of ``depth`` levels filled with as many statements as
    the remaining line budget allows (at least one)."""
    overhead = 2 * depth  # for/end pairs
    body_statements = max(1, min(10, budget - overhead))
    lines: List[str] = []
    loop_vars = ["i", "j", "k"][:depth]
    bounds = [63, 7, 3]
    pad = indent
    for level, var in enumerate(loop_vars):
        lines.append(f"{pad}for {var} := 0 to {bounds[level]} do")
        pad += "  "
    # The inner loop variables referenced by templates must exist even in
    # shallow nests: alias the missing ones to the outermost.
    body_pad = pad
    if depth == 1:
        lines.append(f"{body_pad}j := i;")
    for _ in range(body_statements):
        stmt = _STATEMENTS[statement_index % len(_STATEMENTS)]
        statement_index += 1
        lines.append(f"{body_pad}{stmt}")
    for level in range(depth - 1, -1, -1):
        pad = indent + "  " * level
        lines.append(f"{pad}end;")
    return len(lines), lines, statement_index
