"""Seeded random Warp program generator.

Emits *valid* modules — every generated program parses, passes semantic
checking, and executes without traps on both the reference interpreter
and the Warp simulator.  That last property is what makes the programs
usable as differential-oracle inputs: the generator confines itself to
the defined corner of the language (in-bounds indices, nonzero literal
divisors, terminating loops, balanced send/receive streams) while still
drawing from the full expression/statement/intrinsic grammar the parser
accepts.

Everything is derived from one explicit :class:`random.Random` seeded by
the caller: the same ``(seed, config)`` always yields the same source
text, so any fuzz finding is reproducible from its seed alone.

Size-class presets mirror the paper's §4.1 S_n programs: ``tiny``
through ``huge`` scale section, function, and statement counts so a
campaign can sweep the same size axis the original experiments did.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

#: Loop variables reserved for ``for`` statements, outermost first.
_LOOP_VARS = ("i", "j", "k")

#: Scalars receiving the input stream, in receive order.
_STREAM_VARS = ("x", "y", "t", "u")

_FLOAT_BINOPS = ("+", "-", "*")
_COMPARISONS = ("=", "<>", "<", "<=", ">", ">=")


@dataclass
class GeneratorConfig:
    """Knobs for one generated module.  All ranges are inclusive."""

    size_class: str = "small"
    sections: Tuple[int, int] = (1, 1)
    helpers_per_section: Tuple[int, int] = (1, 2)
    statements_per_block: Tuple[int, int] = (2, 3)
    main_statements: Tuple[int, int] = (4, 8)
    max_stmt_depth: int = 2
    max_expr_depth: int = 2
    stream_arity: Tuple[int, int] = (2, 3)
    array_length: int = 8
    max_cells_per_section: int = 2
    allow_while: bool = True
    allow_calls: bool = True
    allow_division: bool = True
    allow_void_helpers: bool = True
    allow_early_return: bool = True
    module_name: str = "fz"


#: §4.1-style presets: the same five size classes the paper's S_n
#: experiment swept, scaled from statement counts instead of raw LOC.
SIZE_CLASS_PRESETS: Dict[str, GeneratorConfig] = {
    "tiny": GeneratorConfig(
        size_class="tiny",
        sections=(1, 1),
        helpers_per_section=(0, 1),
        statements_per_block=(1, 2),
        main_statements=(2, 4),
        max_stmt_depth=1,
        max_expr_depth=2,
        max_cells_per_section=1,
    ),
    "small": GeneratorConfig(size_class="small"),
    "medium": GeneratorConfig(
        size_class="medium",
        sections=(1, 2),
        helpers_per_section=(1, 3),
        statements_per_block=(2, 4),
        main_statements=(6, 12),
        max_stmt_depth=2,
        max_expr_depth=3,
    ),
    "large": GeneratorConfig(
        size_class="large",
        sections=(1, 2),
        helpers_per_section=(2, 4),
        statements_per_block=(3, 5),
        main_statements=(10, 18),
        max_stmt_depth=3,
        max_expr_depth=3,
    ),
    "huge": GeneratorConfig(
        size_class="huge",
        sections=(2, 3),
        helpers_per_section=(3, 5),
        statements_per_block=(3, 6),
        main_statements=(14, 24),
        max_stmt_depth=3,
        max_expr_depth=3,
    ),
}


def config_for_size_class(size_class: str) -> GeneratorConfig:
    if size_class not in SIZE_CLASS_PRESETS:
        raise ValueError(
            f"unknown size class {size_class!r}; "
            f"choose from {sorted(SIZE_CLASS_PRESETS)}"
        )
    return replace(SIZE_CLASS_PRESETS[size_class])


@dataclass
class GeneratedProgram:
    """One generated module plus the metadata needed to replay it."""

    source: str
    seed: int
    size_class: str
    stream_arity: int
    module_name: str
    function_names: List[str] = field(default_factory=list)

    def inputs(self) -> List[float]:
        """The deterministic input stream paired with this program."""
        rng = random.Random(self.seed ^ 0x5EED)
        return [
            round(rng.uniform(-4.0, 4.0), 3) for _ in range(self.stream_arity)
        ]


class _Scope:
    """What the generator may legally reference at the current point."""

    def __init__(self, config: GeneratorConfig, callees: List[Tuple[str, int]]):
        self.config = config
        self.floats: List[str] = []
        self.ints: List[str] = []
        self.float_arrays: List[str] = []
        self.int_arrays: List[str] = []
        #: for-loop variables in scope -> (low, high) value bounds
        self.loop_bounds: Dict[str, Tuple[int, int]] = {}
        #: variables that must not be assigned (live loop/while counters)
        self.reserved: set = set()
        #: float helpers callable from here: (name, arity)
        self.callees = callees

    def assignable_floats(self) -> List[str]:
        return [v for v in self.floats if v not in self.reserved]

    def assignable_ints(self) -> List[str]:
        return [
            v
            for v in self.ints
            if v not in self.reserved and v not in self.loop_bounds
        ]

    def free_loop_vars(self) -> List[str]:
        return [
            v
            for v in _LOOP_VARS
            if v in self.ints
            and v not in self.loop_bounds
            and v not in self.reserved
        ]

    def safe_index_vars(self) -> List[str]:
        limit = self.config.array_length - 1
        return [
            v
            for v, (low, high) in self.loop_bounds.items()
            if 0 <= low and high <= limit
        ]


class _ProgramBuilder:
    def __init__(self, rng: random.Random, config: GeneratorConfig):
        self.rng = rng
        self.config = config
        self.function_names: List[str] = []

    # -- expressions --------------------------------------------------

    def float_literal(self) -> str:
        value = round(self.rng.uniform(-4.0, 4.0), 3)
        return repr(abs(value)) if value >= 0 else f"(-{abs(value)!r})"

    def int_literal(self, low: int = 0, high: int = 7) -> str:
        return str(self.rng.randint(low, high))

    def index_expr(self, scope: _Scope) -> str:
        vars_ = scope.safe_index_vars()
        if vars_ and self.rng.random() < 0.6:
            return self.rng.choice(vars_)
        return self.int_literal(0, self.config.array_length - 1)

    def float_expr(self, scope: _Scope, depth: int) -> str:
        choices = ["lit", "var"]
        if scope.float_arrays:
            choices.append("elem")
        if depth > 0:
            choices += ["binop", "binop", "neg", "builtin", "minmax"]
            if self.config.allow_division:
                choices.append("div")
            float_callees = [
                (name, arity)
                for name, arity in scope.callees
                if arity >= 1
            ]
            if self.config.allow_calls and float_callees:
                choices.append("call")
        kind = self.rng.choice(choices)
        if kind == "lit" or (kind == "var" and not scope.floats):
            return self.float_literal()
        if kind == "var":
            return self.rng.choice(scope.floats)
        if kind == "elem":
            array = self.rng.choice(scope.float_arrays)
            return f"{array}[{self.index_expr(scope)}]"
        if kind == "neg":
            return f"(-{self.float_expr(scope, depth - 1)})"
        if kind == "binop":
            op = self.rng.choice(_FLOAT_BINOPS)
            return (
                f"({self.float_expr(scope, depth - 1)} {op} "
                f"{self.float_expr(scope, depth - 1)})"
            )
        if kind == "div":
            # Literal nonzero divisor: defined on every input.
            divisor = self.rng.choice(("2.0", "4.0", "1.25", "0.5", "8.0"))
            return f"({self.float_expr(scope, depth - 1)} / {divisor})"
        if kind == "builtin":
            inner = self.float_expr(scope, depth - 1)
            if self.rng.random() < 0.5:
                return f"abs({inner})"
            # sqrt over abs keeps the argument in the unit's domain.
            return f"sqrt(abs({inner}))"
        if kind == "minmax":
            fn = self.rng.choice(("min", "max"))
            return (
                f"{fn}({self.float_expr(scope, depth - 1)}, "
                f"{self.float_expr(scope, depth - 1)})"
            )
        # kind == "call"
        name, arity = self.rng.choice(float_callees)
        args = ", ".join(
            self.float_expr(scope, depth - 1) for _ in range(arity)
        )
        return f"{name}({args})"

    def int_expr(self, scope: _Scope, depth: int) -> str:
        choices = ["lit", "var"]
        if depth > 0:
            choices += ["binop", "neg"]
            if self.config.allow_division:
                choices += ["mod", "div"]
        kind = self.rng.choice(choices)
        int_vars = scope.ints + list(scope.loop_bounds)
        if kind == "lit" or (kind == "var" and not int_vars):
            return self.int_literal()
        if kind == "var":
            return self.rng.choice(int_vars)
        if kind == "neg":
            return f"(-{self.int_expr(scope, depth - 1)})"
        if kind == "mod":
            return (
                f"({self.int_expr(scope, depth - 1)} % "
                f"{self.int_literal(2, 7)})"
            )
        if kind == "div":
            return (
                f"({self.int_expr(scope, depth - 1)} / "
                f"{self.int_literal(2, 7)})"
            )
        op = self.rng.choice(("+", "-", "*"))
        return (
            f"({self.int_expr(scope, depth - 1)} {op} "
            f"{self.int_expr(scope, depth - 1)})"
        )

    def condition(self, scope: _Scope, depth: int = 1) -> str:
        if depth > 0 and self.rng.random() < 0.3:
            kind = self.rng.choice(("and", "or", "not"))
            if kind == "not":
                return f"not ({self.condition(scope, depth - 1)})"
            return (
                f"({self.condition(scope, depth - 1)}) {kind} "
                f"({self.condition(scope, depth - 1)})"
            )
        op = self.rng.choice(_COMPARISONS)
        if self.rng.random() < 0.3:
            return (
                f"{self.int_expr(scope, 1)} {op} {self.int_expr(scope, 1)}"
            )
        return (
            f"{self.float_expr(scope, 1)} {op} {self.float_expr(scope, 1)}"
        )

    # -- statements ---------------------------------------------------

    def statements(
        self, scope: _Scope, depth: int, indent: str, count: Optional[int] = None
    ) -> List[str]:
        low, high = self.config.statements_per_block
        count = count if count is not None else self.rng.randint(low, high)
        out: List[str] = []
        for _ in range(count):
            out.extend(self.statement(scope, depth, indent))
        return out

    def statement(self, scope: _Scope, depth: int, indent: str) -> List[str]:
        kinds = ["assign_float", "assign_float", "assign_int", "assign_elem"]
        if depth > 0:
            kinds += ["if", "for"]
            if self.config.allow_while and scope.assignable_ints():
                kinds.append("while")
        if (
            self.config.allow_calls
            and self.config.allow_void_helpers
            and any(arity == -1 for _, arity in scope.callees)
        ):
            kinds.append("call_stmt")
        kind = self.rng.choice(kinds)

        if kind == "assign_float" and scope.assignable_floats():
            var = self.rng.choice(scope.assignable_floats())
            return [
                f"{indent}{var} := "
                f"{self.float_expr(scope, self.config.max_expr_depth)};"
            ]
        if kind == "assign_int" and scope.assignable_ints():
            var = self.rng.choice(scope.assignable_ints())
            return [f"{indent}{var} := {self.int_expr(scope, 2)};"]
        if kind == "assign_elem" and scope.float_arrays:
            array = self.rng.choice(scope.float_arrays)
            index = self.index_expr(scope)
            return [
                f"{indent}{array}[{index}] := "
                f"{self.float_expr(scope, self.config.max_expr_depth)};"
            ]
        if kind == "if":
            return self._if_statement(scope, depth, indent)
        if kind == "for" and scope.free_loop_vars():
            return self._for_statement(scope, depth, indent)
        if kind == "while" and scope.assignable_ints():
            return self._while_statement(scope, depth, indent)
        if kind == "call_stmt":
            voids = [name for name, arity in scope.callees if arity == -1]
            if voids:
                name = self.rng.choice(voids)
                return [f"{indent}{name}({self.float_expr(scope, 1)});"]
        # Fallback: always-legal float literal store.
        if scope.assignable_floats():
            var = self.rng.choice(scope.assignable_floats())
            return [f"{indent}{var} := {self.float_literal()};"]
        return []

    def _if_statement(self, scope: _Scope, depth: int, indent: str) -> List[str]:
        out = [f"{indent}if {self.condition(scope)} then"]
        out.extend(self.statements(scope, depth - 1, indent + "  "))
        if self.rng.random() < 0.5:
            out.append(f"{indent}else")
            out.extend(self.statements(scope, depth - 1, indent + "  "))
        out.append(f"{indent}end;")
        return out

    def _for_statement(self, scope: _Scope, depth: int, indent: str) -> List[str]:
        var = scope.free_loop_vars()[0]
        limit = self.config.array_length - 1
        descending = self.rng.random() < 0.2
        if descending:
            low = self.rng.randint(2, limit)
            high = self.rng.randint(0, low - 1)
            header = f"{indent}for {var} := {low} to {high} by -1 do"
            bounds = (high, low)
        else:
            low = self.rng.randint(0, 2)
            high = self.rng.randint(low, limit)
            step = self.rng.choice((None, None, 2))
            by = "" if step is None else f" by {step}"
            header = f"{indent}for {var} := {low} to {high}{by} do"
            bounds = (low, high)
        scope.loop_bounds[var] = bounds
        out = [header]
        out.extend(self.statements(scope, depth - 1, indent + "  "))
        out.append(f"{indent}end;")
        del scope.loop_bounds[var]
        return out

    def _while_statement(self, scope: _Scope, depth: int, indent: str) -> List[str]:
        counter = self.rng.choice(scope.assignable_ints())
        trips = self.rng.randint(1, 4)
        scope.reserved.add(counter)
        body = self.statements(scope, depth - 1, indent + "  ")
        scope.reserved.discard(counter)
        return [
            f"{indent}{counter} := 0;",
            f"{indent}while {counter} < {trips} do",
            *body,
            f"{indent}  {counter} := {counter} + 1;",
            f"{indent}end;",
        ]

    # -- functions ----------------------------------------------------

    def _decls(self, scope: _Scope, indent: str) -> List[str]:
        out = [f"{indent}var"]
        scalars = [v for v in scope.floats if v not in ("x", "y")]
        if scalars:
            out.append(f"{indent}  {', '.join(scalars)}: float;")
        if scope.ints:
            out.append(f"{indent}  {', '.join(scope.ints)}: int;")
        length = self.config.array_length
        for array in scope.float_arrays:
            out.append(f"{indent}  {array}: array[{length}] of float;")
        for array in scope.int_arrays:
            out.append(f"{indent}  {array}: array[{length}] of int;")
        return out

    def float_helper(
        self, name: str, callees: List[Tuple[str, int]]
    ) -> Tuple[str, int]:
        """A pure float function; returns (text, arity)."""
        arity = self.rng.randint(1, 2)
        scope = _Scope(self.config, list(callees))
        scope.floats = ["x", "y"][:arity] + ["t", "u"]
        scope.ints = ["i", "j", "n"]
        scope.float_arrays = ["a"]
        params = ", ".join(f"{p}: float" for p in ("x", "y")[:arity])
        out = [f"  function {name}({params}) : float"]
        out.extend(self._decls(scope, "  "))
        out.append("  begin")
        out.append(f"    t := {self.float_expr(scope, 1)};")
        out.append("    u := 0.0;")
        if self.config.allow_early_return and self.rng.random() < 0.3:
            out.append(f"    if {self.condition(scope)} then")
            out.append(f"      return {self.float_expr(scope, 1)};")
            out.append("    end;")
        out.extend(
            self.statements(scope, self.config.max_stmt_depth - 1, "    ")
        )
        out.append(
            f"    return {self.float_expr(scope, self.config.max_expr_depth)};"
        )
        out.append("  end")
        self.function_names.append(name)
        return "\n".join(out), arity

    def void_helper(self, name: str, callees: List[Tuple[str, int]]) -> str:
        """A void procedure (covers CallStmt + VOID returns)."""
        scope = _Scope(self.config, list(callees))
        scope.floats = ["x", "t", "u"]
        scope.ints = ["i", "n"]
        scope.float_arrays = ["a"]
        out = [f"  function {name}(x: float)"]
        out.extend(self._decls(scope, "  "))
        out.append("  begin")
        out.append(f"    t := (x * 2.0);")
        out.append("    u := 1.0;")
        out.extend(self.statements(scope, 1, "    ", count=2))
        if self.rng.random() < 0.5:
            out.append("    return;")
        out.append("  end")
        self.function_names.append(name)
        return "\n".join(out)

    def main_function(
        self, callees: List[Tuple[str, int]], arity: int
    ) -> str:
        scope = _Scope(self.config, list(callees))
        scope.floats = list(_STREAM_VARS)
        scope.ints = list(_LOOP_VARS) + ["n", "m"]
        scope.float_arrays = ["a"]
        scope.int_arrays = ["c"]
        out = ["  function main()"]
        decls = [
            "  var",
            f"    {', '.join(_STREAM_VARS)}: float;",
            f"    {', '.join(scope.ints)}: int;",
            f"    a: array[{self.config.array_length}] of float;",
            f"    c: array[{self.config.array_length}] of int;",
        ]
        out.extend(decls)
        out.append("  begin")
        for var in _STREAM_VARS[:arity]:
            out.append(f"    receive({var});")
        for var in _STREAM_VARS[arity:]:
            out.append(f"    {var} := 0.0;")
        low, high = self.config.main_statements
        out.extend(
            self.statements(
                scope,
                self.config.max_stmt_depth,
                "    ",
                count=self.rng.randint(low, high),
            )
        )
        for _ in range(arity):
            out.append(
                f"    send({self.float_expr(scope, self.config.max_expr_depth)});"
            )
        out.append("  end")
        self.function_names.append("main")
        return "\n".join(out)


def generate_program(
    seed: int, config: Optional[GeneratorConfig] = None
) -> GeneratedProgram:
    """Generate one valid Warp module from ``seed``."""
    config = config or GeneratorConfig()
    rng = random.Random(seed)
    builder = _ProgramBuilder(rng, config)
    n_sections = rng.randint(*config.sections)
    arity = rng.randint(*config.stream_arity)
    module_name = f"{config.module_name}{seed & 0xFFFF}"
    lines: List[str] = [f"module {module_name}"]
    next_cell = 0
    for s in range(n_sections):
        cells = rng.randint(1, config.max_cells_per_section)
        first, last = next_cell, next_cell + cells - 1
        next_cell = last + 1
        lines.append(f"section s{s + 1} (cells {first}..{last})")
        callees: List[Tuple[str, int]] = []
        n_helpers = rng.randint(*config.helpers_per_section)
        for h in range(n_helpers):
            name = f"h{s + 1}_{h + 1}"
            text, helper_arity = builder.float_helper(name, callees)
            lines.append(text)
            callees.append((name, helper_arity))
        if (
            config.allow_void_helpers
            and config.allow_calls
            and rng.random() < 0.5
        ):
            name = f"p{s + 1}"
            lines.append(builder.void_helper(name, callees))
            callees.append((name, -1))  # -1 marks a void procedure
        lines.append(builder.main_function(callees, arity))
        lines.append("end")
    lines.append("end")
    return GeneratedProgram(
        source="\n".join(lines) + "\n",
        seed=seed,
        size_class=config.size_class,
        stream_arity=arity,
        module_name=module_name,
        function_names=list(builder.function_names),
    )
