"""List scheduling: machine ops -> VLIW bundles, one block at a time.

Classic critical-path list scheduling under two kinds of constraints:

- **resources**: one operation per functional unit per cycle;
- **dependences**: RAW edges carry the producer's latency; WAR edges carry
  zero (registers are read at issue); WAW edges carry whatever keeps the
  later write landing later; memory and I/O edges keep program order; the
  block terminator drains — every result lands before control leaves the
  block, so blocks compose without cross-block hazard tracking.

The scheduler also counts its own work (DAG edges + placement attempts),
which feeds the compile-cost model of the cluster simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..asmlink.objformat import Bundle, MachineOp, ScheduledBlock
from ..ir.instructions import Opcode
from ..machine.resources import FUClass, PhysReg
from .select import SelectedBlock

_IO_OPS = {Opcode.SEND, Opcode.RECV}


@dataclass
class ScheduleResult:
    block: ScheduledBlock
    work_units: int


def schedule_block(selected: SelectedBlock) -> ScheduleResult:
    """Schedule one block's ops into bundles."""
    ops = selected.ops
    if not ops:
        return ScheduleResult(ScheduledBlock(selected.label, []), 0)
    edges = _build_edges(ops)
    placement, work = _list_schedule(ops, edges)
    bundles = _emit_bundles(ops, placement)
    return ScheduleResult(
        ScheduledBlock(selected.label, bundles), work + len(edges)
    )


def _build_edges(ops: List[MachineOp]) -> List[Tuple[int, int, int]]:
    """(source index, sink index, delay) dependence edges, program order."""
    edges: List[Tuple[int, int, int]] = []
    last_write: Dict[PhysReg, int] = {}
    reads_since_write: Dict[PhysReg, List[int]] = {}
    last_store: Dict[Optional[str], int] = {}
    loads_since_store: Dict[Optional[str], List[int]] = {}
    last_effect: Optional[int] = None
    terminator = len(ops) - 1 if ops[-1].op in (Opcode.JMP, Opcode.BR, Opcode.RET) else None

    for j, op in enumerate(ops):
        # Register RAW / WAR edges.
        for operand in op.operands:
            if isinstance(operand, PhysReg):
                producer = last_write.get(operand)
                if producer is not None:
                    edges.append((producer, j, ops[producer].latency))
                reads_since_write.setdefault(operand, []).append(j)
        if op.dest is not None:
            producer = last_write.get(op.dest)
            if producer is not None:  # WAW
                delay = ops[producer].latency - op.latency + 1
                edges.append((producer, j, delay))
            for reader in reads_since_write.get(op.dest, []):  # WAR
                if reader != j:
                    edges.append((reader, j, 0))
            last_write[op.dest] = j
            reads_since_write[op.dest] = []

        # Memory ordering, disambiguated by array identity.
        if op.op is Opcode.LOAD:
            producer = last_store.get(op.array_name)
            if producer is not None:
                edges.append((producer, j, ops[producer].latency))
            loads_since_store.setdefault(op.array_name, []).append(j)
        elif op.op is Opcode.STORE:
            producer = last_store.get(op.array_name)
            if producer is not None:
                edges.append((producer, j, 1))
            for reader in loads_since_store.get(op.array_name, []):
                edges.append((reader, j, 0))
            last_store[op.array_name] = j
            loads_since_store[op.array_name] = []

        # I/O and call ordering (queue operations keep program order).
        if op.op in _IO_OPS or op.op is Opcode.CALL:
            if last_effect is not None:
                edges.append((last_effect, j, 1))
            last_effect = j

        # Calls are full barriers: everything before completes first,
        # nothing after starts until the call's latency has elapsed.
        if op.op is Opcode.CALL:
            for i in range(j):
                edges.append((i, j, ops[i].latency))
            for k in range(j + 1, len(ops)):
                edges.append((j, k, op.latency))

    # Drain at the terminator: all results land before control leaves.
    if terminator is not None:
        for i in range(terminator):
            edges.append((i, terminator, max(0, ops[i].latency - 1)))
    return edges


def _list_schedule(
    ops: List[MachineOp], edges: List[Tuple[int, int, int]]
) -> Tuple[List[int], int]:
    """Returns (cycle per op, work units)."""
    n = len(ops)
    succs: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
    preds_left = [0] * n
    earliest = [0] * n
    for src, dst, delay in edges:
        succs[src].append((dst, delay))
        preds_left[dst] += 1

    # Priority: critical-path height (longest path to any leaf).
    height = [op.latency for op in ops]
    for i in range(n - 1, -1, -1):
        for dst, delay in succs[i]:
            height[i] = max(height[i], delay + height[dst])

    ready = [i for i in range(n) if preds_left[i] == 0]
    placed: List[Optional[int]] = [None] * n
    remaining = n
    cycle = 0
    work = 0
    guard = 0
    while remaining > 0:
        guard += 1
        if guard > 100000:
            raise RuntimeError("list scheduler failed to converge")
        used_slots = set()
        # Highest first; ties broken by program order for determinism.
        candidates = sorted(
            (i for i in ready if earliest[i] <= cycle),
            key=lambda i: (-height[i], i),
        )
        for i in candidates:
            work += 1
            if ops[i].fu in used_slots:
                continue
            used_slots.add(ops[i].fu)
            placed[i] = cycle
            ready.remove(i)
            remaining -= 1
            for dst, delay in succs[i]:
                earliest[dst] = max(earliest[dst], cycle + delay)
                preds_left[dst] -= 1
                if preds_left[dst] == 0:
                    ready.append(dst)
        cycle += 1
    return placed, work


def _emit_bundles(ops: List[MachineOp], placement: List[int]) -> List[Bundle]:
    length = max(placement) + 1 if placement else 0
    bundles = [Bundle() for _ in range(length)]
    for index, cycle in enumerate(placement):
        bundles[cycle].add(ops[index])
    return bundles
