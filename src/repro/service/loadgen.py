"""Seeded open-loop load generator for the compile service.

Open loop means arrivals do not wait for completions: the generator
draws a Poisson arrival schedule, a tenant, a priority, and a workload
size for every job up front from one seeded RNG, then submits on that
schedule regardless of how the service is keeping up — which is what
exposes queueing behavior (admission rejections, p95 latency growth)
that closed-loop drivers structurally cannot see.

The plan (:func:`plan_load`) is a pure function of the spec, so two
runs with the same seed submit byte-identical modules in the same
order at the same offsets; only service timing varies.
"""

from __future__ import annotations

import random
import statistics
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..workloads.sizes import SIZE_CLASSES
from ..workloads.synthetic import synthetic_program
from .server import AdmissionError, CompileService


@dataclass
class LoadSpec:
    """What to throw at the service."""

    seed: int = 0
    jobs: int = 16
    #: mean arrival rate (jobs/second); exponential inter-arrivals
    arrival_rate: float = 6.0
    #: tenant name -> sampling weight (who submits)
    tenants: Dict[str, float] = field(
        default_factory=lambda: {"alice": 1.0, "bob": 1.0}
    )
    #: size class -> sampling weight (how big the module is)
    size_mix: Dict[str, float] = field(
        default_factory=lambda: {"tiny": 0.6, "small": 0.3, "medium": 0.1}
    )
    #: size class -> functions per module
    functions_by_size: Dict[str, int] = field(
        default_factory=lambda: {
            "tiny": 6,
            "small": 4,
            "medium": 2,
            "large": 2,
            "huge": 1,
        }
    )
    #: priority class -> sampling weight
    priority_mix: Dict[str, float] = field(
        default_factory=lambda: {"normal": 1.0}
    )
    opt_level: int = 2
    cells: int = 10

    def validate(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"need at least one job, got {self.jobs}")
        if self.arrival_rate <= 0:
            raise ValueError(
                f"arrival rate must be positive, got {self.arrival_rate}"
            )
        for size in self.size_mix:
            if size not in SIZE_CLASSES:
                raise KeyError(f"unknown size class {size!r}")


@dataclass(frozen=True)
class PlannedJob:
    """One pre-drawn arrival."""

    index: int
    at: float  # seconds after the run starts
    tenant: str
    priority: str
    size_class: str
    n_functions: int
    module_name: str
    source: str


def _weighted_choice(rng: random.Random, mix: Dict[str, float]) -> str:
    names = sorted(mix)
    weights = [mix[name] for name in names]
    return rng.choices(names, weights=weights, k=1)[0]


def plan_load(spec: LoadSpec) -> List[PlannedJob]:
    """Draw the full arrival schedule (deterministic in the seed)."""
    spec.validate()
    rng = random.Random(spec.seed)
    plan: List[PlannedJob] = []
    clock = 0.0
    for index in range(spec.jobs):
        clock += rng.expovariate(spec.arrival_rate)
        tenant = _weighted_choice(rng, spec.tenants)
        priority = _weighted_choice(rng, spec.priority_mix)
        size_class = _weighted_choice(rng, spec.size_mix)
        n_functions = spec.functions_by_size.get(size_class, 2)
        module_name = f"load_{spec.seed}_{index}_{size_class}"
        plan.append(
            PlannedJob(
                index=index,
                at=clock,
                tenant=tenant,
                priority=priority,
                size_class=size_class,
                n_functions=n_functions,
                module_name=module_name,
                source=synthetic_program(
                    size_class, n_functions, module_name=module_name
                ),
            )
        )
    return plan


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not sorted_values:
        return 0.0
    rank = -(-q * len(sorted_values) // 1)  # ceil(q * n)
    rank = min(len(sorted_values), max(1, int(rank)))
    return sorted_values[rank - 1]


@dataclass
class LoadReport:
    """Throughput/latency outcome of one load-generation run."""

    spec_seed: int
    jobs_planned: int
    jobs_completed: int
    jobs_failed: int
    jobs_rejected: int
    elapsed: float
    throughput: float  # completed jobs / second
    latency_p50: float
    latency_p95: float
    latency_mean: float
    queue_wait_p50: float
    queue_wait_p95: float
    pool_utilization: float
    workers: int
    per_tenant_completed: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "seed": self.spec_seed,
            "jobs_planned": self.jobs_planned,
            "jobs_completed": self.jobs_completed,
            "jobs_failed": self.jobs_failed,
            "jobs_rejected": self.jobs_rejected,
            "elapsed_s": round(self.elapsed, 6),
            "throughput_jobs_per_s": round(self.throughput, 4),
            "latency_p50_s": round(self.latency_p50, 6),
            "latency_p95_s": round(self.latency_p95, 6),
            "latency_mean_s": round(self.latency_mean, 6),
            "queue_wait_p50_s": round(self.queue_wait_p50, 6),
            "queue_wait_p95_s": round(self.queue_wait_p95, 6),
            "pool_utilization": round(self.pool_utilization, 4),
            "workers": self.workers,
            "per_tenant_completed": dict(
                sorted(self.per_tenant_completed.items())
            ),
        }


def run_load(
    service: CompileService,
    spec: LoadSpec,
    *,
    time_scale: float = 1.0,
    wait_timeout: Optional[float] = 300.0,
) -> LoadReport:
    """Drive ``service`` with the spec's arrival schedule and measure.

    ``time_scale`` compresses the schedule (0.5 = twice as fast) so
    benchmarks can sweep offered load without changing the seed's draw
    sequence.  Rejected submissions (admission control) are counted and
    skipped — open loop never retries.
    """
    plan = plan_load(spec)
    start = time.monotonic()
    submitted: List[tuple] = []  # (PlannedJob, job_id)
    rejected = 0
    for planned in plan:
        target = start + planned.at * time_scale
        delay = target - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        try:
            job_id = service.submit(
                planned.source,
                tenant=planned.tenant,
                filename=f"{planned.module_name}.w2",
                priority=planned.priority,
                opt_level=spec.opt_level,
                cells=spec.cells,
            )
        except AdmissionError:
            rejected += 1
            continue
        submitted.append((planned, job_id))

    latencies: List[float] = []
    queue_waits: List[float] = []
    per_tenant: Dict[str, int] = {}
    failed = 0
    for planned, job_id in submitted:
        job = service.wait(job_id, timeout=wait_timeout)
        if job.state != "done":
            failed += 1
            continue
        latencies.append(job.finished_at - job.submitted_at)
        if job.started_at is not None:
            queue_waits.append(job.started_at - job.submitted_at)
        per_tenant[planned.tenant] = per_tenant.get(planned.tenant, 0) + 1
    elapsed = time.monotonic() - start

    latencies.sort()
    queue_waits.sort()
    return LoadReport(
        spec_seed=spec.seed,
        jobs_planned=len(plan),
        jobs_completed=len(latencies),
        jobs_failed=failed,
        jobs_rejected=rejected,
        elapsed=elapsed,
        throughput=len(latencies) / elapsed if elapsed > 0 else 0.0,
        latency_p50=_percentile(latencies, 0.50),
        latency_p95=_percentile(latencies, 0.95),
        latency_mean=(
            statistics.fmean(latencies) if latencies else 0.0
        ),
        queue_wait_p50=_percentile(queue_waits, 0.50),
        queue_wait_p95=_percentile(queue_waits, 0.95),
        pool_utilization=service.pool_utilization(),
        workers=service.worker_count,
        per_tenant_completed=per_tenant,
    )
