"""Compile service: a multi-tenant job scheduler over the warm farm.

The paper's hierarchy compiles *one* module at a time over a pool of
workstations (§3); this package turns that into a long-lived service:
many concurrent compile jobs from many tenants share ONE warm worker
pool and ONE artifact cache, with weighted fair-share scheduling at the
function-task level so a tiny module never waits behind an entire huge
one — the paper's small/medium/large load-balancing observation (§4.3)
replayed at the job level.
"""

from .queue import (
    PRIORITY_CLASSES,
    FairShareQueue,
    QueuedTask,
    result_keys_for_task,
)
from .server import (
    AdmissionError,
    CompileService,
    JobCancelled,
    ServiceSocketServer,
    TaskSpan,
)
from .client import ServiceClient, ServiceError, resolve_address
from .loadgen import (
    EditSessionReport,
    EditSessionSpec,
    LoadReport,
    LoadSpec,
    plan_edit_session,
    plan_load,
    replay_edit_session,
    run_load,
)

__all__ = [
    "AdmissionError",
    "CompileService",
    "EditSessionReport",
    "EditSessionSpec",
    "FairShareQueue",
    "JobCancelled",
    "LoadReport",
    "LoadSpec",
    "PRIORITY_CLASSES",
    "QueuedTask",
    "ServiceClient",
    "ServiceError",
    "ServiceSocketServer",
    "TaskSpan",
    "plan_edit_session",
    "plan_load",
    "replay_edit_session",
    "resolve_address",
    "result_keys_for_task",
    "run_load",
]
