"""Control-flow simplification.

Three rewrites, applied to a fixpoint:

1. ``br`` on a constant condition becomes ``jmp`` (then unreachable blocks
   are removed);
2. a jump to a block that only jumps elsewhere is threaded through;
3. a block whose single successor has no other predecessors is merged into
   it.

Keeping the CFG minimal matters downstream: the software pipeliner only
fires on single-block loop bodies, and lowering's structural translation
leaves join blocks that would otherwise defeat it.
"""

from __future__ import annotations

from typing import Dict

from ..ir.cfg import BasicBlock, FunctionIR
from ..ir.instructions import Instr, Opcode
from ..ir.values import Const


def simplify_control_flow(function: FunctionIR) -> int:
    changes = 0
    while True:
        round_changes = 0
        round_changes += _fold_constant_branches(function)
        round_changes += function.remove_unreachable_blocks()
        round_changes += _thread_trivial_jumps(function)
        round_changes += function.remove_unreachable_blocks()
        round_changes += _merge_straight_line(function)
        if round_changes == 0:
            return changes
        changes += round_changes


def _fold_constant_branches(function: FunctionIR) -> int:
    changes = 0
    for block in function.blocks:
        term = block.terminator
        if term is None or term.op is not Opcode.BR:
            continue
        cond = term.operands[0]
        if isinstance(cond, Const):
            target = term.labels[0] if cond.value else term.labels[1]
            block.instructions[-1] = Instr(Opcode.JMP, labels=(target,))
            changes += 1
        elif term.labels[0] == term.labels[1]:
            block.instructions[-1] = Instr(Opcode.JMP, labels=(term.labels[0],))
            changes += 1
    return changes


def _thread_trivial_jumps(function: FunctionIR) -> int:
    """Retarget edges that point at empty jump-only blocks."""
    block_map = function.block_map()

    def final_target(name: str) -> str:
        seen = {name}
        while True:
            block = block_map[name]
            term = block.terminator
            is_trivial = (
                len(block.instructions) == 1
                and term is not None
                and term.op is Opcode.JMP
            )
            if not is_trivial:
                return name
            nxt = term.labels[0]
            if nxt in seen:  # infinite empty loop; leave it alone
                return name
            seen.add(nxt)
            name = nxt

    changes = 0
    for block in function.blocks:
        term = block.terminator
        if term is None or not term.labels:
            continue
        new_labels = tuple(final_target(label) for label in term.labels)
        if new_labels != term.labels:
            block.instructions[-1] = Instr(
                term.op, operands=term.operands, labels=new_labels
            )
            changes += 1
    return changes


def _merge_straight_line(function: FunctionIR) -> int:
    """Merge ``a -> b`` when a's only successor is b and b's only pred is a."""
    changes = 0
    while True:
        preds = function.predecessors()
        block_map = function.block_map()
        merged = False
        for block in function.blocks:
            term = block.terminator
            if term is None or term.op is not Opcode.JMP:
                continue
            succ_name = term.labels[0]
            if succ_name == block.name:
                continue
            if preds[succ_name] != [block.name]:
                continue
            if succ_name == function.entry.name:
                continue
            succ = block_map[succ_name]
            block.instructions = block.instructions[:-1] + succ.instructions
            function.blocks.remove(succ)
            merged = True
            changes += 1
            break
        if not merged:
            return changes
