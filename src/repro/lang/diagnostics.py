"""Diagnostics: errors and warnings with source positions.

The compiler never prints directly; all phases report through a
:class:`DiagnosticSink`.  This matters for the parallel compiler: each
function master collects its own diagnostics, and the section master merges
them back into source order so the parallel compiler's output is identical
to the sequential compiler's output (the paper's §3.2 requires the section
master "to combine the diagnostic output that was generated during the
compilation of the functions").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from .source import Span


class Severity(enum.Enum):
    """How bad a diagnostic is; errors abort compilation after the phase."""

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Diagnostic:
    """One reported problem, formatted as ``file:line:col: severity: msg``."""

    severity: Severity
    message: str
    span: Optional[Span] = None

    def render(self) -> str:
        location = f"{self.span}: " if self.span is not None else ""
        return f"{location}{self.severity}: {self.message}"

    def sort_key(self):
        """Stable source order used when merging per-function diagnostics."""
        if self.span is None:
            return ("", 0, 0)
        return (self.span.filename, self.span.start.line, self.span.start.column)


class CompileError(Exception):
    """Raised when a phase cannot continue; carries the diagnostics so far."""

    def __init__(self, diagnostics: Iterable[Diagnostic]):
        self.diagnostics = list(diagnostics)
        summary = "; ".join(d.render() for d in self.diagnostics[:3])
        extra = len(self.diagnostics) - 3
        if extra > 0:
            summary += f" (+{extra} more)"
        super().__init__(summary or "compilation failed")


@dataclass
class DiagnosticSink:
    """Accumulates diagnostics for one compilation (or one function)."""

    diagnostics: List[Diagnostic] = field(default_factory=list)

    def error(self, message: str, span: Optional[Span] = None) -> None:
        self.diagnostics.append(Diagnostic(Severity.ERROR, message, span))

    def warning(self, message: str, span: Optional[Span] = None) -> None:
        self.diagnostics.append(Diagnostic(Severity.WARNING, message, span))

    def extend(self, other: "DiagnosticSink") -> None:
        self.diagnostics.extend(other.diagnostics)

    @property
    def error_count(self) -> int:
        return sum(1 for d in self.diagnostics if d.severity is Severity.ERROR)

    @property
    def has_errors(self) -> bool:
        return self.error_count > 0

    def check(self) -> None:
        """Raise :class:`CompileError` if any errors were reported."""
        if self.has_errors:
            raise CompileError(self.diagnostics)

    def merged_in_source_order(self) -> List[Diagnostic]:
        """Diagnostics sorted by source position — the sequential order.

        Used by section masters to recombine per-function diagnostics so
        the parallel compiler reports exactly what the sequential one would.
        """
        return sorted(self.diagnostics, key=Diagnostic.sort_key)

    def render(self) -> str:
        return "\n".join(d.render() for d in self.merged_in_source_order())
