"""Download-module construction and deterministic serialization.

``build_download_module`` is the tail of phase 4: it replicates each
section's linked program onto the cells that section claims.  The textual
digest is the artifact our integration tests diff to prove the parallel
compiler produces byte-identical output to the sequential compiler — the
paper's §3.2 correctness requirement.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .objformat import CellProgram, DownloadModule


def build_download_module(
    module_name: str,
    section_cells: Dict[str, Tuple[int, int]],
    programs: Dict[str, CellProgram],
    diagnostics_text: str = "",
) -> DownloadModule:
    """Assign each section's program to its cell range."""
    module = DownloadModule(
        module_name=module_name, diagnostics_text=diagnostics_text
    )
    for section_name, (first, last) in section_cells.items():
        program = programs.get(section_name)
        if program is None:
            raise KeyError(f"no linked program for section {section_name!r}")
        for cell in range(first, last + 1):
            module.cell_programs[cell] = program
    return module


def module_digest(module: DownloadModule) -> str:
    """Deterministic, human-readable dump of a download module."""
    lines: List[str] = [f"download-module {module.module_name}"]
    for cell in sorted(module.cell_programs):
        program = module.cell_programs[cell]
        lines.append(
            f"cell {cell}: section {program.section_name} "
            f"entry={program.entry} data={program.data_words}"
        )
        for name in sorted(program.functions):
            function = program.functions[name]
            lines.append(
                f"  {name}: frame@{program.frame_bases[name]} "
                f"params=({', '.join(str(r) for r in function.param_regs)}) "
                f"ret={function.return_bank or 'void'}"
            )
            for index, bundle in enumerate(function.bundles):
                lines.append(f"    {index:4d} {bundle}")
    if module.diagnostics_text:
        lines.append("diagnostics:")
        lines.append(module.diagnostics_text)
    return "\n".join(lines)


def module_size_words(module: DownloadModule) -> int:
    """Rough download size: one word per operation plus headers.

    Used by the cluster simulator to price moving the module from the
    compile host to the Warp interface unit over the network.
    """
    total = 0
    seen = set()
    for program in module.cell_programs.values():
        if id(program) in seen:
            # Replicated sections download once per cell nonetheless.
            pass
        seen.add(id(program))
        for function in program.functions.values():
            for bundle in function.bundles:
                total += 1 + len(bundle.ops)
    return total
