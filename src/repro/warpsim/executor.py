"""Bundle execution: one cell, one cycle.

Semantics (the contract the scheduler compiles against):

- all operand reads happen at issue, seeing the register file *after*
  write-backs due this cycle have landed;
- results land ``latency`` cycles later (write-back);
- a bundle issues atomically: if any of its receives would block on an
  empty queue or any send on a full queue, the whole bundle stalls;
- branches take effect at the next cycle;
- a call saves the register file, transfers to the callee, and keeps the
  sequencer busy for the call latency; return restores the caller.
"""

from __future__ import annotations

from typing import List, Optional, Union

from ..asmlink.objformat import Bundle, MachineOp
from ..ir.instructions import Opcode, evaluate_constant
from ..machine.resources import FUClass, PhysReg
from .cell_state import CellState, SimulationError
from .queues import CellQueue

Number = Union[int, float]

_COMPUTE_OPS = {
    Opcode.ADD,
    Opcode.SUB,
    Opcode.MUL,
    Opcode.DIV,
    Opcode.MOD,
    Opcode.NEG,
    Opcode.ABS,
    Opcode.SQRT,
    Opcode.MIN,
    Opcode.MAX,
    Opcode.NOT,
    Opcode.AND,
    Opcode.OR,
    Opcode.CEQ,
    Opcode.CNE,
    Opcode.CLT,
    Opcode.CLE,
    Opcode.CGT,
    Opcode.CGE,
    Opcode.MOV,
    Opcode.LI,
    Opcode.ITOF,
    Opcode.FTOI,
}


def step_cell(
    state: CellState,
    cycle: int,
    in_queue: Optional[CellQueue],
    out_queue: Optional[CellQueue],
) -> bool:
    """Advance one cell by one cycle; returns True if it made progress."""
    if state.halted:
        state.apply_writebacks(cycle)
        return False
    state.apply_writebacks(cycle)
    if cycle < state.busy_until:
        state.stats.busy_cycles += 1
        return True

    bundle = _fetch(state)
    if bundle is None:
        # Fell off the end of a function without RET: trap.
        raise SimulationError(
            f"pc {state.pc} past the end of {state.function.name!r}"
        )

    if _would_block(bundle, in_queue, out_queue):
        state.stats.stall_cycles += 1
        return False

    _execute_bundle(state, bundle, cycle, in_queue, out_queue)
    state.stats.bundles_executed += 1
    return True


def _fetch(state: CellState) -> Optional[Bundle]:
    bundles = state.function.bundles
    if 0 <= state.pc < len(bundles):
        return bundles[state.pc]
    return None


def _would_block(
    bundle: Bundle,
    in_queue: Optional[CellQueue],
    out_queue: Optional[CellQueue],
) -> bool:
    receives = sum(1 for op in bundle.all_ops() if op.op is Opcode.RECV)
    sends = sum(1 for op in bundle.all_ops() if op.op is Opcode.SEND)
    if receives:
        if in_queue is None or len(in_queue) < receives:
            return True
    if sends:
        if out_queue is None or len(out_queue) + sends > out_queue.capacity:
            return True
    return False


def _operand_value(state: CellState, operand) -> Number:
    if isinstance(operand, PhysReg):
        return state.read_register(operand)
    return operand


def _execute_bundle(
    state: CellState,
    bundle: Bundle,
    cycle: int,
    in_queue: Optional[CellQueue],
    out_queue: Optional[CellQueue],
) -> None:
    # Read every operand first: all ops in a bundle see the same state.
    staged = [
        (op, [_operand_value(state, v) for v in op.operands])
        for op in bundle.all_ops()
    ]
    next_pc = state.pc + 1
    transfer = None  # deferred call/return

    for op, values in staged:
        if op.op in _COMPUTE_OPS:
            result = evaluate_constant(op.op, values)
            if result is None:
                raise SimulationError(
                    f"arithmetic trap in {state.function.name!r}: "
                    f"{op.op.value} {values}"
                )
            state.schedule_reg_write(cycle + op.latency, op.dest, result)
        elif op.op is Opcode.LOAD:
            address = state.frame_base() + op.array_offset + int(values[0])
            value = state.read_memory(address)
            state.schedule_reg_write(cycle + op.latency, op.dest, value)
        elif op.op is Opcode.STORE:
            address = state.frame_base() + op.array_offset + int(values[0])
            state.schedule_mem_write(cycle + op.latency, address, values[1])
        elif op.op is Opcode.SEND:
            out_queue.push(values[0])
        elif op.op is Opcode.RECV:
            value = in_queue.pop()
            state.schedule_reg_write(cycle + op.latency, op.dest, value)
        elif op.op is Opcode.JMP:
            next_pc = op.labels[0]
        elif op.op is Opcode.BR:
            next_pc = op.labels[0] if values[0] != 0 else op.labels[1]
        elif op.op is Opcode.CALL:
            transfer = ("call", op, values)
        elif op.op is Opcode.RET:
            transfer = ("ret", op, values)
        else:  # pragma: no cover - exhaustive over opcodes
            raise SimulationError(f"unexecutable op {op.op}")

    if transfer is None:
        state.pc = next_pc
        return

    kind, op, values = transfer
    if kind == "call":
        callee = state.program.functions.get(op.callee)
        if callee is None:
            raise SimulationError(f"call to unknown function {op.callee!r}")
        state.enter_function(
            callee, values, op.dest, return_pc=state.pc + 1
        )
        state.busy_until = cycle + op.latency
    else:
        return_value = values[0] if values else None
        state.leave_function(return_value)
        state.busy_until = cycle + op.latency
