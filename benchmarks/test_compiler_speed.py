"""Benchmark of the reproduction compiler itself (real wall-clock).

Not a figure from the paper — a performance-tracking harness for this
codebase: how fast phases 1-4 run on each workload size, so regressions
in the optimizer or the pipeliner show up as benchmark deltas.
"""

import pytest

from repro.driver.sequential import SequentialCompiler
from repro.workloads.synthetic import synthetic_program


@pytest.mark.parametrize("size", ["tiny", "small", "medium", "large"])
def test_compile_speed(benchmark, size):
    source = synthetic_program(size, 1)
    result = benchmark(SequentialCompiler().compile, source)
    assert result.profile.functions[0].work_units > 0


def test_compile_speed_full_program(benchmark):
    """The whole S_4(medium) program through all four phases."""
    source = synthetic_program("medium", 4)
    result = benchmark(SequentialCompiler().compile, source)
    assert len(result.profile.functions) == 4
