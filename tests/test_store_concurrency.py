"""PickleStore under concurrent multi-process writers.

The store's contract (src/repro/cache/store.py): atomic tmp+os.replace
writes mean racing readers see old bytes or new bytes, never a torn
write; garbage on disk is quarantined (deleted + counted) and reported
as a miss, never returned as an artifact.  These tests hammer one store
directory from many real processes to prove it.
"""

import pickle
from concurrent.futures import ProcessPoolExecutor

from repro.fabric.netcache import NetworkBlobStore

KEYS = [f"{i:02x}" * 32 for i in range(8)]


def _value_for(key: str, round_no: int) -> bytes:
    """A payload derived from its key: a torn or cross-wired read is
    detectable by content, not just by pickle failing to parse."""
    return (f"{key}:{round_no}:" + "x" * 4096).encode("ascii")


def _writer(args):
    """Worker process: write every key many times into a shared store."""
    cache_dir, worker_id, rounds = args
    store = NetworkBlobStore(cache_dir)
    for round_no in range(rounds):
        for key in KEYS:
            store.put(key, _value_for(key, round_no))
    return worker_id


def _reader(args):
    """Worker process: read every key continuously; return violations."""
    cache_dir, rounds = args
    store = NetworkBlobStore(cache_dir)
    violations = []
    for _ in range(rounds):
        for key in KEYS:
            blob = store.get(key)
            if blob is None:
                continue  # not written yet / raced with replace: a miss is fine
            text = blob.decode("ascii", errors="replace")
            if not text.startswith(f"{key}:") or not text.endswith("x" * 4096):
                violations.append((key, text[:64]))
    return violations, store.stats.corrupt


class TestConcurrentWriters:
    def test_parallel_writers_and_readers_never_tear(self, tmp_path):
        cache_dir = str(tmp_path / "shared")
        with ProcessPoolExecutor(max_workers=6) as pool:
            writers = [
                pool.submit(_writer, (cache_dir, i, 20)) for i in range(4)
            ]
            readers = [
                pool.submit(_reader, (cache_dir, 40)) for _ in range(2)
            ]
            for future in writers:
                future.result(timeout=120)
            for future in readers:
                violations, corrupt = future.result(timeout=120)
                assert violations == [], violations
                # Atomic replace means racing processes never manufacture
                # corruption — every read was old bytes or new bytes.
                assert corrupt == 0

        # The store converged: every key holds some writer's final round.
        store = NetworkBlobStore(cache_dir)
        for key in KEYS:
            blob = store.get(key)
            assert blob is not None
            assert blob == _value_for(key, 19)

    def test_last_writer_wins_per_key(self, tmp_path):
        cache_dir = str(tmp_path / "shared")
        store = NetworkBlobStore(cache_dir)
        store.put(KEYS[0], _value_for(KEYS[0], 0))
        store.put(KEYS[0], _value_for(KEYS[0], 1))
        assert store.get(KEYS[0]) == _value_for(KEYS[0], 1)
        assert store.entry_count() == 1


class TestQuarantine:
    def test_garbage_entry_is_deleted_and_counted(self, tmp_path):
        store = NetworkBlobStore(tmp_path / "s")
        key = KEYS[0]
        store.put(key, _value_for(key, 0))
        path = store._entry_path(key)
        path.write_bytes(b"\x00\x01 this is not a pickle")
        assert store.get(key) is None
        assert store.stats.corrupt == 1
        assert not path.exists(), "corrupt entry must be quarantined"
        # The slot is reusable immediately.
        store.put(key, _value_for(key, 1))
        assert store.get(key) == _value_for(key, 1)

    def test_truncated_entry_is_quarantined(self, tmp_path):
        store = NetworkBlobStore(tmp_path / "s")
        key = KEYS[1]
        store.put(key, _value_for(key, 0))
        path = store._entry_path(key)
        whole = path.read_bytes()
        path.write_bytes(whole[: len(whole) // 2])  # a crashed writer's stub
        assert store.get(key) is None
        assert store.stats.corrupt == 1
        assert not path.exists()

    def test_wrong_payload_type_is_quarantined(self, tmp_path):
        store = NetworkBlobStore(tmp_path / "s")
        key = KEYS[2]
        path = store._entry_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # A valid pickle of the WRONG type (tier/schema confusion).
        path.write_bytes(pickle.dumps({"not": "bytes"}))
        assert store.get(key) is None
        assert store.stats.corrupt == 1
        assert not path.exists()

    def test_tmp_files_never_count_as_entries(self, tmp_path):
        store = NetworkBlobStore(tmp_path / "s")
        key = KEYS[3]
        store.put(key, _value_for(key, 0))
        shard = store._entry_path(key).parent
        (shard / ".tmp-dead-writer.pkl").write_bytes(b"partial")
        assert store.entry_count() == 1
        assert store.get(key) == _value_for(key, 0)
