"""Constant folding and algebraic simplification (local optimization).

Instructions whose operands are all constants are folded into ``li``;
identity operations (``x+0``, ``x*1``, ``x-0``, ``x/1``) become moves.
``x*0`` folds to 0 for integers only — for floats that identity is unsound
in the presence of NaN and signed zero, and this compiler keeps
floating-point evaluation exact.
"""

from __future__ import annotations

from ..ir.cfg import FunctionIR
from ..ir.instructions import Instr, Opcode, evaluate_constant
from ..ir.values import Const, IR_FLOAT, IR_INT, VReg

_FOLDABLE = {
    Opcode.ADD,
    Opcode.SUB,
    Opcode.MUL,
    Opcode.DIV,
    Opcode.MOD,
    Opcode.NEG,
    Opcode.ABS,
    Opcode.SQRT,
    Opcode.MIN,
    Opcode.MAX,
    Opcode.NOT,
    Opcode.AND,
    Opcode.OR,
    Opcode.CEQ,
    Opcode.CNE,
    Opcode.CLT,
    Opcode.CLE,
    Opcode.CGT,
    Opcode.CGE,
    Opcode.ITOF,
    Opcode.FTOI,
}


def _coerced_result(value, ir_type: str):
    """Clamp a folded Python value onto the destination register type."""
    if ir_type == IR_INT:
        return int(value)
    return float(value)


def fold_constants(function: FunctionIR) -> int:
    """Fold constant expressions in place; returns the number of changes."""
    changes = 0
    for block in function.blocks:
        for index, instr in enumerate(block.instructions):
            folded = _fold_instr(instr)
            if folded is not None:
                block.instructions[index] = folded
                changes += 1
    return changes


def _fold_instr(instr: Instr):
    """A replacement instruction, or None if no folding applies."""
    if instr.dest is None or instr.op not in _FOLDABLE:
        return None
    operands = instr.operands
    if all(isinstance(v, Const) for v in operands):
        result = evaluate_constant(instr.op, [v.value for v in operands])
        if result is None:
            return None
        value = _coerced_result(result, instr.dest.type)
        return Instr(
            Opcode.LI, dest=instr.dest, operands=(Const(value, instr.dest.type),)
        )
    return _algebraic(instr)


def _algebraic(instr: Instr):
    """Identity simplifications with one constant operand."""
    op = instr.op
    if len(instr.operands) != 2:
        return None
    left, right = instr.operands

    def mov(source):
        return Instr(Opcode.MOV, dest=instr.dest, operands=(source,))

    if op is Opcode.ADD:
        if _is_zero(right):
            return mov(left)
        if _is_zero(left):
            return mov(right)
    elif op is Opcode.SUB:
        if _is_zero(right):
            return mov(left)
    elif op is Opcode.MUL:
        if _is_one(right):
            return mov(left)
        if _is_one(left):
            return mov(right)
        if instr.dest.type == IR_INT and (_is_zero(left) or _is_zero(right)):
            return Instr(
                Opcode.LI, dest=instr.dest, operands=(Const(0, IR_INT),)
            )
    elif op is Opcode.DIV:
        if _is_one(right):
            return mov(left)
    elif op is Opcode.AND:
        if _is_zero(left) or _is_zero(right):
            return Instr(Opcode.LI, dest=instr.dest, operands=(Const(0, IR_INT),))
    elif op is Opcode.OR:
        if _is_zero(left):
            return Instr(Opcode.CNE, dest=instr.dest, operands=(right, Const(0, IR_INT)))
        if _is_zero(right):
            return Instr(Opcode.CNE, dest=instr.dest, operands=(left, Const(0, IR_INT)))
    return None


def _is_zero(value) -> bool:
    return isinstance(value, Const) and value.value == 0


def _is_one(value) -> bool:
    return isinstance(value, Const) and value.value == 1
