"""Lockstep simulation of the whole Warp array.

Cells advance one cycle at a time; adjacent cells are connected by bounded
queues; the external input stream feeds the leftmost used cell and output
is collected from the rightmost used cell.  Deadlock (every live cell
stalled with nothing in flight) is detected and reported rather than
spinning forever.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from ..asmlink.objformat import DownloadModule
from ..machine.warp_array import WarpArrayModel
from .cell_state import CellState, CellStats, SimulationError
from .executor import step_cell
from .queues import CellQueue

Number = Union[int, float]


@dataclass
class RunResult:
    """Outcome of one array run."""

    outputs: List[Number]
    cycles: int
    cell_stats: Dict[int, CellStats] = field(default_factory=dict)
    leftover_input: int = 0

    def output_floats(self) -> List[float]:
        return [float(v) for v in self.outputs]


class ArrayRunner:
    """Executes a download module on a simulated Warp array."""

    def __init__(
        self,
        module: DownloadModule,
        array: Optional[WarpArrayModel] = None,
        max_cycles: int = 5_000_000,
    ):
        self.array = array or WarpArrayModel()
        self.module = module
        self.max_cycles = max_cycles
        if not module.cell_programs:
            raise ValueError("download module uses no cells")
        for cell_index in module.cell_programs:
            if not 0 <= cell_index < self.array.cell_count:
                raise ValueError(
                    f"module uses cell {cell_index}, array has "
                    f"{self.array.cell_count}"
                )

    def run(self, inputs: List[Number]) -> RunResult:
        cells = sorted(self.module.cell_programs)
        states: Dict[int, CellState] = {
            index: CellState(self.module.cell_programs[index], self.array.cell)
            for index in cells
        }
        capacity = self.array.cell.queue_capacity
        # Queue i feeds cell cells[i]; the last queue collects output.
        queues: List[CellQueue] = [
            CellQueue(capacity) for _ in range(len(cells) + 1)
        ]
        input_queue = queues[0]
        output_queue = queues[-1]
        pending_input = list(inputs)
        outputs: List[Number] = []

        cycle = 0
        while cycle < self.max_cycles:
            # Feed the external stream as space allows (host DMA).
            while pending_input and not input_queue.is_full:
                input_queue.push(pending_input.pop(0))
            # Output drains freely: the host always accepts results.
            outputs.extend(output_queue.drain())
            progress = False
            all_halted = True
            for position, index in enumerate(cells):
                state = states[index]
                if step_cell(
                    state, cycle, queues[position], queues[position + 1]
                ):
                    progress = True
                if not state.halted:
                    all_halted = False
                elif state.has_pending_writes():
                    progress = True
            if all_halted and not any(
                states[i].has_pending_writes() for i in cells
            ):
                cycle += 1
                break
            if not progress and not pending_input:
                live = [i for i in cells if not states[i].halted]
                if live and all(
                    not states[i].has_pending_writes() for i in cells
                ):
                    raise SimulationError(
                        f"deadlock at cycle {cycle}: cells {live} stalled"
                    )
            cycle += 1
        else:
            raise SimulationError(
                f"array did not finish within {self.max_cycles} cycles"
            )

        outputs.extend(output_queue.drain())
        return RunResult(
            outputs=outputs,
            cycles=cycle,
            cell_stats={i: states[i].stats for i in cells},
            leftover_input=len(pending_input) + len(input_queue),
        )


def run_module(
    module: DownloadModule,
    inputs: List[Number],
    array: Optional[WarpArrayModel] = None,
    max_cycles: int = 5_000_000,
) -> RunResult:
    """Convenience: build a runner and execute once."""
    return ArrayRunner(module, array, max_cycles).run(inputs)
