"""Watch-mode speculation: precompile what the user is editing.

A watch client streams full module sources as the user edits (the
``watch`` protocol verb).  For each update the manager parses the
source through the shared phase-1 cache, fingerprints every function,
and diffs against the previous snapshot for that watch key — the edited
function *plus any sibling whose fingerprint changed* (fingerprints
cover section context, so an interface edit dirties its dependents).
If anything changed, the whole module is submitted as one speculative
job: the artifact cache serves the unchanged functions, so the job
compiles exactly the dirty set, and its results land in the ordinary
artifact/parse/link caches — the user's eventual interactive submit
becomes cache hits.

Safety rules (speculation must never hurt a real tenant):

- speculative jobs run under the dedicated :data:`SPECULATION_TENANT`
  at ``batch`` priority — the fair-share queue dispatches them only
  when no ``interactive``/``normal`` task is pending, i.e. capacity is
  donated only when otherwise idle;
- a newer edit for the same watch key cancels the previous speculative
  job (supersession) before submitting the next one;
- hard caps: at most ``max_inflight`` live speculative jobs across all
  watches, and no submission when fewer than ``queue_headroom`` job
  slots remain — speculation can never push a real tenant into
  backpressure;
- admission rejections are swallowed (speculation is best-effort), and
  a source that does not parse is skipped without disturbing the
  previous snapshot or its in-flight job.

Correctness is structural: speculation only warms content-addressed
caches, so speculation on/off cannot change any digest.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..cache.fingerprint import module_fingerprints
from ..driver.function_master import phase1_cached

#: tenant all speculative jobs run under (fair-share isolates it; the
#: per-tenant inflight cap applies to it like anyone else)
SPECULATION_TENANT = "speculation"


@dataclass
class _WatchState:
    """Per-watch-key snapshot and in-flight speculative job."""

    fingerprints: Dict[Tuple[str, str], str] = field(default_factory=dict)
    job_id: Optional[str] = None
    updates: int = 0


class SpeculationManager:
    """Turns watch updates into capped, supersedable speculative jobs.

    Lock discipline: the manager lock guards only its own state and is
    never held across a call into the service — the service may call
    :meth:`stats` while holding its own condition, so holding both in
    the other order would deadlock.
    """

    def __init__(
        self,
        service,
        *,
        max_inflight: int = 2,
        queue_headroom: int = 2,
    ):
        if max_inflight < 1:
            raise ValueError(
                f"max_inflight must be positive, got {max_inflight}"
            )
        if queue_headroom < 0:
            raise ValueError(
                f"queue_headroom must be non-negative, got {queue_headroom}"
            )
        self._service = service
        self.max_inflight = max_inflight
        self.queue_headroom = queue_headroom
        self._lock = threading.Lock()
        self._watches: Dict[str, _WatchState] = {}
        #: counters (ints; read without the lock by service_stats)
        self.updates = 0
        self.launched = 0
        self.superseded = 0
        self.suppressed = 0
        self.rejected = 0
        self.clean = 0
        self.parse_errors = 0

    # -- the one entry point -------------------------------------------

    def update(
        self,
        source: str,
        *,
        watch: str = "default",
        filename: str = "<watch>",
        opt_level: int = 2,
        cells: int = 10,
    ) -> dict:
        """Process one edit; returns the outcome document the protocol
        replies with.  Never raises for speculation-side failures."""
        outcome = {
            "watch": watch,
            "speculation": True,
            "job": None,
            "dirty": 0,
            "functions": [],
            "superseded": False,
            "reason": None,
        }
        with self._lock:
            self.updates += 1
        try:
            parsed, _ = phase1_cached(source, filename)
            fingerprints = module_fingerprints(
                parsed.module, opt_level=opt_level, cell_count=cells
            )
        except Exception:
            # A broken intermediate edit state: skip, keep the previous
            # snapshot (and any job speculating on it) untouched.
            with self._lock:
                self.parse_errors += 1
            outcome["reason"] = "parse-error"
            return outcome

        with self._lock:
            state = self._watches.setdefault(watch, _WatchState())
            state.updates += 1
            dirty = sorted(
                key
                for key, fp in fingerprints.items()
                if state.fingerprints.get(key) != fp
            )
            state.fingerprints = fingerprints
            previous_job = state.job_id
        outcome["dirty"] = len(dirty)
        outcome["functions"] = [f"{s}.{f}" for s, f in dirty[:16]]
        if not dirty:
            with self._lock:
                self.clean += 1
            outcome["reason"] = "clean"
            return outcome

        # Supersession: a newer edit invalidates the previous job.
        if previous_job is not None and self._cancel(previous_job):
            with self._lock:
                self.superseded += 1
            outcome["superseded"] = True
        with self._lock:
            if state.job_id == previous_job:
                state.job_id = None

        # Hard caps, checked against live service state.
        reason = self._capacity_block()
        if reason is not None:
            with self._lock:
                self.suppressed += 1
            outcome["reason"] = reason
            return outcome

        from ..service.server import AdmissionError  # lazy: avoid cycle

        try:
            job_id = self._service.submit(
                source,
                tenant=SPECULATION_TENANT,
                filename=filename,
                priority="batch",
                opt_level=opt_level,
                cells=cells,
            )
        except AdmissionError as error:
            with self._lock:
                self.rejected += 1
            outcome["reason"] = f"rejected:{error.reason}"
            return outcome
        with self._lock:
            self.launched += 1
            state.job_id = job_id
        outcome["job"] = job_id
        outcome["reason"] = "speculating"
        return outcome

    # -- helpers (no manager lock held when calling the service) -------

    def _cancel(self, job_id: str) -> bool:
        try:
            return self._service.cancel(job_id)
        except KeyError:
            return False  # evicted → long terminal → nothing to cancel

    def _live_jobs(self) -> List[str]:
        """Speculative job ids that are not terminal (prunes state)."""
        with self._lock:
            tracked = [
                (key, state.job_id)
                for key, state in self._watches.items()
                if state.job_id is not None
            ]
        live: List[str] = []
        stale: List[str] = []
        for key, job_id in tracked:
            try:
                job = self._service.job(job_id)
                # a cancelled-but-not-yet-terminal job is already dying;
                # counting it against the cap would block its successor
                terminal = job.terminal or job.cancel_requested
            except KeyError:
                terminal = True  # evicted → long terminal
            if terminal:
                stale.append(key)
            else:
                live.append(job_id)
        if stale:
            with self._lock:
                for key in stale:
                    state = self._watches.get(key)
                    if state is not None:
                        state.job_id = None
        return live

    def _capacity_block(self) -> Optional[str]:
        if len(self._live_jobs()) >= self.max_inflight:
            return "inflight-cap"
        stats = self._service.service_stats()
        queued = stats.get("jobs", {}).get("queued", 0)
        if queued > self._service.max_queued - max(self.queue_headroom, 1):
            return "queue-headroom"
        return None

    # -- telemetry -----------------------------------------------------

    def stats(self) -> dict:
        """Counter snapshot.  Reads plain ints, safe without the
        manager lock (and callable while the service holds its own)."""
        return {
            "updates": self.updates,
            "launched": self.launched,
            "superseded": self.superseded,
            "suppressed": self.suppressed,
            "rejected": self.rejected,
            "clean": self.clean,
            "parse_errors": self.parse_errors,
            "watches": len(self._watches),
        }
