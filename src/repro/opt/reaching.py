"""Reaching-definitions analysis.

A definition is identified by ``(block name, index, register)``.  The
solution says, for each block entry, which definitions may reach it.  Used
by tests and by the dependence analysis to find loop-carried register
flows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from ..ir.cfg import FunctionIR
from ..ir.values import VReg
from .dataflow import BlockFacts, solve_forward

#: (block name, instruction index within block, defined register)
Definition = Tuple[str, int, VReg]


@dataclass
class ReachingDefinitions:
    """Reaching-definition facts plus handy lookup helpers."""

    facts: BlockFacts
    all_definitions: List[Definition]

    def reaching_entry(self, block_name: str) -> FrozenSet[Definition]:
        return self.facts.entry[block_name]

    def definitions_of(self, reg: VReg) -> List[Definition]:
        return [d for d in self.all_definitions if d[2] == reg]


def reaching_definitions(function: FunctionIR) -> ReachingDefinitions:
    all_defs: List[Definition] = []
    defs_of_reg: Dict[VReg, List[Definition]] = {}
    for block in function.blocks:
        for index, instr in enumerate(block.instructions):
            if instr.dest is not None:
                definition = (block.name, index, instr.dest)
                all_defs.append(definition)
                defs_of_reg.setdefault(instr.dest, []).append(definition)

    gen: Dict[str, FrozenSet[Definition]] = {}
    kill: Dict[str, FrozenSet[Definition]] = {}
    for block in function.blocks:
        local_last: Dict[VReg, Definition] = {}
        for index, instr in enumerate(block.instructions):
            if instr.dest is not None:
                local_last[instr.dest] = (block.name, index, instr.dest)
        gen[block.name] = frozenset(local_last.values())
        killed = set()
        for reg in local_last:
            killed.update(
                d for d in defs_of_reg[reg] if d[0] != block.name
            )
            killed.update(
                d
                for d in defs_of_reg[reg]
                if d[0] == block.name and d != local_last[reg]
            )
            # The boundary (parameter) definition of this register dies too.
            killed.add((function.entry.name, -1, reg))
        kill[block.name] = frozenset(killed)

    # Parameters are definitions from 'outside'; model them as boundary
    # facts with index -1 in the entry block.
    boundary = frozenset(
        (function.entry.name, -1, reg) for reg in function.param_regs
    )
    facts = solve_forward(function, gen, kill, boundary=boundary)
    return ReachingDefinitions(facts=facts, all_definitions=all_defs)
