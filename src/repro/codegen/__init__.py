"""Code generation: allocation, selection, scheduling, software pipelining."""

from .compiler import RESERVED_INT_REGS, compile_function
from .modulo import (
    ModuloSchedule,
    PipelineFailure,
    PipelinedLoop,
    SchedEdge,
    emit_pipelined_loop,
    find_modulo_schedule,
    machine_schedule_edges,
    resource_mii,
    try_modulo_schedule,
)
from .regalloc import AllocationResult, RegisterPressureError, allocate_registers
from .schedule import ScheduleResult, schedule_block
from .select import SelectedBlock, select_function

__all__ = [
    "AllocationResult",
    "ModuloSchedule",
    "PipelineFailure",
    "PipelinedLoop",
    "RESERVED_INT_REGS",
    "RegisterPressureError",
    "SchedEdge",
    "ScheduleResult",
    "SelectedBlock",
    "allocate_registers",
    "compile_function",
    "emit_pipelined_loop",
    "find_modulo_schedule",
    "machine_schedule_edges",
    "resource_mii",
    "schedule_block",
    "select_function",
    "try_modulo_schedule",
]
