"""Shared helpers for the test suite."""

from __future__ import annotations

from typing import List, Optional, Union

from repro.driver.sequential import SequentialCompiler
from repro.ir.cfg import FunctionIR, ModuleIR
from repro.ir.lowering import lower_module
from repro.lang.diagnostics import DiagnosticSink
from repro.lang.parser import parse_text
from repro.lang.sema import SemaResult, check_module
from repro.machine.warp_array import WarpArrayModel
from repro.warpsim.array_runner import RunResult, run_module

Number = Union[int, float]


def parse_ok(source: str):
    """Parse + check; assert no diagnostics; return (module, sema)."""
    sink = DiagnosticSink()
    module = parse_text(source, sink)
    assert not sink.has_errors, sink.render()
    sema = check_module(module, sink)
    assert not sink.has_errors, sink.render()
    return module, sema


def sema_errors(source: str) -> List[str]:
    """Parse + check; return rendered error messages (may be empty)."""
    sink = DiagnosticSink()
    module = parse_text(source, sink)
    if not sink.has_errors:
        check_module(module, sink)
    return [d.render() for d in sink.merged_in_source_order()]


def lower_ok(source: str) -> ModuleIR:
    module, sema = parse_ok(source)
    return lower_module(module, sema)


def single_function_ir(source: str) -> FunctionIR:
    ir = lower_ok(source)
    functions = list(ir.all_functions())
    assert len(functions) == 1, f"expected 1 function, got {len(functions)}"
    return functions[0]


def wrap_function(body: str, cells: str = "0..0") -> str:
    """Wrap one function's text into a single-section module."""
    return f"module m\nsection s (cells {cells})\n{body}\nend\nend\n"


def compile_and_run(
    source: str,
    inputs: List[Number],
    opt_level: int = 2,
    cell_count: int = 10,
    max_cycles: int = 5_000_000,
) -> RunResult:
    """Compile with the sequential compiler and execute on the simulator."""
    compiler = SequentialCompiler(
        array=WarpArrayModel(cell_count=cell_count), opt_level=opt_level
    )
    result = compiler.compile(source)
    return run_module(result.download, inputs, max_cycles=max_cycles)


def compile_with_ir_transform(source: str, transform, opt_level: int = 2):
    """Compile ``source`` applying ``transform(module_ir)`` after lowering.

    Lets tests exercise optional transforms (unrolling, inlining) that the
    standard driver does not run, through the full backend + linker.
    """
    from repro.codegen.compiler import compile_function
    from repro.driver.phases import (
        phase1_parse_and_check,
        phase4_link_and_download,
    )
    from repro.ir.lowering import lower_module

    parsed = phase1_parse_and_check(source)
    module_ir = lower_module(parsed.module, parsed.sema)
    transform(module_ir)
    array = WarpArrayModel()
    objects = {
        name: [
            compile_function(fn, array.cell, opt_level=opt_level)
            for fn in fns
        ]
        for name, fns in module_ir.functions.items()
    }
    module, _assembly, _link = phase4_link_and_download(
        parsed, objects, array
    )
    return module


#: A one-cell module whose main echoes f(x) for each input — handy base
#: for semantics tests: fill in the body of `f`.
PIPELINE_TEMPLATE = """
module t
section s (cells 0..0)
  function f(x: float) : float
{body}
  function main()
  var v: float; k: int;
  begin
    for k := 1 to {count} do
      receive(v);
      send(f(v));
    end;
  end
end
end
"""


def echo_module(f_body: str, count: int) -> str:
    """A module applying `f` to `count` external inputs on one cell."""
    return PIPELINE_TEMPLATE.format(body=f_body, count=count)
