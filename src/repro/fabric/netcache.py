"""Two-tier artifact cache: local PickleStore in front of a network tier.

Bazel-style content-addressed cache service: keys are the existing
artifact fingerprints (already salted with the compiler version), values
are pickled :class:`FunctionTaskResult` blobs.  One tenant's compile
warms every node that shares the cache service.

Tiering rules (INTERNALS.md §Distributed fabric):

- **read-through** — a local miss consults the network tier; a network
  hit is digest-validated, then written into the local store so the
  next lookup never leaves the machine;
- **write-behind** — local puts return immediately; a background thread
  pushes the blob to the network tier, and a full queue drops the push
  (the artifact is still cached locally — the network tier is an
  accelerator, not a system of record);
- **degradation** — *every* network-tier failure (refused connection,
  timeout, protocol error, corrupt response) is a counted miss, and
  after ``fail_threshold`` consecutive transport failures the tier is
  disabled for the rest of the compile.  Cache trouble can cost a
  recompile; it must never fail a compile or link a wrong artifact.
"""

from __future__ import annotations

import queue
import socket
import socketserver
import threading
from typing import Optional

from ..cache.store import DEFAULT_MAX_BYTES, PickleStore
from ..driver.function_master import FunctionTaskResult, result_payload_digest
from .chaos import CacheChaos
from .wire import (
    Connection,
    ProtocolError,
    decode_frame,
    fabric_secret,
    hmac_tag,
    pack_blob,
    read_frame_line,
    unpack_blob,
)


class NetworkBlobStore(PickleStore):
    """Server-side storage: raw pickled-result blobs, content-addressed.

    Reuses the PickleStore machinery wholesale — atomic tmp+rename
    writes, LRU eviction, quarantine-on-corrupt — with ``bytes``
    payloads so the server never needs to unpickle (or trust) what
    clients store.
    """

    SUBDIR = "netblobs"
    PAYLOAD_TYPE = bytes


class _CacheHandler(socketserver.BaseRequestHandler):
    def handle(self):  # noqa: D102 - socketserver entry point
        self.server.cache_service._serve_connection(Connection(self.request))


class _CacheServer(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, service: "CacheServiceServer", host: str, port: int):
        self.cache_service = service
        super().__init__((host, port), _CacheHandler)


class CacheServiceServer:
    """The network cache tier: a tiny content-addressed blob service.

    Protocol (JSON lines, many requests per connection):

    - ``{"op": "cache-get", "key": fp}`` →
      ``{"ok": true, "hit": true, "blob": ..., "sha256": ...}`` or
      ``{"ok": true, "hit": false}``
    - ``{"op": "cache-put", "key": fp, "blob": ..., "sha256": ...}`` →
      ``{"ok": true, "stored": true}`` (digest-mismatched puts are
      refused, not stored)
    - ``{"op": "ping"}`` → ``{"ok": true, "entries": N}``

    ``chaos`` (tests/CI only) deterministically corrupts response blobs
    or fails requests, to prove clients degrade instead of dying.
    """

    def __init__(
        self,
        cache_dir=None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_bytes: int = DEFAULT_MAX_BYTES,
        chaos: Optional[CacheChaos] = None,
    ):
        self.store = NetworkBlobStore(cache_dir, max_bytes=max_bytes)
        self.chaos = chaos
        self._server = _CacheServer(self, host, port)
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="fabric-cache-server",
            daemon=True,
        )
        self._thread.start()

    @property
    def address(self) -> str:
        host, port = self._server.server_address[:2]
        return f"{host}:{port}"

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()

    def __enter__(self) -> "CacheServiceServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- connection loop -----------------------------------------------

    def _serve_connection(self, conn: Connection) -> None:
        try:
            while True:
                frame = conn.recv()
                if frame is None:
                    return
                try:
                    reply = self._dispatch(frame)
                except ProtocolError as exc:
                    conn.send(
                        {"ok": False, "reason": exc.reason, "error": str(exc)}
                    )
                    return  # protocol violation: drop the connection
                except Exception as exc:  # noqa: BLE001 - never kill the thread
                    conn.send(
                        {"ok": False, "reason": "error", "error": repr(exc)}
                    )
                    continue
                conn.send(reply)
        except ProtocolError as exc:
            try:
                conn.send({"ok": False, "reason": exc.reason, "error": str(exc)})
            except Exception:  # noqa: BLE001
                pass
        except OSError:
            pass
        finally:
            conn.close()

    def _dispatch(self, frame: dict) -> dict:
        op = frame.get("op")
        if op == "ping":
            return {"ok": True, "entries": self.store.entry_count()}
        key = str(frame.get("key", ""))
        if not key:
            raise ProtocolError("cache request without a key", reason="bad-request")
        if self.chaos is not None and self.chaos.should_fail(key):
            return {"ok": False, "reason": "unavailable", "error": "chaos"}
        if op == "cache-get":
            blob = self.store.get(key)
            if blob is None:
                return {"ok": True, "hit": False}
            if self.chaos is not None:
                blob = self.chaos.maybe_corrupt(key, blob)
            reply = {"ok": True, "hit": True}
            reply.update(pack_blob_raw(blob))
            return reply
        if op == "cache-put":
            blob = unpack_blob_raw(frame)
            self.store.put(key, blob)
            return {"ok": True, "stored": True}
        raise ProtocolError(f"unknown cache op {op!r}", reason="bad-request")


def pack_blob_raw(blob: bytes) -> dict:
    """Like :func:`repro.fabric.wire.pack_blob` but for raw bytes the
    caller already pickled (the server must not re-pickle blobs, or the
    digest would cover pickle-of-pickle).  With a shared fabric secret
    configured the fields carry the same HMAC tag :func:`pack_blob`
    would add, so clients can authenticate cache-server responses."""
    import base64
    import hashlib

    fields = {
        "blob": base64.b64encode(blob).decode("ascii"),
        "sha256": hashlib.sha256(blob).hexdigest(),
    }
    key = fabric_secret()
    if key is not None:
        fields["hmac"] = hmac_tag(blob, key)
    return fields


def unpack_blob_raw(frame: dict) -> bytes:
    import base64
    import hashlib
    import hmac as hmac_mod

    from .wire import AuthenticationError, WireCorruption

    try:
        blob = base64.b64decode(str(frame.get("blob", "")).encode("ascii"), validate=True)
    except Exception as exc:  # noqa: BLE001
        raise WireCorruption(f"undecodable blob: {exc}")
    key = fabric_secret()
    if key is not None:
        tag = frame.get("hmac")
        if not isinstance(tag, str) or not hmac_mod.compare_digest(
            tag, hmac_tag(blob, key)
        ):
            raise AuthenticationError(
                "blob HMAC missing or wrong (peer lacks the fabric secret?)"
            )
    if hashlib.sha256(blob).hexdigest() != frame.get("sha256"):
        raise WireCorruption("blob digest mismatch")
    return blob


class NetworkCacheClient:
    """Client side of the cache tier; swallows every failure, counted."""

    def __init__(
        self,
        address: str,
        *,
        timeout: float = 5.0,
        fail_threshold: int = 3,
        max_frame_bytes: Optional[int] = None,
    ):
        host, _, port = address.rpartition(":")
        if not host or not port:
            raise ValueError(f"cache address must be HOST:PORT, got {address!r}")
        self.host, self.port = host, int(port)
        self.timeout = timeout
        self.fail_threshold = fail_threshold
        self.max_frame_bytes = max_frame_bytes
        self.disabled = False
        self.remote_hits = 0
        self.remote_misses = 0
        self.remote_errors = 0
        self.corrupt_responses = 0
        self._consecutive_failures = 0
        self._lock = threading.Lock()
        self._sock: Optional[socket.socket] = None
        self._rfile = None

    # -- wire ----------------------------------------------------------

    def _request(self, payload: dict) -> Optional[dict]:
        """One request/reply; None on any transport trouble (counted)."""
        import json

        with self._lock:
            if self.disabled:
                return None
            try:
                if self._sock is None:
                    self._sock = socket.create_connection(
                        (self.host, self.port), timeout=self.timeout
                    )
                    self._rfile = self._sock.makefile("rb")
                self._sock.sendall(
                    (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
                )
                limit = self.max_frame_bytes or 32 * 1024 * 1024
                line = read_frame_line(self._rfile, limit)
                if line is None:
                    raise ConnectionError("cache service closed the connection")
                reply = decode_frame(line)
            except (OSError, ProtocolError, ValueError) as exc:
                self._drop_connection()
                self._note_failure(exc)
                return None
            self._consecutive_failures = 0
            return reply

    def _drop_connection(self) -> None:
        if self._rfile is not None:
            try:
                self._rfile.close()
            except OSError:
                pass
            self._rfile = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _note_failure(self, exc: Exception) -> None:
        self.remote_errors += 1
        self._consecutive_failures += 1
        if self._consecutive_failures >= self.fail_threshold:
            # The tier is gone; stop paying a timeout per lookup.
            self.disabled = True

    def close(self) -> None:
        with self._lock:
            self._drop_connection()

    # -- cache surface -------------------------------------------------

    def get(self, fingerprint: str) -> Optional[FunctionTaskResult]:
        reply = self._request({"op": "cache-get", "key": fingerprint})
        if reply is None or not reply.get("ok"):
            if reply is not None:
                self.remote_errors += 1
            return None
        if not reply.get("hit"):
            self.remote_misses += 1
            return None
        try:
            result = unpack_blob(reply, FunctionTaskResult)
            sealed = getattr(result, "payload_digest", None)
            if sealed is None or result_payload_digest(result) != sealed:
                raise ProtocolError("cache entry fails payload-digest validation")
        except Exception:  # noqa: BLE001 - cache trouble must never fail a compile
            # A corrupt network-tier entry is a miss, never an artifact
            # and never an error: even a blob that unpickles into a
            # FunctionTaskResult with mangled internals (payload-digest
            # derivation raising) degrades to a recompile.
            self.corrupt_responses += 1
            self.remote_misses += 1
            return None
        self.remote_hits += 1
        return result

    def put(self, fingerprint: str, result: FunctionTaskResult) -> bool:
        import pickle

        blob = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        payload = {"op": "cache-put", "key": fingerprint}
        payload.update(pack_blob_raw(blob))
        reply = self._request(payload)
        return bool(reply and reply.get("ok"))


class TieredCache:
    """Local artifact store in front of a network cache tier.

    Implements exactly the surface :class:`repro.driver.master.
    ParallelCompiler` consumes — ``get``/``put``/``stats``/
    ``size_bytes``/``entry_count`` — so it drops in anywhere an
    :class:`~repro.cache.store.ArtifactCache` does.
    """

    def __init__(
        self,
        local,
        remote: NetworkCacheClient,
        *,
        write_behind: bool = True,
        queue_depth: int = 256,
    ):
        self.local = local
        self.remote = remote
        self.write_behind = write_behind
        self.writes_dropped = 0
        self._queue: Optional["queue.Queue"] = None
        self._writer: Optional[threading.Thread] = None
        if write_behind:
            self._queue = queue.Queue(maxsize=queue_depth)
            self._writer = threading.Thread(
                target=self._writer_loop, name="fabric-cache-writer", daemon=True
            )
            self._writer.start()

    # The master reads ``cache.stats`` for its report; the local tier's
    # counters are the ones that decide recompiles, so they are the ones
    # surfaced.  Network-tier counters ride alongside on ``remote``.
    @property
    def stats(self):
        return self.local.stats

    @property
    def max_bytes(self) -> int:
        return self.local.max_bytes

    @property
    def cache_dir(self):
        return self.local.cache_dir

    def get(self, fingerprint: str) -> Optional[FunctionTaskResult]:
        result = self.local.get(fingerprint)
        if result is not None:
            return result
        result = self.remote.get(fingerprint)
        if result is not None:
            # Read-through: the next lookup never leaves the machine.
            self.local.put(fingerprint, result)
        return result

    def put(self, fingerprint: str, result: FunctionTaskResult) -> None:
        self.local.put(fingerprint, result)
        if self._queue is None:
            self.remote.put(fingerprint, result)
            return
        try:
            self._queue.put_nowait((fingerprint, result))
        except queue.Full:
            self.writes_dropped += 1  # local store still has it

    def _writer_loop(self) -> None:
        assert self._queue is not None
        while True:
            item = self._queue.get()
            if item is None:
                return
            fingerprint, result = item
            try:
                self.remote.put(fingerprint, result)
            except Exception:  # noqa: BLE001 - the tier must never raise
                pass
            finally:
                self._queue.task_done()

    def flush(self, timeout: float = 10.0) -> None:
        """Block until queued write-behinds have drained (tests)."""
        if self._queue is None:
            return
        joiner = threading.Thread(target=self._queue.join, daemon=True)
        joiner.start()
        joiner.join(timeout)

    def close(self) -> None:
        if self._queue is not None:
            self.flush()
            self._queue.put(None)
        self.remote.close()

    # -- maintenance passthroughs -------------------------------------

    def size_bytes(self) -> int:
        return self.local.size_bytes()

    def entry_count(self) -> int:
        return self.local.entry_count()

    def clear(self) -> int:
        return self.local.clear()
