"""Natural-loop detection and loop-nest analysis.

The Warp workloads are deeply nested loop kernels; the software pipeliner
(phase 3) targets *innermost* loops whose body is a single basic block.
This module finds natural loops from back edges, nests them, and classifies
which are pipelinable.  The loop-nest depth also feeds the load-balancing
heuristic of the parallel driver (paper §4.3: "a combination of lines of
code and loop nesting can serve as approximation of the compilation time").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from .cfg import FunctionIR
from .dominators import DominatorTree, compute_dominators
from .instructions import Opcode


@dataclass
class Loop:
    """One natural loop: header block plus the set of body blocks."""

    header: str
    blocks: Set[str] = field(default_factory=set)
    parent: Optional["Loop"] = None
    children: List["Loop"] = field(default_factory=list)

    @property
    def depth(self) -> int:
        """Nesting depth; an outermost loop has depth 1."""
        depth = 1
        node = self.parent
        while node is not None:
            depth += 1
            node = node.parent
        return depth

    def is_innermost(self) -> bool:
        return not self.children

    def __contains__(self, block_name: str) -> bool:
        return block_name in self.blocks


@dataclass
class LoopNest:
    """All loops of one function, organized as a forest."""

    roots: List[Loop] = field(default_factory=list)
    by_header: Dict[str, Loop] = field(default_factory=dict)

    def all_loops(self) -> List[Loop]:
        result: List[Loop] = []
        stack = list(self.roots)
        while stack:
            loop = stack.pop()
            result.append(loop)
            stack.extend(loop.children)
        return result

    def innermost_loops(self) -> List[Loop]:
        return [loop for loop in self.all_loops() if loop.is_innermost()]

    def max_depth(self) -> int:
        return max((loop.depth for loop in self.all_loops()), default=0)

    def loop_of_block(self, name: str) -> Optional[Loop]:
        """The innermost loop containing ``name``, or None."""
        best: Optional[Loop] = None
        for loop in self.all_loops():
            if name in loop and (best is None or loop.depth > best.depth):
                best = loop
        return best


def find_loops(function: FunctionIR, dom: Optional[DominatorTree] = None) -> LoopNest:
    """Detect natural loops from back edges and nest them by inclusion."""
    if dom is None:
        dom = compute_dominators(function)
    preds = function.predecessors()
    block_map = function.block_map()

    # A back edge is (tail -> header) where header dominates tail.
    loops_by_header: Dict[str, Loop] = {}
    for block in function.blocks:
        for succ in block.successors():
            if dom.dominates(succ, block.name):
                loop = loops_by_header.setdefault(succ, Loop(header=succ))
                _collect_loop_body(loop, block.name, preds)

    # Nest loops: sort by body size so parents (larger) are assigned last.
    loops = sorted(loops_by_header.values(), key=lambda l: len(l.blocks))
    for i, inner in enumerate(loops):
        for outer in loops[i + 1:]:
            if inner.header in outer.blocks and inner is not outer:
                inner.parent = outer
                outer.children.append(inner)
                break

    nest = LoopNest(
        roots=[l for l in loops if l.parent is None],
        by_header=loops_by_header,
    )
    # Keep children in deterministic (block layout) order.
    layout = {b.name: i for i, b in enumerate(function.blocks)}
    for loop in nest.all_loops():
        loop.children.sort(key=lambda l: layout[l.header])
    nest.roots.sort(key=lambda l: layout[l.header])
    return nest


def _collect_loop_body(loop: Loop, tail: str, preds: Dict[str, List[str]]) -> None:
    """Add to ``loop`` all blocks that reach ``tail`` without the header."""
    loop.blocks.add(loop.header)
    if tail in loop.blocks:
        return
    worklist = [tail]
    loop.blocks.add(tail)
    while worklist:
        name = worklist.pop()
        for pred in preds[name]:
            if pred not in loop.blocks:
                loop.blocks.add(pred)
                worklist.append(pred)


def is_pipelinable(function: FunctionIR, loop: Loop) -> bool:
    """True if phase 3 can software-pipeline this loop.

    Requirements (matching the original compiler's restrictions): the loop
    is innermost, its body is exactly one block besides the header, the
    body has no calls (calls break the modulo schedule), and control flow
    inside the body is straight-line.
    """
    if not loop.is_innermost():
        return False
    body_blocks = loop.blocks - {loop.header}
    if len(body_blocks) != 1:
        return False
    body = function.block_named(next(iter(body_blocks)))
    # The body must jump back to the header unconditionally.
    term = body.terminator
    if term is None or term.op is not Opcode.JMP or term.labels != (loop.header,):
        return False
    return all(instr.op is not Opcode.CALL for instr in body.instructions)


def loop_nest_weight(function: FunctionIR) -> int:
    """The scheduler's cost proxy: sum over blocks of 4**depth.

    Approximates how many times each instruction will be processed by the
    optimizer and how much the pipeliner will chew on it.  Used by the
    load-balancing heuristic (paper §4.3).
    """
    nest = find_loops(function)
    weight = 0
    for block in function.blocks:
        loop = nest.loop_of_block(block.name)
        depth = loop.depth if loop is not None else 0
        weight += len(block.instructions) * (4 ** depth)
    return weight
