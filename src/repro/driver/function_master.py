"""Function masters: the per-function worker processes.

"The number of processes on the function level ... is equal to the total
number of processes in the program.  Function masters are Common Lisp
processes.  The task of a function master is to implement phases 2 and 3
of the compiler" (§3.2).

Our function masters are Python processes (or in-process calls for the
serial backend).  Each worker receives a small, picklable
:class:`FunctionTask` and compiles one function (or one section) to
object code.  Phase-1 state is re-derived from the source text — the
moral equivalent of a fresh Lisp process interpreting its initializing
information — but memoized per worker process: a warm worker that
receives its second task for the same module skips parsing and semantic
checking entirely (see :func:`phase1_cached`).  The cache is a bounded
LRU keyed by ``(sha256(source text), filename)``, so two different
modules that happen to share a filename can never collide.
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..asmlink.assembler import assemble_function
from ..asmlink.objformat import AssembledFunction, ObjectFunction
from ..machine.warp_array import WarpArrayModel
from .phases import (
    ParsedProgram,
    compile_one_function,
    phase1_parallel,
    phase1_parse_and_check,
)
from .results import FunctionReport


@dataclass
class FunctionTask:
    """Everything a function master needs, cheap to pickle.

    ``function_name`` of None makes this a *section-level* task: one
    worker compiles every function of the section.  That was the paper's
    original plan ("to parallelize only the compilation of programs for
    different sections", §3.1) before the authors realized functions
    could be compiled independently too.
    """

    source_text: str
    filename: str
    section_name: str
    function_name: Optional[str] = None
    opt_level: int = 2
    cell_count: int = 10
    #: pre-compilation cost estimate (§4.3 lines + loop nesting), filled
    #: in by the master from the parse; drives size-aware batching.
    cost_hint: float = 1.0
    #: variant-search codegen knobs (both 0 = the standard pipeline):
    #: full-unroll budget for constant-trip loops, and a cap on the
    #: modulo scheduler's initiation-interval search (1 disables
    #: pipelining).  Part of the cache fingerprint.
    unroll_budget: int = 0
    ii_budget: int = 0


@dataclass
class FunctionTaskResult:
    """What a function master sends back to its section master."""

    section_name: str
    function_name: str
    obj: ObjectFunction
    report: FunctionReport
    diagnostics: List[str] = field(default_factory=list)
    #: sha256 over the object code's canonical text, computed by the
    #: function master before the result crosses the IPC boundary.  The
    #: supervisor re-derives it on receipt: a mismatch means the payload
    #: was corrupted in transit and the task must be re-run, not linked.
    payload_digest: Optional[str] = None
    #: worker that produced this result, when the backend knows (the
    #: fault-injection suite's simulated workers report it; real pools
    #: leave it None).  Drives the supervisor's health tracking.
    worker: Optional[str] = None
    #: distributed assembly (phase 4, layer 1): the function master
    #: assembles its own object function so assembly rides the phase-2/3
    #: parallelism instead of the sequential link tail.  None when the
    #: object code cannot assemble — the linker then assembles it itself
    #: and raises the canonical AssemblyError.
    assembled: Optional[AssembledFunction] = None


def result_payload_digest(result: FunctionTaskResult) -> str:
    """Canonical digest of a result's object-code payload.

    Covers exactly what the linker consumes — the object function's
    deterministic printable form plus, when the function master shipped
    one, the pre-assembled form — not diagnostics or telemetry, which
    the master legitimately rewrites on cache hits."""
    hasher = hashlib.sha256(result.obj.digest_text().encode("utf-8"))
    assembled = getattr(result, "assembled", None)
    if assembled is not None:
        hasher.update(b"\x1f")
        hasher.update(assembled.digest_text().encode("utf-8"))
    return hasher.hexdigest()


def attach_assembly(result: FunctionTaskResult) -> FunctionTaskResult:
    """Assemble the result's object function and seal the payload digest.

    Assembly failures are deliberately swallowed: the result ships with
    ``assembled=None`` and the linker (sequential or parallel) assembles
    the object function itself, raising the same :class:`AssemblyError`
    the sequential compiler would — byte-identical diagnostics.
    """
    try:
        result.assembled = assemble_function(result.obj)
    except Exception:  # noqa: BLE001 - any failure defers to the linker
        result.assembled = None
    result.payload_digest = result_payload_digest(result)
    return result


# ---------------------------------------------------------------------------
# Per-worker phase-1 cache.
#
# Module-level so it lives exactly as long as the worker process: a cold
# worker misses once per module, then every further task for the same
# module is parse-free.  With a fork start method (Linux default) workers
# even inherit the master's parse, so their first task hits too.
# ---------------------------------------------------------------------------


def _default_phase1_capacity() -> int:
    try:
        return max(1, int(os.environ.get("WARPCC_PHASE1_CACHE", "8")))
    except ValueError:  # pragma: no cover - defensive
        return 8


_phase1_cache: "OrderedDict[Tuple[str, str], ParsedProgram]" = OrderedDict()
_phase1_capacity: int = _default_phase1_capacity()
_phase1_hits: int = 0
_phase1_misses: int = 0
#: The compile service runs many job threads in one process, all sharing
#: this cache; LRU bookkeeping (move_to_end + eviction) must not race.
_phase1_lock = threading.Lock()


def configure_phase1_cache(capacity: int) -> None:
    """Bound the per-worker cache to ``capacity`` modules (LRU eviction)."""
    global _phase1_capacity
    if capacity < 1:
        raise ValueError(f"cache capacity must be positive, got {capacity}")
    with _phase1_lock:
        _phase1_capacity = capacity
        while len(_phase1_cache) > _phase1_capacity:
            _phase1_cache.popitem(last=False)


def clear_phase1_cache() -> None:
    """Drop all cached parses and reset the hit/miss counters."""
    global _phase1_hits, _phase1_misses
    with _phase1_lock:
        _phase1_cache.clear()
        _phase1_hits = 0
        _phase1_misses = 0


def phase1_cache_stats() -> Tuple[int, int]:
    """(hits, misses) seen by this process since the last clear."""
    return _phase1_hits, _phase1_misses


#: One ParseCache per distinct directory, so every task a worker process
#: runs shares the incremental front end's disk tier.
_worker_parse_caches: dict = {}


def _default_front(source_text: str, filename: str) -> ParsedProgram:
    """The front end a worker runs on a memo miss.

    When the driving process exported ``WARPCC_PARSE_CACHE_DIR`` the
    worker uses the incremental front end at ``jobs=1`` (the pool is the
    parallelism; nesting thread pools inside workers buys nothing), so
    even a cold worker's first parse of an edited module reuses every
    untouched function from disk.  Otherwise: the sequential front end.
    """
    cache_dir = os.environ.get("WARPCC_PARSE_CACHE_DIR")
    if not cache_dir:
        return phase1_parse_and_check(source_text, filename)
    parse_cache = _worker_parse_caches.get(cache_dir)
    if parse_cache is None:
        from ..cache.parse_store import ParseCache

        parse_cache = ParseCache(cache_dir)
        _worker_parse_caches[cache_dir] = parse_cache
    return phase1_parallel(
        source_text, filename, jobs=1, parse_cache=parse_cache
    )


def phase1_cached(
    source_text: str, filename: str = "<input>", front=None
) -> Tuple[ParsedProgram, bool]:
    """Phase 1 through the per-worker memo; returns ``(parsed, hit)``.

    ``front`` (a ``(source_text, filename) -> ParsedProgram`` callable)
    is what runs on a miss; it defaults to :func:`_default_front`, which
    picks the sequential or incremental front end from the environment.
    Only successful parses are cached — a module with errors raises
    :class:`~repro.lang.diagnostics.CompileError` every time.
    """
    global _phase1_hits, _phase1_misses
    key = (
        hashlib.sha256(source_text.encode("utf-8")).hexdigest(),
        filename,
    )
    with _phase1_lock:
        cached = _phase1_cache.get(key)
        if cached is not None:
            _phase1_cache.move_to_end(key)
            _phase1_hits += 1
            return cached, True
    # Parse outside the lock: concurrent job threads parsing *different*
    # modules must not serialize on each other.  Two threads racing the
    # same module both parse; last writer wins, results are identical.
    builder = front if front is not None else _default_front
    parsed = builder(source_text, filename)
    with _phase1_lock:
        _phase1_misses += 1
        _phase1_cache[key] = parsed
        while len(_phase1_cache) > _phase1_capacity:
            _phase1_cache.popitem(last=False)
    return parsed, False


def _record_cache_outcome(report: FunctionReport, hit: bool) -> None:
    report.phase1_cache_hits = 1 if hit else 0
    report.phase1_cache_misses = 0 if hit else 1


def run_function_master(task: FunctionTask) -> FunctionTaskResult:
    """Entry point of one function master (picklable module-level fn)."""
    if task.function_name is None:
        raise ValueError(
            "section-level tasks must go through run_compile_task"
        )
    parsed, hit = phase1_cached(task.source_text, task.filename)
    array = WarpArrayModel(cell_count=task.cell_count)
    obj, report = compile_one_function(
        parsed,
        task.section_name,
        task.function_name,
        array,
        task.opt_level,
        unroll_budget=getattr(task, "unroll_budget", 0),
        ii_budget=getattr(task, "ii_budget", 0),
    )
    _record_cache_outcome(report, hit)
    result = FunctionTaskResult(
        section_name=task.section_name,
        function_name=task.function_name,
        obj=obj,
        report=report,
        diagnostics=[d.render() for d in parsed.sink.diagnostics],
    )
    return attach_assembly(result)


def run_compile_task(task: FunctionTask) -> List[FunctionTaskResult]:
    """Worker entry point for both granularities.

    A function-level task yields one result; a section-level task
    (``function_name is None``) compiles every function of its section in
    source order within one worker process.  The module's diagnostics are
    rendered once per *task* and attached to the task's first result, so
    the section master's recombined output carries each diagnostic once.
    """
    if task.function_name is not None:
        return [run_function_master(task)]
    parsed, hit = phase1_cached(task.source_text, task.filename)
    section = parsed.module.section_named(task.section_name)
    if section is None:
        raise KeyError(f"no section named {task.section_name!r}")
    array = WarpArrayModel(cell_count=task.cell_count)
    rendered = [d.render() for d in parsed.sink.diagnostics]
    results: List[FunctionTaskResult] = []
    for position, function in enumerate(section.functions):
        obj, report = compile_one_function(
            parsed,
            task.section_name,
            function.name,
            array,
            task.opt_level,
            unroll_budget=getattr(task, "unroll_budget", 0),
            ii_budget=getattr(task, "ii_budget", 0),
        )
        if position == 0:
            _record_cache_outcome(report, hit)
        result = FunctionTaskResult(
            section_name=task.section_name,
            function_name=function.name,
            obj=obj,
            report=report,
            diagnostics=rendered if position == 0 else [],
        )
        results.append(attach_assembly(result))
    return results


def run_compile_batch(tasks: List[FunctionTask]) -> List[FunctionTaskResult]:
    """Run a whole batch of tasks in one worker round-trip.

    Backends submit size-aware batches through this entry point so tiny
    functions (the paper's f_tiny pathology) share one IPC round-trip —
    and, thanks to the phase-1 cache above, one parse.
    """
    results: List[FunctionTaskResult] = []
    for task in tasks:
        results.extend(run_compile_task(task))
    return results
