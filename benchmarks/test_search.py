"""Variant-search benchmarks: the winner is real, and the cache pays.

Two claims the search layer makes, measured on this machine:

1. **Never worse, sometimes better.**  For every seeded kernel the
   searched module's simulated cycle count is <= the opt-2 reference
   baseline (the whole-module verification gate guarantees this by
   construction — here we measure that the gate never has to fire), and
   on at least one kernel the search finds a strictly faster module.

2. **Warm search is much cheaper than cold.**  Re-running the identical
   search against a warm VariantStore + ArtifactCache re-simulates
   nothing and serves every object from the artifact cache, so the
   second sweep's wall clock drops well below the first.

The summary lands in ``benchmarks/out/BENCH_search.json`` — the
trajectory point committed at the repo root as
``BENCH_<date>_search.json``.
"""

import json
import platform
import random
import time

from repro.cache import ArtifactCache, VariantStore
from repro.driver.function_master import clear_phase1_cache
from repro.search import REFERENCE_KEY, VariantSpace
from repro.search.searcher import search_module

#: Reference, no-pipelining, and two unroll budgets: a compact lattice
#: with genuinely different winners across the seeded kernels.
SPACE_KEYS = (REFERENCE_KEY, "o2u0i1", "o2u8i0", "o2u64i0")
SEEDS = range(32)


def _kernel(seed: int) -> str:
    """One-function module with a seed-varied constant-trip loop, the
    same shape the search's property sweep uses (tests/test_search.py)."""
    rng = random.Random(seed)
    trip = rng.randrange(2, 10)
    c1 = round(rng.uniform(0.1, 2.0), 2)
    c2 = round(rng.uniform(0.1, 1.0), 2)
    return (
        "module m\n"
        "section s (cells 0..0)\n"
        "  function f(x: float, y: float) : float\n"
        "  var acc, t: float; i: int;\n"
        "  begin\n"
        "    acc := x; t := y;\n"
        f"    for i := 0 to {trip} do\n"
        f"      acc := acc + x * {c1} + i;\n"
        f"      t := t * {c2} + acc;\n"
        "    end;\n"
        "    return acc + t;\n"
        "  end\n"
        "end\n"
        "end\n"
    )


def _sweep(space, cache, store):
    """Run the full seeded sweep once; return (wall, outcomes)."""
    outcomes = []
    start = time.perf_counter()
    for seed in SEEDS:
        outcomes.append(
            search_module(
                _kernel(seed),
                filename=f"bench_k{seed}.w",
                space=space,
                input_seed=seed,
                cache=cache,
                variant_store=store,
            )
        )
    return time.perf_counter() - start, outcomes


def test_search_winner_is_real_and_warm_search_is_cheap(
    results_dir, tmp_path
):
    clear_phase1_cache()
    space = VariantSpace.from_keys(SPACE_KEYS)
    cache = ArtifactCache(tmp_path / "objects")
    store = VariantStore(tmp_path / "scores")

    cold_wall, cold = _sweep(space, cache, store)
    warm_wall, warm = _sweep(space, cache, store)

    wins = 0
    baseline_total = searched_total = 0
    for seed, outcome in zip(SEEDS, cold):
        assert outcome.abstained is None, f"seed {seed}"
        assert outcome.verified or not any(
            k != REFERENCE_KEY for k in outcome.winners.values()
        ), f"seed {seed}"
        # The headline acceptance bar: searched cycles never exceed the
        # opt-2 baseline, on every seed.
        assert outcome.module_cycles <= outcome.baseline_cycles, (
            f"seed {seed}: searched {outcome.module_cycles} > "
            f"baseline {outcome.baseline_cycles}"
        )
        baseline_total += outcome.baseline_cycles
        searched_total += outcome.module_cycles
        if outcome.module_cycles < outcome.baseline_cycles:
            wins += 1

    # Warm runs agree bit-for-bit and re-simulate nothing.
    warm_simulated = 0
    for seed, (a, b) in zip(SEEDS, zip(cold, warm)):
        assert a.result.digest == b.result.digest, f"seed {seed}"
        assert a.winners == b.winners, f"seed {seed}"
        warm_simulated += len(b.simulated)

    saved_pct = 100.0 * (baseline_total - searched_total) / baseline_total
    summary = {
        "workload": f"{len(list(SEEDS))} seeded 1-function kernels",
        "space": list(SPACE_KEYS),
        "python": platform.python_version(),
        "search_seeds": len(list(SEEDS)),
        "search_wins": wins,
        "baseline_cycles_total": baseline_total,
        "searched_cycles_total": searched_total,
        "cycles_saved_pct": round(saved_pct, 2),
        "cold_sweep_wall_s": round(cold_wall, 6),
        "warm_sweep_wall_s": round(warm_wall, 6),
        "warm_advantage": round(cold_wall / warm_wall, 2),
        "warm_variants_simulated": warm_simulated,
        "variant_store_entries": store.entry_count(),
    }
    (results_dir / "BENCH_search.json").write_text(
        json.dumps(summary, indent=2) + "\n"
    )
    (results_dir / "search.txt").write_text(
        f"{summary['workload']}, space {','.join(SPACE_KEYS)}\n"
        f"strict wins:        {wins}/{len(list(SEEDS))} seeds\n"
        f"cycles saved:       {baseline_total - searched_total} "
        f"({saved_pct:.1f}%)\n"
        f"cold sweep:         {cold_wall:.3f}s\n"
        f"warm sweep:         {warm_wall:.3f}s "
        f"({summary['warm_advantage']:.2f}x, {warm_simulated} re-sims)\n"
    )
    print(
        f"\nsearch wins {wins}/{len(list(SEEDS))}, "
        f"saved {saved_pct:.1f}% cycles, "
        f"warm sweep {summary['warm_advantage']:.2f}x faster "
        f"({warm_simulated} re-simulations)"
    )
    # Acceptance bars: the search must strictly beat the baseline on at
    # least one kernel, and the warm sweep must re-simulate nothing and
    # come in under the cold sweep's wall clock.
    assert wins >= 1
    assert warm_simulated == 0
    assert warm_wall < cold_wall
