"""Workload generators and measurement machinery."""

import pytest

from repro.driver.sequential import SequentialCompiler
from repro.cluster.cluster import TimingReport
from repro.metrics.overhead import compute_overhead
from repro.metrics.series import Figure
from repro.metrics.speedup import Speedup, efficiency, speedup_of
from repro.workloads.kernels import synthetic_function
from repro.workloads.sizes import SIZE_CLASSES, lines_for
from repro.workloads.synthetic import synthetic_program
from repro.workloads.user_program import user_program, user_program_function_count

from helpers import parse_ok


class TestKernelGenerator:
    @pytest.mark.parametrize("size,target", sorted(SIZE_CLASSES.items()))
    def test_sizes_near_target(self, size, target):
        source = synthetic_program(size, 1)
        result = SequentialCompiler().compile(source)
        lines = result.profile.functions[0].source_lines
        assert abs(lines - target) <= max(3, target // 10)

    def test_generator_deterministic(self):
        assert synthetic_function("f", 100) == synthetic_function("f", 100)

    def test_generated_function_compiles_clean(self):
        for lines in (4, 20, 60, 150):
            src = (
                f"module m\nsection s (cells 0..0)\n"
                f"{synthetic_function('f', lines)}\nend\nend"
            )
            parse_ok(src)

    def test_work_grows_with_size(self):
        compiler = SequentialCompiler()
        works = []
        for size in ("tiny", "small", "medium", "large", "huge"):
            result = compiler.compile(synthetic_program(size, 1))
            works.append(result.profile.functions[0].work_units)
        assert works == sorted(works)
        assert works[0] < works[-1] / 100  # strongly size-dependent

    def test_equal_functions_have_equal_work(self):
        """§4.1: 'it is desirable that the parallel tasks be of equal
        size'."""
        result = SequentialCompiler().compile(synthetic_program("small", 4))
        works = {f.work_units for f in result.profile.functions}
        assert len(works) == 1


class TestSyntheticPrograms:
    def test_function_count(self):
        for n in (1, 2, 4, 8):
            result = SequentialCompiler().compile(
                synthetic_program("tiny", n)
            )
            assert len(result.profile.functions) == n

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            synthetic_program("tiny", 0)

    def test_unknown_size_rejected(self):
        with pytest.raises(KeyError):
            lines_for("gigantic")


class TestUserProgram:
    def test_nine_functions_three_sections(self):
        module, _ = parse_ok(user_program())
        assert len(module.sections) == 3
        assert module.function_count() == 9
        assert user_program_function_count() == 9

    def test_mix_of_sizes(self):
        """Three ~300-line functions, six in the 5-45 line range (§4.3)."""
        result = SequentialCompiler().compile(user_program())
        lines = sorted(f.source_lines for f in result.profile.functions)
        assert sum(1 for l in lines if l >= 280) == 3
        assert sum(1 for l in lines if l <= 50) == 6

    def test_sections_claim_disjoint_cells(self):
        module, _ = parse_ok(user_program())
        claimed = set()
        for section in module.sections:
            for cell in range(section.first_cell, section.last_cell + 1):
                assert cell not in claimed
                claimed.add(cell)
        assert claimed == set(range(9))


def report(elapsed, impl=0.0):
    r = TimingReport(elapsed=elapsed, cpu_busy={"home": elapsed})
    r.master_cpu = impl
    return r


class TestSpeedupMetric:
    def test_basic(self):
        assert speedup_of(report(100.0), report(25.0)) == 4.0

    def test_efficiency(self):
        assert efficiency(report(100.0), report(25.0), 8) == 0.5

    def test_zero_parallel_rejected(self):
        with pytest.raises(ValueError):
            Speedup(10.0, 0.0).value


class TestOverheadMetric:
    def test_decomposition(self):
        seq = report(800.0)
        par = report(150.0, impl=20.0)
        ovh = compute_overhead(seq, par, workers=8)
        assert ovh.ideal_parallel == 100.0
        assert ovh.total_overhead == 50.0
        assert ovh.implementation_overhead == 20.0
        assert ovh.system_overhead == 30.0
        assert ovh.relative_total == pytest.approx(100 * 50 / 150)

    def test_negative_system_overhead_possible(self):
        """If the sequential compiler thrashed, ideal time is inflated
        and system overhead goes negative (§4.2.3, Figure 9)."""
        seq = report(2000.0)  # badly thrashing sequential run
        par = report(220.0, impl=30.0)
        ovh = compute_overhead(seq, par, workers=8)
        assert ovh.system_overhead < 0

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            compute_overhead(report(1.0), report(1.0), 0)


class TestFigureRendering:
    def test_table_layout(self):
        fig = Figure("Fig. X", "demo", "n", "seconds", xs=[1, 2])
        s = fig.new_series("seq")
        s.add(1, 10.0)
        s.add(2, 20.0)
        text = fig.render()
        assert "Fig. X" in text
        assert "10.00" in text
        assert "seq" in text

    def test_missing_point_rendered_as_dash(self):
        fig = Figure("F", "t", "n", "y", xs=[1, 2])
        s = fig.new_series("a")
        s.add(1, 5.0)
        assert "-" in fig.render()

    def test_series_lookup(self):
        fig = Figure("F", "t", "n", "y", xs=[1])
        fig.new_series("a")
        assert fig.series_named("a").label == "a"
        with pytest.raises(KeyError):
            fig.series_named("b")
